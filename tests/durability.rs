//! Crash-recovery integration: a journal-backed DLA cluster restarts
//! with its fragments, ACLs, deposits, origin signatures and ticket
//! counter intact — queries, integrity circulations and non-repudiation
//! checks all keep working on the recovered state.

use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
use confidential_audit::audit::integrity;
use confidential_audit::logstore::fragment::Partition;
use confidential_audit::logstore::gen::paper_table1;
use confidential_audit::logstore::model::AttrValue;
use confidential_audit::logstore::schema::Schema;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "dla-cluster-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> ClusterConfig {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    ClusterConfig::new(4, schema)
        .with_partition(partition)
        .with_seed(99)
        .with_journal_dir(dir.to_path_buf())
}

#[test]
fn cluster_state_survives_restart() {
    let dir = temp_dir("restart");
    let glsns = {
        let mut cluster = DlaCluster::new(config(&dir)).unwrap();
        let user = cluster.register_user("u0").unwrap();
        cluster.log_records(&user, &paper_table1()).unwrap()
        // cluster dropped here: the "crash".
    };

    let mut recovered = DlaCluster::new(config(&dir)).unwrap();
    // Fragments and deposits are back.
    for node in recovered.nodes() {
        assert_eq!(node.store().len(), 5);
        assert!(node.store().is_durable());
    }
    for &glsn in &glsns {
        assert!(recovered.deposit(glsn).is_some());
        assert!(recovered.verify_origin(glsn).unwrap(), "origin for {glsn}");
    }

    // Queries run against recovered fragments.
    let result = recovered.query("protocol = 'UDP' AND c2 > 100.00").unwrap();
    assert_eq!(result.glsns, vec![glsns[1], glsns[2]]);

    // Integrity circulation still matches the recovered deposits.
    let verdicts = integrity::check_all(&mut recovered, 0).unwrap();
    assert_eq!(verdicts.len(), 5);
    assert!(verdicts.iter().all(|v| v.ok));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tampering_before_restart_is_still_detected_after() {
    let dir = temp_dir("tamper");
    let target = {
        let mut cluster = DlaCluster::new(config(&dir)).unwrap();
        let user = cluster.register_user("u0").unwrap();
        let glsns = cluster.log_records(&user, &paper_table1()).unwrap();
        glsns[2]
    };
    // Corrupt node 1's journal *on disk* between runs: rewrite a stored
    // amount by appending a forged fragment entry for the same glsn.
    {
        let mut cluster = DlaCluster::new(config(&dir)).unwrap();
        cluster
            .node_mut(1)
            .store_mut()
            .tamper(target, &"c2".into(), AttrValue::Fixed2(1));
        // The in-memory tamper is not journaled (a real compromise would
        // rewrite the file); emulate the on-disk variant through the
        // journal API directly.
        let path = dir.join("node-1.journal");
        let (mut journal, _) = confidential_audit::logstore::journal::Journal::open(&path).unwrap();
        let forged = cluster.node(1).store().get_local(target).unwrap().clone();
        journal
            .append(&confidential_audit::logstore::journal::JournalEntry::Fragment(forged))
            .unwrap();
    }

    // Recovery itself refuses the forgery: a *conflicting* fragment
    // entry for a live glsn is a duplicated deposit, rejected at replay
    // rather than silently keep-latest rewritten (and only caught later
    // by the accumulator circulation, as it used to be).
    let err = DlaCluster::new(config(&dir)).unwrap_err();
    assert!(
        err.to_string().contains("duplicate glsn"),
        "on-disk tampering must be detected during recovery, got: {err}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ticket_ids_never_collide_across_restarts() {
    let dir = temp_dir("tickets");
    let first_id = {
        let mut cluster = DlaCluster::new(config(&dir)).unwrap();
        let user = cluster.register_user("u0").unwrap();
        cluster.log_records(&user, &paper_table1()[..1]).unwrap();
        user.ticket.id.clone()
    };

    let mut recovered = DlaCluster::new(config(&dir)).unwrap();
    let new_user = recovered.register_user("u1").unwrap();
    assert_ne!(
        new_user.ticket.id, first_id,
        "a post-restart ticket must not reuse a recovered ACL's ticket id"
    );
    // And the new user cannot read the old user's record.
    let old_glsn = recovered.logged_glsns()[0];
    assert!(recovered.retrieve_record(&new_user, old_glsn).is_err());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_tail_and_duplicated_writes_recover_cleanly() {
    use confidential_audit::logstore::journal::{Journal, JournalEntry};

    let dir = temp_dir("dup-tail");
    {
        let mut cluster = DlaCluster::new(config(&dir)).unwrap();
        let user = cluster.register_user("u0").unwrap();
        cluster.log_records(&user, &paper_table1()).unwrap();
    }

    // A retransmitting writer on a lossy network appends the same
    // fragment twice; then the process dies mid-frame, leaving a torn
    // tail whose length prefix promises more bytes than exist.
    let path = dir.join("node-0.journal");
    {
        let (mut journal, entries) = Journal::open(&path).unwrap();
        let dup = entries
            .iter()
            .rev()
            .find_map(|e| match e {
                JournalEntry::Fragment(f) => Some(f.clone()),
                _ => None,
            })
            .expect("node 0 journal holds fragments");
        journal
            .append(&JournalEntry::Fragment(dup.clone()))
            .unwrap();
        journal.append(&JournalEntry::Fragment(dup)).unwrap();
    }
    let mut bytes = std::fs::read(&path).unwrap();
    let intact_len = bytes.len();
    bytes.extend_from_slice(&[0x00, 0x00, 0x01, 0x00, 0xAB, 0xCD]);
    std::fs::write(&path, &bytes).unwrap();

    // Replay drops the torn tail; the byte-identical retry appends are
    // idempotent and collapse back to one fragment per glsn (only a
    // *conflicting* rewrite is a duplicated deposit).
    let (_, entries) = Journal::open(&path).unwrap();
    let fragments = Journal::materialize(entries).expect("identical re-appends are idempotent");
    assert_eq!(
        fragments.len(),
        5,
        "duplicated appends must collapse to one live fragment per glsn"
    );
    assert!(
        std::fs::metadata(&path).unwrap().len() <= intact_len as u64,
        "the torn tail must not survive recovery"
    );

    // The full cluster restarts on the repaired journal and still
    // passes the accumulator circulation against its deposits.
    let mut recovered = DlaCluster::new(config(&dir)).unwrap();
    assert_eq!(recovered.node(0).store().len(), 5);
    let verdicts = integrity::check_all(&mut recovered, 0).unwrap();
    assert!(verdicts.iter().all(|v| v.ok));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn glsn_allocation_resumes_past_recovered_records() {
    let dir = temp_dir("glsn");
    let old = {
        let mut cluster = DlaCluster::new(config(&dir)).unwrap();
        let user = cluster.register_user("u0").unwrap();
        cluster.log_records(&user, &paper_table1()[..3]).unwrap()
    };

    let mut recovered = DlaCluster::new(config(&dir)).unwrap();
    let user = recovered.register_user("u1").unwrap();
    let fresh = recovered.log_record(&user, &paper_table1()[3]).unwrap();
    assert!(
        fresh > *old.last().unwrap(),
        "fresh glsn {fresh} must exceed recovered maximum {}",
        old.last().unwrap()
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
