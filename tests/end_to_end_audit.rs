//! End-to-end integration: the full Figure 2 pipeline — logging,
//! fragmentation, confidential queries, aggregates, retrieval and
//! attestation — spanning every crate in the workspace.

use confidential_audit::audit::aggregate;
use confidential_audit::audit::attest::{result_message, Attestor};
use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
use confidential_audit::audit::integrity;
use confidential_audit::logstore::fragment::Partition;
use confidential_audit::logstore::gen::{self, paper_table1, WorkloadConfig};
use confidential_audit::logstore::model::{AttrValue, Glsn, LogRecord};
use confidential_audit::logstore::schema::Schema;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn paper_cluster(seed: u64) -> DlaCluster {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed),
    )
    .expect("paper cluster builds")
}

#[test]
fn full_pipeline_on_paper_data() {
    let mut cluster = paper_cluster(1);
    let user = cluster.register_user("u0").unwrap();
    let glsns = cluster.log_records(&user, &paper_table1()).unwrap();

    // Storage invariant: no node holds a complete record.
    for node in cluster.nodes() {
        for frag in node.store().scan() {
            assert!(frag.values.len() < cluster.schema().len());
        }
    }

    // Query, aggregate, attest, retrieve.
    let result = cluster.query("protocol = 'UDP' AND c2 > 100.00").unwrap();
    assert_eq!(result.glsns, vec![glsns[1], glsns[2]]);

    let count = aggregate::count_matching(&mut cluster, "id = 'U1'").unwrap();
    assert_eq!(count.count, 2);

    let sum = aggregate::sum_matching(&mut cluster, "id = 'U2'", &"c2".into()).unwrap();
    assert_eq!(sum.total, 34511 + 4502);

    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let attestor = Attestor::deal(cluster.group(), cluster.num_nodes(), &mut rng).unwrap();
    let message = result_message("protocol = 'UDP' AND c2 > 100.00", &result.glsns);
    let attestation = attestor.attest(&mut cluster, &message).unwrap();
    assert!(attestor.verify(&attestation));

    let full = cluster.retrieve_record(&user, glsns[0]).unwrap();
    assert_eq!(full.len(), 7);

    // Integrity sweep stays green.
    let verdicts = integrity::check_all(&mut cluster, 2).unwrap();
    assert!(verdicts.iter().all(|v| v.ok));
}

#[test]
fn distributed_answers_match_reference_on_large_workload() {
    let schema = Schema::paper_example();
    let mut cluster = DlaCluster::new(ClusterConfig::new(5, schema.clone()).with_seed(3))
        .expect("cluster builds");
    let user = cluster.register_user("u").unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let records = gen::generate(
        &WorkloadConfig {
            records: 120,
            users: 6,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster.log_records(&user, &records).unwrap();

    for query in [
        "c1 > 50",
        "c1 > 25 AND c1 < 75",
        "protocol = 'UDP' OR c2 > 500.00",
        "NOT (id = 'U1' OR id = 'U2')",
        "(c1 > 60 OR c2 < 50.00) AND protocol = 'TCP'",
        "time > '20:30:00/05/12/2002' AND c1 <= 90",
        "id != c3",
        "c3 = 'bank' OR c3 = 'salary'",
    ] {
        let parsed = confidential_audit::audit::parser::parse(query, &schema).unwrap();
        let expect: BTreeSet<Glsn> = records
            .iter()
            .zip(&glsns)
            .filter(|(r, _)| {
                // Re-key the record under its assigned glsn for eval.
                let mut rr = LogRecord::new(Glsn(0));
                for (n, v) in r.iter() {
                    rr.insert(n.clone(), v.clone());
                }
                parsed.eval(&rr).unwrap()
            })
            .map(|(_, g)| *g)
            .collect();
        let got: BTreeSet<Glsn> = cluster.query(query).unwrap().glsns.into_iter().collect();
        assert_eq!(got, expect, "query {query}");
    }
}

#[test]
fn multiple_users_isolated_by_tickets() {
    let mut cluster = paper_cluster(5);
    let alice = cluster.register_user("alice").unwrap();
    let bob = cluster.register_user("bob").unwrap();
    let records = paper_table1();
    let alice_glsn = cluster.log_record(&alice, &records[0]).unwrap();
    let bob_glsn = cluster.log_record(&bob, &records[1]).unwrap();

    // Each owner reads its own record; cross-reads are denied by ACL.
    assert!(cluster.retrieve_record(&alice, alice_glsn).is_ok());
    assert!(cluster.retrieve_record(&bob, bob_glsn).is_ok());
    assert!(cluster.retrieve_record(&alice, bob_glsn).is_err());
    assert!(cluster.retrieve_record(&bob, alice_glsn).is_err());

    // But audit queries span both users' records (that is the point of
    // network-wide auditing).
    let result = cluster.query("protocol = 'UDP'").unwrap();
    assert_eq!(result.glsns.len(), 2);
}

#[test]
fn query_cost_scales_with_matches_not_store_size() {
    // Grow the store; a selective query's protocol bytes should stay
    // in the same ballpark (set elements = matches, not records).
    let selective = "id = 'U1' AND c1 > 95"; // rare
    let mut costs = Vec::new();
    for records in [50usize, 400] {
        let schema = Schema::paper_example();
        let mut cluster =
            DlaCluster::new(ClusterConfig::new(4, schema).with_seed(6)).expect("cluster builds");
        let user = cluster.register_user("u").unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let data = gen::generate(
            &WorkloadConfig {
                records,
                ..WorkloadConfig::default()
            },
            &mut rng,
        );
        cluster.log_records(&user, &data).unwrap();
        let result = cluster.query(selective).unwrap();
        costs.push((result.glsns.len(), result.bytes));
    }
    // 8x more records must not cost anywhere near 8x the bytes unless
    // the match count grew proportionally.
    let (m0, b0) = costs[0];
    let (m1, b1) = costs[1];
    let match_growth = (m1.max(1)) as f64 / (m0.max(1)) as f64;
    let byte_growth = b1 as f64 / b0 as f64;
    assert!(
        byte_growth < match_growth.max(1.0) * 4.0,
        "bytes grew {byte_growth:.1}x while matches grew {match_growth:.1}x"
    );
}

#[test]
fn schema_partition_and_latency_are_configurable() {
    use confidential_audit::net::latency::LatencyModel;
    let schema = Schema::paper_example();
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(7, schema)
            .with_seed(8)
            .with_latency(LatencyModel::lan()),
    )
    .expect("one attribute per node");
    let user = cluster.register_user("u").unwrap();
    cluster.log_records(&user, &paper_table1()).unwrap();
    let result = cluster.query("c1 > 30 AND id = 'U1'").unwrap();
    assert_eq!(result.glsns.len(), 1);
    assert!(
        cluster.net().elapsed() > confidential_audit::net::SimTime::ZERO,
        "LAN model must accrue simulated latency"
    );
}

#[test]
fn empty_cluster_queries_cleanly() {
    let mut cluster = paper_cluster(9);
    let result = cluster.query("c1 > 0").unwrap();
    assert!(result.glsns.is_empty());
    let count = aggregate::count_matching(&mut cluster, "c1 > 0").unwrap();
    assert_eq!(count.count, 0);
}

#[test]
fn fixed2_and_time_predicates_work_end_to_end() {
    let mut cluster = paper_cluster(10);
    let user = cluster.register_user("u").unwrap();
    cluster.log_records(&user, &paper_table1()).unwrap();

    // Exact fixed-point boundary.
    let result = cluster.query("c2 >= 235.00 AND c2 <= 345.11").unwrap();
    assert_eq!(result.glsns.len(), 2);

    // Paper-format time window.
    let result = cluster
        .query("time >= '20:20:35/05/12/2002' AND time <= '20:23:38/05/12/2002'")
        .unwrap();
    assert_eq!(result.glsns.len(), 3);
}

#[test]
fn record_values_never_appear_in_protocol_traffic() {
    // Log a record with a distinctive value, then scan EVERY payload
    // the network carried during the query phase: the plaintext value
    // must never appear — only fingerprints and ciphertexts travel.
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(11)
            .with_payload_capture(),
    )
    .unwrap();
    let user = cluster.register_user("u").unwrap();
    let secret_note = "ULTRA-SECRET-MERGER-MEMO";
    let record = LogRecord::new(Glsn(0))
        .with("time", AttrValue::Time(1_000_000))
        .with("id", AttrValue::text("U1"))
        .with("protocol", AttrValue::text("UDP"))
        .with("tid", AttrValue::text("T1"))
        .with("c1", AttrValue::Int(1))
        .with("c2", AttrValue::Fixed2(100))
        .with("c3", AttrValue::text(secret_note));
    cluster.log_record(&user, &record).unwrap();

    // The fragment shipping during log_record DID carry the value (the
    // user -> storing-node channel is inside the trust boundary), so
    // mark where the query-phase traffic begins.
    let logged_until = cluster.net().captured_payloads().len();

    // Queries that *touch* c3's owner node in several ways.
    let _ = cluster.query("id = c3").unwrap();
    let _ = cluster.query("c1 > 0 AND tid = 'T1'").unwrap();
    let _ =
        confidential_audit::audit::aggregate::count_matching(&mut cluster, "c3 != 'x'").unwrap();

    let needle = secret_note.as_bytes();
    for (i, (from, to, payload)) in cluster
        .net()
        .captured_payloads()
        .iter()
        .enumerate()
        .skip(logged_until)
    {
        assert!(
            !payload.windows(needle.len()).any(|w| w == needle),
            "payload #{i} ({from} -> {to}) leaks the plaintext note"
        );
    }
    assert!(
        cluster.net().captured_payloads().len() > logged_until,
        "the queries must actually have generated traffic"
    );
}
