//! Cross-crate property tests: the distributed machinery must agree
//! with straightforward reference computations on randomized inputs.

use confidential_audit::audit::normal::normalize;
use confidential_audit::audit::parser::parse;
use confidential_audit::crypto::pohlig_hellman::CommutativeDomain;
use confidential_audit::logstore::fragment::{fragment, reassemble, Partition};
use confidential_audit::logstore::model::{AttrValue, Glsn, LogRecord};
use confidential_audit::logstore::schema::Schema;
use confidential_audit::mpc::set_intersection::secure_set_intersection;
use confidential_audit::mpc::set_union::secure_set_union;
use confidential_audit::mpc::sum::secure_sum;
use confidential_audit::net::topology::Ring;
use confidential_audit::net::{NetConfig, NodeId, SimNet};
use dla_bigint::F61;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_record() -> impl Strategy<Value = LogRecord> {
    (
        any::<u32>(),
        0i64..1000,
        0i64..100_000,
        "[a-z]{1,8}",
        prop::sample::select(vec!["U1", "U2", "U3"]),
        prop::sample::select(vec!["UDP", "TCP"]),
        0u64..2_000_000_000,
    )
        .prop_map(|(glsn, c1, c2, c3, id, protocol, time)| {
            LogRecord::new(Glsn(u64::from(glsn)))
                .with("c1", AttrValue::Int(c1))
                .with("c2", AttrValue::Fixed2(c2))
                .with("c3", AttrValue::text(&c3))
                .with("id", AttrValue::text(id))
                .with("protocol", AttrValue::text(protocol))
                .with("time", AttrValue::Time(time))
                .with("tid", AttrValue::text("T1"))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fragmentation_round_trips_for_every_partition_width(
        record in arb_record(),
        n in 1usize..=7,
    ) {
        let schema = Schema::paper_example();
        let partition = Partition::round_robin(&schema, n).unwrap();
        let frags = fragment(&record, &partition);
        prop_assert_eq!(frags.len(), n);
        prop_assert_eq!(reassemble(&frags).unwrap(), record);
    }

    #[test]
    fn normalization_preserves_semantics(record in arb_record()) {
        let schema = Schema::paper_example();
        for q in [
            "c1 > 500 OR (protocol = 'TCP' AND c2 < 50000.00)",
            "NOT (c1 <= 500 AND NOT protocol = 'UDP')",
            "(id = 'U1' OR id = 'U2') AND NOT c3 = 'zzz'",
        ] {
            let parsed = parse(q, &schema).unwrap();
            let normalized = normalize(&parsed);
            prop_assert_eq!(
                parsed.eval(&record).unwrap(),
                normalized.eval(&record).unwrap(),
                "query {} diverged", q
            );
        }
    }

    #[test]
    fn secure_sum_equals_plain_sum(values in prop::collection::vec(0u64..1_000_000, 2..8)) {
        let n = values.len();
        let mut net = SimNet::new(n + 1, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
        let inputs: Vec<F61> = values.iter().map(|&v| F61::new(v)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let _ = &mut rng;
        let outcome = secure_sum(&mut net, &parties, &inputs, n / 2 + 1, NodeId(n), &mut rng).unwrap();
        prop_assert_eq!(outcome.total, F61::new(values.iter().sum()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ssi_equals_plain_intersection(
        seed in 0u64..1000,
        sets in prop::collection::vec(
            prop::collection::btree_set("[a-f]{1,3}", 0..6),
            2..4,
        ),
    ) {
        use rand::SeedableRng;
        let n = sets.len();
        let mut net = SimNet::new(n, NetConfig::ideal());
        let ring = Ring::canonical(n);
        let domain = CommutativeDomain::fixed_256();
        let inputs: Vec<Vec<Vec<u8>>> = sets
            .iter()
            .map(|s| s.iter().map(|e| e.as_bytes().to_vec()).collect())
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let outcome = secure_set_intersection(
            &mut net, &ring, &domain, &inputs, NodeId(0), true, &mut rng,
        )
        .unwrap();
        let expect: BTreeSet<Vec<u8>> = sets
            .iter()
            .skip(1)
            .fold(
                sets[0].iter().map(|s| s.as_bytes().to_vec()).collect(),
                |acc: BTreeSet<Vec<u8>>, s| {
                    let cur: BTreeSet<Vec<u8>> =
                        s.iter().map(|e| e.as_bytes().to_vec()).collect();
                    acc.intersection(&cur).cloned().collect()
                },
            );
        let got: BTreeSet<Vec<u8>> =
            outcome.common_items.unwrap().into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn union_equals_plain_union(
        seed in 0u64..1000,
        sets in prop::collection::vec(
            prop::collection::btree_set("[a-f]{1,3}", 0..6),
            2..4,
        ),
    ) {
        use rand::SeedableRng;
        let n = sets.len();
        let mut net = SimNet::new(n, NetConfig::ideal());
        let ring = Ring::canonical(n);
        let domain = CommutativeDomain::fixed_256();
        let inputs: Vec<Vec<Vec<u8>>> = sets
            .iter()
            .map(|s| s.iter().map(|e| e.as_bytes().to_vec()).collect())
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let outcome =
            secure_set_union(&mut net, &ring, &domain, &inputs, NodeId(0), &mut rng).unwrap();
        let expect: BTreeSet<Vec<u8>> = sets
            .iter()
            .flat_map(|s| s.iter().map(|e| e.as_bytes().to_vec()))
            .collect();
        let got: BTreeSet<Vec<u8>> = outcome.items.into_iter().collect();
        prop_assert_eq!(got, expect);
    }
}
