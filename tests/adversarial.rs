//! Adversarial integration tests: compromised nodes, tampered
//! fragments, diverging ACLs, membership cheating and lossy networks.

use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
use confidential_audit::audit::integrity;
use confidential_audit::audit::membership::{EvidenceChain, MembershipAuthority};
use confidential_audit::crypto::schnorr::SchnorrGroup;
use confidential_audit::logstore::fragment::Partition;
use confidential_audit::logstore::gen::paper_table1;
use confidential_audit::logstore::model::{AttrValue, Glsn};
use confidential_audit::logstore::schema::Schema;
use rand::{Rng, SeedableRng};

fn paper_cluster(seed: u64) -> DlaCluster {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed),
    )
    .expect("cluster builds")
}

#[test]
fn every_single_node_compromise_is_detected() {
    // For each node and each attribute it stores, tamper and verify the
    // accumulator circulation catches it from every initiator.
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    for victim_node in 0..4usize {
        for attr in partition.attrs_of(victim_node) {
            let mut cluster = paper_cluster(100 + victim_node as u64);
            let user = cluster.register_user("u").unwrap();
            let glsns = cluster.log_records(&user, &paper_table1()).unwrap();
            let target = glsns[2];
            let def = schema.get(attr).unwrap();
            let forged = match def.attr_type() {
                confidential_audit::logstore::model::AttrType::Int => AttrValue::Int(-1),
                confidential_audit::logstore::model::AttrType::Fixed2 => AttrValue::Fixed2(-1),
                confidential_audit::logstore::model::AttrType::Time => AttrValue::Time(0),
                confidential_audit::logstore::model::AttrType::Text => AttrValue::text("forged"),
            };
            assert!(cluster
                .node_mut(victim_node)
                .store_mut()
                .tamper(target, attr, forged));
            for initiator in 0..4 {
                let verdict = integrity::check_record(&mut cluster, target, initiator).unwrap();
                assert!(
                    !verdict.ok,
                    "tamper at P{victim_node}.{attr} missed by initiator P{initiator}"
                );
            }
        }
    }
}

#[test]
fn tampering_cannot_hide_from_untampered_records() {
    let mut cluster = paper_cluster(7);
    let user = cluster.register_user("u").unwrap();
    let glsns = cluster.log_records(&user, &paper_table1()).unwrap();
    cluster
        .node_mut(2)
        .store_mut()
        .tamper(glsns[1], &"c3".into(), AttrValue::text("innocent"));
    let verdicts = integrity::check_all(&mut cluster, 0).unwrap();
    let bad: Vec<Glsn> = verdicts.iter().filter(|v| !v.ok).map(|v| v.glsn).collect();
    assert_eq!(bad, vec![glsns[1]], "exactly the tampered record flags");
}

#[test]
fn acl_divergence_detected_without_revealing_sets() {
    let mut cluster = paper_cluster(8);
    let user = cluster.register_user("u").unwrap();
    cluster.log_records(&user, &paper_table1()).unwrap();
    let ticket = user.ticket.clone();

    // Rogue node drops one authorization (denial of service on reads).
    // Emulate by authorizing an extra glsn at a *different* node so the
    // sets diverge in the other direction too.
    cluster
        .node_mut(0)
        .store_mut()
        .acl_mut_for_tests()
        .authorize(&ticket, Glsn(0xAAAA));
    cluster
        .node_mut(3)
        .store_mut()
        .acl_mut_for_tests()
        .authorize(&ticket, Glsn(0xBBBB));

    let outcome = integrity::check_acl_consistency(&mut cluster, &ticket.id).unwrap();
    assert!(!outcome.consistent);
    assert_eq!(outcome.agreed, 5, "the honest core is still agreed on");
    assert_eq!(outcome.sizes, vec![6, 5, 5, 6]);
}

#[test]
fn membership_cheater_exposed_even_in_long_chains() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(200);
    let group = SchnorrGroup::fixed_256();
    let mut authority = MembershipAuthority::new(&group, &mut rng);
    let creds: Vec<_> = (0..8)
        .map(|i| authority.enroll(&format!("org-{i}"), &mut rng))
        .collect();
    let mut chain = EvidenceChain::found(&authority, &creds[0], "charter", &mut rng);
    for i in 1..8 {
        chain.invite(&creds[i - 1], &creds[i], "pp", "sc", &mut rng);
    }
    chain.verify().unwrap();
    assert!(chain.detect_double_use().is_empty());

    // Node 3 cheats deep in the chain.
    let late = authority.enroll("late", &mut rng);
    chain.invite(&creds[3], &late, "pp2", "sc2", &mut rng);
    let exposed = chain.detect_double_use();
    assert_eq!(exposed.len(), 1);
    assert_eq!(authority.identify(&exposed[0].identity), Some("org-3"));
}

#[test]
fn multiple_cheaters_all_exposed() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(201);
    let group = SchnorrGroup::fixed_256();
    let mut authority = MembershipAuthority::new(&group, &mut rng);
    let a = authority.enroll("honest-a", &mut rng);
    let b = authority.enroll("cheater-b", &mut rng);
    let c = authority.enroll("cheater-c", &mut rng);
    let (d, e, f) = (
        authority.enroll("d", &mut rng),
        authority.enroll("e", &mut rng),
        authority.enroll("f", &mut rng),
    );
    let mut chain = EvidenceChain::found(&authority, &a, "charter", &mut rng);
    chain.invite(&a, &b, "pp", "sc", &mut rng);
    chain.invite(&b, &c, "pp", "sc", &mut rng);
    chain.invite(&b, &d, "pp", "sc", &mut rng); // b double-invites
    chain.invite(&c, &e, "pp", "sc", &mut rng);
    chain.invite(&c, &f, "pp", "sc", &mut rng); // c double-invites
    let mut names: Vec<&str> = chain
        .detect_double_use()
        .iter()
        .filter_map(|x| authority.identify(&x.identity))
        .collect();
    names.sort_unstable();
    assert_eq!(names, vec!["cheater-b", "cheater-c"]);
}

#[test]
fn dropped_messages_fail_loudly_not_wrongly() {
    // A lossy network must never produce a *wrong* audit answer — only
    // an explicit error (fail-stop).
    let mut rng = rand::rngs::StdRng::seed_from_u64(300);
    let mut correct = 0;
    let mut failed = 0;
    for trial in 0..20 {
        let mut cluster = paper_cluster(400 + trial);
        let user = cluster.register_user("u").unwrap();
        cluster.log_records(&user, &paper_table1()).unwrap();
        // 2% loss on the query-phase traffic.
        cluster.net_mut().faults_mut().drop_probability = 0.02;
        let _ = &mut rng;
        match cluster.query("protocol = 'UDP' AND c2 > 100.00") {
            Ok(result) => {
                assert_eq!(result.glsns.len(), 2, "trial {trial} returned wrong data");
                correct += 1;
            }
            Err(_) => failed += 1,
        }
    }
    assert!(correct + failed == 20);
    assert!(correct > 0, "some trials should survive 2% loss");
}

#[test]
fn corrupted_share_cannot_skew_an_aggregate() {
    use confidential_audit::audit::aggregate;
    let mut cluster = paper_cluster(12);
    let user = cluster.register_user("u").unwrap();
    cluster.log_records(&user, &paper_table1()).unwrap();

    // Corrupt one round-2 publish of the secure sum (party 3 ->
    // auditor at net id 4).
    cluster.net_mut().faults_mut().inject_once(
        3,
        4,
        confidential_audit::net::fault::FaultOutcome::Corrupt,
    );
    if let Ok(outcome) = aggregate::sum_matching(&mut cluster, "c1 >= 0", &"c1".into()) {
        // Undetected corruption must not skew the sum; an Err means the
        // protocol detected and refused, which is equally acceptable.
        assert_eq!(outcome.total, 170, "undetected corruption skewed the sum");
    }
}

#[test]
fn random_fault_storm_never_yields_wrong_integrity_verdicts() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(500);
    for _ in 0..10 {
        let mut cluster = paper_cluster(rng.gen());
        let user = cluster.register_user("u").unwrap();
        let glsns = cluster.log_records(&user, &paper_table1()).unwrap();
        cluster.net_mut().faults_mut().corrupt_probability = 0.05;
        for &glsn in &glsns {
            match integrity::check_record(&mut cluster, glsn, 0) {
                // With clean stores, a completed check must pass unless
                // the circulated value itself was corrupted — in which
                // case flagging is the *safe* direction (re-check).
                Ok(_) | Err(_) => {}
            }
        }
        // Turn faults off: everything must verify again.
        cluster.net_mut().faults_mut().corrupt_probability = 0.0;
        for &glsn in &glsns {
            assert!(integrity::check_record(&mut cluster, glsn, 0).unwrap().ok);
        }
    }
}
