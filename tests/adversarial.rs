//! Adversarial integration tests: compromised nodes, tampered
//! fragments, diverging ACLs, membership cheating and lossy networks.

use confidential_audit::audit::adversary::{
    run_attack, run_coalition, run_honest, AttackClass, DetectorMatrix,
};
use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
use confidential_audit::audit::integrity;
use confidential_audit::audit::membership::{EvidenceChain, MembershipAuthority};
use confidential_audit::crypto::schnorr::SchnorrGroup;
use confidential_audit::logstore::fragment::Partition;
use confidential_audit::logstore::gen::paper_table1;
use confidential_audit::logstore::model::{AttrValue, Glsn};
use confidential_audit::logstore::schema::Schema;
use rand::{Rng, SeedableRng};

fn paper_cluster(seed: u64) -> DlaCluster {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed),
    )
    .expect("cluster builds")
}

#[test]
fn every_single_node_compromise_is_detected() {
    // For each node and each attribute it stores, tamper and verify the
    // accumulator circulation catches it from every initiator.
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    for victim_node in 0..4usize {
        for attr in partition.attrs_of(victim_node) {
            let mut cluster = paper_cluster(100 + victim_node as u64);
            let user = cluster.register_user("u").unwrap();
            let glsns = cluster.log_records(&user, &paper_table1()).unwrap();
            let target = glsns[2];
            let def = schema.get(attr).unwrap();
            let forged = match def.attr_type() {
                confidential_audit::logstore::model::AttrType::Int => AttrValue::Int(-1),
                confidential_audit::logstore::model::AttrType::Fixed2 => AttrValue::Fixed2(-1),
                confidential_audit::logstore::model::AttrType::Time => AttrValue::Time(0),
                confidential_audit::logstore::model::AttrType::Text => AttrValue::text("forged"),
            };
            assert!(cluster
                .node_mut(victim_node)
                .store_mut()
                .tamper(target, attr, forged));
            for initiator in 0..4 {
                let verdict = integrity::check_record(&mut cluster, target, initiator).unwrap();
                assert!(
                    !verdict.ok,
                    "tamper at P{victim_node}.{attr} missed by initiator P{initiator}"
                );
            }
        }
    }
}

#[test]
fn tampering_cannot_hide_from_untampered_records() {
    let mut cluster = paper_cluster(7);
    let user = cluster.register_user("u").unwrap();
    let glsns = cluster.log_records(&user, &paper_table1()).unwrap();
    cluster
        .node_mut(2)
        .store_mut()
        .tamper(glsns[1], &"c3".into(), AttrValue::text("innocent"));
    let verdicts = integrity::check_all(&mut cluster, 0).unwrap();
    let bad: Vec<Glsn> = verdicts.iter().filter(|v| !v.ok).map(|v| v.glsn).collect();
    assert_eq!(bad, vec![glsns[1]], "exactly the tampered record flags");
}

#[test]
fn acl_divergence_detected_without_revealing_sets() {
    let mut cluster = paper_cluster(8);
    let user = cluster.register_user("u").unwrap();
    cluster.log_records(&user, &paper_table1()).unwrap();
    let ticket = user.ticket.clone();

    // Rogue node drops one authorization (denial of service on reads).
    // Emulate by authorizing an extra glsn at a *different* node so the
    // sets diverge in the other direction too.
    cluster
        .node_mut(0)
        .store_mut()
        .acl_mut_for_tests()
        .authorize(&ticket, Glsn(0xAAAA));
    cluster
        .node_mut(3)
        .store_mut()
        .acl_mut_for_tests()
        .authorize(&ticket, Glsn(0xBBBB));

    let outcome = integrity::check_acl_consistency(&mut cluster, &ticket.id).unwrap();
    assert!(!outcome.consistent);
    assert_eq!(outcome.agreed, 5, "the honest core is still agreed on");
    assert_eq!(outcome.sizes, vec![6, 5, 5, 6]);
}

#[test]
fn membership_cheater_exposed_even_in_long_chains() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(200);
    let group = SchnorrGroup::fixed_256();
    let mut authority = MembershipAuthority::new(&group, &mut rng);
    let creds: Vec<_> = (0..8)
        .map(|i| authority.enroll(&format!("org-{i}"), &mut rng))
        .collect();
    let mut chain = EvidenceChain::found(&authority, &creds[0], "charter", &mut rng);
    for i in 1..8 {
        chain.invite(&creds[i - 1], &creds[i], "pp", "sc", &mut rng);
    }
    chain.verify().unwrap();
    assert!(chain.detect_double_use().is_empty());

    // Node 3 cheats deep in the chain.
    let late = authority.enroll("late", &mut rng);
    chain.invite(&creds[3], &late, "pp2", "sc2", &mut rng);
    let exposed = chain.detect_double_use();
    assert_eq!(exposed.len(), 1);
    assert_eq!(authority.identify(&exposed[0].identity), Some("org-3"));
}

#[test]
fn multiple_cheaters_all_exposed() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(201);
    let group = SchnorrGroup::fixed_256();
    let mut authority = MembershipAuthority::new(&group, &mut rng);
    let a = authority.enroll("honest-a", &mut rng);
    let b = authority.enroll("cheater-b", &mut rng);
    let c = authority.enroll("cheater-c", &mut rng);
    let (d, e, f) = (
        authority.enroll("d", &mut rng),
        authority.enroll("e", &mut rng),
        authority.enroll("f", &mut rng),
    );
    let mut chain = EvidenceChain::found(&authority, &a, "charter", &mut rng);
    chain.invite(&a, &b, "pp", "sc", &mut rng);
    chain.invite(&b, &c, "pp", "sc", &mut rng);
    chain.invite(&b, &d, "pp", "sc", &mut rng); // b double-invites
    chain.invite(&c, &e, "pp", "sc", &mut rng);
    chain.invite(&c, &f, "pp", "sc", &mut rng); // c double-invites
    let mut names: Vec<&str> = chain
        .detect_double_use()
        .iter()
        .filter_map(|x| authority.identify(&x.identity))
        .collect();
    names.sort_unstable();
    assert_eq!(names, vec!["cheater-b", "cheater-c"]);
}

#[test]
fn dropped_messages_fail_loudly_not_wrongly() {
    // A lossy network must never produce a *wrong* audit answer — only
    // an explicit error (fail-stop).
    let mut rng = rand::rngs::StdRng::seed_from_u64(300);
    let mut correct = 0;
    let mut failed = 0;
    for trial in 0..20 {
        let mut cluster = paper_cluster(400 + trial);
        let user = cluster.register_user("u").unwrap();
        cluster.log_records(&user, &paper_table1()).unwrap();
        // 2% loss on the query-phase traffic.
        cluster.net_mut().faults_mut().drop_probability = 0.02;
        let _ = &mut rng;
        match cluster.query("protocol = 'UDP' AND c2 > 100.00") {
            Ok(result) => {
                assert_eq!(result.glsns.len(), 2, "trial {trial} returned wrong data");
                correct += 1;
            }
            Err(_) => failed += 1,
        }
    }
    assert!(correct + failed == 20);
    assert!(correct > 0, "some trials should survive 2% loss");
}

#[test]
fn corrupted_share_cannot_skew_an_aggregate() {
    use confidential_audit::audit::aggregate;
    let mut cluster = paper_cluster(12);
    let user = cluster.register_user("u").unwrap();
    cluster.log_records(&user, &paper_table1()).unwrap();

    // Corrupt one round-2 publish of the secure sum (party 3 ->
    // auditor at net id 4).
    cluster.net_mut().faults_mut().inject_once(
        3,
        4,
        confidential_audit::net::fault::FaultOutcome::Corrupt,
    );
    if let Ok(outcome) = aggregate::sum_matching(&mut cluster, "c1 >= 0", &"c1".into()) {
        // Undetected corruption must not skew the sum; an Err means the
        // protocol detected and refused, which is equally acceptable.
        assert_eq!(outcome.total, 170, "undetected corruption skewed the sum");
    }
}

/// The expected detector matrix per attack class: which of the §4.1
/// mechanisms is responsible for catching each lie.
fn expected_detectors(class: AttackClass) -> DetectorMatrix {
    match class {
        // In-flight accumulator lie: only the circulation comparison
        // sees it; stores, journal and chain stay clean.
        AttackClass::RelayRoundLie => DetectorMatrix {
            accumulator: true,
            ..DetectorMatrix::default()
        },
        // Structurally broken SSI blob: the protocol fail-stops before
        // any verdict machinery is reached.
        AttackClass::MalformedCiphertext => DetectorMatrix {
            protocol: true,
            ..DetectorMatrix::default()
        },
        // A forged head is caught three independent ways: peer
        // cross-check / local endorsement (chain), digest re-derivation
        // (accumulator), and the doctored journal backing the lie
        // (meta-journal).
        AttackClass::CheckpointEquivocation => DetectorMatrix {
            accumulator: true,
            meta_journal: true,
            checkpoint_chain: true,
            protocol: false,
        },
        // Rewritten stored fragment: the circulated accumulator
        // diverges from the deposit; deposits themselves are untouched
        // so trail/journal/chain stay green.
        AttackClass::FragmentTamper => DetectorMatrix {
            accumulator: true,
            ..DetectorMatrix::default()
        },
    }
}

#[test]
fn every_attack_class_is_detected_by_exactly_the_expected_machinery() {
    for class in AttackClass::ALL {
        for seed in [31, 32, 33] {
            let report = run_attack(class, seed).expect("scenario runs");
            assert_eq!(
                report.detected,
                expected_detectors(class),
                "{} under seed {seed}",
                class.key()
            );
            assert!(report.detected.any(), "{} went undetected", class.key());
            assert!(
                report.messages_to_detect > 0,
                "{} detection cost not measured",
                class.key()
            );
        }
    }
}

#[test]
fn wire_attacks_are_transient_but_state_tampering_persists() {
    for class in AttackClass::ALL {
        let report = run_attack(class, 64).unwrap();
        let expect_clean = !matches!(class, AttackClass::FragmentTamper);
        assert_eq!(
            report.residual_clean,
            expect_clean,
            "{}: residual state",
            class.key()
        );
    }
}

#[test]
fn honest_runs_raise_no_alarms() {
    for seed in [41, 42, 43] {
        let report = run_honest(seed).expect("honest run completes");
        assert!(
            !report.detected.any(),
            "false alarm on honest run (seed {seed}): {:?}",
            report.detected
        );
        assert!(report.verifications >= 8, "all detector suites ran");
    }
}

#[test]
fn attack_reports_replay_deterministically() {
    for class in AttackClass::ALL {
        let a = run_attack(class, 99).unwrap();
        let b = run_attack(class, 99).unwrap();
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.verifications, b.verifications);
        assert_eq!(a.messages_to_detect, b.messages_to_detect);
        assert_eq!(a.virtual_ns_to_detect, b.virtual_ns_to_detect);
        assert_eq!(a.forged_messages, b.forged_messages);
    }
}

#[test]
fn sub_threshold_coalitions_capture_no_foreign_plaintext() {
    let patterns: [&[usize]; 5] = [&[], &[1], &[1, 2], &[1, 3], &[1, 2, 3]];
    for coalition in patterns {
        let report = run_coalition(51, coalition).expect("coalition run completes");
        assert_eq!(
            report.foreign_plaintext_hits, 0,
            "coalition {coalition:?} saw foreign plaintext"
        );
        assert!(
            report.needles_scanned > 0,
            "leak scan must have needles to look for"
        );
        if !coalition.is_empty() {
            assert!(report.captured_messages > 0, "curious nodes see traffic");
        }
        assert!(
            (report.c_store - report.c_store_formula).abs() < 1e-9,
            "coalition {coalition:?}: measured C_store {} vs formula {}",
            report.c_store,
            report.c_store_formula
        );
    }
    // A full coalition is not sub-threshold and must be refused.
    assert!(run_coalition(51, &[0, 1, 2, 3]).is_err());
}

#[test]
fn collusion_degrades_the_paper_metrics_as_predicted() {
    let baseline = run_coalition(52, &[]).unwrap();
    // No collusion reproduces the pinned §5 values.
    assert!((baseline.c_store - 12.0 / 7.0).abs() < 1e-9);
    assert!((baseline.c_auditing - 2.0 / 5.0).abs() < 1e-9);
    assert!((baseline.c_query - 24.0 / 35.0).abs() < 1e-9);
    assert!((baseline.c_dla - 6.0 / 5.0).abs() < 1e-9);

    // Colluding nodes merge storage domains: u drops and every metric
    // degrades monotonically with coalition size.
    let two = run_coalition(52, &[1, 3]).unwrap();
    assert_eq!(two.observed_domains, 3);
    assert!(two.c_store < baseline.c_store);
    assert!(two.c_dla < baseline.c_dla);

    let three = run_coalition(52, &[1, 2, 3]).unwrap();
    assert_eq!(three.observed_domains, 2);
    assert!(three.c_store < two.c_store);
    assert!(three.c_dla < two.c_dla);
}

#[test]
fn random_fault_storm_never_yields_wrong_integrity_verdicts() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(500);
    for _ in 0..10 {
        let mut cluster = paper_cluster(rng.gen());
        let user = cluster.register_user("u").unwrap();
        let glsns = cluster.log_records(&user, &paper_table1()).unwrap();
        cluster.net_mut().faults_mut().corrupt_probability = 0.05;
        for &glsn in &glsns {
            match integrity::check_record(&mut cluster, glsn, 0) {
                // With clean stores, a completed check must pass unless
                // the circulated value itself was corrupted — in which
                // case flagging is the *safe* direction (re-check).
                Ok(_) | Err(_) => {}
            }
        }
        // Turn faults off: everything must verify again.
        cluster.net_mut().faults_mut().corrupt_probability = 0.0;
        for &glsn in &glsns {
            assert!(integrity::check_record(&mut cluster, glsn, 0).unwrap().ok);
        }
    }
}
