//! Transport equivalence (satellite of the process-per-node PR): the
//! same seeded workload — deposits plus the five MPC query protocols —
//! run once over a loopback TCP mesh of node serve loops and once over
//! the in-process channel transport must produce **byte-identical**
//! answers, and the trail must verify under both.
//!
//! This is the correctness argument for the socket deployment: moving
//! protocol traffic from crossbeam channels to length-prefixed TCP
//! frames between processes may change timing and transport counters,
//! but never a single answer byte.

use dla_audit::deploy::{build_cluster, run_workload, WorkloadSpec};
use dla_net::tcp::{serve, NodeConfig, TcpConfig, TcpNet};
use dla_net::{ChannelNet, SimTime, VirtualClock};
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread;

/// Runs the seeded workload over a freshly built cluster and a
/// loopback TCP mesh with one serve loop per cluster id.
fn socket_outcome(spec: &WorkloadSpec) -> dla_audit::deploy::WorkloadOutcome {
    let total = spec.network_size();
    let listeners: Vec<TcpListener> = (0..total)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let peers: Vec<Option<SocketAddr>> = listeners
        .iter()
        .map(|l| Some(l.local_addr().expect("local addr")))
        .collect();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let config = NodeConfig {
                id,
                peers: peers.clone(),
                role: if id < spec.nodes { "app" } else { "ttp" }.to_string(),
                key: 1000 + id as u64,
            };
            thread::spawn(move || serve(listener, config))
        })
        .collect();

    let net = TcpNet::connect(
        &peers,
        BTreeSet::new(),
        TcpConfig {
            timeout: SimTime::from_millis(10_000),
            ..TcpConfig::default()
        },
    )
    .expect("connect to loopback mesh");
    let cluster = build_cluster(spec).expect("cluster");
    let outcome = run_workload(&cluster, &net, spec).expect("socket workload");

    let reports = net.shutdown();
    assert_eq!(reports.len(), total, "every node farewells");
    for handle in handles {
        handle.join().expect("join").expect("serve");
    }
    outcome
}

/// Runs the identical workload over the in-process channel transport.
fn channel_outcome(spec: &WorkloadSpec) -> dla_audit::deploy::WorkloadOutcome {
    let cluster = build_cluster(spec).expect("cluster");
    let net = ChannelNet::with_clock(
        spec.network_size(),
        SimTime::from_millis(10_000),
        Arc::new(VirtualClock::new()),
    );
    run_workload(&cluster, &net, spec).expect("channel workload")
}

#[test]
fn socket_and_channel_transports_agree_byte_for_byte() {
    let spec = WorkloadSpec::default();
    let socket = socket_outcome(&spec);
    let channel = channel_outcome(&spec);

    // Answers byte-identical, protocol by protocol.
    assert_eq!(socket.runs.len(), 5);
    for (s, c) in socket.runs.iter().zip(channel.runs.iter()) {
        assert_eq!(s.protocol, c.protocol);
        assert_eq!(
            s.answer, c.answer,
            "{} answers must not depend on the transport",
            s.protocol
        );
    }
    assert_eq!(socket.digest_hex(), channel.digest_hex());

    // Every deposit crossed each transport intact.
    assert_eq!(socket.deposits_shipped, spec.records);
    assert_eq!(channel.deposits_shipped, spec.records);

    // The trail verifies after the run on both sides.
    assert!(socket.trail.ok && socket.trail.chain_ok);
    assert!(socket.window.ok);
    assert!(channel.trail.ok && channel.trail.chain_ok);
    assert!(channel.window.ok);
}

#[test]
fn equivalence_holds_off_the_paper_partition() {
    // A 3-node cluster falls back to the round-robin partition;
    // equivalence must hold there too.
    let spec = WorkloadSpec {
        nodes: 3,
        records: 9,
        seed: 23,
        ..WorkloadSpec::default()
    };
    let socket = socket_outcome(&spec);
    let channel = channel_outcome(&spec);
    assert_eq!(socket.digest_hex(), channel.digest_hex());
    assert!(socket.integrity_ok() && channel.integrity_ok());
}
