//! Concurrency integration: the accumulator circulation and a
//! commutative-cipher ring pass executed by real OS threads over the
//! crossbeam channel transport — demonstrating the protocols do not
//! depend on the deterministic single-threaded scheduler.

use confidential_audit::crypto::accumulator::AccumulatorParams;
use confidential_audit::crypto::pohlig_hellman::{CommutativeDomain, CommutativeKey, PhKey};
use confidential_audit::net::transport::channel_network;
use confidential_audit::net::NodeId;
use dla_bigint::Ubig;
use rand::SeedableRng;
use std::thread;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(20);

#[test]
fn threaded_accumulator_circulation_matches_deposit() {
    let params = AccumulatorParams::fixed_512();
    let n = 4;
    let fragments: Vec<Vec<u8>> = (0..n)
        .map(|i| format!("fragment-for-node-{i}").into_bytes())
        .collect();
    // The "user deposit" computed up front.
    let deposit = params.accumulate(fragments.iter().map(Vec::as_slice));

    let (endpoints, _stats) = channel_network(n);
    let handles: Vec<_> = endpoints
        .into_iter()
        .zip(fragments)
        .map(|(ep, fragment)| {
            let params = params.clone();
            thread::spawn(move || -> Option<Ubig> {
                let id = ep.id().0;
                let n = ep.num_nodes();
                if id == 0 {
                    // Initiator: fold own fragment, send around the ring.
                    let acc = params.fold(params.start(), &fragment);
                    ep.send(NodeId(1), bytes::Bytes::from(acc.to_bytes_be()));
                    let last = ep.recv_timeout(TIMEOUT).expect("circulation returns");
                    Some(Ubig::from_bytes_be(&last.payload))
                } else {
                    let msg = ep.recv_timeout(TIMEOUT).expect("token arrives");
                    let acc = params.fold(&Ubig::from_bytes_be(&msg.payload), &fragment);
                    ep.send(NodeId((id + 1) % n), bytes::Bytes::from(acc.to_bytes_be()));
                    None
                }
            })
        })
        .collect();

    let mut final_acc = None;
    for h in handles {
        if let Some(acc) = h.join().expect("thread completes") {
            final_acc = Some(acc);
        }
    }
    assert_eq!(final_acc.expect("initiator returned"), deposit);
}

#[test]
fn threaded_commutative_ring_pass_agrees_with_sequential() {
    let domain = CommutativeDomain::fixed_256();
    let n = 3;
    let mut rng = rand::rngs::StdRng::seed_from_u64(50);
    let keys: Vec<PhKey> = (0..n).map(|_| PhKey::generate(&domain, &mut rng)).collect();
    let element = domain.encode(b"e").expect("encodes");

    // Sequential reference: apply all layers in ring order.
    let expect = keys.iter().fold(element.clone(), |c, k| k.encrypt(&c));

    let (endpoints, stats) = channel_network(n);
    let handles: Vec<_> = endpoints
        .into_iter()
        .zip(keys)
        .map(|(ep, key)| {
            let element = element.clone();
            thread::spawn(move || -> Option<Ubig> {
                let id = ep.id().0;
                let n = ep.num_nodes();
                if id == 0 {
                    let c = key.encrypt(&element);
                    ep.send(NodeId(1), bytes::Bytes::from(c.to_bytes_be()));
                    let back = ep.recv_timeout(TIMEOUT).expect("full circle");
                    Some(Ubig::from_bytes_be(&back.payload))
                } else {
                    let msg = ep.recv_timeout(TIMEOUT).expect("relay arrives");
                    let c = key.encrypt(&Ubig::from_bytes_be(&msg.payload));
                    ep.send(NodeId((id + 1) % n), bytes::Bytes::from(c.to_bytes_be()));
                    None
                }
            })
        })
        .collect();

    let mut got = None;
    for h in handles {
        if let Some(c) = h.join().expect("thread completes") {
            got = Some(c);
        }
    }
    assert_eq!(got.expect("initiator result"), expect);
    assert_eq!(stats.lock().messages_sent, n as u64);
}

#[test]
fn concurrent_glsn_allocation_is_collision_free_across_threads() {
    use confidential_audit::logstore::model::Glsn;
    use confidential_audit::logstore::store::GlsnAllocator;
    use std::sync::Arc;

    let alloc = Arc::new(GlsnAllocator::starting_at(Glsn(1)));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let alloc = Arc::clone(&alloc);
            thread::spawn(move || (0..500).map(|_| alloc.allocate().0).collect::<Vec<u64>>())
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("allocator thread"))
        .collect();
    let count = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), count, "glsns must be cluster-unique");
}
