//! One DLA node process: binds its listener, announces the bound
//! address, waits for the launcher to hand over the complete peer
//! table, then serves the socket mesh until the coordinator says
//! SHUTDOWN. See `dla_deploy` for the line protocol.
//!
//! ```text
//! dla-node --id 2 --listen 127.0.0.1:0 --role app --key 1002
//! ```
//!
//! A `--peers` flag may supply the table up front (static deployments
//! with pre-assigned ports); without it the table is read from stdin.

#![deny(rust_2018_idioms)]

use dla_deploy::{render_report, PeerTable};
use dla_net::tcp::{serve, NodeConfig};
use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::process::ExitCode;

struct Args {
    id: usize,
    listen: String,
    role: String,
    key: u64,
    peers: Option<PeerTable>,
}

fn parse_args() -> Result<Args, String> {
    let mut id = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut role = "app".to_string();
    let mut key = 0u64;
    let mut peers = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--id" => id = Some(value("--id")?.parse().map_err(|e| format!("--id: {e}"))?),
            "--listen" => listen = value("--listen")?,
            "--role" => role = value("--role")?,
            "--key" => key = value("--key")?.parse().map_err(|e| format!("--key: {e}"))?,
            "--peers" => peers = Some(PeerTable::parse(&value("--peers")?)?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args {
        id: id.ok_or("--id is required")?,
        listen,
        role,
        key,
        peers,
    })
}

fn run(args: Args) -> io::Result<()> {
    let listener = TcpListener::bind(&args.listen)?;
    let addr = listener.local_addr()?;

    // Announce the bound address; the launcher collects these lines to
    // assemble the peer table. Explicit flush: stdout is block-buffered
    // behind a pipe and the launcher blocks on this line.
    let stdout = io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "LISTEN {} {}", args.id, addr)?;
    out.flush()?;

    let peers = match args.peers {
        Some(table) => table,
        None => {
            let mut line = String::new();
            io::stdin().lock().read_line(&mut line)?;
            let text = line
                .strip_prefix("PEERS ")
                .ok_or_else(|| io::Error::other(format!("expected PEERS line, got {line:?}")))?;
            PeerTable::parse(text).map_err(io::Error::other)?
        }
    };
    if peers.0.get(args.id).copied().flatten() != Some(addr) {
        return Err(io::Error::other(format!(
            "peer table entry for node {} does not match bound address {addr}",
            args.id
        )));
    }

    let report = serve(
        listener,
        NodeConfig {
            id: args.id,
            peers: peers.0,
            role: args.role,
            key: args.key,
        },
    )?;
    writeln!(out, "{}", render_report(&report))?;
    out.flush()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("dla-node: {message}");
            eprintln!(
                "usage: dla-node --id N [--listen ADDR] [--role ROLE] [--key K] [--peers TABLE]"
            );
            return ExitCode::FAILURE;
        }
    };
    let id = args.id;
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dla-node {id}: {e}");
            ExitCode::FAILURE
        }
    }
}
