//! Localhost cluster launcher: spawns one `dla-node` process per
//! cluster id (the DLA application nodes plus the three trusted
//! infrastructure nodes — auditor, blind-TTP helper, user endpoint),
//! wires them into a TCP mesh, and drives the full seeded workload —
//! deposits plus the five MPC query protocols — across the processes.
//!
//! The run is self-checking: the same workload executes over an
//! in-process channel transport and the answer digests must match
//! byte for byte, node farewell digests must match the reports the
//! processes print on exit, and both trail-integrity verdicts must
//! pass. Teardown is clean — SHUTDOWN/BYE on every connection, then a
//! bounded wait for each child (stragglers are killed).
//!
//! ```text
//! dla-cluster --nodes 4 --records 12 --seed 7
//! ```

#![deny(rust_2018_idioms)]

use dla_audit::deploy::{build_cluster, fragments, run_workload, WorkloadSpec};
use dla_deploy::{locate_node_bin, ChildNode, PeerTable};
use dla_logstore::epoch::RingNamespace;
use dla_logstore::model::Glsn;
use dla_net::tcp::{TcpConfig, TcpNet};
use dla_net::{ChannelNet, NodeId, SimTime, VirtualClock};
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    spec: WorkloadSpec,
    keep_roles: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut spec = WorkloadSpec::default();
    let mut keep_roles = true;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--nodes" => {
                spec.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--records" => {
                spec.records = value("--records")?
                    .parse()
                    .map_err(|e| format!("--records: {e}"))?;
            }
            "--seed" => {
                spec.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--ring" => {
                spec.ring = value("--ring")?
                    .parse()
                    .map_err(|e| format!("--ring: {e}"))?;
            }
            "--flat-roles" => keep_roles = false,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if spec.nodes == 0 {
        return Err("--nodes must be at least 1".to_string());
    }
    Ok(Args { spec, keep_roles })
}

fn role_for(id: usize, nodes: usize, keep_roles: bool) -> &'static str {
    if !keep_roles {
        return "app";
    }
    match id {
        i if i < nodes => "app",
        i if i == nodes => "auditor",
        i if i == nodes + 1 => "ttp",
        _ => "user",
    }
}

fn run(args: &Args) -> Result<(), String> {
    let spec = &args.spec;
    let total = spec.network_size();
    let bin = locate_node_bin()
        .ok_or("cannot locate the dla-node binary (build it, or set DLA_NODE_BIN)")?;

    println!(
        "dla-cluster: launching {} node processes ({} app + 3 infrastructure) from {}",
        total,
        spec.nodes,
        bin.display()
    );

    // Phase 1: spawn every child and collect its announced address.
    let mut children: Vec<ChildNode> = Vec::new();
    for id in 0..total {
        let role = role_for(id, spec.nodes, args.keep_roles);
        match ChildNode::spawn(&bin, id, role, 1000 + id as u64) {
            Ok(child) => {
                println!("  node {id} ({role}) listening on {}", child.addr);
                children.push(child);
            }
            Err(e) => {
                for child in &mut children {
                    child.kill();
                }
                return Err(format!("spawning node {id}: {e}"));
            }
        }
    }

    // Phase 2: hand the assembled peer table to every child.
    let table = PeerTable(children.iter().map(|c| Some(c.addr)).collect());
    for child in &mut children {
        if let Err(e) = child.send_peers(&table) {
            let id = child.id;
            for child in &mut children {
                child.kill();
            }
            return Err(format!("sending peer table to node {id}: {e}"));
        }
    }

    // Phase 3: connect the coordinator mesh and run the workload.
    let outcome = (|| {
        let net = TcpNet::connect(
            &table.0,
            BTreeSet::new(),
            TcpConfig {
                timeout: SimTime::from_millis(10_000),
                ..TcpConfig::default()
            },
        )
        .map_err(|e| format!("connecting to the mesh: {e}"))?;

        let cluster = build_cluster(spec).map_err(|e| format!("building cluster: {e}"))?;

        // Push every trail fragment through the store path so the node
        // processes accumulate auditable deposit digests.
        // Federation contract: every glsn this process cluster mints
        // must fall inside its ring's namespace span, so a federated
        // launcher can run one `dla-cluster --ring r` per sub-ring
        // without glsn collisions.
        let namespace = RingNamespace::paper_default();
        let mut stored = 0u64;
        for (glsn, owner, item) in fragments(&cluster, spec.nodes) {
            if namespace.ring_of(Glsn(glsn)) != Some(spec.ring) {
                return Err(format!(
                    "glsn {glsn} escaped ring {}'s namespace span",
                    spec.ring
                ));
            }
            let (count, _) = net
                .deposit(NodeId(owner), glsn, &item)
                .map_err(|e| format!("storing fragment {glsn} on node {owner}: {e}"))?;
            debug_assert!(count > 0);
            stored += 1;
        }
        println!(
            "dla-cluster: {stored} trail fragments stored across the mesh (ring {} glsns)",
            spec.ring
        );

        let outcome = run_workload(&cluster, &net, spec)
            .map_err(|e| format!("running socket workload: {e}"))?;
        for run in &outcome.runs {
            println!(
                "  {:<9} {:>8.2} ms  answer {}",
                run.protocol, run.millis, run.answer
            );
        }
        if !outcome.integrity_ok() {
            return Err("trail integrity failed over the socket transport".to_string());
        }

        // The self-check: identical workload, in-process transport.
        let baseline_cluster =
            build_cluster(spec).map_err(|e| format!("building baseline cluster: {e}"))?;
        let channel = ChannelNet::with_clock(
            total,
            SimTime::from_millis(10_000),
            Arc::new(VirtualClock::new()),
        );
        let baseline = run_workload(&baseline_cluster, &channel, spec)
            .map_err(|e| format!("running channel baseline: {e}"))?;
        if outcome.digest != baseline.digest {
            return Err(format!(
                "transport divergence: socket digest {} != channel digest {}",
                outcome.digest_hex(),
                baseline.digest_hex()
            ));
        }
        println!("dla-cluster: answers byte-identical across transports");
        println!("  digest {}", outcome.digest_hex());

        // Phase 4: clean teardown — farewell every connection.
        let byes = net.shutdown();
        if byes.len() != total {
            return Err(format!("expected {total} BYE reports, got {}", byes.len()));
        }
        Ok(byes)
    })();

    let byes = match outcome {
        Ok(byes) => byes,
        Err(e) => {
            for child in &mut children {
                child.kill();
            }
            return Err(e);
        }
    };

    // Phase 5: each child's printed report must match its farewell.
    let mut failures = Vec::new();
    for child in children {
        let id = child.id;
        match child.finish(Duration::from_secs(10)) {
            Ok(report) => {
                let bye = byes.iter().find(|b| b.id == id);
                if bye != Some(&report) {
                    failures.push(format!(
                        "node {id}: farewell {bye:?} does not match report {report:?}"
                    ));
                }
            }
            Err(e) => failures.push(format!("node {id}: {e}")),
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }

    let routed: u64 = byes.iter().map(|b| b.routed).sum();
    let forwarded: u64 = byes.iter().map(|b| b.forwarded).sum();
    let stored: u64 = byes.iter().map(|b| b.stored).sum();
    println!(
        "dla-cluster: clean teardown; {routed} routed, {forwarded} forwarded, {stored} stored across {} processes",
        byes.len()
    );
    println!("CLUSTER OK");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("dla-cluster: {message}");
            eprintln!(
                "usage: dla-cluster [--nodes N] [--records R] [--seed S] [--ring R] [--flat-roles]"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dla-cluster: {message}");
            ExitCode::FAILURE
        }
    }
}
