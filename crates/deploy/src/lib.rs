//! Process-per-node deployment plumbing: the line protocol the
//! `dla-cluster` launcher speaks with `dla-node` children, peer-table
//! parsing, and child-process lifecycle management.
//!
//! ## Bootstrap protocol
//!
//! Port assignment is a chicken-and-egg problem: every node needs the
//! full peer table, but no port exists until every node has bound its
//! listener. The launcher resolves it in two half-duplex lines per
//! child:
//!
//! 1. The child binds `127.0.0.1:0` (or its `--listen` address) and
//!    prints `LISTEN <id> <addr>` on stdout, then blocks on stdin.
//! 2. Once every child has announced, the launcher writes the complete
//!    peer table — `PEERS <addr|->,...` — to each child's stdin. The
//!    child parses it and enters [`dla_net::tcp::serve`].
//! 3. After serving (coordinator sent SHUTDOWN), the child prints
//!    `REPORT <id> <routed> <forwarded> <stored> <stored_bytes> <digest>`
//!    and exits 0.
//!
//! `-` entries mark coordinator-hosted ids (no process behind them).

#![deny(rust_2018_idioms)]

use dla_net::NodeReport;
use std::io::{self, BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

/// Peer table with launcher-side rendering and node-side parsing.
///
/// The wire form is a single comma-separated field: one `addr:port`
/// per remote node, `-` for coordinator-hosted ids, ordered by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerTable(pub Vec<Option<SocketAddr>>);

impl PeerTable {
    /// Renders the table for a `PEERS` line or a `--peers` flag.
    #[must_use]
    pub fn render(&self) -> String {
        self.0
            .iter()
            .map(|slot| slot.map_or_else(|| "-".to_string(), |a| a.to_string()))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses the wire form back into a table.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending entry when an address
    /// fails to parse.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut slots = Vec::new();
        for entry in text.trim().split(',') {
            if entry == "-" {
                slots.push(None);
            } else {
                let addr = entry
                    .parse::<SocketAddr>()
                    .map_err(|e| format!("bad peer entry {entry:?}: {e}"))?;
                slots.push(Some(addr));
            }
        }
        Ok(PeerTable(slots))
    }
}

/// Renders a `REPORT` line from a serve-loop result.
#[must_use]
pub fn render_report(report: &NodeReport) -> String {
    format!(
        "REPORT {} {} {} {} {} {:016x}",
        report.id,
        report.routed,
        report.forwarded,
        report.stored,
        report.stored_bytes,
        report.digest
    )
}

/// Parses a `REPORT` line back into a [`NodeReport`].
///
/// # Errors
///
/// Returns a message describing the malformed field.
pub fn parse_report(line: &str) -> Result<NodeReport, String> {
    let mut fields = line.split_whitespace();
    if fields.next() != Some("REPORT") {
        return Err(format!("not a REPORT line: {line:?}"));
    }
    let mut next_u64 = |name: &str| {
        fields
            .next()
            .ok_or_else(|| format!("REPORT missing {name}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad {name}: {e}"))
    };
    let id = usize::try_from(next_u64("id")?).map_err(|e| format!("bad id: {e}"))?;
    let routed = next_u64("routed")?;
    let forwarded = next_u64("forwarded")?;
    let stored = next_u64("stored")?;
    let stored_bytes = next_u64("stored_bytes")?;
    let digest_text = line
        .split_whitespace()
        .nth(6)
        .ok_or_else(|| "REPORT missing digest".to_string())?;
    let digest = u64::from_str_radix(digest_text, 16).map_err(|e| format!("bad digest: {e}"))?;
    Ok(NodeReport {
        id,
        routed,
        forwarded,
        stored,
        stored_bytes,
        digest,
    })
}

/// Locates the `dla-node` binary: the `DLA_NODE_BIN` environment
/// variable wins, otherwise a sibling of the current executable.
#[must_use]
pub fn locate_node_bin() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("DLA_NODE_BIN") {
        let path = PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let mut sibling = std::env::current_exe().ok()?;
    sibling.set_file_name("dla-node");
    sibling.is_file().then_some(sibling)
}

/// A spawned `dla-node` child that has announced its listen address
/// but not yet received its peer table.
#[derive(Debug)]
pub struct ChildNode {
    /// Node id.
    pub id: usize,
    /// Announced listen address.
    pub addr: SocketAddr,
    /// Role label the child was launched with.
    pub role: String,
    child: Child,
    stdout: BufReader<ChildStdout>,
}

impl ChildNode {
    /// Spawns one `dla-node` process and waits for its `LISTEN` line.
    ///
    /// # Errors
    ///
    /// Fails if the process cannot be spawned or announces a
    /// malformed or mismatched `LISTEN` line.
    pub fn spawn(bin: &PathBuf, id: usize, role: &str, key: u64) -> io::Result<Self> {
        let mut child = Command::new(bin)
            .arg("--id")
            .arg(id.to_string())
            .arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--role")
            .arg(role)
            .arg("--key")
            .arg(key.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let mut stdout = BufReader::new(
            child
                .stdout
                .take()
                .ok_or_else(|| io::Error::other("child stdout not captured"))?,
        );
        let mut line = String::new();
        stdout.read_line(&mut line)?;
        let mut fields = line.split_whitespace();
        let announced = (|| {
            if fields.next() != Some("LISTEN") {
                return None;
            }
            let announced_id = fields.next()?.parse::<usize>().ok()?;
            let addr = fields.next()?.parse::<SocketAddr>().ok()?;
            (announced_id == id).then_some(addr)
        })()
        .ok_or_else(|| {
            let _ = child.kill();
            io::Error::other(format!("node {id}: bad LISTEN line {line:?}"))
        })?;
        Ok(ChildNode {
            id,
            addr: announced,
            role: role.to_string(),
            child,
            stdout,
        })
    }

    /// Sends the completed peer table, releasing the child into its
    /// serve loop.
    ///
    /// # Errors
    ///
    /// Fails if the child's stdin has closed.
    pub fn send_peers(&mut self, table: &PeerTable) -> io::Result<()> {
        let stdin = self
            .child
            .stdin
            .as_mut()
            .ok_or_else(|| io::Error::other("child stdin not captured"))?;
        writeln!(stdin, "PEERS {}", table.render())?;
        stdin.flush()
    }

    /// Waits for the child's `REPORT` line and exit, with a deadline.
    ///
    /// # Errors
    ///
    /// Fails on a malformed report, a non-zero exit, or a deadline
    /// overrun (the child is killed in every failure path).
    pub fn finish(mut self, deadline: Duration) -> io::Result<NodeReport> {
        let started = Instant::now();
        let mut line = String::new();
        // The REPORT line only appears after serve() returns, which the
        // coordinator's SHUTDOWN triggers; a blocking read is bounded
        // by the process watchdog below.
        self.stdout.read_line(&mut line)?;
        let report = parse_report(&line).map_err(|e| {
            let _ = self.child.kill();
            io::Error::other(format!("node {}: {e}", self.id))
        })?;
        loop {
            if let Some(status) = self.child.try_wait()? {
                if !status.success() {
                    return Err(io::Error::other(format!(
                        "node {} exited with {status}",
                        self.id
                    )));
                }
                return Ok(report);
            }
            if started.elapsed() > deadline {
                let _ = self.child.kill();
                return Err(io::Error::other(format!(
                    "node {} did not exit within {deadline:?}",
                    self.id
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Kills the child outright (teardown of a failed launch).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_table_round_trips() {
        let table = PeerTable(vec![
            Some("127.0.0.1:4501".parse().unwrap()),
            None,
            Some("127.0.0.1:4503".parse().unwrap()),
        ]);
        let rendered = table.render();
        assert_eq!(rendered, "127.0.0.1:4501,-,127.0.0.1:4503");
        assert_eq!(PeerTable::parse(&rendered).unwrap(), table);
    }

    #[test]
    fn peer_table_rejects_garbage() {
        assert!(PeerTable::parse("127.0.0.1:1,nonsense").is_err());
    }

    #[test]
    fn report_line_round_trips() {
        let report = NodeReport {
            id: 3,
            routed: 10,
            forwarded: 7,
            stored: 4,
            stored_bytes: 99,
            digest: 0xdead_beef_0123_4567,
        };
        let line = render_report(&report);
        assert_eq!(parse_report(&line).unwrap(), report);
        assert!(parse_report("LISTEN 0 1.2.3.4:5").is_err());
        assert!(parse_report("REPORT 1 2 3").is_err());
    }
}
