//! Raw modexp microbenchmark (scratch, used to tune the kernels).

use dla_bigint::montgomery::MontgomeryContext;
use dla_bigint::Ubig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    for bits in [256usize, 512] {
        let mut n = Ubig::random_bits(&mut rng, bits);
        if n.is_even() {
            n = n + Ubig::one();
        }
        let ctx = MontgomeryContext::new(&n).unwrap();
        let exp = Ubig::random_bits(&mut rng, bits - 1);
        let bases: Vec<Ubig> = (0..64).map(|_| Ubig::random_below(&mut rng, &n)).collect();
        let iters = 20;

        let t = Instant::now();
        let mut sink = Ubig::zero();
        for _ in 0..iters {
            for b in &bases {
                sink = ctx.modexp(b, &exp);
            }
        }
        let per = t.elapsed().as_secs_f64() / (iters * bases.len()) as f64;
        println!(
            "{bits}-bit serial modexp: {:.1} us/op ({:.0}/s) [{}]",
            per * 1e6,
            1.0 / per,
            sink.bit_len()
        );

        let t = Instant::now();
        for _ in 0..iters {
            let _ = ctx.modexp_batch(&bases, &exp);
        }
        let per = t.elapsed().as_secs_f64() / (iters * bases.len()) as f64;
        println!(
            "{bits}-bit batch  modexp: {:.1} us/op ({:.0}/s)",
            per * 1e6,
            1.0 / per
        );
    }
}
