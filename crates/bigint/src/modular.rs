//! Modular arithmetic on [`Ubig`]: reduction, exponentiation, extended
//! GCD and inverses.
//!
//! These routines are the algebraic engine behind the Pohlig–Hellman
//! commutative cipher (`dla-crypto`): key pairs `(e, d)` satisfy
//! `e·d ≡ 1 (mod p−1)`, and both encryption and decryption are
//! [`modexp`] calls.

use crate::Ubig;

/// `(a + b) mod m`. Operands need not be reduced.
#[must_use]
pub fn modadd(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    (a + b) % m
}

/// `(a - b) mod m` for already-reduced operands (`a, b < m`).
///
/// # Panics
///
/// Panics (debug) if either operand is not reduced.
#[must_use]
pub fn modsub(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    debug_assert!(a < m && b < m, "modsub: operands must be reduced");
    if a >= b {
        a - b
    } else {
        m - b + a
    }
}

/// `(a * b) mod m`. Operands need not be reduced.
#[must_use]
pub fn modmul(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    (a * b) % m
}

/// `base^exp mod m`.
///
/// Dispatches to Montgomery exponentiation
/// ([`crate::montgomery::MontgomeryContext`]) for odd multi-limb moduli
/// with non-trivial exponents — the hot path of every protocol — and
/// falls back to [`modexp_schoolbook`] otherwise.
///
/// # Panics
///
/// Panics if `m` is zero. `m == 1` yields zero.
#[must_use]
pub fn modexp(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
    assert!(!m.is_zero(), "modexp: zero modulus");
    if m.is_one() {
        return Ubig::zero();
    }
    // The Montgomery context costs two divisions to set up; worth it
    // once the square-and-multiply loop is long enough.
    if !m.is_even() && m.bit_len() >= 128 && exp.bit_len() >= 16 {
        if let Some(ctx) = crate::montgomery::MontgomeryContext::new(m) {
            return ctx.modexp(base, exp);
        }
    }
    modexp_schoolbook(base, exp, m)
}

/// `base^exp mod m` by left-to-right square-and-multiply with division
/// based reduction — the reference implementation the Montgomery path
/// is validated against (and the only path for even moduli).
///
/// # Panics
///
/// Panics if `m` is zero. `m == 1` yields zero.
#[must_use]
pub fn modexp_schoolbook(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
    dla_telemetry::record(dla_telemetry::CostKind::ModExp, 1);
    assert!(!m.is_zero(), "modexp: zero modulus");
    if m.is_one() {
        return Ubig::zero();
    }
    let mut result = Ubig::one();
    let mut acc = base % m;
    let bits = exp.bit_len();
    for i in 0..bits {
        if exp.bit(i) {
            result = modmul(&result, &acc, m);
        }
        if i + 1 < bits {
            acc = modmul(&acc, &acc, m);
        }
    }
    result
}

/// Greatest common divisor by Euclid's algorithm.
#[must_use]
pub fn gcd(a: &Ubig, b: &Ubig) -> Ubig {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// A sign-and-magnitude signed big integer used internally by the
/// extended Euclidean algorithm. `negative` is never set for zero.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SignedUbig {
    mag: Ubig,
    negative: bool,
}

impl SignedUbig {
    fn from_ubig(mag: Ubig) -> Self {
        SignedUbig {
            mag,
            negative: false,
        }
    }

    fn sub(&self, other: &SignedUbig) -> SignedUbig {
        match (self.negative, other.negative) {
            (false, false) => {
                if self.mag >= other.mag {
                    SignedUbig {
                        mag: &self.mag - &other.mag,
                        negative: false,
                    }
                } else {
                    SignedUbig {
                        mag: &other.mag - &self.mag,
                        negative: true,
                    }
                }
            }
            (false, true) => SignedUbig {
                mag: &self.mag + &other.mag,
                negative: false,
            },
            (true, false) => {
                let mag = &self.mag + &other.mag;
                SignedUbig {
                    negative: !mag.is_zero(),
                    mag,
                }
            }
            (true, true) => other.negate().sub(&self.negate()).negate_if_nonzero(),
        }
    }

    fn negate(&self) -> SignedUbig {
        SignedUbig {
            mag: self.mag.clone(),
            negative: !self.negative && !self.mag.is_zero(),
        }
    }

    fn negate_if_nonzero(self) -> SignedUbig {
        SignedUbig {
            negative: !self.mag.is_zero() && self.negative,
            mag: self.mag,
        }
    }

    fn mul_ubig(&self, k: &Ubig) -> SignedUbig {
        let mag = &self.mag * k;
        SignedUbig {
            negative: self.negative && !mag.is_zero(),
            mag,
        }
    }
}

/// Extended GCD: returns `(g, x)` with `g = gcd(a, m)` and
/// `a·x ≡ g (mod m)`, `x` already reduced into `[0, m)`.
///
/// # Panics
///
/// Panics if `m` is zero.
#[must_use]
pub fn egcd_mod(a: &Ubig, m: &Ubig) -> (Ubig, Ubig) {
    assert!(!m.is_zero(), "egcd_mod: zero modulus");
    let mut r0 = m.clone();
    let mut r1 = a % m;
    let mut t0 = SignedUbig::from_ubig(Ubig::zero());
    let mut t1 = SignedUbig::from_ubig(Ubig::one());
    while !r1.is_zero() {
        let (q, r2) = r0.div_rem(&r1);
        let t2 = t0.sub(&t1.mul_ubig(&q));
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }
    // Reduce the Bezout coefficient into [0, m).
    let x = if t0.negative {
        let red = &t0.mag % m;
        if red.is_zero() {
            red
        } else {
            m - red
        }
    } else {
        &t0.mag % m
    };
    (r0, x)
}

/// Multiplicative inverse of `a` modulo `m`, if `gcd(a, m) = 1`.
///
/// # Examples
///
/// ```
/// use dla_bigint::{Ubig, modular};
///
/// let m = Ubig::from_u64(97);
/// let inv = modular::modinv(&Ubig::from_u64(35), &m).expect("coprime");
/// assert_eq!((inv * Ubig::from_u64(35)) % m, Ubig::one());
/// ```
#[must_use]
pub fn modinv(a: &Ubig, m: &Ubig) -> Option<Ubig> {
    dla_telemetry::record(dla_telemetry::CostKind::ModInverse, 1);
    let (g, x) = egcd_mod(a, m);
    if g.is_one() {
        Some(x)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn modexp_small_cases() {
        let m = Ubig::from_u64(1000);
        assert_eq!(
            modexp(&Ubig::from_u64(2), &Ubig::from_u64(10), &m),
            Ubig::from_u64(24)
        );
        assert_eq!(modexp(&Ubig::from_u64(5), &Ubig::zero(), &m), Ubig::one());
        assert_eq!(modexp(&Ubig::zero(), &Ubig::from_u64(5), &m), Ubig::zero());
        assert_eq!(
            modexp(&Ubig::from_u64(7), &Ubig::one(), &m),
            Ubig::from_u64(7)
        );
    }

    #[test]
    fn modexp_modulus_one_is_zero() {
        assert_eq!(
            modexp(&Ubig::from_u64(12), &Ubig::from_u64(7), &Ubig::one()),
            Ubig::zero()
        );
    }

    #[test]
    fn modexp_matches_u128_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        for _ in 0..100 {
            let b: u64 = rand::Rng::gen_range(&mut rng, 0..1u64 << 32);
            let e: u64 = rand::Rng::gen_range(&mut rng, 0..1000);
            let m: u64 = rand::Rng::gen_range(&mut rng, 2..1u64 << 31);
            let mut expect = 1u128;
            for _ in 0..e {
                expect = expect * u128::from(b) % u128::from(m);
            }
            assert_eq!(
                modexp(&Ubig::from_u64(b), &Ubig::from_u64(e), &Ubig::from_u64(m)),
                Ubig::from_u128(expect)
            );
        }
    }

    #[test]
    fn fermat_little_theorem_large_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let p = (Ubig::one() << 127) - Ubig::one();
        let pm1 = &p - &Ubig::one();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let a = Ubig::random_range(&mut rng, &Ubig::two(), &p);
            assert_eq!(modexp(&a, &pm1, &p), Ubig::one());
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            gcd(&Ubig::from_u64(48), &Ubig::from_u64(36)),
            Ubig::from_u64(12)
        );
        assert_eq!(gcd(&Ubig::zero(), &Ubig::from_u64(5)), Ubig::from_u64(5));
        assert_eq!(gcd(&Ubig::from_u64(5), &Ubig::zero()), Ubig::from_u64(5));
        assert_eq!(gcd(&Ubig::from_u64(17), &Ubig::from_u64(13)), Ubig::one());
    }

    #[test]
    fn modinv_round_trips() {
        let m = Ubig::from_u64(1_000_000_007);
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        for _ in 0..100 {
            let a = Ubig::random_range(&mut rng, &Ubig::one(), &m);
            let inv = modinv(&a, &m).expect("prime modulus => invertible");
            assert_eq!(modmul(&a, &inv, &m), Ubig::one());
            assert!(inv < m);
        }
    }

    #[test]
    fn modinv_large_operands() {
        let p = (Ubig::one() << 127) - Ubig::one();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let a = Ubig::random_range(&mut rng, &Ubig::two(), &p);
            let inv = modinv(&a, &p).unwrap();
            assert_eq!(modmul(&a, &inv, &p), Ubig::one());
        }
    }

    #[test]
    fn modinv_detects_non_coprime() {
        assert_eq!(modinv(&Ubig::from_u64(6), &Ubig::from_u64(9)), None);
        assert_eq!(modinv(&Ubig::zero(), &Ubig::from_u64(9)), None);
    }

    #[test]
    fn modsub_wraps_correctly() {
        let m = Ubig::from_u64(10);
        assert_eq!(
            modsub(&Ubig::from_u64(3), &Ubig::from_u64(7), &m),
            Ubig::from_u64(6)
        );
        assert_eq!(
            modsub(&Ubig::from_u64(7), &Ubig::from_u64(3), &m),
            Ubig::from_u64(4)
        );
        assert_eq!(
            modsub(&Ubig::from_u64(4), &Ubig::from_u64(4), &m),
            Ubig::zero()
        );
    }

    #[test]
    fn egcd_bezout_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        for _ in 0..50 {
            let m = Ubig::random_bits(&mut rng, 100);
            let a = Ubig::random_below(&mut rng, &m);
            if a.is_zero() {
                continue;
            }
            let (g, x) = egcd_mod(&a, &m);
            // a*x mod m must equal g mod m.
            assert_eq!(modmul(&a, &x, &m), &g % &m);
            // g divides both.
            assert!((&a % &g).is_zero());
            assert!((&m % &g).is_zero());
        }
    }
}
