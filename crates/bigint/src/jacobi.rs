//! The Jacobi symbol `(a/n)` by the binary algorithm.
//!
//! The commutative-cipher message encoding probes candidate values for
//! quadratic residuosity mod a safe prime `p` (see
//! `dla_crypto::pohlig_hellman::CommutativeDomain::encode`). The Euler
//! criterion answers that with a full exponent-`(p−1)/2` modexp —
//! hundreds of Montgomery multiplications *per pad-byte probe*. For a
//! prime modulus the Jacobi symbol gives the identical answer in
//! O(bits²) word operations: `(a/p) = 1 ⇔ a` is a quadratic residue
//! mod `p` (for `a` coprime to `p`), at roughly the cost of a single
//! gcd.
//!
//! The implementation is the classic reduction by quadratic
//! reciprocity: strip factors of two (flipping the sign when
//! `n ≡ ±3 mod 8`), swap (flipping when both are `≡ 3 mod 4`), reduce,
//! repeat.

use crate::Ubig;

/// Computes the Jacobi symbol `(a/n)` for odd `n ≥ 1`: `1`, `-1`, or
/// `0` when `gcd(a, n) ≠ 1`.
///
/// For an odd *prime* `n` this equals the Legendre symbol, so
/// `jacobi(a, p) == 1` iff `a` is a quadratic residue mod `p` (and `0`
/// iff `p | a`) — the drop-in replacement for an Euler-criterion
/// modexp.
///
/// # Panics
///
/// Panics if `n` is even or zero.
///
/// # Examples
///
/// ```
/// use dla_bigint::{jacobi::jacobi, modular, Ubig};
///
/// let p = Ubig::from_u64(1_000_000_007);
/// let a = Ubig::from_u64(34);
/// let sq = modular::modmul(&a, &a, &p);
/// assert_eq!(jacobi(&sq, &p), 1); // squares are residues
/// assert_eq!(jacobi(&Ubig::zero(), &p), 0);
/// ```
#[must_use]
pub fn jacobi(a: &Ubig, n: &Ubig) -> i8 {
    assert!(
        !n.is_zero() && !n.is_even(),
        "jacobi: modulus must be odd and positive"
    );
    let mut a = a % n;
    let mut n = n.clone();
    let mut t = 1i8;
    while !a.is_zero() {
        // Strip factors of two; each one contributes (2/n), which is
        // -1 exactly when n ≡ 3 or 5 (mod 8).
        let tz = trailing_zeros(&a);
        if tz > 0 {
            a = a >> tz;
            if tz % 2 == 1 {
                let n_mod_8 = n.limbs()[0] & 7;
                if n_mod_8 == 3 || n_mod_8 == 5 {
                    t = -t;
                }
            }
        }
        // Quadratic reciprocity: swapping odd a and n flips the sign
        // iff both are ≡ 3 (mod 4).
        if (a.limbs()[0] & 3 == 3) && (n.limbs()[0] & 3 == 3) {
            t = -t;
        }
        std::mem::swap(&mut a, &mut n);
        a = &a % &n;
    }
    if n.is_one() {
        t
    } else {
        0
    }
}

/// Number of trailing zero bits of a non-zero value.
fn trailing_zeros(v: &Ubig) -> usize {
    debug_assert!(!v.is_zero());
    let limbs = v.limbs();
    let mut zeros = 0usize;
    for &limb in limbs {
        if limb == 0 {
            zeros += 64;
        } else {
            zeros += limb.trailing_zeros() as usize;
            break;
        }
    }
    zeros
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular;
    use rand::SeedableRng;

    /// Euler-criterion reference: for odd prime p,
    /// a^((p-1)/2) mod p ∈ {0, 1, p-1} ↦ {0, 1, -1}.
    fn euler(a: &Ubig, p: &Ubig) -> i8 {
        let e = (p - &Ubig::one()) >> 1;
        let r = modular::modexp(a, &e, p);
        if r.is_zero() {
            0
        } else if r.is_one() {
            1
        } else {
            -1
        }
    }

    #[test]
    fn matches_euler_criterion_on_small_primes() {
        for p in [3u64, 5, 7, 11, 13, 1_000_000_007] {
            let p = Ubig::from_u64(p);
            for a in 0..40u64 {
                let a = Ubig::from_u64(a);
                assert_eq!(jacobi(&a, &p), euler(&a, &p), "a={a} p={p}");
            }
        }
    }

    #[test]
    fn matches_euler_criterion_on_multi_limb_primes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        // Mersenne primes 2^89-1, 2^107-1, 2^127-1.
        for bits in [89u32, 107, 127] {
            let p = (Ubig::one() << bits as usize) - Ubig::one();
            for _ in 0..25 {
                let a = Ubig::random_below(&mut rng, &p);
                assert_eq!(jacobi(&a, &p), euler(&a, &p), "bits={bits}");
            }
        }
    }

    #[test]
    fn composite_modulus_detects_shared_factors() {
        // (a/n) = 0 iff gcd(a, n) > 1.
        let n = Ubig::from_u64(15);
        assert_eq!(jacobi(&Ubig::from_u64(3), &n), 0);
        assert_eq!(jacobi(&Ubig::from_u64(5), &n), 0);
        assert_eq!(jacobi(&Ubig::from_u64(2), &n), 1);
        assert_eq!(jacobi(&Ubig::from_u64(7), &n), -1);
    }

    #[test]
    fn multiplicativity_in_the_numerator() {
        let p = Ubig::from_u64(101);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let a = Ubig::random_range(&mut rng, &Ubig::one(), &p);
            let b = Ubig::random_range(&mut rng, &Ubig::one(), &p);
            let ab = modular::modmul(&a, &b, &p);
            assert_eq!(jacobi(&ab, &p), jacobi(&a, &p) * jacobi(&b, &p));
        }
    }

    #[test]
    fn unreduced_numerator_is_reduced_first() {
        let p = Ubig::from_u64(97);
        let a = Ubig::from_u64(5 + 97 * 12);
        assert_eq!(jacobi(&a, &p), jacobi(&Ubig::from_u64(5), &p));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_panics() {
        let _ = jacobi(&Ubig::from_u64(3), &Ubig::from_u64(8));
    }
}
