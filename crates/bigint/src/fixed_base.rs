//! Fixed-base exponentiation tables.
//!
//! Several DLA hot paths raise *one* base to many different exponents:
//! the accumulator generator `x₀` absorbs every deposit of a trail
//! (§4.1), trail verification re-derives `x₀^{∏eᵢ}`, and batched
//! checkpoint verification evaluates `x₀^{Σ rⱼEⱼ}`. A sliding-window
//! ladder spends ~`bits` squarings per power because it rebuilds the
//! power-of-two chain of the base every time; for a base known in
//! advance that chain can be built **once**.
//!
//! [`FixedBase`] stores the radix-`2^w` decomposition table
//! `rows[i][v] = base^(v·2^{w·i})` in Montgomery form. A power then
//! costs one table lookup per non-zero `w`-bit digit of the exponent —
//! **zero squarings** for any exponent within the table's capacity —
//! plus the two domain conversions. Above capacity the evaluator falls
//! back to chunking: the exponent is split at the capacity boundary and
//! the high part re-enters through `base^{2^C}`-shifted squarings, so
//! correctness never depends on sizing the table right.
//!
//! Cost accounting: each constructed table records one
//! `CostKind::FixedBaseTableBuild` plus the `MontMulStep`s the build
//! actually performed; each power records `CostKind::ModExp` and its
//! own (much smaller) `MontMulStep` count, so `BENCH_cost_profile.json`
//! can show the amortisation explicitly.

use crate::montgomery::MontgomeryContext;
use crate::Ubig;

/// Precomputed radix-`2^w` powers of one base modulo one odd modulus.
///
/// Build once with [`FixedBase::new`], then evaluate powers with
/// [`FixedBase::pow`] / [`FixedBase::pow_batch`]. Results are
/// bit-identical to [`MontgomeryContext::modexp`] on the same inputs
/// (the proptest differential suite pins this).
#[derive(Clone, Debug)]
pub struct FixedBase {
    ctx: MontgomeryContext,
    base: Ubig,
    /// Digit width `w` in bits.
    window: usize,
    /// `rows[i][v-1] = base^(v · 2^{w·i})` in Montgomery form,
    /// `v ∈ 1..2^w`.
    rows: Vec<Vec<Vec<u64>>>,
    /// Exponent bits the table covers without falling back to
    /// chunking: `w · rows.len()`.
    capacity_bits: usize,
}

/// Digit width for a given capacity: small tables for small exponent
/// ranges, wider digits once the build amortises. The build costs
/// `(2^w − 2 + w)` muls per `w` covered bits, lookups cost `1/w` muls
/// per bit — `w = 5` only repays its build for very large tables.
fn digit_width(capacity_bits: usize) -> usize {
    match capacity_bits {
        0..=64 => 3,
        65..=2048 => 4,
        _ => 5,
    }
}

impl FixedBase {
    /// Builds the table for `base` mod the modulus of `ctx`, sized for
    /// exponents up to `capacity_bits` bits. Larger exponents still
    /// evaluate correctly via the chunked fallback; they just pay
    /// squarings for the bits beyond capacity.
    #[must_use]
    pub fn new(ctx: &MontgomeryContext, base: &Ubig, capacity_bits: usize) -> Self {
        let capacity_bits = capacity_bits.max(1);
        let w = digit_width(capacity_bits);
        let digits = capacity_bits.div_ceil(w);
        let mut kern = ctx.kernel();
        let mut steps = 1u64; // to_mont
        let mut cur = kern.to_mont(ctx, base);

        let mut rows = Vec::with_capacity(digits);
        for _ in 0..digits {
            // Row entries v = 1..2^w: repeated multiplication by cur.
            let mut row = Vec::with_capacity((1usize << w) - 1);
            row.push(cur.clone());
            for v in 2..(1usize << w) {
                let mut next = row[v - 2].clone();
                kern.mul_assign(ctx, &mut next, &cur);
                steps += 1;
                row.push(next);
            }
            rows.push(row);
            // cur ← cur^(2^w): the base for the next digit position.
            for _ in 0..w {
                kern.sqr_assign(ctx, &mut cur);
                steps += 1;
            }
        }

        dla_telemetry::record(dla_telemetry::CostKind::FixedBaseTableBuild, 1);
        dla_telemetry::record(dla_telemetry::CostKind::MontMulStep, steps);
        FixedBase {
            ctx: ctx.clone(),
            base: base.clone(),
            window: w,
            rows,
            capacity_bits: digits * w,
        }
    }

    /// The base the table was built for.
    #[must_use]
    pub fn base(&self) -> &Ubig {
        &self.base
    }

    /// Exponent bits covered without the chunked fallback.
    #[must_use]
    pub fn capacity_bits(&self) -> usize {
        self.capacity_bits
    }

    /// `base^exp mod n`, bit-identical to `ctx.modexp(base, exp)`.
    #[must_use]
    pub fn pow(&self, exp: &Ubig) -> Ubig {
        self.pow_batch(std::slice::from_ref(exp))
            .pop()
            .expect("one")
    }

    /// `base^exp mod n` for every exponent, sharing one kernel handle.
    #[must_use]
    pub fn pow_batch(&self, exps: &[Ubig]) -> Vec<Ubig> {
        if exps.is_empty() {
            return Vec::new();
        }
        dla_telemetry::record(dla_telemetry::CostKind::ModExp, exps.len() as u64);
        let mut kern = self.ctx.kernel();
        let mut total_steps = 0u64;
        let out = exps
            .iter()
            .map(|exp| {
                let (r, steps) = self.pow_inner(exp, &mut kern);
                total_steps += steps;
                r
            })
            .collect();
        dla_telemetry::record(dla_telemetry::CostKind::MontMulStep, total_steps);
        out
    }

    /// Evaluates one exponent: digit lookups within capacity, then the
    /// chunked fallback for any bits above it.
    fn pow_inner(&self, exp: &Ubig, kern: &mut crate::montgomery::Kernel) -> (Ubig, u64) {
        let modulus = self.ctx.modulus();
        if exp.is_zero() {
            return (Ubig::one() % &modulus, 0);
        }
        let mut steps = 0u64;

        // In-capacity digits: pure lookups, no squarings.
        let mut acc: Option<Vec<u64>> = None;
        let w = self.window;
        for (i, row) in self.rows.iter().enumerate() {
            let mut v = 0usize;
            for b in 0..w {
                let bit = i * w + b;
                if bit < exp.bit_len() && exp.bit(bit) {
                    v |= 1 << b;
                }
            }
            if v == 0 {
                continue;
            }
            match &mut acc {
                None => acc = Some(row[v - 1].clone()),
                Some(a) => {
                    kern.mul_assign(&self.ctx, a, &row[v - 1]);
                    steps += 1;
                }
            }
        }

        // Chunked fallback: bits at or above capacity enter through
        // base^{hi} shifted left by `capacity` squarings.
        let cap = self.capacity_bits;
        if exp.bit_len() > cap {
            let hi = exp >> cap;
            let (hi_pow, hi_steps) = self.pow_inner(&hi, kern);
            steps += hi_steps;
            let mut shifted = kern.to_mont(&self.ctx, &hi_pow);
            steps += 1;
            for _ in 0..cap {
                kern.sqr_assign(&self.ctx, &mut shifted);
                steps += 1;
            }
            match &mut acc {
                None => acc = Some(shifted),
                Some(a) => {
                    kern.mul_assign(&self.ctx, a, &shifted);
                    steps += 1;
                }
            }
        }

        let mut acc = acc.expect("non-zero exponent has a non-zero digit");
        kern.redc_assign(&self.ctx, &mut acc);
        steps += 1;
        (Ubig::from_limbs(acc), steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn pow_matches_modexp_within_capacity() {
        let mut rng = rng();
        for bits in [65usize, 256, 512] {
            let mut n = Ubig::random_bits(&mut rng, bits);
            if n.is_even() {
                n = n + Ubig::one();
            }
            let ctx = MontgomeryContext::new(&n).unwrap();
            let base = Ubig::random_below(&mut rng, &n);
            let fb = FixedBase::new(&ctx, &base, bits);
            for _ in 0..8 {
                let exp = Ubig::random_bits(&mut rng, bits - 1);
                assert_eq!(fb.pow(&exp), ctx.modexp(&base, &exp), "bits={bits}");
            }
        }
    }

    #[test]
    fn pow_matches_modexp_beyond_capacity() {
        let mut rng = rng();
        let n = (Ubig::one() << 255) - Ubig::from_u64(19);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let base = Ubig::random_below(&mut rng, &n);
        // Deliberately tiny capacity: everything overflows into chunks.
        let fb = FixedBase::new(&ctx, &base, 64);
        for exp_bits in [65usize, 200, 300, 1000] {
            let exp = Ubig::random_bits(&mut rng, exp_bits);
            assert_eq!(fb.pow(&exp), ctx.modexp(&base, &exp), "exp_bits={exp_bits}");
        }
    }

    #[test]
    fn edge_exponents() {
        let n = (Ubig::one() << 89) - Ubig::one();
        let ctx = MontgomeryContext::new(&n).unwrap();
        let base = Ubig::from_u64(123_456);
        let fb = FixedBase::new(&ctx, &base, 89);
        assert_eq!(fb.pow(&Ubig::zero()), Ubig::one());
        assert_eq!(fb.pow(&Ubig::one()), base);
        assert_eq!(
            fb.pow(&Ubig::from_u64(2)),
            ctx.modexp(&base, &Ubig::from_u64(2))
        );
        let exp = &n - &Ubig::one();
        assert_eq!(fb.pow(&exp), Ubig::one(), "Fermat");
    }

    #[test]
    fn zero_base() {
        let n = Ubig::from_u64(1_000_003);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let fb = FixedBase::new(&ctx, &Ubig::zero(), 64);
        assert_eq!(fb.pow(&Ubig::from_u64(7)), Ubig::zero());
        assert_eq!(fb.pow(&Ubig::zero()), Ubig::one());
    }

    #[test]
    fn batch_matches_serial_and_fewer_steps_than_ladder() {
        let mut rng = rng();
        let n = (Ubig::one() << 255) - Ubig::from_u64(19);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let base = Ubig::random_below(&mut rng, &n);
        let exps: Vec<Ubig> = (0..6).map(|_| Ubig::random_bits(&mut rng, 254)).collect();

        let capture = |f: &dyn Fn() -> Vec<Ubig>| {
            let recorder = dla_telemetry::Recorder::new();
            let out = {
                let _install = recorder.install();
                f()
            };
            (out, recorder.take().total_cost())
        };
        let (fb_out, fb_cost) = capture(&|| {
            let fb = FixedBase::new(&ctx, &base, 256);
            fb.pow_batch(&exps)
        });
        let (ladder_out, ladder_cost) =
            capture(&|| exps.iter().map(|e| ctx.modexp(&base, e)).collect());
        assert_eq!(fb_out, ladder_out);
        assert_eq!(fb_cost.fixed_base_builds, 1);
        assert_eq!(fb_cost.modexp, ladder_cost.modexp);
        assert!(
            fb_cost.mont_mul_steps < ladder_cost.mont_mul_steps,
            "table build + lookups ({}) must beat {} ladder steps",
            fb_cost.mont_mul_steps,
            ladder_cost.mont_mul_steps
        );
    }
}
