//! Montgomery modular arithmetic.
//!
//! Every DLA protocol bottoms out in modular exponentiation over a
//! fixed odd modulus (the safe prime `p` or the RSA modulus `n`), so
//! exponentiation cost is the system's CPU budget. Montgomery REDC
//! replaces the per-step division of schoolbook reduction with two
//! multiplications and a shift, roughly tripling `modexp` throughput at
//! the 256–512-bit sizes used here (see the `bigint` bench in
//! `dla-bench` for the measured ablation).
//!
//! [`crate::modular::modexp`] uses a [`MontgomeryContext`]
//! automatically whenever the modulus is odd and large enough to
//! benefit; the schoolbook path remains for even moduli.

use crate::Ubig;

/// Precomputed per-modulus state for Montgomery reduction.
#[derive(Clone, Debug)]
pub struct MontgomeryContext {
    /// The modulus limbs, little-endian, length `k`.
    n: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R² mod n` where `R = 2^{64k}` (converts into Montgomery form).
    r2: Vec<u64>,
    /// `1` in Montgomery form (`R mod n`).
    one_mont: Vec<u64>,
}

impl MontgomeryContext {
    /// Builds a context for an odd modulus `≥ 3`; returns `None`
    /// otherwise (Montgomery reduction requires `gcd(n, 2⁶⁴) = 1`).
    #[must_use]
    pub fn new(modulus: &Ubig) -> Option<Self> {
        if modulus.is_even() || *modulus < Ubig::from_u64(3) {
            return None;
        }
        let n = modulus.limbs().to_vec();
        let k = n.len();

        // -n[0]^{-1} mod 2^64 by Newton–Hensel lifting (5 iterations
        // double the valid bits each time: 5 -> 10 -> 20 -> 40 -> 80).
        let mut inv: u64 = n[0]; // valid to 5 bits already (odd n[0])
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();

        // R mod n and R^2 mod n via Ubig arithmetic (setup-time only).
        let r = Ubig::one() << (64 * k);
        let one_mont = pad(&(&r % modulus), k);
        let r2 = pad(&(&(&r * &r) % modulus), k);

        Some(MontgomeryContext {
            n,
            n0_inv,
            r2,
            one_mont,
        })
    }

    /// Number of limbs `k`.
    fn k(&self) -> usize {
        self.n.len()
    }

    /// Montgomery product: `REDC(a · b) = a·b·R⁻¹ mod n`.
    /// Operands are `k`-limb Montgomery-form values.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k();
        // CIOS (coarsely integrated operand scanning).
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter() {
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let cur = u128::from(t[j]) + u128::from(ai) * u128::from(b[j]) + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = u128::from(t[k]) + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64 ; t += m * n ; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let mut carry: u128 = (u128::from(t[0]) + u128::from(m) * u128::from(self.n[0])) >> 64;
            for j in 1..k {
                let cur = u128::from(t[j]) + u128::from(m) * u128::from(self.n[j]) + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = u128::from(t[k]) + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1] + ((cur >> 64) as u64);
            t[k + 1] = 0;
        }
        t.truncate(k + 1);

        // Conditional subtraction: t may be in [0, 2n).
        if t[k] != 0 || ge(&t[..k], &self.n) {
            sub_in_place(&mut t, &self.n);
        }
        t.truncate(k);
        t
    }

    /// Converts into Montgomery form: `a·R mod n`.
    fn to_mont(&self, a: &Ubig) -> Vec<u64> {
        let reduced = a % &self.modulus_ubig();
        self.mont_mul(&pad(&reduced, self.k()), &self.r2)
    }

    /// Converts out of Montgomery form.
    #[allow(clippy::wrong_self_convention)]
    fn from_mont(&self, a: &[u64]) -> Ubig {
        let mut one = vec![0u64; self.k()];
        one[0] = 1;
        Ubig::from_limbs(self.mont_mul(a, &one))
    }

    fn modulus_ubig(&self) -> Ubig {
        Ubig::from_limbs(self.n.clone())
    }

    /// `base^exp mod n` by left-to-right square-and-multiply in
    /// Montgomery form.
    #[must_use]
    pub fn modexp(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        dla_telemetry::record(dla_telemetry::CostKind::ModExp, 1);
        if exp.is_zero() {
            return Ubig::one() % &self.modulus_ubig();
        }
        let base_m = self.to_mont(base);
        let mut acc = self.one_mont.clone();
        for i in (0..exp.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.from_mont(&acc)
    }

    /// `a · b mod n` through Montgomery form (three REDC passes; only
    /// worthwhile when amortized — [`Self::modexp`] is the hot path).
    #[must_use]
    pub fn modmul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }
}

fn pad(v: &Ubig, k: usize) -> Vec<u64> {
    let mut out = v.limbs().to_vec();
    out.resize(k, 0);
    out
}

/// `a >= b` on equal-length limb slices.
fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true
}

/// `a -= b` on limb slices (`a` at least as long as `b`; no underflow).
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..b.len() {
        let (d1, o1) = a[i].overflowing_sub(b[i]);
        let (d2, o2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = u64::from(o1) + u64::from(o2);
    }
    let mut i = b.len();
    while borrow != 0 && i < a.len() {
        let (d, o) = a[i].overflowing_sub(borrow);
        a[i] = d;
        borrow = u64::from(o);
        i += 1;
    }
    debug_assert_eq!(borrow, 0, "montgomery subtraction underflow");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn rejects_even_and_tiny_moduli() {
        assert!(MontgomeryContext::new(&Ubig::from_u64(100)).is_none());
        assert!(MontgomeryContext::new(&Ubig::from_u64(2)).is_none());
        assert!(MontgomeryContext::new(&Ubig::from_u64(1)).is_none());
        assert!(MontgomeryContext::new(&Ubig::from_u64(0)).is_none());
        assert!(MontgomeryContext::new(&Ubig::from_u64(3)).is_some());
    }

    #[test]
    fn modexp_matches_schoolbook_small() {
        let mut rng = rng();
        for _ in 0..200 {
            let n = {
                let v: u64 = rand::Rng::gen_range(&mut rng, 3u64..1 << 32);
                Ubig::from_u64(v | 1)
            };
            let ctx = MontgomeryContext::new(&n).unwrap();
            let base = Ubig::random_below(&mut rng, &n);
            let exp = Ubig::from_u64(rand::Rng::gen_range(&mut rng, 0u64..1000));
            assert_eq!(
                ctx.modexp(&base, &exp),
                modular::modexp_schoolbook(&base, &exp, &n),
                "base={base} exp={exp} n={n}"
            );
        }
    }

    #[test]
    fn modexp_matches_schoolbook_multi_limb() {
        let mut rng = rng();
        for bits in [65usize, 127, 256, 511] {
            for _ in 0..10 {
                let mut n = Ubig::random_bits(&mut rng, bits);
                if n.is_even() {
                    n = n + Ubig::one();
                }
                let ctx = MontgomeryContext::new(&n).unwrap();
                let base = Ubig::random_below(&mut rng, &n);
                let exp = Ubig::random_bits(&mut rng, 64);
                assert_eq!(
                    ctx.modexp(&base, &exp),
                    modular::modexp_schoolbook(&base, &exp, &n),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn modmul_matches_reference() {
        let mut rng = rng();
        let n = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontgomeryContext::new(&n).unwrap();
        for _ in 0..50 {
            let a = Ubig::random_below(&mut rng, &n);
            let b = Ubig::random_below(&mut rng, &n);
            assert_eq!(ctx.modmul(&a, &b), modular::modmul(&a, &b, &n));
        }
    }

    #[test]
    fn edge_exponents() {
        let n = (Ubig::one() << 89) - Ubig::one();
        let ctx = MontgomeryContext::new(&n).unwrap();
        let base = Ubig::from_u64(12345);
        assert_eq!(ctx.modexp(&base, &Ubig::zero()), Ubig::one());
        assert_eq!(ctx.modexp(&base, &Ubig::one()), base);
        assert_eq!(ctx.modexp(&Ubig::zero(), &Ubig::from_u64(5)), Ubig::zero());
        // Fermat: base^(n-1) = 1 for prime n.
        let exp = &n - &Ubig::one();
        assert_eq!(ctx.modexp(&base, &exp), Ubig::one());
    }

    #[test]
    fn unreduced_base_is_reduced_first() {
        let n = Ubig::from_u64(1_000_003);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let big_base = Ubig::from_u128(u128::MAX);
        assert_eq!(
            ctx.modexp(&big_base, &Ubig::from_u64(3)),
            modular::modexp_schoolbook(&big_base, &Ubig::from_u64(3), &n)
        );
    }

    #[test]
    fn n0_inv_property() {
        // n[0] * (-n0_inv) = 1 mod 2^64, i.e. n[0] * n0_inv = -1.
        for n in [3u64, 5, 0xFFFF_FFFF_FFFF_FFC5, 1_000_000_007] {
            let ctx = MontgomeryContext::new(&Ubig::from_u64(n)).unwrap();
            assert_eq!(n.wrapping_mul(ctx.n0_inv), u64::MAX, "n = {n}");
        }
    }
}
