//! Montgomery modular arithmetic.
//!
//! Every DLA protocol bottoms out in modular exponentiation over a
//! fixed odd modulus (the safe prime `p` or the RSA modulus `n`), so
//! exponentiation cost is the system's CPU budget. Montgomery REDC
//! replaces the per-step division of schoolbook reduction with two
//! multiplications and a shift, and this module layers three further
//! optimisations on top (see `DESIGN.md` §11 and the
//! `exp_crypto_hotpath` bench for the measured ablation):
//!
//! * **Scratch-buffer CIOS** — every multiplication step of an
//!   exponentiation runs through one reusable [`Scratch`] workspace,
//!   so a 256-bit [`MontgomeryContext::modexp`] performs no per-step
//!   heap allocations (the old path allocated one vector per
//!   `mont_mul`, ~380 for a 256-bit exponent).
//! * **Dedicated squaring** — `mont_sqr_assign` exploits the symmetry
//!   of `a·a` (half the limb products of a general multiply followed
//!   by one REDC pass); ~80 % of exponentiation steps are squarings.
//! * **Sliding-window exponentiation** — a 4–5-bit window with an
//!   odd-powers table cuts the number of general multiplies from
//!   ~`bits/2` to ~`bits/(w+1)`; the bit-at-a-time path remains as
//!   [`MontgomeryContext::modexp_binary`] for the ablation baseline,
//!   and [`crate::modular::modexp_schoolbook`] stays the
//!   differential-test oracle.
//!
//! [`crate::modular::modexp`] uses a [`MontgomeryContext`]
//! automatically whenever the modulus is odd and large enough to
//! benefit; the schoolbook path remains for even moduli.
//!
//! Real work is also *accounted*: besides the per-call
//! `CostKind::ModExp` record, every exponentiation reports its
//! multiplication/squaring step count as `CostKind::MontMulStep`, so
//! telemetry can distinguish a 3-bit from a 512-bit exponentiation.

use crate::Ubig;

/// Precomputed per-modulus state for Montgomery reduction.
#[derive(Clone, Debug)]
pub struct MontgomeryContext {
    /// The modulus limbs, little-endian, length `k`.
    n: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R² mod n` where `R = 2^{64k}` (converts into Montgomery form).
    r2: Vec<u64>,
    /// `1` in Montgomery form (`R mod n`).
    one_mont: Vec<u64>,
}

/// Reusable workspace for a run of Montgomery operations: one CIOS
/// accumulator and one double-width squaring buffer. Thread one
/// `Scratch` through a whole exponentiation (or a whole batch) and no
/// step allocates.
pub(crate) struct Scratch {
    /// CIOS accumulator, `k + 2` limbs.
    t: Vec<u64>,
    /// Double-width product buffer for squaring, `2k + 1` limbs.
    wide: Vec<u64>,
}

/// One step of a precomputed window plan: the sequence of squarings
/// and odd-power multiplications that evaluates a fixed exponent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ExpOp {
    /// `acc ← acc²`.
    Square,
    /// `acc ← acc · base^(2i+1)` (index into the odd-powers table).
    Multiply(usize),
}

/// Window width for a given exponent size: wide enough that the
/// odd-powers table pays for itself, never wider than 5 bits.
pub(crate) fn window_width(exp_bits: usize) -> usize {
    match exp_bits {
        0..=24 => 1,
        25..=80 => 3,
        81..=240 => 4,
        _ => 5,
    }
}

/// Decomposes `exp` into a left-to-right sliding-window plan with
/// `w`-bit windows anchored on odd values. Depends only on the
/// exponent, so one plan is shared across a whole batch.
pub(crate) fn window_plan(exp: &Ubig, w: usize) -> Vec<ExpOp> {
    let bits = exp.bit_len();
    let mut ops = Vec::with_capacity(bits + bits / w.max(1) + 1);
    let mut i = bits as isize - 1;
    while i >= 0 {
        if !exp.bit(i as usize) {
            ops.push(ExpOp::Square);
            i -= 1;
            continue;
        }
        // Longest window ending at an odd (set) low bit.
        let mut l = (i - (w as isize - 1)).max(0);
        while !exp.bit(l as usize) {
            l += 1;
        }
        for _ in l..=i {
            ops.push(ExpOp::Square);
        }
        let mut val = 0u64;
        for b in (l..=i).rev() {
            val = (val << 1) | u64::from(exp.bit(b as usize));
        }
        debug_assert_eq!(val & 1, 1, "window anchored on a set bit");
        ops.push(ExpOp::Multiply(((val - 1) / 2) as usize));
        i = l - 1;
    }
    ops
}

/// Largest odd-powers table any window width in `1..=6` needs.
const MAX_TABLE: usize = 32;

/// The fixed-width Montgomery kernel: the same CIOS/REDC arithmetic as
/// the generic slice path, monomorphised for a compile-time limb count
/// `K`. Every temporary lives in a stack array whose length the
/// compiler knows, so the inner loops unroll completely and carry no
/// bounds checks — on the 4-limb (256-bit) protocol moduli this is
/// worth ~2–3× over the `Vec`-indexed generic path. The generic path
/// is retained verbatim as the differential oracle and as the fallback
/// for limb counts the kernel is not built for.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FixedCtx<const K: usize> {
    n: [u64; K],
    n0_inv: u64,
    r2: [u64; K],
}

impl<const K: usize> FixedCtx<K> {
    /// `a >= b` on fixed-width operands.
    #[inline]
    fn geq(a: &[u64; K], b: &[u64; K]) -> bool {
        for i in (0..K).rev() {
            match a[i].cmp(&b[i]) {
                std::cmp::Ordering::Greater => return true,
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Equal => {}
            }
        }
        true
    }

    /// `a -= b` with `hi` as the carried limb above `a` (post-REDC
    /// values are `< 2n`, so the borrow always cancels against `hi`).
    #[inline]
    fn sub_wide(a: &mut [u64; K], b: &[u64; K], hi: u64) {
        let mut borrow = 0u64;
        for i in 0..K {
            let (d1, o1) = a[i].overflowing_sub(b[i]);
            let (d2, o2) = d1.overflowing_sub(borrow);
            a[i] = d2;
            borrow = u64::from(o1) + u64::from(o2);
        }
        debug_assert_eq!(borrow, hi, "borrow must cancel the carried limb");
    }

    /// Montgomery product `REDC(a · b)` via CIOS, entirely in
    /// registers/stack.
    #[inline]
    pub(crate) fn mont_mul(&self, a: &[u64; K], b: &[u64; K]) -> [u64; K] {
        let mut t = [0u64; K];
        let mut t_k = 0u64;
        let mut t_k1: u64;
        for &a_limb in a {
            let ai = u128::from(a_limb);
            let mut carry: u128 = 0;
            for j in 0..K {
                let cur = u128::from(t[j]) + ai * u128::from(b[j]) + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = u128::from(t_k) + carry;
            t_k = cur as u64;
            t_k1 = (cur >> 64) as u64;

            let m = u128::from(t[0].wrapping_mul(self.n0_inv));
            let mut carry: u128 = (u128::from(t[0]) + m * u128::from(self.n[0])) >> 64;
            for j in 1..K {
                let cur = u128::from(t[j]) + m * u128::from(self.n[j]) + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = u128::from(t_k) + carry;
            t[K - 1] = cur as u64;
            t_k = t_k1 + ((cur >> 64) as u64);
        }
        if t_k != 0 || Self::geq(&t, &self.n) {
            Self::sub_wide(&mut t, &self.n, t_k);
        }
        t
    }

    /// Montgomery squaring `REDC(a²)`. Measured on the 4/8-limb
    /// protocol moduli, the fused single-pass CIOS multiply beats a
    /// dedicated half-products squaring (whose doubling pass and
    /// separated REDC cost two extra serial sweeps over the
    /// double-width buffer), so squaring simply reuses [`Self::mont_mul`].
    #[inline]
    pub(crate) fn mont_sqr(&self, a: &[u64; K]) -> [u64; K] {
        self.mont_mul(a, a)
    }

    /// Conversion out of Montgomery form: `REDC(a)`.
    #[inline]
    pub(crate) fn redc(&self, a: &[u64; K]) -> [u64; K] {
        let one = {
            let mut v = [0u64; K];
            v[0] = 1;
            v
        };
        self.mont_mul(a, &one)
    }

    /// Conversion into Montgomery form: `REDC(a · R²) = a·R mod n`.
    #[inline]
    #[allow(clippy::wrong_self_convention)]
    pub(crate) fn to_mont(&self, a: &[u64; K]) -> [u64; K] {
        self.mont_mul(a, &self.r2)
    }

    /// Reduces `v` mod `n` and packs it into a fixed-width operand.
    /// The common case (`v < n`, as every protocol value is) costs a
    /// comparison and a copy; only out-of-range inputs divide.
    pub(crate) fn load(&self, v: &Ubig, ctx: &MontgomeryContext) -> [u64; K] {
        let mut out = [0u64; K];
        let limbs = v.limbs();
        if limbs.len() <= K {
            out[..limbs.len()].copy_from_slice(limbs);
            if Self::geq(&out, &self.n) {
                out = [0u64; K];
                let reduced = v % &ctx.modulus_ubig();
                out[..reduced.limbs().len()].copy_from_slice(reduced.limbs());
            }
        } else {
            let reduced = v % &ctx.modulus_ubig();
            out[..reduced.limbs().len()].copy_from_slice(reduced.limbs());
        }
        out
    }

    /// Unpacks a fixed-width operand into a [`Ubig`].
    pub(crate) fn store(v: &[u64; K]) -> Ubig {
        Ubig::from_limbs(v.to_vec())
    }

    /// Snapshots a [`MontgomeryContext`] into fixed-width form, or
    /// `None` when the modulus is not exactly `K` limbs wide.
    pub(crate) fn from_ctx(ctx: &MontgomeryContext) -> Option<Self> {
        if ctx.n.len() != K {
            return None;
        }
        let mut n = [0u64; K];
        n.copy_from_slice(&ctx.n);
        let mut r2 = [0u64; K];
        r2.copy_from_slice(&ctx.r2);
        Some(FixedCtx {
            n,
            n0_inv: ctx.n0_inv,
            r2,
        })
    }

    /// Evaluates one precomputed window plan for one base — the
    /// fixed-width twin of [`MontgomeryContext::run_plan`], with the
    /// odd-powers table in a stack array. Returns the result and the
    /// same step count the generic path would report, so telemetry
    /// cannot tell the kernels apart.
    pub(crate) fn run_plan(
        &self,
        base: &Ubig,
        plan: &[ExpOp],
        window: usize,
        ctx: &MontgomeryContext,
    ) -> (Ubig, u64) {
        debug_assert!((1..=6).contains(&window));
        let mut steps = 1u64; // to_mont
        let base_m = self.to_mont(&self.load(base, ctx));

        // Odd-powers table: table[i] = base^(2i+1) in Montgomery form.
        let table_len = 1usize << (window - 1);
        let mut table = [[0u64; K]; MAX_TABLE];
        table[0] = base_m;
        if table_len > 1 {
            let sq = self.mont_sqr(&base_m);
            steps += 1;
            for i in 1..table_len {
                table[i] = self.mont_mul(&table[i - 1], &sq);
                steps += 1;
            }
        }

        let mut acc = [0u64; K];
        let mut started = false;
        for op in plan {
            match *op {
                ExpOp::Square => {
                    if started {
                        acc = self.mont_sqr(&acc);
                        steps += 1;
                    }
                }
                ExpOp::Multiply(idx) => {
                    if started {
                        acc = self.mont_mul(&acc, &table[idx]);
                        steps += 1;
                    } else {
                        acc = table[idx];
                        started = true;
                    }
                }
            }
        }
        debug_assert!(started, "non-zero exponent always multiplies");
        let out = self.redc(&acc);
        steps += 1;
        (Self::store(&out), steps)
    }

    /// Evaluates one window plan for a whole batch of bases
    /// *vertically*: every step of the plan is applied to all
    /// accumulators before advancing. Single-stream Montgomery
    /// multiplication is latency-bound on its carry chain; marching
    /// independent accumulators in lockstep gives the out-of-order core
    /// independent chains to overlap, which is worth another ~1.5× on
    /// top of the fixed-width win. Identical arithmetic and step
    /// accounting to per-base evaluation — only the schedule differs.
    pub(crate) fn run_plan_batch(
        &self,
        bases: &[Ubig],
        plan: &[ExpOp],
        window: usize,
        ctx: &MontgomeryContext,
    ) -> (Vec<Ubig>, u64) {
        debug_assert!((1..=6).contains(&window));
        let n = bases.len();
        let table_len = 1usize << (window - 1);
        let mut steps = 0u64;

        // Per-base odd-powers tables, flattened: row b starts at
        // b·table_len.
        let mut tables: Vec<[u64; K]> = Vec::with_capacity(n * table_len);
        for base in bases {
            let base_m = self.to_mont(&self.load(base, ctx));
            steps += 1; // to_mont
            let row = tables.len();
            tables.push(base_m);
            if table_len > 1 {
                let sq = self.mont_sqr(&base_m);
                steps += 1;
                for i in 1..table_len {
                    let next = self.mont_mul(&tables[row + i - 1], &sq);
                    steps += 1;
                    tables.push(next);
                }
            }
        }

        let mut accs = vec![[0u64; K]; n];
        let mut started = false;
        for op in plan {
            match *op {
                ExpOp::Square => {
                    if started {
                        for acc in &mut accs {
                            *acc = self.mont_sqr(acc);
                        }
                        steps += n as u64;
                    }
                }
                ExpOp::Multiply(idx) => {
                    if started {
                        for (b, acc) in accs.iter_mut().enumerate() {
                            *acc = self.mont_mul(acc, &tables[b * table_len + idx]);
                        }
                        steps += n as u64;
                    } else {
                        for (b, acc) in accs.iter_mut().enumerate() {
                            *acc = tables[b * table_len + idx];
                        }
                        started = true;
                    }
                }
            }
        }
        debug_assert!(started || n == 0, "non-zero exponent always multiplies");
        let out = accs
            .iter()
            .map(|acc| {
                steps += 1; // redc
                Self::store(&self.redc(acc))
            })
            .collect();
        (out, steps)
    }
}

/// Uniform dispatch handle over the Montgomery kernels, for callers
/// that stream limb-slice operands of any modulus width (the
/// fixed-base tables and the multi-exponentiation kernel). Operands
/// are `k`-limb slices in Montgomery form; each operation routes to
/// the fixed-width kernel when one exists for this modulus, falling
/// back to the generic scratch path otherwise.
pub(crate) struct Kernel {
    f4: Option<FixedCtx<4>>,
    f8: Option<FixedCtx<8>>,
    s: Scratch,
}

impl Kernel {
    /// `a ← REDC(a · b)`.
    pub(crate) fn mul_assign(&mut self, ctx: &MontgomeryContext, a: &mut [u64], b: &[u64]) {
        if let Some(f) = &self.f4 {
            let mut aa = [0u64; 4];
            aa.copy_from_slice(a);
            let mut bb = [0u64; 4];
            bb.copy_from_slice(b);
            a.copy_from_slice(&f.mont_mul(&aa, &bb));
        } else if let Some(f) = &self.f8 {
            let mut aa = [0u64; 8];
            aa.copy_from_slice(a);
            let mut bb = [0u64; 8];
            bb.copy_from_slice(b);
            a.copy_from_slice(&f.mont_mul(&aa, &bb));
        } else {
            ctx.mont_mul_assign(a, b, &mut self.s);
        }
    }

    /// `a ← REDC(a²)`.
    pub(crate) fn sqr_assign(&mut self, ctx: &MontgomeryContext, a: &mut [u64]) {
        if let Some(f) = &self.f4 {
            let mut aa = [0u64; 4];
            aa.copy_from_slice(a);
            a.copy_from_slice(&f.mont_sqr(&aa));
        } else if let Some(f) = &self.f8 {
            let mut aa = [0u64; 8];
            aa.copy_from_slice(a);
            a.copy_from_slice(&f.mont_sqr(&aa));
        } else {
            ctx.mont_sqr_assign(a, &mut self.s);
        }
    }

    /// `a ← REDC(a)` (conversion out of Montgomery form).
    pub(crate) fn redc_assign(&mut self, ctx: &MontgomeryContext, a: &mut [u64]) {
        ctx.redc_assign(a, &mut self.s);
    }

    /// Converts `v` into a `k`-limb Montgomery-form operand.
    #[allow(clippy::wrong_self_convention)]
    pub(crate) fn to_mont(&mut self, ctx: &MontgomeryContext, v: &Ubig) -> Vec<u64> {
        let mut out = pad(&(v % &ctx.modulus_ubig()), ctx.k());
        let r2 = ctx.r2.clone();
        self.mul_assign(ctx, &mut out, &r2);
        out
    }
}

impl MontgomeryContext {
    /// Builds a context for an odd modulus `≥ 3`; returns `None`
    /// otherwise (Montgomery reduction requires `gcd(n, 2⁶⁴) = 1`).
    #[must_use]
    pub fn new(modulus: &Ubig) -> Option<Self> {
        if modulus.is_even() || *modulus < Ubig::from_u64(3) {
            return None;
        }
        let n = modulus.limbs().to_vec();
        let k = n.len();

        // -n[0]^{-1} mod 2^64 by Newton–Hensel lifting (5 iterations
        // double the valid bits each time: 5 -> 10 -> 20 -> 40 -> 80).
        let mut inv: u64 = n[0]; // valid to 5 bits already (odd n[0])
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();

        // R mod n and R^2 mod n via Ubig arithmetic (setup-time only).
        let r = Ubig::one() << (64 * k);
        let one_mont = pad(&(&r % modulus), k);
        let r2 = pad(&(&(&r * &r) % modulus), k);

        Some(MontgomeryContext {
            n,
            n0_inv,
            r2,
            one_mont,
        })
    }

    /// Number of limbs `k`.
    pub(crate) fn k(&self) -> usize {
        self.n.len()
    }

    /// The modulus this context reduces by.
    pub(crate) fn modulus(&self) -> Ubig {
        self.modulus_ubig()
    }

    /// A dispatch handle for streaming Montgomery operations (see
    /// [`Kernel`]).
    pub(crate) fn kernel(&self) -> Kernel {
        Kernel {
            f4: FixedCtx::from_ctx(self),
            f8: FixedCtx::from_ctx(self),
            s: self.scratch(),
        }
    }

    fn scratch(&self) -> Scratch {
        let k = self.k();
        Scratch {
            t: vec![0u64; k + 2],
            wide: vec![0u64; 2 * k + 1],
        }
    }

    /// Montgomery product `a ← REDC(a · b) = a·b·R⁻¹ mod n` via CIOS
    /// (coarsely integrated operand scanning) through the scratch
    /// accumulator — no allocation.
    fn mont_mul_assign(&self, a: &mut [u64], b: &[u64], s: &mut Scratch) {
        let k = self.k();
        let t = &mut s.t;
        t.iter_mut().for_each(|x| *x = 0);
        for &ai in a.iter() {
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let cur = u128::from(t[j]) + u128::from(ai) * u128::from(b[j]) + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = u128::from(t[k]) + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64 ; t += m * n ; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let mut carry: u128 = (u128::from(t[0]) + u128::from(m) * u128::from(self.n[0])) >> 64;
            for j in 1..k {
                let cur = u128::from(t[j]) + u128::from(m) * u128::from(self.n[j]) + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = u128::from(t[k]) + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1] + ((cur >> 64) as u64);
            t[k + 1] = 0;
        }

        // Conditional subtraction: t may be in [0, 2n).
        if t[k] != 0 || ge(&t[..k], &self.n) {
            sub_in_place(&mut t[..=k], &self.n);
        }
        a.copy_from_slice(&t[..k]);
    }

    /// Dedicated Montgomery squaring `a ← REDC(a²)`: the symmetric
    /// half of the limb products is computed once and doubled, then a
    /// single separated REDC pass reduces the double-width product.
    fn mont_sqr_assign(&self, a: &mut [u64], s: &mut Scratch) {
        let k = self.k();
        let w = &mut s.wide;
        w.iter_mut().for_each(|x| *x = 0);

        // Off-diagonal products a[i]·a[j] for i < j.
        for i in 0..k {
            let mut carry: u128 = 0;
            for j in (i + 1)..k {
                let cur = u128::from(w[i + j]) + u128::from(a[i]) * u128::from(a[j]) + carry;
                w[i + j] = cur as u64;
                carry = cur >> 64;
            }
            // Slot i + k is untouched by earlier iterations.
            w[i + k] = carry as u64;
        }

        // Double the off-diagonal sum and add the diagonal squares.
        let mut carry: u128 = 0;
        for slot in 0..2 * k {
            let mut cur = (u128::from(w[slot]) << 1) + carry;
            let d = u128::from(a[slot / 2]) * u128::from(a[slot / 2]);
            cur += if slot % 2 == 0 {
                d & u128::from(u64::MAX)
            } else {
                d >> 64
            };
            w[slot] = cur as u64;
            carry = cur >> 64;
        }
        debug_assert_eq!(carry, 0, "a² fits in 2k limbs for a < n");

        // Separated REDC of the 2k-limb product.
        w[2 * k] = 0;
        for i in 0..k {
            let m = w[i].wrapping_mul(self.n0_inv);
            let mut carry: u128 = 0;
            for j in 0..k {
                let cur = u128::from(w[i + j]) + u128::from(m) * u128::from(self.n[j]) + carry;
                w[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 && idx <= 2 * k {
                let cur = u128::from(w[idx]) + carry;
                w[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
            debug_assert_eq!(carry, 0, "REDC carry escapes the buffer");
        }
        if w[2 * k] != 0 || ge(&w[k..2 * k], &self.n) {
            sub_in_place(&mut w[k..=2 * k], &self.n);
        }
        a.copy_from_slice(&s.wide[k..2 * k]);
    }

    /// Montgomery reduction of a `k`-limb value: `a ← a·R⁻¹ mod n`
    /// (conversion out of Montgomery form; a half-cost `mont_mul` by
    /// one).
    fn redc_assign(&self, a: &mut [u64], s: &mut Scratch) {
        let k = self.k();
        let w = &mut s.wide;
        w.iter_mut().for_each(|x| *x = 0);
        w[..k].copy_from_slice(a);
        for i in 0..k {
            let m = w[i].wrapping_mul(self.n0_inv);
            let mut carry: u128 = 0;
            for j in 0..k {
                let cur = u128::from(w[i + j]) + u128::from(m) * u128::from(self.n[j]) + carry;
                w[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 && idx <= 2 * k {
                let cur = u128::from(w[idx]) + carry;
                w[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        if w[2 * k] != 0 || ge(&w[k..2 * k], &self.n) {
            sub_in_place(&mut w[k..=2 * k], &self.n);
        }
        a.copy_from_slice(&s.wide[k..2 * k]);
    }

    /// Montgomery product: `REDC(a · b) = a·b·R⁻¹ mod n` (allocating
    /// convenience used by setup paths and the binary baseline).
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut s = self.scratch();
        let mut out = a.to_vec();
        self.mont_mul_assign(&mut out, b, &mut s);
        out
    }

    /// Converts into Montgomery form: `a·R mod n`.
    fn to_mont(&self, a: &Ubig) -> Vec<u64> {
        let reduced = a % &self.modulus_ubig();
        self.mont_mul(&pad(&reduced, self.k()), &self.r2)
    }

    fn modulus_ubig(&self) -> Ubig {
        Ubig::from_limbs(self.n.clone())
    }

    /// `base^exp mod n` by sliding-window exponentiation in Montgomery
    /// form — the default, fastest path. Window width adapts to the
    /// exponent size (up to 5 bits; see [`window_width`]), and 4- and
    /// 8-limb moduli (the 256/512-bit protocol primes) route through
    /// the fully unrolled [`FixedCtx`] kernel.
    #[must_use]
    pub fn modexp(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        dla_telemetry::record(dla_telemetry::CostKind::ModExp, 1);
        if exp.is_zero() {
            return Ubig::one() % &self.modulus_ubig();
        }
        let window = window_width(exp.bit_len());
        let plan = window_plan(exp, window);
        let (out, steps) = self.run_plan_accel(base, &plan, window);
        dla_telemetry::record(dla_telemetry::CostKind::MontMulStep, steps);
        out
    }

    /// `base^exp mod n` on the generic slice kernel regardless of limb
    /// count — the PR 4 windowed path, retained verbatim as the
    /// differential oracle and the `windowed` ablation rung.
    #[must_use]
    pub fn modexp_generic(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        self.modexp_windowed(base, exp, window_width(exp.bit_len()))
    }

    /// Evaluates a window plan on the fastest kernel available for
    /// this modulus width.
    fn run_plan_accel(&self, base: &Ubig, plan: &[ExpOp], window: usize) -> (Ubig, u64) {
        if let Some(f) = FixedCtx::<4>::from_ctx(self) {
            return f.run_plan(base, plan, window, self);
        }
        if let Some(f) = FixedCtx::<8>::from_ctx(self) {
            return f.run_plan(base, plan, window, self);
        }
        let mut s = self.scratch();
        self.run_plan(base, plan, window, &mut s)
    }

    /// `base^exp mod n` with an explicit window width in `1..=6` —
    /// exposed for differential tests and the ablation bench; prefer
    /// [`Self::modexp`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is outside `1..=6`.
    #[must_use]
    pub fn modexp_windowed(&self, base: &Ubig, exp: &Ubig, window: usize) -> Ubig {
        assert!((1..=6).contains(&window), "window width must be in 1..=6");
        dla_telemetry::record(dla_telemetry::CostKind::ModExp, 1);
        if exp.is_zero() {
            return Ubig::one() % &self.modulus_ubig();
        }
        let plan = window_plan(exp, window);
        let mut s = self.scratch();
        let (out, steps) = self.run_plan(base, &plan, window, &mut s);
        dla_telemetry::record(dla_telemetry::CostKind::MontMulStep, steps);
        out
    }

    /// Evaluates one precomputed window plan for one base, reusing the
    /// caller's scratch. Returns the result and the number of
    /// multiplication/squaring steps performed.
    fn run_plan(&self, base: &Ubig, plan: &[ExpOp], window: usize, s: &mut Scratch) -> (Ubig, u64) {
        let k = self.k();
        let mut steps = 0u64;
        // Convert into Montgomery form through the shared scratch.
        let mut base_m = pad(&(base % &self.modulus_ubig()), k);
        self.mont_mul_assign(&mut base_m, &self.r2, s);
        steps += 1;

        // Odd-powers table: table[i] = base^(2i+1) in Montgomery form.
        let table_len = 1usize << (window - 1);
        let mut table = Vec::with_capacity(table_len);
        table.push(base_m);
        if table_len > 1 {
            let mut sq = table[0].clone();
            self.mont_sqr_assign(&mut sq, s);
            steps += 1;
            for i in 1..table_len {
                let mut next = table[i - 1].clone();
                self.mont_mul_assign(&mut next, &sq, s);
                steps += 1;
                table.push(next);
            }
        }

        let mut acc = vec![0u64; k];
        // Until the first multiply the accumulator is 1; skip its
        // squarings instead of squaring the identity.
        let mut started = false;
        for op in plan {
            match *op {
                ExpOp::Square => {
                    if started {
                        self.mont_sqr_assign(&mut acc, s);
                        steps += 1;
                    }
                }
                ExpOp::Multiply(idx) => {
                    if started {
                        self.mont_mul_assign(&mut acc, &table[idx], s);
                        steps += 1;
                    } else {
                        acc.copy_from_slice(&table[idx]);
                        started = true;
                    }
                }
            }
        }
        debug_assert!(started, "non-zero exponent always multiplies");
        self.redc_assign(&mut acc, s);
        steps += 1; // conversion out of Montgomery form
        (Ubig::from_limbs(acc), steps)
    }

    /// `base^exp mod n` by the classic bit-at-a-time square-and-multiply,
    /// allocating per step — retained as the pre-windowed baseline the
    /// `exp_crypto_hotpath` ablation measures against.
    #[must_use]
    pub fn modexp_binary(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        dla_telemetry::record(dla_telemetry::CostKind::ModExp, 1);
        if exp.is_zero() {
            return Ubig::one() % &self.modulus_ubig();
        }
        let mut steps = 1u64; // to_mont
        let base_m = self.to_mont(base);
        let mut acc = self.one_mont.clone();
        for i in (0..exp.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            steps += 1;
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
                steps += 1;
            }
        }
        let mut one = vec![0u64; self.k()];
        one[0] = 1;
        let out = Ubig::from_limbs(self.mont_mul(&acc, &one));
        steps += 1;
        dla_telemetry::record(dla_telemetry::CostKind::MontMulStep, steps);
        out
    }

    /// `base^exp mod n` for every base in `bases`, sharing one window
    /// plan and one scratch workspace across the whole batch — the
    /// per-element cost of a travelling-set encryption drops to table
    /// build + plan replay, with zero per-step allocation.
    ///
    /// Telemetry parity: records exactly the same `ModExp` and
    /// `MontMulStep` counts as element-at-a-time [`Self::modexp`]
    /// calls would, so batched and serial protocol runs stay
    /// cost-indistinguishable.
    #[must_use]
    pub fn modexp_batch(&self, bases: &[Ubig], exp: &Ubig) -> Vec<Ubig> {
        self.modexp_batch_inner(bases, exp, true)
    }

    /// Batch exponentiation pinned to the generic slice kernel — the
    /// PR 4 behaviour, kept as the `windowed` ablation rung and the
    /// differential oracle for the fixed-width kernel.
    #[must_use]
    pub fn modexp_batch_generic(&self, bases: &[Ubig], exp: &Ubig) -> Vec<Ubig> {
        self.modexp_batch_inner(bases, exp, false)
    }

    fn modexp_batch_inner(&self, bases: &[Ubig], exp: &Ubig, accel: bool) -> Vec<Ubig> {
        if bases.is_empty() {
            return Vec::new();
        }
        dla_telemetry::record(dla_telemetry::CostKind::ModExp, bases.len() as u64);
        if exp.is_zero() {
            let one = Ubig::one() % &self.modulus_ubig();
            return bases.iter().map(|_| one.clone()).collect();
        }
        let window = window_width(exp.bit_len());
        let plan = window_plan(exp, window);
        let mut total_steps = 0u64;
        let out: Vec<Ubig> = if accel && self.k() == 4 {
            let f = FixedCtx::<4>::from_ctx(self).expect("k() == 4");
            let (out, steps) = f.run_plan_batch(bases, &plan, window, self);
            total_steps += steps;
            out
        } else if accel && self.k() == 8 {
            let f = FixedCtx::<8>::from_ctx(self).expect("k() == 8");
            let (out, steps) = f.run_plan_batch(bases, &plan, window, self);
            total_steps += steps;
            out
        } else {
            let mut s = self.scratch();
            bases
                .iter()
                .map(|base| {
                    let (r, steps) = self.run_plan(base, &plan, window, &mut s);
                    total_steps += steps;
                    r
                })
                .collect()
        };
        dla_telemetry::record(dla_telemetry::CostKind::MontMulStep, total_steps);
        out
    }

    /// `a · b mod n` through Montgomery form. Two REDC passes on a
    /// borrowed scratch (multiply once to reach `a·b·R⁻¹`, multiply by
    /// `R²` to land on `a·b`) — down from the three passes plus two
    /// `to_mont` allocations of the old path.
    #[must_use]
    pub fn modmul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let modulus = self.modulus_ubig();
        let k = self.k();
        let mut s = self.scratch();
        let mut acc = pad(&(a % &modulus), k);
        let br = pad(&(b % &modulus), k);
        self.mont_mul_assign(&mut acc, &br, &mut s);
        self.mont_mul_assign(&mut acc, &self.r2, &mut s);
        Ubig::from_limbs(acc)
    }
}

fn pad(v: &Ubig, k: usize) -> Vec<u64> {
    let mut out = v.limbs().to_vec();
    out.resize(k, 0);
    out
}

/// `a >= b` on equal-length limb slices.
fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true
}

/// `a -= b` on limb slices (`a` at least as long as `b`; no underflow).
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..b.len() {
        let (d1, o1) = a[i].overflowing_sub(b[i]);
        let (d2, o2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = u64::from(o1) + u64::from(o2);
    }
    let mut i = b.len();
    while borrow != 0 && i < a.len() {
        let (d, o) = a[i].overflowing_sub(borrow);
        a[i] = d;
        borrow = u64::from(o);
        i += 1;
    }
    debug_assert_eq!(borrow, 0, "montgomery subtraction underflow");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn rejects_even_and_tiny_moduli() {
        assert!(MontgomeryContext::new(&Ubig::from_u64(100)).is_none());
        assert!(MontgomeryContext::new(&Ubig::from_u64(2)).is_none());
        assert!(MontgomeryContext::new(&Ubig::from_u64(1)).is_none());
        assert!(MontgomeryContext::new(&Ubig::from_u64(0)).is_none());
        assert!(MontgomeryContext::new(&Ubig::from_u64(3)).is_some());
    }

    #[test]
    fn modexp_matches_schoolbook_small() {
        let mut rng = rng();
        for _ in 0..200 {
            let n = {
                let v: u64 = rand::Rng::gen_range(&mut rng, 3u64..1 << 32);
                Ubig::from_u64(v | 1)
            };
            let ctx = MontgomeryContext::new(&n).unwrap();
            let base = Ubig::random_below(&mut rng, &n);
            let exp = Ubig::from_u64(rand::Rng::gen_range(&mut rng, 0u64..1000));
            assert_eq!(
                ctx.modexp(&base, &exp),
                modular::modexp_schoolbook(&base, &exp, &n),
                "base={base} exp={exp} n={n}"
            );
        }
    }

    #[test]
    fn modexp_matches_schoolbook_multi_limb() {
        let mut rng = rng();
        for bits in [65usize, 127, 256, 511] {
            for _ in 0..10 {
                let mut n = Ubig::random_bits(&mut rng, bits);
                if n.is_even() {
                    n = n + Ubig::one();
                }
                let ctx = MontgomeryContext::new(&n).unwrap();
                let base = Ubig::random_below(&mut rng, &n);
                let exp = Ubig::random_bits(&mut rng, 64);
                assert_eq!(
                    ctx.modexp(&base, &exp),
                    modular::modexp_schoolbook(&base, &exp, &n),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn windowed_binary_and_schoolbook_agree_across_window_widths() {
        let mut rng = rng();
        for bits in [65usize, 200, 384] {
            let mut n = Ubig::random_bits(&mut rng, bits);
            if n.is_even() {
                n = n + Ubig::one();
            }
            let ctx = MontgomeryContext::new(&n).unwrap();
            for _ in 0..5 {
                let base = Ubig::random_below(&mut rng, &n);
                let exp = Ubig::random_bits(&mut rng, bits - 1);
                let oracle = modular::modexp_schoolbook(&base, &exp, &n);
                assert_eq!(ctx.modexp_binary(&base, &exp), oracle, "binary bits={bits}");
                for w in 1..=6 {
                    assert_eq!(
                        ctx.modexp_windowed(&base, &exp, w),
                        oracle,
                        "window={w} bits={bits}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_matches_element_at_a_time() {
        let mut rng = rng();
        let n = (Ubig::one() << 255) - Ubig::from_u64(19);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let exp = Ubig::random_bits(&mut rng, 254);
        let bases: Vec<Ubig> = (0..9).map(|_| Ubig::random_below(&mut rng, &n)).collect();
        let batched = ctx.modexp_batch(&bases, &exp);
        let serial: Vec<Ubig> = bases.iter().map(|b| ctx.modexp(b, &exp)).collect();
        assert_eq!(batched, serial);
        assert!(ctx.modexp_batch(&[], &exp).is_empty());
        // Zero exponent batch: all ones.
        let zeros = ctx.modexp_batch(&bases, &Ubig::zero());
        assert!(zeros.iter().all(Ubig::is_one));
    }

    #[test]
    fn windowed_reports_fewer_steps_than_binary() {
        // The telemetry fidelity contract: same answers, strictly less
        // accounted work on the windowed path.
        let mut rng = rng();
        let n = Ubig::from_hex("a9eeab19c760f86c872f1c471c52157db42be1aefe645387366720155ee9a6d3")
            .unwrap();
        let ctx = MontgomeryContext::new(&n).unwrap();
        let base = Ubig::random_below(&mut rng, &n);
        let exp = Ubig::random_bits(&mut rng, 255);

        let steps_of = |f: &dyn Fn() -> Ubig| -> (Ubig, u64) {
            let recorder = dla_telemetry::Recorder::new();
            let out = {
                let _install = recorder.install();
                f()
            };
            (out, recorder.take().total_cost().mont_mul_steps)
        };
        let (a, binary_steps) = steps_of(&|| ctx.modexp_binary(&base, &exp));
        let (b, windowed_steps) = steps_of(&|| ctx.modexp(&base, &exp));
        assert_eq!(a, b);
        assert!(binary_steps > 0 && windowed_steps > 0);
        assert!(
            windowed_steps < binary_steps,
            "windowed {windowed_steps} must beat binary {binary_steps}"
        );
    }

    #[test]
    fn batch_telemetry_counts_match_serial_counts() {
        let mut rng = rng();
        let n = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontgomeryContext::new(&n).unwrap();
        let exp = Ubig::random_bits(&mut rng, 126);
        let bases: Vec<Ubig> = (0..5).map(|_| Ubig::random_below(&mut rng, &n)).collect();

        let capture = |f: &dyn Fn()| -> dla_telemetry::CostVector {
            let recorder = dla_telemetry::Recorder::new();
            {
                let _install = recorder.install();
                f();
            }
            recorder.take().total_cost()
        };
        let batched = capture(&|| {
            let _ = ctx.modexp_batch(&bases, &exp);
        });
        let serial = capture(&|| {
            for b in &bases {
                let _ = ctx.modexp(b, &exp);
            }
        });
        assert_eq!(batched.modexp, serial.modexp);
        assert_eq!(batched.mont_mul_steps, serial.mont_mul_steps);
    }

    #[test]
    fn modmul_matches_reference() {
        let mut rng = rng();
        let n = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontgomeryContext::new(&n).unwrap();
        for _ in 0..50 {
            let a = Ubig::random_below(&mut rng, &n);
            let b = Ubig::random_below(&mut rng, &n);
            assert_eq!(ctx.modmul(&a, &b), modular::modmul(&a, &b, &n));
        }
        // Unreduced operands are reduced first.
        let big = Ubig::random_bits(&mut rng, 400);
        let other = Ubig::random_bits(&mut rng, 300);
        assert_eq!(ctx.modmul(&big, &other), modular::modmul(&big, &other, &n));
    }

    #[test]
    fn edge_exponents() {
        let n = (Ubig::one() << 89) - Ubig::one();
        let ctx = MontgomeryContext::new(&n).unwrap();
        let base = Ubig::from_u64(12345);
        assert_eq!(ctx.modexp(&base, &Ubig::zero()), Ubig::one());
        assert_eq!(ctx.modexp(&base, &Ubig::one()), base);
        assert_eq!(ctx.modexp(&Ubig::zero(), &Ubig::from_u64(5)), Ubig::zero());
        // Fermat: base^(n-1) = 1 for prime n.
        let exp = &n - &Ubig::one();
        assert_eq!(ctx.modexp(&base, &exp), Ubig::one());
        assert_eq!(ctx.modexp_binary(&base, &exp), Ubig::one());
    }

    #[test]
    fn unreduced_base_is_reduced_first() {
        let n = Ubig::from_u64(1_000_003);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let big_base = Ubig::from_u128(u128::MAX);
        assert_eq!(
            ctx.modexp(&big_base, &Ubig::from_u64(3)),
            modular::modexp_schoolbook(&big_base, &Ubig::from_u64(3), &n)
        );
    }

    #[test]
    fn n0_inv_property() {
        // n[0] * (-n0_inv) = 1 mod 2^64, i.e. n[0] * n0_inv = -1.
        for n in [3u64, 5, 0xFFFF_FFFF_FFFF_FFC5, 1_000_000_007] {
            let ctx = MontgomeryContext::new(&Ubig::from_u64(n)).unwrap();
            assert_eq!(n.wrapping_mul(ctx.n0_inv), u64::MAX, "n = {n}");
        }
    }

    #[test]
    fn batch_never_costs_more_steps_than_independent_calls() {
        // The batch path shares one window plan (and, on fixed-width
        // moduli, one vertical plan replay) across all bases — its
        // recorded `mont_mul_steps` must never exceed the sum of the
        // same calls made independently.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for bits in [96usize, 256, 512] {
            let mut n = Ubig::random_bits(&mut rng, bits);
            if n.is_even() {
                n = n + Ubig::one();
            }
            let ctx = MontgomeryContext::new(&n).unwrap();
            let exp = Ubig::random_bits(&mut rng, bits - 1);
            let bases: Vec<Ubig> = (0..9).map(|_| Ubig::random_below(&mut rng, &n)).collect();
            let capture = |f: &dyn Fn() -> Vec<Ubig>| {
                let recorder = dla_telemetry::Recorder::new();
                let out = {
                    let _install = recorder.install();
                    f()
                };
                (out, recorder.take().total_cost())
            };
            let (batched, batch_cost) = capture(&|| ctx.modexp_batch(&bases, &exp));
            let (pointwise, serial_cost) =
                capture(&|| bases.iter().map(|b| ctx.modexp(b, &exp)).collect());
            assert_eq!(batched, pointwise, "bits={bits}");
            assert_eq!(batch_cost.modexp, serial_cost.modexp, "bits={bits}");
            assert!(
                batch_cost.mont_mul_steps <= serial_cost.mont_mul_steps,
                "bits={bits}: batch {} steps must not exceed serial {}",
                batch_cost.mont_mul_steps,
                serial_cost.mont_mul_steps
            );
        }
    }

    #[test]
    fn window_plan_covers_edge_shapes() {
        // Exponent 1: a single multiply, no squarings required.
        let plan = window_plan(&Ubig::one(), 5);
        assert_eq!(plan, vec![ExpOp::Square, ExpOp::Multiply(0)]);
        // All-ones exponent packs maximal windows.
        let e = Ubig::from_u64(0b1_1111);
        let plan = window_plan(&e, 5);
        assert_eq!(
            plan.iter()
                .filter(|o| matches!(o, ExpOp::Multiply(_)))
                .count(),
            1
        );
        assert_eq!(plan.last(), Some(&ExpOp::Multiply(15)));
    }
}
