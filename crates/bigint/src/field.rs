//! A fast fixed prime field `F_p` with `p = 2^61 − 1` (a Mersenne prime).
//!
//! The paper's secure-sum protocol (§3.5) runs Shamir secret sharing
//! "over a finite field E" with `p >> a_i`. Secret inputs are event
//! counts and transaction volumes, which comfortably fit in 61 bits, so
//! a single-limb Mersenne field is both honest to the protocol and fast
//! enough that secure-sum benchmarks measure protocol structure rather
//! than bignum overhead.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus `2^61 − 1`.
pub const P61: u64 = (1u64 << 61) - 1;

/// An element of the prime field `F_{2^61 − 1}`, always kept reduced.
///
/// # Examples
///
/// ```
/// use dla_bigint::F61;
///
/// let a = F61::new(10);
/// let b = F61::new(4);
/// assert_eq!((a - b).value(), 6);
/// assert_eq!((a / b) * b, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct F61(u64);

impl F61 {
    /// The additive identity.
    pub const ZERO: F61 = F61(0);
    /// The multiplicative identity.
    pub const ONE: F61 = F61(1);

    /// Creates a field element, reducing `v` modulo `2^61 − 1`.
    #[must_use]
    pub fn new(v: u64) -> Self {
        F61(v % P61)
    }

    /// The canonical representative in `[0, p)`.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns `true` for the additive identity.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self^exp` by square-and-multiply.
    #[must_use]
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = F61::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse, or `None` for zero.
    ///
    /// Uses Fermat: `a^(p−2) = a^{-1}` in a prime field.
    #[must_use]
    pub fn inverse(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(P61 - 2))
        }
    }

    /// Samples a uniform field element.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v: u64 = rng.gen::<u64>() & ((1u64 << 61) - 1);
            if v < P61 {
                return F61(v);
            }
        }
    }

    /// Samples a uniform *nonzero* field element.
    pub fn random_nonzero<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = Self::random(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }
}

#[inline]
fn reduce128(v: u128) -> u64 {
    // 2^61 ≡ 1 (mod p) makes Mersenne reduction two folds + conditional sub.
    let lo = (v as u64) & P61;
    let hi = v >> 61;
    let folded = u128::from(lo) + hi;
    let lo2 = (folded as u64) & P61;
    let hi2 = (folded >> 61) as u64;
    let mut r = lo2 + hi2;
    if r >= P61 {
        r -= P61;
    }
    r
}

impl Add for F61 {
    type Output = F61;
    fn add(self, rhs: F61) -> F61 {
        let mut s = self.0 + rhs.0;
        if s >= P61 {
            s -= P61;
        }
        F61(s)
    }
}

impl Sub for F61 {
    type Output = F61;
    fn sub(self, rhs: F61) -> F61 {
        if self.0 >= rhs.0 {
            F61(self.0 - rhs.0)
        } else {
            F61(self.0 + P61 - rhs.0)
        }
    }
}

impl Mul for F61 {
    type Output = F61;
    fn mul(self, rhs: F61) -> F61 {
        F61(reduce128(u128::from(self.0) * u128::from(rhs.0)))
    }
}

impl Div for F61 {
    type Output = F61;
    /// # Panics
    ///
    /// Panics on division by zero.
    // Field division IS multiplication by the inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: F61) -> F61 {
        self * rhs.inverse().expect("F61 division by zero")
    }
}

impl Neg for F61 {
    type Output = F61;
    fn neg(self) -> F61 {
        if self.0 == 0 {
            self
        } else {
            F61(P61 - self.0)
        }
    }
}

impl AddAssign for F61 {
    fn add_assign(&mut self, rhs: F61) {
        *self = *self + rhs;
    }
}

impl SubAssign for F61 {
    fn sub_assign(&mut self, rhs: F61) {
        *self = *self - rhs;
    }
}

impl MulAssign for F61 {
    fn mul_assign(&mut self, rhs: F61) {
        *self = *self * rhs;
    }
}

impl Sum for F61 {
    fn sum<I: Iterator<Item = F61>>(iter: I) -> F61 {
        iter.fold(F61::ZERO, |a, b| a + b)
    }
}

impl Product for F61 {
    fn product<I: Iterator<Item = F61>>(iter: I) -> F61 {
        iter.fold(F61::ONE, |a, b| a * b)
    }
}

impl From<u64> for F61 {
    fn from(v: u64) -> Self {
        F61::new(v)
    }
}

impl fmt::Debug for F61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F61({})", self.0)
    }
}

impl fmt::Display for F61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn modulus_is_mersenne_prime_61() {
        assert_eq!(P61, 2_305_843_009_213_693_951);
    }

    #[test]
    fn new_reduces() {
        assert_eq!(F61::new(P61).value(), 0);
        assert_eq!(F61::new(P61 + 5).value(), 5);
        assert_eq!(F61::new(u64::MAX).value(), u64::MAX % P61);
    }

    #[test]
    fn add_wraps_at_modulus() {
        let a = F61::new(P61 - 1);
        assert_eq!((a + F61::ONE).value(), 0);
        assert_eq!((a + F61::new(2)).value(), 1);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!((F61::ZERO - F61::ONE).value(), P61 - 1);
        assert_eq!((F61::new(5) - F61::new(3)).value(), 2);
    }

    #[test]
    fn neg_is_additive_inverse() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(30);
        for _ in 0..100 {
            let a = F61::random(&mut rng);
            assert_eq!(a + (-a), F61::ZERO);
        }
        assert_eq!(-F61::ZERO, F61::ZERO);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..500 {
            let a = F61::random(&mut rng);
            let b = F61::random(&mut rng);
            let expect = (u128::from(a.value()) * u128::from(b.value()) % u128::from(P61)) as u64;
            assert_eq!((a * b).value(), expect);
        }
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        for _ in 0..100 {
            let a = F61::random_nonzero(&mut rng);
            assert_eq!(a * a.inverse().unwrap(), F61::ONE);
        }
        assert_eq!(F61::ZERO.inverse(), None);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = F61::ONE / F61::ZERO;
    }

    #[test]
    fn pow_laws() {
        let a = F61::new(123456789);
        assert_eq!(a.pow(0), F61::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(5), a.pow(2) * a.pow(3));
        // Fermat's little theorem.
        assert_eq!(a.pow(P61 - 1), F61::ONE);
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [F61::new(1), F61::new(2), F61::new(3), F61::new(4)];
        assert_eq!(xs.iter().copied().sum::<F61>(), F61::new(10));
        assert_eq!(xs.iter().copied().product::<F61>(), F61::new(24));
    }

    #[test]
    fn distributivity_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for _ in 0..200 {
            let a = F61::random(&mut rng);
            let b = F61::random(&mut rng);
            let c = F61::random(&mut rng);
            assert_eq!(a * (b + c), a * b + a * c);
        }
    }
}
