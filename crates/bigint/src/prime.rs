//! Primality testing and prime generation.
//!
//! The Pohlig–Hellman cipher (paper §3, Eq. 6–7) requires "a large prime
//! number `p` for which `p−1` has a large prime factor"; a *safe prime*
//! `p = 2q + 1` with `q` prime is the canonical choice and is what
//! [`gen_safe_prime`] produces. The one-way accumulator (§4.1, Eq. 8)
//! needs an RSA modulus `n = p·q`, produced by [`gen_rsa_modulus`].

use crate::modular::modexp;
use crate::Ubig;
use rand::Rng;

/// Number of Miller–Rabin rounds. 40 rounds push the error probability
/// below 2^-80 even for adversarially chosen inputs.
const MILLER_RABIN_ROUNDS: usize = 40;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// Probabilistic primality test (trial division + Miller–Rabin).
///
/// # Examples
///
/// ```
/// use dla_bigint::{prime, Ubig};
///
/// let mut rng = rand::thread_rng();
/// assert!(prime::is_prime(&Ubig::from_u64(1_000_000_007), &mut rng));
/// assert!(!prime::is_prime(&Ubig::from_u64(1_000_000_008), &mut rng));
/// ```
pub fn is_prime<R: Rng + ?Sized>(n: &Ubig, rng: &mut R) -> bool {
    if n < &Ubig::two() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = Ubig::from_u64(p);
        if n == &pb {
            return true;
        }
        if (n % &pb).is_zero() {
            return false;
        }
    }
    miller_rabin(n, MILLER_RABIN_ROUNDS, rng)
}

/// Miller–Rabin with `rounds` random bases. Caller must ensure `n` is odd
/// and `n > 3` (guaranteed when called through [`is_prime`]).
fn miller_rabin<R: Rng + ?Sized>(n: &Ubig, rounds: usize, rng: &mut R) -> bool {
    let one = Ubig::one();
    let n_minus_1 = n - &one;
    // Write n-1 = 2^s * d with d odd.
    let mut s = 0usize;
    let mut d = n_minus_1.clone();
    while d.is_even() {
        d = d >> 1;
        s += 1;
    }
    'witness: for _ in 0..rounds {
        let a = Ubig::random_range(rng, &Ubig::two(), &n_minus_1);
        let mut x = modexp(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = crate::modular::modmul(&x, &x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime with exactly `bits` significant bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Ubig {
    assert!(bits >= 2, "gen_prime: need at least 2 bits");
    loop {
        let mut candidate = Ubig::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate + Ubig::one();
        }
        if candidate.bit_len() != bits {
            continue;
        }
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generates a *safe prime* `p = 2q + 1` (both `p` and `q` prime) with
/// exactly `bits` significant bits. Returns `(p, q)`.
///
/// Safe primes make `p−1 = 2q` have the "large prime factor" required by
/// the Pohlig–Hellman construction, and give a prime-order subgroup of
/// size `q` for Schnorr signatures.
///
/// # Panics
///
/// Panics if `bits < 3`.
pub fn gen_safe_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> (Ubig, Ubig) {
    assert!(bits >= 3, "gen_safe_prime: need at least 3 bits");
    loop {
        let q = gen_prime(bits - 1, rng);
        let p = (&q << 1) + Ubig::one();
        if p.bit_len() == bits && is_prime(&p, rng) {
            return (p, q);
        }
    }
}

/// Generates an RSA-style modulus `n = p·q` from two random primes of
/// `bits/2` bits each. Returns `(n, p, q)`.
///
/// Used by the Benaloh–de Mare one-way accumulator (paper Eq. 8), which
/// requires "`n` is the product of two primes".
///
/// # Panics
///
/// Panics if `bits < 8`.
pub fn gen_rsa_modulus<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> (Ubig, Ubig, Ubig) {
    assert!(bits >= 8, "gen_rsa_modulus: need at least 8 bits");
    let half = bits / 2;
    loop {
        let p = gen_prime(half, rng);
        let q = gen_prime(bits - half, rng);
        if p == q {
            continue;
        }
        let n = &p * &q;
        return (n, p, q);
    }
}

/// Finds a generator of the subgroup of order `q` in `Z_p^*` where
/// `p = 2q + 1` is a safe prime: any `h^2 mod p != 1` works.
pub fn subgroup_generator<R: Rng + ?Sized>(p: &Ubig, rng: &mut R) -> Ubig {
    loop {
        let h = Ubig::random_range(rng, &Ubig::two(), &(p - &Ubig::one()));
        let g = crate::modular::modmul(&h, &h, p);
        if !g.is_one() {
            return g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn small_numbers_classified_correctly() {
        let mut rng = rng();
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 101, 199, 211, 65537];
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 100, 65536, 561, 1105, 6601];
        for p in primes {
            assert!(is_prime(&Ubig::from_u64(p), &mut rng), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(&Ubig::from_u64(c), &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller-Rabin.
        let mut rng = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841] {
            assert!(!is_prime(&Ubig::from_u64(c), &mut rng), "{c}");
        }
    }

    #[test]
    fn known_large_primes_accepted() {
        let mut rng = rng();
        // 2^127 - 1 (Mersenne) and 2^89 - 1 (Mersenne).
        assert!(is_prime(&((Ubig::one() << 127) - Ubig::one()), &mut rng));
        assert!(is_prime(&((Ubig::one() << 89) - Ubig::one()), &mut rng));
        // 2^128 + 51 is a known prime just above 2^128.
        let p = (Ubig::one() << 128) + Ubig::from_u64(51);
        assert!(is_prime(&p, &mut rng));
        // But 2^128 + 1 = 59649589127497217 * 5704689200685129054721.
        assert!(!is_prime(&((Ubig::one() << 128) + Ubig::one()), &mut rng));
    }

    #[test]
    fn gen_prime_produces_primes_of_right_size() {
        let mut rng = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(is_prime(&p, &mut rng));
        }
    }

    #[test]
    fn gen_safe_prime_structure() {
        let mut rng = rng();
        let (p, q) = gen_safe_prime(64, &mut rng);
        assert_eq!(p.bit_len(), 64);
        assert_eq!(p, (&q << 1) + Ubig::one());
        assert!(is_prime(&p, &mut rng));
        assert!(is_prime(&q, &mut rng));
    }

    #[test]
    fn rsa_modulus_factors() {
        let mut rng = rng();
        let (n, p, q) = gen_rsa_modulus(128, &mut rng);
        assert_eq!(&p * &q, n);
        assert!(is_prime(&p, &mut rng));
        assert!(is_prime(&q, &mut rng));
        assert_ne!(p, q);
    }

    #[test]
    fn subgroup_generator_has_order_q() {
        let mut rng = rng();
        let (p, q) = gen_safe_prime(48, &mut rng);
        let g = subgroup_generator(&p, &mut rng);
        assert_eq!(modexp(&g, &q, &p), Ubig::one());
        assert_ne!(g, Ubig::one());
    }
}
