//! Multi-exponentiation: `∏ baseᵢ^{expᵢ} mod n` in one pass.
//!
//! Batched trail verification (§4.1) and cross-ring endorsement checks
//! reduce to a *product of powers* — and evaluating each power with its
//! own ladder wastes the dominant cost, the squaring chain, `k` times
//! over. Both classic multi-exponentiation schedules share **one**
//! chain across all terms:
//!
//! * **Straus interleaving** (small `k`): per-term radix-`2^w` tables,
//!   one shared left-to-right walk; each digit position costs `w`
//!   squarings total plus at most one multiply per term.
//! * **Pippenger bucketing** (large `k`): no per-term tables at all —
//!   at each window position the terms are thrown into `2^c − 1`
//!   digit-value buckets, and the running-product trick evaluates
//!   `∏ bucketᵥ^v` in `2·(2^c − 1)` multiplies regardless of `k`.
//!
//! [`multi_exp`] picks the schedule from the term count and returns a
//! result bit-identical to the product of independent
//! [`MontgomeryContext::modexp`] calls (pinned by the proptest
//! differential suite). Each term is accounted as one
//! `CostKind::MultiExpTerm`; the shared-chain work shows up as the
//! (much smaller) `MontMulStep` total.

use crate::montgomery::{Kernel, MontgomeryContext};
use crate::Ubig;

/// Term count at which Pippenger bucketing overtakes Straus tables.
const PIPPENGER_MIN: usize = 64;

/// `∏ baseᵢ^{expᵢ} mod n` over the modulus of `ctx`.
///
/// Zero-exponent terms contribute the identity; an empty product is
/// `1 mod n`. Bases are reduced mod `n` first, so a base that is a
/// multiple of the modulus annihilates the product exactly as the
/// independent-ladders evaluation would.
#[must_use]
pub fn multi_exp(ctx: &MontgomeryContext, terms: &[(Ubig, Ubig)]) -> Ubig {
    dla_telemetry::record(dla_telemetry::CostKind::MultiExpTerm, terms.len() as u64);
    let live: Vec<&(Ubig, Ubig)> = terms.iter().filter(|(_, e)| !e.is_zero()).collect();
    if live.is_empty() {
        return Ubig::one() % &ctx.modulus();
    }
    let mut kern = ctx.kernel();
    let (out, steps) = if live.len() >= PIPPENGER_MIN {
        pippenger(ctx, &mut kern, &live)
    } else {
        straus(ctx, &mut kern, &live)
    };
    dla_telemetry::record(dla_telemetry::CostKind::MontMulStep, steps);
    out
}

/// `w`-bit digit `d` of `exp` (bits `d·w .. d·w + w`, little-endian).
fn digit(exp: &Ubig, d: usize, w: usize) -> usize {
    let mut v = 0usize;
    for b in 0..w {
        let bit = d * w + b;
        if bit < exp.bit_len() && exp.bit(bit) {
            v |= 1 << b;
        }
    }
    v
}

/// Straus: per-term tables, one shared squaring chain.
fn straus(ctx: &MontgomeryContext, kern: &mut Kernel, terms: &[&(Ubig, Ubig)]) -> (Ubig, u64) {
    let max_bits = terms.iter().map(|(_, e)| e.bit_len()).max().unwrap_or(1);
    let w = match max_bits {
        0..=24 => 2,
        25..=80 => 3,
        _ => 4,
    };
    let mut steps = 0u64;

    // tables[i][v-1] = baseᵢ^v in Montgomery form, v ∈ 1..2^w.
    let tables: Vec<Vec<Vec<u64>>> = terms
        .iter()
        .map(|(base, _)| {
            let base_m = kern.to_mont(ctx, base);
            steps += 1;
            let mut table = Vec::with_capacity((1usize << w) - 1);
            table.push(base_m);
            for v in 2..(1usize << w) {
                let mut next = table[v - 2].clone();
                kern.mul_assign(ctx, &mut next, &table[0]);
                steps += 1;
                table.push(next);
            }
            table
        })
        .collect();

    let digits = max_bits.div_ceil(w);
    let mut acc: Option<Vec<u64>> = None;
    for d in (0..digits).rev() {
        if let Some(a) = &mut acc {
            for _ in 0..w {
                kern.sqr_assign(ctx, a);
                steps += 1;
            }
        }
        for (i, (_, exp)) in terms.iter().enumerate() {
            let v = digit(exp, d, w);
            if v == 0 {
                continue;
            }
            match &mut acc {
                None => acc = Some(tables[i][v - 1].clone()),
                Some(a) => {
                    kern.mul_assign(ctx, a, &tables[i][v - 1]);
                    steps += 1;
                }
            }
        }
    }

    let mut acc = acc.expect("a non-zero exponent has a non-zero digit");
    kern.redc_assign(ctx, &mut acc);
    steps += 1;
    (Ubig::from_limbs(acc), steps)
}

/// Pippenger: digit-value buckets, running-product combination.
fn pippenger(ctx: &MontgomeryContext, kern: &mut Kernel, terms: &[&(Ubig, Ubig)]) -> (Ubig, u64) {
    let max_bits = terms.iter().map(|(_, e)| e.bit_len()).max().unwrap_or(1);
    // Window grows logarithmically with the term count: buckets cost
    // 2·(2^c − 1) multiplies per window regardless of k.
    let lg = usize::BITS - terms.len().leading_zeros();
    let c = (2 * lg as usize / 3).clamp(3, 8);
    let mut steps = 0u64;

    let bases_m: Vec<Vec<u64>> = terms
        .iter()
        .map(|(base, _)| {
            steps += 1;
            kern.to_mont(ctx, base)
        })
        .collect();

    let digits = max_bits.div_ceil(c);
    let mut acc: Option<Vec<u64>> = None;
    let mut buckets: Vec<Option<Vec<u64>>> = vec![None; (1usize << c) - 1];
    for d in (0..digits).rev() {
        if let Some(a) = &mut acc {
            for _ in 0..c {
                kern.sqr_assign(ctx, a);
                steps += 1;
            }
        }
        buckets.iter_mut().for_each(|b| *b = None);
        for (i, (_, exp)) in terms.iter().enumerate() {
            let v = digit(exp, d, c);
            if v == 0 {
                continue;
            }
            match &mut buckets[v - 1] {
                None => buckets[v - 1] = Some(bases_m[i].clone()),
                Some(b) => {
                    kern.mul_assign(ctx, b, &bases_m[i]);
                    steps += 1;
                }
            }
        }
        // ∏ᵥ bucketᵥ^v via suffix running products: walking v from the
        // top, `running` accumulates ∏_{u ≥ v} bucketᵤ and the window
        // value accumulates Σ-weighted products without any powering.
        let mut running: Option<Vec<u64>> = None;
        let mut window: Option<Vec<u64>> = None;
        for v in (1..(1usize << c)).rev() {
            if let Some(b) = &buckets[v - 1] {
                match &mut running {
                    None => running = Some(b.clone()),
                    Some(r) => {
                        kern.mul_assign(ctx, r, b);
                        steps += 1;
                    }
                }
            }
            if let Some(r) = &running {
                match &mut window {
                    None => window = Some(r.clone()),
                    Some(wacc) => {
                        kern.mul_assign(ctx, wacc, r);
                        steps += 1;
                    }
                }
            }
        }
        if let Some(wacc) = window {
            match &mut acc {
                None => acc = Some(wacc),
                Some(a) => {
                    kern.mul_assign(ctx, a, &wacc);
                    steps += 1;
                }
            }
        }
    }

    let mut acc = acc.expect("a non-zero exponent has a non-zero digit");
    kern.redc_assign(ctx, &mut acc);
    steps += 1;
    (Ubig::from_limbs(acc), steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(123)
    }

    fn oracle(ctx: &MontgomeryContext, terms: &[(Ubig, Ubig)]) -> Ubig {
        let n = ctx.modulus();
        terms.iter().fold(Ubig::one() % &n, |acc, (b, e)| {
            ctx.modmul(&acc, &ctx.modexp(b, e))
        })
    }

    #[test]
    fn straus_matches_product_of_ladders() {
        let mut rng = rng();
        for bits in [65usize, 256] {
            let mut n = Ubig::random_bits(&mut rng, bits);
            if n.is_even() {
                n = n + Ubig::one();
            }
            let ctx = MontgomeryContext::new(&n).unwrap();
            for k in [1usize, 2, 5, 17] {
                let terms: Vec<(Ubig, Ubig)> = (0..k)
                    .map(|_| {
                        (
                            Ubig::random_below(&mut rng, &n),
                            Ubig::random_bits(&mut rng, bits - 1),
                        )
                    })
                    .collect();
                assert_eq!(
                    multi_exp(&ctx, &terms),
                    oracle(&ctx, &terms),
                    "bits={bits} k={k}"
                );
            }
        }
    }

    #[test]
    fn pippenger_matches_product_of_ladders() {
        let mut rng = rng();
        let n = (Ubig::one() << 255) - Ubig::from_u64(19);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let terms: Vec<(Ubig, Ubig)> = (0..PIPPENGER_MIN + 9)
            .map(|_| {
                (
                    Ubig::random_below(&mut rng, &n),
                    Ubig::random_bits(&mut rng, 128),
                )
            })
            .collect();
        assert_eq!(multi_exp(&ctx, &terms), oracle(&ctx, &terms));
    }

    #[test]
    fn empty_and_zero_exponent_terms() {
        let n = Ubig::from_u64(1_000_003);
        let ctx = MontgomeryContext::new(&n).unwrap();
        assert_eq!(multi_exp(&ctx, &[]), Ubig::one());
        let terms = vec![
            (Ubig::from_u64(5), Ubig::zero()),
            (Ubig::from_u64(7), Ubig::zero()),
        ];
        assert_eq!(multi_exp(&ctx, &terms), Ubig::one());
        // Zero base with a live exponent annihilates the product.
        let terms = vec![
            (Ubig::from_u64(5), Ubig::from_u64(3)),
            (Ubig::zero(), Ubig::from_u64(2)),
        ];
        assert_eq!(multi_exp(&ctx, &terms), Ubig::zero());
    }

    #[test]
    fn shared_chain_does_fewer_steps_than_ladders() {
        let mut rng = rng();
        let n = (Ubig::one() << 255) - Ubig::from_u64(19);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let terms: Vec<(Ubig, Ubig)> = (0..8)
            .map(|_| {
                (
                    Ubig::random_below(&mut rng, &n),
                    Ubig::random_bits(&mut rng, 254),
                )
            })
            .collect();
        let capture = |f: &dyn Fn() -> Ubig| {
            let recorder = dla_telemetry::Recorder::new();
            let out = {
                let _install = recorder.install();
                f()
            };
            (out, recorder.take().total_cost())
        };
        let (a, multi) = capture(&|| multi_exp(&ctx, &terms));
        let (b, ladders) = capture(&|| oracle(&ctx, &terms));
        assert_eq!(a, b);
        assert_eq!(multi.multi_exp_terms, terms.len() as u64);
        assert!(
            multi.mont_mul_steps < ladders.mont_mul_steps,
            "shared chain {} must beat independent ladders {}",
            multi.mont_mul_steps,
            ladders.mont_mul_steps
        );
    }
}
