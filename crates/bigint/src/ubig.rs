//! [`Ubig`]: arbitrary-precision unsigned integers on `u64` limbs.
//!
//! Representation: little-endian limb vector, always *normalized* (no
//! trailing zero limbs; zero is the empty vector). All public operations
//! preserve normalization.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision unsigned integer.
///
/// `Ubig` supports the usual arithmetic operators (`+`, `-`, `*`, `/`,
/// `%`, `<<`, `>>`) on both owned values and references, comparison,
/// hashing, and conversion to/from decimal and hexadecimal strings as
/// well as big-endian byte strings.
///
/// # Examples
///
/// ```
/// use dla_bigint::Ubig;
///
/// let a: Ubig = "340282366920938463463374607431768211456".parse()?; // 2^128
/// let b = Ubig::one() << 128;
/// assert_eq!(a, b);
/// assert_eq!((&a * &a) >> 128, a);
/// # Ok::<(), dla_bigint::ParseUbigError>(())
/// ```
///
/// # Panics
///
/// Subtraction panics on underflow (use [`Ubig::checked_sub`] to detect
/// it) and division panics on a zero divisor (use [`Ubig::div_rem`]'s
/// documented precondition).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    /// Little-endian limbs, normalized: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

/// Error returned when parsing a [`Ubig`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUbigError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseUbigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit found in string: {c:?}"),
        }
    }
}

impl std::error::Error for ParseUbigError {}

impl Ubig {
    /// The value `0`.
    #[must_use]
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value `1`.
    #[must_use]
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// The value `2`.
    #[must_use]
    pub fn two() -> Self {
        Ubig { limbs: vec![2] }
    }

    /// Constructs a `Ubig` from a `u64`.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }

    /// Constructs a `Ubig` from a `u128`.
    #[must_use]
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut limbs = vec![lo, hi];
        normalize(&mut limbs);
        Ubig { limbs }
    }

    /// Constructs a `Ubig` from little-endian limbs (trailing zeros allowed).
    #[must_use]
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        normalize(&mut limbs);
        Ubig { limbs }
    }

    /// Returns the little-endian limbs of `self`.
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` if `self` is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if `self` is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns `true` if the low bit is clear (zero counts as even).
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns the value as a `u64` if it fits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Returns the value as a `u128` if it fits.
    #[must_use]
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u128::from(self.limbs[0])),
            2 => Some(u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64)),
            _ => None,
        }
    }

    /// Number of significant bits (`0` for zero).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian position), `false` beyond the top.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// `self - rhs`, or `None` on underflow.
    #[must_use]
    pub fn checked_sub(&self, rhs: &Ubig) -> Option<Ubig> {
        if self < rhs {
            None
        } else {
            Some(sub(self, rhs))
        }
    }

    /// Simultaneous quotient and remainder: `(self / rhs, self % rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[must_use]
    pub fn div_rem(&self, rhs: &Ubig) -> (Ubig, Ubig) {
        assert!(!rhs.is_zero(), "division by zero");
        match self.cmp(rhs) {
            Ordering::Less => return (Ubig::zero(), self.clone()),
            Ordering::Equal => return (Ubig::one(), Ubig::zero()),
            Ordering::Greater => {}
        }
        if rhs.limbs.len() == 1 {
            let (q, r) = div_rem_limb(self, rhs.limbs[0]);
            return (q, Ubig::from_u64(r));
        }
        div_rem_knuth(self, rhs)
    }

    /// Big-endian byte representation, without leading zero bytes
    /// (zero yields an empty vector).
    #[must_use]
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Constructs a `Ubig` from big-endian bytes (leading zeros allowed).
    #[must_use]
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        normalize(&mut limbs);
        Ubig { limbs }
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseUbigError`] if the string is empty or contains a
    /// non-hex character.
    pub fn from_hex(s: &str) -> Result<Self, ParseUbigError> {
        if s.is_empty() {
            return Err(ParseUbigError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut limbs: Vec<u64> = Vec::with_capacity(s.len() / 16 + 1);
        let bytes = s.as_bytes();
        let mut idx = bytes.len();
        while idx > 0 {
            let start = idx.saturating_sub(16);
            let chunk = &s[start..idx];
            let v = u64::from_str_radix(chunk, 16).map_err(|_| {
                let bad = chunk
                    .chars()
                    .find(|c| !c.is_ascii_hexdigit())
                    .unwrap_or('?');
                ParseUbigError {
                    kind: ParseErrorKind::InvalidDigit(bad),
                }
            })?;
            limbs.push(v);
            idx = start;
        }
        normalize(&mut limbs);
        Ok(Ubig { limbs })
    }

    /// Lowercase hexadecimal representation (no prefix; `"0"` for zero).
    #[must_use]
    pub fn to_hex(&self) -> String {
        format!("{self:x}")
    }
}

fn normalize(limbs: &mut Vec<u64>) {
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
}

// ---------------------------------------------------------------------------
// Core limb algorithms
// ---------------------------------------------------------------------------

fn add(a: &Ubig, b: &Ubig) -> Ubig {
    let (long, short) = if a.limbs.len() >= b.limbs.len() {
        (&a.limbs, &b.limbs)
    } else {
        (&b.limbs, &a.limbs)
    };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    #[allow(clippy::needless_range_loop)] // parallel walk over two unequal slices
    for i in 0..long.len() {
        let s = u128::from(long[i]) + u128::from(*short.get(i).unwrap_or(&0)) + u128::from(carry);
        out.push(s as u64);
        carry = (s >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    Ubig { limbs: out }
}

/// Precondition: `a >= b`.
fn sub(a: &Ubig, b: &Ubig) -> Ubig {
    debug_assert!(a >= b, "Ubig subtraction underflow");
    let mut out = Vec::with_capacity(a.limbs.len());
    let mut borrow = 0u64;
    for i in 0..a.limbs.len() {
        let bi = *b.limbs.get(i).unwrap_or(&0);
        let (d1, o1) = a.limbs[i].overflowing_sub(bi);
        let (d2, o2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = u64::from(o1) + u64::from(o2);
    }
    assert_eq!(borrow, 0, "Ubig subtraction underflow");
    normalize(&mut out);
    Ubig { limbs: out }
}

fn mul(a: &Ubig, b: &Ubig) -> Ubig {
    if a.is_zero() || b.is_zero() {
        return Ubig::zero();
    }
    let mut out = vec![0u64; a.limbs.len() + b.limbs.len()];
    for (i, &ai) in a.limbs.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.limbs.iter().enumerate() {
            let cur = u128::from(out[i + j]) + u128::from(ai) * u128::from(bj) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.limbs.len();
        while carry != 0 {
            let cur = u128::from(out[k]) + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    normalize(&mut out);
    Ubig { limbs: out }
}

fn shl(a: &Ubig, n: usize) -> Ubig {
    if a.is_zero() || n == 0 {
        return a.clone();
    }
    let (limb_shift, bit_shift) = (n / 64, n % 64);
    let mut out = vec![0u64; a.limbs.len() + limb_shift + 1];
    for (i, &limb) in a.limbs.iter().enumerate() {
        if bit_shift == 0 {
            out[i + limb_shift] = limb;
        } else {
            out[i + limb_shift] |= limb << bit_shift;
            out[i + limb_shift + 1] |= limb >> (64 - bit_shift);
        }
    }
    normalize(&mut out);
    Ubig { limbs: out }
}

fn shr(a: &Ubig, n: usize) -> Ubig {
    if a.is_zero() || n == 0 {
        return a.clone();
    }
    let (limb_shift, bit_shift) = (n / 64, n % 64);
    if limb_shift >= a.limbs.len() {
        return Ubig::zero();
    }
    let mut out = Vec::with_capacity(a.limbs.len() - limb_shift);
    for i in limb_shift..a.limbs.len() {
        let mut limb = a.limbs[i] >> bit_shift;
        if bit_shift > 0 {
            if let Some(&next) = a.limbs.get(i + 1) {
                limb |= next << (64 - bit_shift);
            }
        }
        out.push(limb);
    }
    normalize(&mut out);
    Ubig { limbs: out }
}

fn div_rem_limb(a: &Ubig, d: u64) -> (Ubig, u64) {
    debug_assert!(d != 0);
    let mut out = vec![0u64; a.limbs.len()];
    let mut rem = 0u64;
    for i in (0..a.limbs.len()).rev() {
        let cur = (u128::from(rem) << 64) | u128::from(a.limbs[i]);
        out[i] = (cur / u128::from(d)) as u64;
        rem = (cur % u128::from(d)) as u64;
    }
    normalize(&mut out);
    (Ubig { limbs: out }, rem)
}

/// Knuth TAOCP vol. 2, Algorithm 4.3.1 D. Preconditions checked by caller:
/// `a > b`, `b.limbs.len() >= 2`.
fn div_rem_knuth(a: &Ubig, b: &Ubig) -> (Ubig, Ubig) {
    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = b.limbs.last().unwrap().leading_zeros() as usize;
    let u = shl(a, shift);
    let v = shl(b, shift);
    let n = v.limbs.len();
    let m = u.limbs.len() - n;

    // Working copy of the dividend with one extra high limb.
    let mut un: Vec<u64> = u.limbs.clone();
    un.push(0);
    let vn = &v.limbs;
    let v_top = vn[n - 1];
    let v_next = vn[n - 2];

    let mut q = vec![0u64; m + 1];

    // D2..D7: main loop.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two dividend limbs.
        let num = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
        let mut qhat = num / u128::from(v_top);
        let mut rhat = num % u128::from(v_top);
        while qhat >> 64 != 0
            || qhat * u128::from(v_next) > ((rhat << 64) | u128::from(un[j + n - 2]))
        {
            qhat -= 1;
            rhat += u128::from(v_top);
            if rhat >> 64 != 0 {
                break;
            }
        }

        // D4: multiply-and-subtract qhat * v from un[j .. j+n].
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * u128::from(vn[i]) + carry;
            carry = p >> 64;
            let sub = i128::from(un[j + i]) - i128::from(p as u64) + borrow;
            un[j + i] = sub as u64;
            borrow = sub >> 64; // arithmetic shift: 0 or -1
        }
        let sub = i128::from(un[j + n]) - i128::from(carry as u64) + borrow;
        un[j + n] = sub as u64;
        borrow = sub >> 64;

        // D5/D6: if we over-subtracted, add back one divisor.
        let mut qj = qhat as u64;
        if borrow < 0 {
            qj -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let s = u128::from(un[j + i]) + u128::from(vn[i]) + carry;
                un[j + i] = s as u64;
                carry = s >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(carry as u64);
        }
        q[j] = qj;
    }

    normalize(&mut q);
    // D8: denormalize the remainder.
    let mut r = un;
    r.truncate(n);
    normalize(&mut r);
    let rem = shr(&Ubig { limbs: r }, shift);
    (Ubig { limbs: q }, rem)
}

// ---------------------------------------------------------------------------
// Trait impls
// ---------------------------------------------------------------------------

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $func:path) => {
        impl $trait<&Ubig> for &Ubig {
            type Output = Ubig;
            fn $method(self, rhs: &Ubig) -> Ubig {
                $func(self, rhs)
            }
        }
        impl $trait<Ubig> for Ubig {
            type Output = Ubig;
            fn $method(self, rhs: Ubig) -> Ubig {
                $func(&self, &rhs)
            }
        }
        impl $trait<&Ubig> for Ubig {
            type Output = Ubig;
            fn $method(self, rhs: &Ubig) -> Ubig {
                $func(&self, rhs)
            }
        }
        impl $trait<Ubig> for &Ubig {
            type Output = Ubig;
            fn $method(self, rhs: Ubig) -> Ubig {
                $func(self, &rhs)
            }
        }
    };
}

forward_binop!(Add, add, add);
forward_binop!(Sub, sub, sub);
forward_binop!(Mul, mul, mul);

fn div_op(a: &Ubig, b: &Ubig) -> Ubig {
    a.div_rem(b).0
}

fn rem_op(a: &Ubig, b: &Ubig) -> Ubig {
    a.div_rem(b).1
}

forward_binop!(Div, div, div_op);
forward_binop!(Rem, rem, rem_op);

impl AddAssign<&Ubig> for Ubig {
    fn add_assign(&mut self, rhs: &Ubig) {
        *self = add(self, rhs);
    }
}

impl SubAssign<&Ubig> for Ubig {
    fn sub_assign(&mut self, rhs: &Ubig) {
        *self = sub(self, rhs);
    }
}

impl Shl<usize> for &Ubig {
    type Output = Ubig;
    fn shl(self, n: usize) -> Ubig {
        shl(self, n)
    }
}

impl Shl<usize> for Ubig {
    type Output = Ubig;
    fn shl(self, n: usize) -> Ubig {
        shl(&self, n)
    }
}

impl Shr<usize> for &Ubig {
    type Output = Ubig;
    fn shr(self, n: usize) -> Ubig {
        shr(self, n)
    }
}

impl Shr<usize> for Ubig {
    type Output = Ubig;
    fn shr(self, n: usize) -> Ubig {
        shr(&self, n)
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        Ubig::from_u64(v)
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        Ubig::from_u128(v)
    }
}

impl From<u32> for Ubig {
    fn from(v: u32) -> Self {
        Ubig::from_u64(u64::from(v))
    }
}

impl fmt::LowerHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        let mut iter = self.limbs.iter().rev();
        if let Some(top) = iter.next() {
            s.push_str(&format!("{top:x}"));
        }
        for limb in iter {
            s.push_str(&format!("{limb:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::Display for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel off 19-decimal-digit chunks (10^19 fits in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = div_rem_limb(&cur, CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        let mut iter = chunks.iter().rev();
        if let Some(top) = iter.next() {
            s.push_str(&top.to_string());
        }
        for chunk in iter {
            s.push_str(&format!("{chunk:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ubig({self})")
    }
}

impl FromStr for Ubig {
    type Err = ParseUbigError;

    /// Parses a decimal string.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseUbigError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = Ubig::zero();
        let ten_pow_19 = Ubig::from_u64(10_000_000_000_000_000_000);
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 19).min(bytes.len());
            let chunk = &s[i..end];
            let v: u64 = chunk.parse().map_err(|_| {
                let bad = chunk.chars().find(|c| !c.is_ascii_digit()).unwrap_or('?');
                ParseUbigError {
                    kind: ParseErrorKind::InvalidDigit(bad),
                }
            })?;
            let scale = if end - i == 19 {
                ten_pow_19.clone()
            } else {
                Ubig::from_u64(10u64.pow((end - i) as u32))
            };
            acc = &(&acc * &scale) + &Ubig::from_u64(v);
            i = end;
        }
        Ok(acc)
    }
}

// ---------------------------------------------------------------------------
// Random sampling
// ---------------------------------------------------------------------------

impl Ubig {
    /// Samples a uniform integer in `[0, bound)` using rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: rand::Rng + ?Sized>(rng: &mut R, bound: &Ubig) -> Ubig {
        assert!(!bound.is_zero(), "random_below: zero bound");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(64);
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        loop {
            let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            if let Some(top) = v.last_mut() {
                *top &= top_mask;
            }
            let candidate = Ubig::from_limbs(v);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Samples a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn random_range<R: rand::Rng + ?Sized>(rng: &mut R, lo: &Ubig, hi: &Ubig) -> Ubig {
        assert!(lo < hi, "random_range: empty range");
        let span = hi - lo;
        lo + Ubig::random_below(rng, &span)
    }

    /// Samples a uniform integer with exactly `bits` significant bits
    /// (top bit forced to one).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn random_bits<R: rand::Rng + ?Sized>(rng: &mut R, bits: usize) -> Ubig {
        assert!(bits > 0, "random_bits: zero width");
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = if bits.is_multiple_of(64) {
            64
        } else {
            bits % 64
        };
        let top = v.last_mut().expect("at least one limb");
        if top_bits < 64 {
            *top &= (1u64 << top_bits) - 1;
        }
        *top |= 1u64 << (top_bits - 1);
        Ubig::from_limbs(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn big(v: u128) -> Ubig {
        Ubig::from_u128(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(Ubig::zero().is_zero());
        assert!(Ubig::one().is_one());
        assert!(!Ubig::one().is_zero());
        assert_eq!(Ubig::zero().bit_len(), 0);
        assert_eq!(Ubig::one().bit_len(), 1);
        assert_eq!(Ubig::default(), Ubig::zero());
    }

    #[test]
    fn add_sub_round_trip_u128() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let a: u128 = rng.gen::<u128>() >> 1;
            let b: u128 = rng.gen::<u128>() >> 1;
            assert_eq!(big(a) + big(b), big(a + b));
            let (hi, lo) = if a > b { (a, b) } else { (b, a) };
            assert_eq!(big(hi) - big(lo), big(hi - lo));
        }
    }

    #[test]
    fn mul_matches_u128() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let a: u64 = rng.gen();
            let b: u64 = rng.gen();
            assert_eq!(
                big(u128::from(a)) * big(u128::from(b)),
                big(u128::from(a) * u128::from(b))
            );
        }
    }

    #[test]
    fn mul_carries_across_limbs() {
        let a = Ubig::from_limbs(vec![u64::MAX, u64::MAX]);
        let sq = &a * &a;
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expect = (Ubig::one() << 256) - (Ubig::one() << 129) + Ubig::one();
        assert_eq!(sq, expect);
    }

    #[test]
    fn div_rem_matches_u128() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let a: u128 = rng.gen();
            let b: u128 = rng.gen::<u64>() as u128 + 1;
            let (q, r) = big(a).div_rem(&big(b));
            assert_eq!(q, big(a / b));
            assert_eq!(r, big(a % b));
        }
    }

    #[test]
    fn div_rem_identity_multi_limb() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let a = Ubig::random_bits(&mut rng, 512);
            let b = Ubig::random_bits(&mut rng, 200);
            let (q, r) = a.div_rem(&b);
            assert!(r < b);
            assert_eq!(&(&q * &b) + &r, a);
        }
    }

    #[test]
    fn knuth_add_back_branch_is_exercised() {
        // Classic add-back trigger: dividend 2^128 - 1, divisor 2^64 + 3 style
        // operands plus a brute scan over crafted patterns.
        let a = Ubig::from_limbs(vec![0, u64::MAX, u64::MAX - 1]);
        let b = Ubig::from_limbs(vec![u64::MAX, u64::MAX]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn division_by_self_and_smaller() {
        let a = big(123_456_789_000);
        assert_eq!(a.div_rem(&a), (Ubig::one(), Ubig::zero()));
        let small = big(99);
        assert_eq!(small.div_rem(&a), (Ubig::zero(), small));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Ubig::one().div_rem(&Ubig::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Ubig::one() - Ubig::two();
    }

    #[test]
    fn checked_sub_detects_underflow() {
        assert_eq!(Ubig::one().checked_sub(&Ubig::two()), None);
        assert_eq!(Ubig::two().checked_sub(&Ubig::one()), Some(Ubig::one()));
    }

    #[test]
    fn shifts_match_u128() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let a: u128 = rng.gen();
            let n = rng.gen_range(0..127usize);
            // shl is multiplication by 2^n (checked against Ubig mul so no
            // bits are lost even when the result exceeds 128 bits).
            let pow2 = Ubig::one() << n;
            assert_eq!(big(a) << n, big(a) * pow2);
            assert_eq!(big(a) >> n, big(a >> n));
        }
    }

    #[test]
    fn shl_then_shr_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let a = Ubig::random_bits(&mut rng, 300);
            let n = rng.gen_range(0..500usize);
            assert_eq!((&a << n) >> n, a);
        }
    }

    #[test]
    fn decimal_round_trip() {
        let cases = [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "340282366920938463463374607431768211455",
            "999999999999999999999999999999999999999999999999",
        ];
        for c in cases {
            let v: Ubig = c.parse().unwrap();
            assert_eq!(v.to_string(), c);
        }
    }

    #[test]
    fn hex_round_trip() {
        let cases = ["0", "1", "ff", "deadbeefdeadbeefdeadbeefdeadbeef1"];
        for c in cases {
            let v = Ubig::from_hex(c).unwrap();
            assert_eq!(v.to_hex(), c);
        }
        assert_eq!(Ubig::from_hex("FF").unwrap(), Ubig::from_u64(255));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Ubig>().is_err());
        assert!("12a3".parse::<Ubig>().is_err());
        assert!("-5".parse::<Ubig>().is_err());
        assert!(Ubig::from_hex("xyz").is_err());
        assert!(Ubig::from_hex("").is_err());
        let err = "12a3".parse::<Ubig>().unwrap_err();
        assert!(err.to_string().contains("invalid digit"));
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for bits in [1usize, 8, 63, 64, 65, 256, 513] {
            let a = Ubig::random_bits(&mut rng, bits);
            assert_eq!(Ubig::from_bytes_be(&a.to_bytes_be()), a);
        }
        assert!(Ubig::zero().to_bytes_be().is_empty());
        assert_eq!(Ubig::from_bytes_be(&[0, 0, 7]), Ubig::from_u64(7));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big(5) < big(6));
        assert!(Ubig::from_limbs(vec![0, 1]) > Ubig::from_u64(u64::MAX));
        assert_eq!(Ubig::from_limbs(vec![3, 0, 0]), Ubig::from_u64(3));
    }

    #[test]
    fn bit_access() {
        let v = Ubig::from_u64(0b1010);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(200));
        let big = Ubig::one() << 100;
        assert!(big.bit(100));
        assert_eq!(big.bit_len(), 101);
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let bound = Ubig::from_u64(1000);
        for _ in 0..200 {
            let v = Ubig::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
        // Degenerate bound of one always yields zero.
        assert!(Ubig::random_below(&mut rng, &Ubig::one()).is_zero());
    }

    #[test]
    fn random_bits_has_exact_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for bits in [1usize, 2, 64, 65, 512] {
            let v = Ubig::random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits);
        }
    }

    #[test]
    fn random_range_within_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let lo = Ubig::from_u64(500);
        let hi = Ubig::from_u64(600);
        for _ in 0..100 {
            let v = Ubig::random_range(&mut rng, &lo, &hi);
            assert!(v >= lo && v < hi);
        }
    }

    #[test]
    fn display_pads_and_debug_nonempty() {
        assert_eq!(format!("{}", Ubig::zero()), "0");
        assert_eq!(format!("{:?}", Ubig::zero()), "Ubig(0)");
        assert_eq!(format!("{:x}", Ubig::from_u64(255)), "ff");
        assert_eq!(format!("{:#x}", Ubig::from_u64(255)), "0xff");
    }

    #[test]
    fn conversions_to_native() {
        assert_eq!(Ubig::from_u64(42).to_u64(), Some(42));
        assert_eq!((Ubig::one() << 64).to_u64(), None);
        assert_eq!((Ubig::one() << 64).to_u128(), Some(1u128 << 64));
        assert_eq!((Ubig::one() << 128).to_u128(), None);
    }
}
