#![deny(rust_2018_idioms)]

//! Arbitrary-precision unsigned modular arithmetic for the DLA
//! confidential-auditing stack.
//!
//! The paper's cryptographic substrate — Pohlig–Hellman commutative
//! encryption, Benaloh–de Mare one-way accumulators, Schnorr signatures —
//! needs multi-hundred-bit modular exponentiation, primality testing and
//! safe-prime generation. None of the crates on the approved dependency
//! list provide big integers, so this crate hand-rolls them (see
//! `DESIGN.md` §2, "commutative encryption needs hand-rolling").
//!
//! The centrepiece is [`Ubig`], a little-endian `u64`-limb unsigned
//! integer with schoolbook multiplication and Knuth Algorithm D division —
//! entirely adequate for the 256–1024-bit operands used by the protocols.
//! On top of it sit [`modular`] (modexp / modinv / egcd), [`prime`]
//! (Miller–Rabin, safe primes) and [`field`] (a fixed 61-bit Mersenne
//! prime field used by Shamir secret sharing, where speed matters more
//! than size).
//!
//! # Examples
//!
//! ```
//! use dla_bigint::{Ubig, modular};
//!
//! let p = Ubig::from_u64(1_000_000_007);
//! let x = Ubig::from_u64(1234);
//! let y = modular::modexp(&x, &Ubig::from_u64(1_000_000_006), &p);
//! assert_eq!(y, Ubig::one()); // Fermat's little theorem
//! ```

pub mod field;
pub mod fixed_base;
pub mod jacobi;
pub mod modular;
pub mod montgomery;
pub mod multi_exp;
pub mod prime;
mod ubig;

pub use field::F61;
pub use fixed_base::FixedBase;
pub use multi_exp::multi_exp;
pub use ubig::{ParseUbigError, Ubig};
