//! Property-based tests for `dla-bigint`: ring axioms, division
//! identities, base conversions and modular-arithmetic laws.

use dla_bigint::{modular, Ubig};
use proptest::prelude::*;

/// Strategy: an arbitrary Ubig of up to `limbs` limbs.
fn ubig(limbs: usize) -> impl Strategy<Value = Ubig> {
    prop::collection::vec(any::<u64>(), 0..=limbs).prop_map(Ubig::from_limbs)
}

fn ubig_nonzero(limbs: usize) -> impl Strategy<Value = Ubig> {
    ubig(limbs).prop_map(|v| if v.is_zero() { Ubig::one() } else { v })
}

proptest! {
    #[test]
    fn add_commutative(a in ubig(6), b in ubig(6)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in ubig(5), b in ubig(5), c in ubig(5)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative(a in ubig(5), b in ubig(5)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associative(a in ubig(3), b in ubig(3), c in ubig(3)) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn mul_distributes_over_add(a in ubig(4), b in ubig(4), c in ubig(4)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn add_then_sub_round_trips(a in ubig(6), b in ubig(6)) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_identity(a in ubig(8), b in ubig_nonzero(4)) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn decimal_round_trip(a in ubig(6)) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Ubig>().unwrap(), a);
    }

    #[test]
    fn hex_round_trip(a in ubig(6)) {
        prop_assert_eq!(Ubig::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn bytes_round_trip(a in ubig(6)) {
        prop_assert_eq!(Ubig::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn shift_is_pow2_mul(a in ubig(4), n in 0usize..200) {
        prop_assert_eq!(&a << n, &a * &(Ubig::one() << n));
    }

    #[test]
    fn shr_discards_low_bits(a in ubig(4), n in 0usize..200) {
        let (expect, _) = a.div_rem(&(Ubig::one() << n));
        prop_assert_eq!(&a >> n, expect);
    }

    #[test]
    fn cmp_agrees_with_sub(a in ubig(5), b in ubig(5)) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }

    #[test]
    fn modexp_product_law(a in ubig(2), e1 in 0u64..200, e2 in 0u64..200, m in ubig_nonzero(2)) {
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let lhs = modular::modexp(&a, &Ubig::from_u64(e1 + e2), &m);
        let rhs = modular::modmul(
            &modular::modexp(&a, &Ubig::from_u64(e1), &m),
            &modular::modexp(&a, &Ubig::from_u64(e2), &m),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modinv_is_inverse(a in ubig_nonzero(3), m in ubig_nonzero(3)) {
        if let Some(inv) = modular::modinv(&a, &m) {
            if !m.is_one() {
                prop_assert_eq!(modular::modmul(&a, &inv, &m), Ubig::one() % &m);
            }
        } else {
            prop_assert!(!modular::gcd(&a, &m).is_one());
        }
    }

    #[test]
    fn gcd_divides_both(a in ubig_nonzero(4), b in ubig_nonzero(4)) {
        let g = modular::gcd(&a, &b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f61_field_axioms(x in any::<u64>(), y in any::<u64>(), z in any::<u64>()) {
        use dla_bigint::F61;
        let (a, b, c) = (F61::new(x), F61::new(y), F61::new(z));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, F61::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), F61::ONE);
        }
    }
}
