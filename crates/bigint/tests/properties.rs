//! Property-based tests for `dla-bigint`: ring axioms, division
//! identities, base conversions, modular-arithmetic laws, and the
//! differential oracles for the exponentiation/residue hot paths
//! (windowed vs binary vs schoolbook modexp; Jacobi vs Euler).

use dla_bigint::jacobi::jacobi;
use dla_bigint::montgomery::MontgomeryContext;
use dla_bigint::{modular, prime, Ubig};
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy: an arbitrary Ubig of up to `limbs` limbs.
fn ubig(limbs: usize) -> impl Strategy<Value = Ubig> {
    prop::collection::vec(any::<u64>(), 0..=limbs).prop_map(Ubig::from_limbs)
}

fn ubig_nonzero(limbs: usize) -> impl Strategy<Value = Ubig> {
    ubig(limbs).prop_map(|v| if v.is_zero() { Ubig::one() } else { v })
}

proptest! {
    #[test]
    fn add_commutative(a in ubig(6), b in ubig(6)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in ubig(5), b in ubig(5), c in ubig(5)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative(a in ubig(5), b in ubig(5)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associative(a in ubig(3), b in ubig(3), c in ubig(3)) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn mul_distributes_over_add(a in ubig(4), b in ubig(4), c in ubig(4)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn add_then_sub_round_trips(a in ubig(6), b in ubig(6)) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_identity(a in ubig(8), b in ubig_nonzero(4)) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    // `div_rem` dispatches on the divisor's limb count: exactly one
    // limb takes the short-division path, two or more the Knuth
    // Algorithm D path (whose caller-checked preconditions are `a > b`
    // and `b.limbs.len() >= 2`). Pin each path separately with the
    // multiply-back identity.

    #[test]
    fn div_rem_single_limb_divisor_path(a in ubig(8), d in 1u64..=u64::MAX) {
        let b = Ubig::from_u64(d);
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_rem_knuth_path_preconditions_hold(
        lo in ubig(3),
        b in prop::collection::vec(any::<u64>(), 2..=4)
            .prop_map(|mut v| {
                // Force a true multi-limb divisor: nonzero top limb.
                let last = v.last_mut().expect("len >= 2");
                if *last == 0 { *last = 1; }
                Ubig::from_limbs(v)
            }),
    ) {
        // Construct a dividend strictly above the divisor so the Knuth
        // branch (not the trivial Less/Equal early-outs) is exercised.
        let a = &(&b << 17) + &lo;
        prop_assert!(a > b);
        prop_assert!(b.bit_len() > 64, "divisor must span at least two limbs");
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert!(!q.is_zero());
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn decimal_round_trip(a in ubig(6)) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Ubig>().unwrap(), a);
    }

    #[test]
    fn hex_round_trip(a in ubig(6)) {
        prop_assert_eq!(Ubig::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn bytes_round_trip(a in ubig(6)) {
        prop_assert_eq!(Ubig::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn shift_is_pow2_mul(a in ubig(4), n in 0usize..200) {
        prop_assert_eq!(&a << n, &a * &(Ubig::one() << n));
    }

    #[test]
    fn shr_discards_low_bits(a in ubig(4), n in 0usize..200) {
        let (expect, _) = a.div_rem(&(Ubig::one() << n));
        prop_assert_eq!(&a >> n, expect);
    }

    #[test]
    fn cmp_agrees_with_sub(a in ubig(5), b in ubig(5)) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }

    #[test]
    fn modexp_product_law(a in ubig(2), e1 in 0u64..200, e2 in 0u64..200, m in ubig_nonzero(2)) {
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let lhs = modular::modexp(&a, &Ubig::from_u64(e1 + e2), &m);
        let rhs = modular::modmul(
            &modular::modexp(&a, &Ubig::from_u64(e1), &m),
            &modular::modexp(&a, &Ubig::from_u64(e2), &m),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modinv_is_inverse(a in ubig_nonzero(3), m in ubig_nonzero(3)) {
        if let Some(inv) = modular::modinv(&a, &m) {
            if !m.is_one() {
                prop_assert_eq!(modular::modmul(&a, &inv, &m), Ubig::one() % &m);
            }
        } else {
            prop_assert!(!modular::gcd(&a, &m).is_one());
        }
    }

    #[test]
    fn gcd_divides_both(a in ubig_nonzero(4), b in ubig_nonzero(4)) {
        let g = modular::gcd(&a, &b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential oracle for the tentpole: the sliding-window
    /// Montgomery exponentiation agrees with the bit-at-a-time
    /// Montgomery baseline and the division-based schoolbook ladder on
    /// every window width 1..=6, across 65–512-bit odd moduli.
    #[test]
    fn windowed_binary_schoolbook_agree(
        base in ubig(8),
        exp in ubig(4),
        bits in 65usize..=512,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = {
            let mut m = Ubig::random_bits(&mut rng, bits);
            m = &m + &(Ubig::one() << (bits - 1));
            if m.is_even() { m = &m + &Ubig::one(); }
            m
        };
        let ctx = MontgomeryContext::new(&m).expect("modulus is odd");
        let reference = modular::modexp_schoolbook(&base, &exp, &m);
        prop_assert_eq!(&ctx.modexp_binary(&base, &exp), &reference);
        for window in 1..=6 {
            prop_assert_eq!(&ctx.modexp_windowed(&base, &exp, window), &reference, "window={}", window);
        }
    }

    /// Edge exponents 0, 1, 2 and p−1 (Fermat) against a random odd
    /// prime modulus, for every window width.
    #[test]
    fn windowed_edge_exponents_match(
        base in ubig(6),
        bits in 65usize..=160,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = prime::gen_prime(bits, &mut rng);
        let ctx = MontgomeryContext::new(&p).expect("primes > 2 are odd");
        let edges = [
            Ubig::zero(),
            Ubig::one(),
            Ubig::two(),
            &p - &Ubig::one(),
        ];
        for exp in &edges {
            let reference = modular::modexp_schoolbook(&base, exp, &p);
            for window in 1..=6 {
                prop_assert_eq!(
                    &ctx.modexp_windowed(&base, exp, window),
                    &reference,
                    "window={} exp={}", window, exp
                );
            }
        }
    }

    /// The Jacobi symbol equals the Euler criterion on random odd
    /// primes — the identity the `encode` hot path rests on.
    #[test]
    fn jacobi_matches_euler_criterion(
        bits in 64usize..=192,
        seed in any::<u64>(),
        numerators in prop::collection::vec(any::<u64>(), 1..6),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = prime::gen_prime(bits, &mut rng);
        let q = (&p - &Ubig::one()) >> 1;
        for _ in 0..3 {
            let a = Ubig::random_below(&mut rng, &p);
            let euler = modular::modexp(&a, &q, &p);
            let expect: i8 = if euler.is_zero() || a.is_zero() {
                0
            } else if euler.is_one() {
                1
            } else {
                -1
            };
            prop_assert_eq!(jacobi(&a, &p), expect);
        }
        // Unreduced numerators reduce first.
        for n in numerators {
            let a = Ubig::from_u64(n);
            let shifted = &a + &(&p << 2);
            prop_assert_eq!(jacobi(&a, &p), jacobi(&shifted, &p));
        }
    }

    /// Batch exponentiation is element-wise identical to one-at-a-time.
    #[test]
    fn batch_modexp_matches_pointwise(
        bases in prop::collection::vec(ubig(5), 0..8),
        exp in ubig(3),
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = prime::gen_prime(96, &mut rng);
        let ctx = MontgomeryContext::new(&p).expect("primes > 2 are odd");
        let batched = ctx.modexp_batch(&bases, &exp);
        let pointwise: Vec<Ubig> = bases.iter().map(|b| ctx.modexp(b, &exp)).collect();
        prop_assert_eq!(batched, pointwise);
    }

    /// The accelerated fixed-width kernel path agrees with the generic
    /// PR 4 sliding-window oracle on the same inputs — the differential
    /// that keeps wire transcripts byte-identical.
    #[test]
    fn accel_modexp_matches_generic_oracle(
        base in ubig(8),
        exp in ubig(8),
        bits in 65usize..=512,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = {
            let mut m = Ubig::random_bits(&mut rng, bits);
            m = &m + &(Ubig::one() << (bits - 1));
            if m.is_even() { m = &m + &Ubig::one(); }
            m
        };
        let ctx = MontgomeryContext::new(&m).expect("modulus is odd");
        prop_assert_eq!(ctx.modexp(&base, &exp), ctx.modexp_generic(&base, &exp));
    }

    /// `FixedBase::pow` ≡ `modexp` across 65–512-bit odd moduli, both
    /// inside the table's capacity and through the chunked fallback
    /// (the capacity divisor deliberately undersizes some tables).
    #[test]
    fn fixed_base_matches_modexp(
        base in ubig(8),
        exp in ubig(8),
        bits in 65usize..=512,
        cap_divisor in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = {
            let mut m = Ubig::random_bits(&mut rng, bits);
            m = &m + &(Ubig::one() << (bits - 1));
            if m.is_even() { m = &m + &Ubig::one(); }
            m
        };
        let ctx = MontgomeryContext::new(&m).expect("modulus is odd");
        let fb = dla_bigint::FixedBase::new(&ctx, &base, bits / cap_divisor);
        prop_assert_eq!(fb.pow(&exp), ctx.modexp(&base, &exp));
    }

    /// `multi_exp` ≡ the product of independent ladders, across term
    /// counts that exercise both the Straus and Pippenger schedules.
    #[test]
    fn multi_exp_matches_product_of_ladders(
        k in 0usize..=80,
        bits in 65usize..=256,
        exp_limbs in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = prime::gen_prime(bits, &mut rng);
        let ctx = MontgomeryContext::new(&p).expect("primes > 2 are odd");
        let terms: Vec<(Ubig, Ubig)> = (0..k)
            .map(|_| (
                Ubig::random_below(&mut rng, &p),
                Ubig::random_bits(&mut rng, exp_limbs * 64),
            ))
            .collect();
        let product = terms.iter().fold(&Ubig::one() % &p, |acc, (b, e)| {
            modular::modmul(&acc, &ctx.modexp(b, e), &p)
        });
        prop_assert_eq!(dla_bigint::multi_exp(&ctx, &terms), product);
    }

    /// Edge exponents 0, 1, p−1 (the group order) and p−1 ± 1 agree
    /// between the fixed-base table, the accelerated kernel, and the
    /// schoolbook reference.
    #[test]
    fn fixed_base_and_accel_edge_exponents_match(
        base in ubig(6),
        bits in 65usize..=160,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = prime::gen_prime(bits, &mut rng);
        let ctx = MontgomeryContext::new(&p).expect("primes > 2 are odd");
        let order = &p - &Ubig::one();
        let fb = dla_bigint::FixedBase::new(&ctx, &base, bits);
        let edges = [
            Ubig::zero(),
            Ubig::one(),
            &order - &Ubig::one(),
            order.clone(),
            &order + &Ubig::one(),
        ];
        for exp in &edges {
            let reference = modular::modexp_schoolbook(&base, exp, &p);
            prop_assert_eq!(&ctx.modexp(&base, exp), &reference, "accel exp={}", exp);
            prop_assert_eq!(&fb.pow(exp), &reference, "fixed-base exp={}", exp);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f61_field_axioms(x in any::<u64>(), y in any::<u64>(), z in any::<u64>()) {
        use dla_bigint::F61;
        let (a, b, c) = (F61::new(x), F61::new(y), F61::new(z));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, F61::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), F61::ONE);
        }
    }
}

/// The zero-divisor error path, pinned outside the property blocks: no
/// strategy ever generates a zero divisor, so assert the guard
/// directly.
#[test]
#[should_panic(expected = "division by zero")]
fn div_rem_zero_divisor_panics() {
    let _ = Ubig::from_u64(42).div_rem(&Ubig::zero());
}
