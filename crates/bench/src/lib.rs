#![deny(rust_2018_idioms)]

//! Shared harness for the experiment binaries and Criterion benches
//! that regenerate every table and figure of the paper (see
//! `DESIGN.md` §6 for the experiment index and `EXPERIMENTS.md` for
//! recorded results).

use dla_audit::cluster::{AppUser, ClusterConfig, DlaCluster};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{self, paper_table1, WorkloadConfig};
use dla_logstore::model::Glsn;
use dla_logstore::schema::Schema;
use rand::SeedableRng;
use std::time::Instant;

/// Renders an ASCII table with a title, aligned to column widths.
#[must_use]
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&format!("+{sep}+\n"));
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:<w$} "))
        .collect();
    out.push_str(&format!("|{}|\n", header_line.join("|")));
    out.push_str(&format!("+{sep}+\n"));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        out.push_str(&format!("|{}|\n", line.join("|")));
    }
    out.push_str(&format!("+{sep}+\n"));
    out
}

/// Builds the paper's running example: the 4-node cluster with the
/// Tables 2–5 partition, loaded with Table 1. Returns the cluster, the
/// logging user and the assigned glsns.
///
/// # Panics
///
/// Panics if construction fails (static inputs are valid).
#[must_use]
pub fn paper_cluster(seed: u64) -> (DlaCluster, AppUser, Vec<Glsn>) {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed),
    )
    .expect("paper cluster is valid");
    let user = cluster.register_user("u0").expect("capacity available");
    let glsns = cluster
        .log_records(&user, &paper_table1())
        .expect("Table 1 logs cleanly");
    (cluster, user, glsns)
}

/// Builds an `n`-node cluster over the paper schema loaded with a
/// synthetic workload of `records` records.
///
/// # Panics
///
/// Panics if construction fails.
#[must_use]
pub fn workload_cluster(n: usize, records: usize, seed: u64) -> (DlaCluster, AppUser, Vec<Glsn>) {
    let schema = Schema::paper_example();
    let mut cluster = DlaCluster::new(ClusterConfig::new(n, schema).with_seed(seed))
        .expect("workload cluster is valid");
    let user = cluster.register_user("u0").expect("capacity available");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let data = gen::generate(
        &WorkloadConfig {
            records,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster
        .log_records(&user, &data)
        .expect("workload logs cleanly");
    (cluster, user, glsns)
}

/// Times a closure, returning (result, milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Formats a byte count human-readably.
#[must_use]
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1u64 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let out = render_table(
            "T",
            &["a", "long-header"],
            &[vec!["xx".into(), "y".into()], vec!["1".into(), "2".into()]],
        );
        assert!(out.contains("| xx | y           |"));
        assert!(out.starts_with("T\n+"));
    }

    #[test]
    fn paper_cluster_is_loaded() {
        let (cluster, _, glsns) = paper_cluster(1);
        assert_eq!(glsns.len(), 5);
        assert_eq!(cluster.num_nodes(), 4);
    }

    #[test]
    fn workload_cluster_scales() {
        let (cluster, _, glsns) = workload_cluster(3, 20, 2);
        assert_eq!(glsns.len(), 20);
        assert_eq!(cluster.num_nodes(), 3);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(10), "10 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
    }
}
