//! Experiment P11: epoch-sharded trail scaling. Grows the log trail
//! while holding the audited time window fixed, and shows that
//!
//! * windowed integrity verification (`integrity::check_window`) folds
//!   only the deposits of the epochs overlapping the window — a
//!   constant as the trail grows — while the unsharded baseline
//!   (`integrity::check_trail`) re-folds every deposit ever logged,
//! * the epoch-pruned executor returns byte-identical answers to an
//!   effectively unsharded cluster (one epoch spanning the whole
//!   trail) for the same windowed query.
//!
//! Writes `BENCH_epoch_scaling.json`.
//!
//! Run with: `cargo run -p dla-bench --bin exp_epoch_scaling --release`
//! (pass `--quick` for the CI-sized configuration).

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::exec::ResilientPolicy;
use dla_audit::integrity::{check_trail, check_window, TrailVerdict};
use dla_audit::plan::TimeWindow;
use dla_audit::query::{CmpOp, Criteria, Predicate};
use dla_bench::render_table;
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::{AttrValue, Glsn};
use dla_logstore::schema::Schema;
use rand::SeedableRng;
use std::time::Instant;

const SEED: u64 = 11;
const EPOCH_LEN: u64 = 8;
/// A trail length large enough to disable sharding: every deposit
/// lands in epoch 0, so pruning and windowed checks see one epoch.
const UNSHARDED_EPOCH_LEN: u64 = 1 << 40;
/// The audited window: the first WINDOW_SECS seconds of the workload.
/// Held fixed while the trail grows underneath it.
const WINDOW_SECS: u64 = 720;

struct Row {
    records: usize,
    epochs: usize,
    windowed: TrailVerdict,
    full: TrailVerdict,
    windowed_ms: f64,
    full_ms: f64,
    pruned_query_ms: f64,
    unsharded_query_ms: f64,
    answer_glsns: usize,
    answers_identical: bool,
}

fn loaded_cluster(records: usize, epoch_length: u64) -> DlaCluster {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(SEED)
            .with_epoch_length(epoch_length),
    )
    .expect("cluster builds");
    let user = cluster.register_user("auditor").expect("capacity");
    // Same seed for every trail length: the generated prefix is
    // identical, so the fixed window always covers the same records.
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let workload = generate(
        &WorkloadConfig {
            records,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    cluster.log_records(&user, &workload).expect("logs");
    cluster
}

/// The windowed audit query: `time <= base+WINDOW_SECS AND protocol = UDP`.
fn windowed_criteria(base: u64) -> Criteria {
    Criteria::pred(Predicate::with_const(
        "time",
        CmpOp::Le,
        AttrValue::Time(base + WINDOW_SECS),
    ))
    .and(Criteria::pred(Predicate::with_const(
        "protocol",
        CmpOp::Eq,
        AttrValue::text("UDP"),
    )))
}

fn answer_bytes(glsns: &[Glsn]) -> Vec<u8> {
    let mut sorted: Vec<Glsn> = glsns.to_vec();
    sorted.sort_unstable();
    sorted.iter().flat_map(|g| g.0.to_be_bytes()).collect()
}

fn timed_query(cluster: &mut DlaCluster, criteria: &Criteria, iters: usize) -> (f64, Vec<Glsn>) {
    let normalized = dla_audit::normal::normalize(criteria);
    let mut best_ms = f64::INFINITY;
    let mut answer = Vec::new();
    for _ in 0..iters {
        let started = Instant::now();
        let outcome =
            dla_audit::exec::execute_resilient(cluster, &normalized, &ResilientPolicy::default())
                .expect("query runs");
        best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1000.0);
        answer = outcome.result.glsns;
    }
    (best_ms, answer)
}

fn run_row(records: usize, iters: usize) -> Row {
    let mut sharded = loaded_cluster(records, EPOCH_LEN);
    let mut unsharded = loaded_cluster(records, UNSHARDED_EPOCH_LEN);
    let base = WorkloadConfig::default().start_time;
    let window = TimeWindow {
        lo: Some(base),
        hi: Some(base + WINDOW_SECS),
    };

    let mut windowed_ms = f64::INFINITY;
    let mut full_ms = f64::INFINITY;
    let mut windowed = None;
    let mut full = None;
    for _ in 0..iters {
        let started = Instant::now();
        windowed = Some(check_window(&sharded, &window));
        windowed_ms = windowed_ms.min(started.elapsed().as_secs_f64() * 1000.0);
        let started = Instant::now();
        full = Some(check_trail(&sharded));
        full_ms = full_ms.min(started.elapsed().as_secs_f64() * 1000.0);
    }
    let windowed = windowed.expect("at least one iteration");
    let full = full.expect("at least one iteration");
    assert!(windowed.ok && windowed.chain_ok, "windowed check must pass");
    assert!(full.ok, "full-trail check must pass");

    let criteria = windowed_criteria(base);
    let (pruned_query_ms, pruned_answer) = timed_query(&mut sharded, &criteria, iters);
    let (unsharded_query_ms, unsharded_answer) = timed_query(&mut unsharded, &criteria, iters);
    let answers_identical = answer_bytes(&pruned_answer) == answer_bytes(&unsharded_answer);

    Row {
        records,
        epochs: sharded.epoch_stats().count(),
        windowed,
        full,
        windowed_ms,
        full_ms,
        pruned_query_ms,
        unsharded_query_ms,
        answer_glsns: pruned_answer.len(),
        answers_identical,
    }
}

fn json_row(r: &Row) -> String {
    format!(
        concat!(
            "    {{\"records\": {}, \"epochs\": {}, ",
            "\"windowed_folds\": {}, \"windowed_epochs\": {}, \"full_folds\": {}, ",
            "\"windowed_ms\": {:.3}, \"full_ms\": {:.3}, ",
            "\"pruned_query_ms\": {:.3}, \"unsharded_query_ms\": {:.3}, ",
            "\"answer_glsns\": {}, \"answers_identical\": {}}}"
        ),
        r.records,
        r.epochs,
        r.windowed.items_folded,
        r.windowed.epochs_checked,
        r.full.items_folded,
        r.windowed_ms,
        r.full_ms,
        r.pruned_query_ms,
        r.unsharded_query_ms,
        r.answer_glsns,
        r.answers_identical,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (trail_lengths, iters): (&[usize], usize) = if quick {
        (&[24, 96], 1)
    } else {
        (&[48, 96, 192], 3)
    };

    let rows: Vec<Row> = trail_lengths.iter().map(|&n| run_row(n, iters)).collect();

    // Gates. (1) Answers are byte-identical sharded vs unsharded.
    for r in &rows {
        assert!(
            r.answers_identical,
            "pruned answers diverged from unsharded at {} records",
            r.records
        );
    }
    // (2) The windowed fold count does not move as the trail grows:
    // the window covers the same epochs at every trail length.
    let window_folds = rows[0].windowed.items_folded;
    for r in &rows {
        assert_eq!(
            r.windowed.items_folded, window_folds,
            "windowed folds must stay constant as the trail grows"
        );
        assert_eq!(
            r.full.items_folded, r.records as u64,
            "the full-trail check folds every deposit"
        );
    }
    // (3) At >= 4x trail/window ratio the windowed check folds
    // strictly fewer items than the full-trail re-fold.
    let mut gated = 0usize;
    for r in &rows {
        if r.records as u64 >= 4 * window_folds {
            assert!(
                r.windowed.items_folded < r.full.items_folded,
                "windowed ({}) must fold strictly fewer than full ({}) at {} records",
                r.windowed.items_folded,
                r.full.items_folded,
                r.records
            );
            gated += 1;
        }
    }
    assert!(gated > 0, "at least one row must hit the 4x ratio gate");

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.records.to_string(),
                r.epochs.to_string(),
                format!("{}/{}", r.windowed.items_folded, r.windowed.epochs_checked),
                r.full.items_folded.to_string(),
                format!("{:.2}", r.windowed_ms),
                format!("{:.2}", r.full_ms),
                format!("{:.2}", r.pruned_query_ms),
                r.answer_glsns.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "P11 - EPOCH-SHARDED TRAIL SCALING (epoch={EPOCH_LEN}, window={WINDOW_SECS}s{})",
                if quick { ", quick" } else { "" }
            ),
            &[
                "records",
                "epochs",
                "win folds/ep",
                "full folds",
                "win ms",
                "full ms",
                "query ms",
                "answers",
            ],
            &table
        )
    );
    let last = rows.last().expect("at least one row");
    println!(
        "windowed verification folds {} items regardless of trail length (full-trail: {} at {} \
         records); pruned and unsharded answers byte-identical in every row.",
        window_folds, last.full.items_folded, last.records
    );

    let entries: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"epoch_scaling\",\n  \"quick\": {},\n",
            "  \"epoch_length\": {},\n  \"window_secs\": {},\n",
            "  \"window_folds\": {},\n",
            "  \"rows\": [\n{}\n  ]\n}}\n"
        ),
        quick,
        EPOCH_LEN,
        WINDOW_SECS,
        window_folds,
        entries.join(",\n")
    );
    std::fs::write("BENCH_epoch_scaling.json", &json).expect("write BENCH_epoch_scaling.json");
    println!("\nwrote BENCH_epoch_scaling.json");
}
