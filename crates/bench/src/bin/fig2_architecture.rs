//! Experiment F2: the Figure 2 architecture in action — distributed
//! logging of transaction events across the DLA subsystem, showing
//! fragment placement, deposits, and the auditor-engine query path.
//!
//! Run with: `cargo run -p dla-bench --bin fig2_architecture`

use dla_bench::{fmt_bytes, render_table};

fn main() {
    let (mut cluster, user, glsns) = dla_bench::paper_cluster(2);

    println!("application subsystem: u0 (ticket {})", user.ticket.id);
    println!(
        "DLA subsystem: {} nodes + auditor engine (net id {}) + blind TTP (net id {})\n",
        cluster.num_nodes(),
        cluster.auditor_node(),
        cluster.ttp_node()
    );

    // Fragment placement map.
    let rows: Vec<Vec<String>> = cluster
        .nodes()
        .iter()
        .map(|node| {
            let attrs: Vec<String> = node
                .supported_attributes()
                .iter()
                .map(ToString::to_string)
                .collect();
            vec![
                format!("P{}", node.id()),
                attrs.join(", "),
                node.store().len().to_string(),
                "yes".into(), // deposit replicated at every node
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "DISTRIBUTED LOGGING (Fig. 2): placement after logging Table 1",
            &["node", "supported attributes A_i", "fragments", "deposits"],
            &rows
        )
    );

    let (log_msgs, log_bytes) = {
        let net = cluster.net();
        (net.stats().messages_sent, net.stats().bytes_sent)
    };
    println!(
        "logging traffic: {log_msgs} messages, {}",
        fmt_bytes(log_bytes)
    );

    // The auditing path: query -> subqueries -> secure intersection ->
    // auditing result of T.
    let query = "tid = 'T1100265' AND c2 > 40.00";
    let result = cluster.query(query).expect("query succeeds");
    println!("\nauditing query Q: {query}");
    println!("plan:\n{}", result.plan);
    let hex: Vec<String> = result.glsns.iter().map(ToString::to_string).collect();
    println!("\nauditing result of T (glsn-keyed): [{}]", hex.join(", "));
    for report in &result.reports {
        println!("  {report}");
    }
    assert!(glsns.iter().any(|g| result.glsns.contains(g)));
}
