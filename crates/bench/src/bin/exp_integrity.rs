//! Experiment E8 (§4.1, Eq. 8–9): distributed integrity checking —
//! order-independence of the accumulator circulation, detection rate
//! under random tampering, and message cost vs. cluster size.
//!
//! Run with: `cargo run -p dla-bench --bin exp_integrity --release`

use dla_audit::integrity;
use dla_bench::{render_table, timed};
use dla_logstore::model::AttrValue;
use rand::{Rng, SeedableRng};

fn main() {
    // Part 1: order independence — every initiator reaches the same
    // verdict on the paper cluster.
    let (mut cluster, _, glsns) = dla_bench::paper_cluster(5);
    let mut rows = Vec::new();
    for initiator in 0..cluster.num_nodes() {
        let verdicts = integrity::check_all(&mut cluster, initiator).expect("checks run");
        rows.push(vec![
            format!("P{initiator}"),
            verdicts.len().to_string(),
            verdicts.iter().filter(|v| v.ok).count().to_string(),
            verdicts[0].messages.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            "EQ. 9 ORDER INDEPENDENCE: any node can initiate (clean cluster)",
            &["initiator", "records", "verified", "msgs/record"],
            &rows
        )
    );

    // Part 2: detection rate under random single-attribute tampering.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5005);
    let trials = 100;
    let mut detected = 0;
    let attrs = ["time", "id", "protocol", "tid", "c1", "c2", "c3"];
    for _ in 0..trials {
        let (mut cluster, _, glsns) = dla_bench::paper_cluster(rng.gen());
        let victim_glsn = glsns[rng.gen_range(0..glsns.len())];
        let attr = attrs[rng.gen_range(0..attrs.len())];
        let node = cluster
            .partition()
            .node_of(&attr.into())
            .expect("attr is assigned");
        let value = match attr {
            "time" => AttrValue::Time(rng.gen_range(0..1 << 30)),
            "c1" => AttrValue::Int(rng.gen_range(0..1 << 20)),
            "c2" => AttrValue::Fixed2(rng.gen_range(0..1 << 20)),
            _ => AttrValue::text(&format!("tampered-{}", rng.gen::<u32>())),
        };
        assert!(cluster
            .node_mut(node)
            .store_mut()
            .tamper(victim_glsn, &attr.into(), value));
        let verdict = integrity::check_record(&mut cluster, victim_glsn, 0).expect("check runs");
        if !verdict.ok {
            detected += 1;
        }
    }
    println!("random single-value tampering: {detected}/{trials} detected (expect 100%)\n");

    // Part 3: cost scaling with cluster size.
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16] {
        let (mut cluster, _, glsns) = dla_bench::workload_cluster(n.min(7), 20, 6)
            // The paper schema caps the useful node count at 7 (one
            // attribute each); for larger n we keep 7 attribute owners.
            ;
        let _ = n;
        let (verdict, ms) =
            timed(|| integrity::check_record(&mut cluster, glsns[0], 0).expect("check runs"));
        rows.push(vec![
            cluster.num_nodes().to_string(),
            verdict.messages.to_string(),
            format!("{ms:.2} ms"),
            verdict.ok.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            "CIRCULATION COST vs CLUSTER SIZE (one record)",
            &["nodes", "messages", "wall time", "verdict"],
            &rows
        )
    );
    println!("shape: messages = n (one hop per node), contents never travel.");
    let _ = glsns;
}
