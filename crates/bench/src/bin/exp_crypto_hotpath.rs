//! Experiment P10: the crypto hot-path ablation grid. Runs the same
//! seeded 4-party secure set intersection (256-bit domain, reveal pass)
//! across every combination of
//!
//! * exponentiation algorithm — `schoolbook` (division-based ladder),
//!   `binary` (Montgomery bit-at-a-time), `windowed` (Montgomery
//!   sliding-window with odd-powers table), `accel` (fixed-width
//!   Montgomery kernel with known-order exponent reduction — the
//!   default),
//! * quadratic-residue test for message encoding — `euler` (full
//!   exponent-`q` modexp per pad probe) vs `jacobi` (binary Jacobi
//!   symbol),
//! * batching — `serial` vs `pooled` (scoped worker threads),
//!
//! measuring wall-clock and telemetry op counts per cell. Every cell
//! must return identical answers and message counts; the windowed
//! exponentiation must strictly beat the binary baseline, the full
//! fast path (windowed+jacobi+pooled) must be at least 2× faster than
//! the old default (binary+euler+serial), and the accelerated kernel
//! must be at least 2× faster again than the windowed ladder on the
//! same cell — the PR gate for the fixed-base/multi-exp work.
//!
//! Writes `BENCH_crypto_hotpath.json`.
//!
//! Run with: `cargo run -p dla-bench --bin exp_crypto_hotpath --release`
//! (pass `--quick` for the CI-sized configuration).

use dla_bench::render_table;
use dla_crypto::pohlig_hellman::{BatchMode, CommutativeDomain, ExpAlgo, QrTest};
use dla_mpc::set_intersection::SsiSession;
use dla_net::topology::Ring;
use dla_net::{NetConfig, NodeId, Session, SimLink, SimNet};
use dla_telemetry::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const EXP_ALGOS: [(ExpAlgo, &str); 4] = [
    (ExpAlgo::Schoolbook, "schoolbook"),
    (ExpAlgo::Binary, "binary"),
    (ExpAlgo::Windowed, "windowed"),
    (ExpAlgo::Accel, "accel"),
];
const QR_TESTS: [(QrTest, &str); 2] = [(QrTest::Euler, "euler"), (QrTest::Jacobi, "jacobi")];
const BATCHES: [(BatchMode, &str); 2] = [
    (BatchMode::Serial, "serial"),
    (BatchMode::Pooled { threads: 4 }, "pooled"),
];

struct Cell {
    exp: &'static str,
    qr: &'static str,
    batch: &'static str,
    elapsed_ms: f64,
    modexp: u64,
    mont_mul_steps: u64,
    messages: u64,
    answer: Vec<Vec<u8>>,
}

impl Cell {
    fn modexp_per_sec(&self) -> f64 {
        self.modexp as f64 / (self.elapsed_ms / 1000.0)
    }
}

fn sets(n: usize, size: usize) -> Vec<Vec<Vec<u8>>> {
    (0..n)
        .map(|party| {
            (0..size)
                .map(|i| {
                    if i < size / 2 {
                        format!("shared-{i}").into_bytes()
                    } else {
                        format!("private-{party}-{i}").into_bytes()
                    }
                })
                .collect()
        })
        .collect()
}

/// One seeded SSI run under the given knobs; wall-clock is the best of
/// `iters` repetitions (the telemetry counts are identical every time).
fn run_cell(
    n: usize,
    inputs: &[Vec<Vec<u8>>],
    exp: (ExpAlgo, &'static str),
    qr: (QrTest, &'static str),
    batch: (BatchMode, &'static str),
    iters: usize,
) -> Cell {
    let domain = CommutativeDomain::fixed_256()
        .with_exp_algo(exp.0)
        .with_qr_test(qr.0);
    let mut best_ms = f64::INFINITY;
    let mut result = None;
    for _ in 0..iters {
        let recorder = Recorder::new();
        let mut net = SimNet::new(n, NetConfig::ideal());
        let session_id = net.open_session();
        let link = SimLink::new(&mut net);
        let ring = Ring::canonical(n);
        let mut rng = StdRng::seed_from_u64(1);
        let started = Instant::now();
        let outcome = {
            let _install = recorder.install();
            SsiSession::new(Session::new(&link, session_id), &ring, &domain, NodeId(0))
                .reveal(true)
                .batch(batch.0)
                .run(inputs, &mut rng)
                .expect("ssi runs")
        };
        let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
        let costs = recorder.take().total_cost();
        best_ms = best_ms.min(elapsed_ms);
        result = Some((outcome, costs));
    }
    let (outcome, costs) = result.expect("at least one iteration");
    Cell {
        exp: exp.1,
        qr: qr.1,
        batch: batch.1,
        elapsed_ms: best_ms,
        modexp: costs.modexp,
        mont_mul_steps: costs.mont_mul_steps,
        messages: costs.msgs_sent,
        answer: outcome.common_items.expect("reveal requested"),
    }
}

fn json_cell(c: &Cell) -> String {
    format!(
        concat!(
            "    {{\"exp\": \"{}\", \"qr\": \"{}\", \"batch\": \"{}\", ",
            "\"elapsed_ms\": {:.3}, \"modexp\": {}, \"mont_mul_steps\": {}, ",
            "\"messages\": {}, \"modexp_per_sec\": {:.1}}}"
        ),
        c.exp,
        c.qr,
        c.batch,
        c.elapsed_ms,
        c.modexp,
        c.mont_mul_steps,
        c.messages,
        c.modexp_per_sec(),
    )
}

fn find<'a>(cells: &'a [Cell], exp: &str, qr: &str, batch: &str) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.exp == exp && c.qr == qr && c.batch == batch)
        .expect("grid is complete")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, set_size, iters) = if quick { (3, 8, 3) } else { (4, 16, 7) };
    let inputs = sets(n, set_size);

    let mut cells = Vec::with_capacity(16);
    for exp in EXP_ALGOS {
        for qr in QR_TESTS {
            for batch in BATCHES {
                cells.push(run_cell(n, &inputs, exp, qr, batch, iters));
            }
        }
    }

    // Correctness across the whole grid: every ablation cell computes
    // the same intersection over the same transcript.
    let reference = &cells[0];
    assert!(
        !reference.answer.is_empty(),
        "the shared prefix must intersect"
    );
    for c in &cells[1..] {
        assert_eq!(
            c.answer, reference.answer,
            "{}/{}/{} diverged from {}",
            c.exp, c.qr, c.batch, reference.exp
        );
        assert_eq!(
            c.messages, reference.messages,
            "{}/{}/{} changed the message count",
            c.exp, c.qr, c.batch
        );
    }

    // The windowed ladder must strictly out-run the binary baseline on
    // the same configuration (the CI regression gate).
    let binary = find(&cells, "binary", "jacobi", "serial");
    let windowed = find(&cells, "windowed", "jacobi", "serial");
    assert_eq!(binary.modexp, windowed.modexp);
    assert!(
        windowed.modexp_per_sec() > binary.modexp_per_sec(),
        "windowed modexp throughput ({:.1}/s) must strictly beat binary ({:.1}/s)",
        windowed.modexp_per_sec(),
        binary.modexp_per_sec()
    );
    assert!(
        windowed.mont_mul_steps < binary.mont_mul_steps,
        "windowed must take fewer Montgomery steps than binary"
    );

    // The accelerated kernel: same op counts as the windowed ladder
    // (reduction never fires on in-range Pohlig–Hellman exponents) but
    // at least 2x the throughput — the gate for the fixed-base /
    // multi-exp PR.
    let accel = find(&cells, "accel", "jacobi", "serial");
    assert_eq!(
        accel.modexp, windowed.modexp,
        "accel must perform the same modexp count as windowed"
    );
    assert!(
        accel.mont_mul_steps <= windowed.mont_mul_steps,
        "accel must never take more Montgomery steps than windowed"
    );
    let accel_vs_windowed = windowed.elapsed_ms / accel.elapsed_ms;
    if !quick {
        assert!(
            accel_vs_windowed >= 2.0,
            "accel must be >= 2x over the windowed ladder (got {accel_vs_windowed:.2}x)"
        );
    }

    // Pooled batching with the work-size threshold: batches below the
    // crossover run the serial code path, so `pooled` may never be
    // meaningfully slower than `serial` on the same knobs.
    let accel_pooled = find(&cells, "accel", "jacobi", "pooled");
    assert!(
        accel_pooled.elapsed_ms <= accel.elapsed_ms * 1.5,
        "pooled ({:.2}ms) must stay within 1.5x of serial ({:.2}ms) below the \
         batching crossover",
        accel_pooled.elapsed_ms,
        accel.elapsed_ms
    );

    // Headline speedup: the full fast path vs the old default path.
    let baseline = find(&cells, "binary", "euler", "serial");
    let fast = find(&cells, "windowed", "jacobi", "pooled");
    let speedup = baseline.elapsed_ms / fast.elapsed_ms;
    let windowed_vs_binary = binary.elapsed_ms / windowed.elapsed_ms;
    if !quick {
        assert!(
            speedup >= 2.0,
            "windowed+jacobi+pooled must be >= 2x over binary+euler+serial (got {speedup:.2}x)"
        );
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.exp.to_string(),
                c.qr.to_string(),
                c.batch.to_string(),
                format!("{:.2}", c.elapsed_ms),
                c.modexp.to_string(),
                c.mont_mul_steps.to_string(),
                format!("{:.0}", c.modexp_per_sec()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "P10 - CRYPTO HOT-PATH ABLATION ({n}-party SSI, {set_size}-element sets, 256-bit{})",
                if quick { ", quick" } else { "" }
            ),
            &["exp", "qr", "batch", "ms", "modexp", "mont_steps", "modexp/s"],
            &rows
        )
    );
    println!(
        "speedup: windowed+jacobi+pooled is {speedup:.2}x over binary+euler+serial \
         (windowed vs binary alone: {windowed_vs_binary:.2}x, accel vs windowed: \
         {accel_vs_windowed:.2}x); identical answers and transcripts in all 16 cells."
    );

    let entries: Vec<String> = cells.iter().map(json_cell).collect();
    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"crypto_hotpath\",\n  \"quick\": {},\n",
            "  \"parties\": {},\n  \"set_size\": {},\n  \"modulus_bits\": 256,\n",
            "  \"speedup_fast_vs_baseline\": {:.3},\n",
            "  \"speedup_windowed_vs_binary\": {:.3},\n",
            "  \"speedup_accel_vs_windowed\": {:.3},\n",
            "  \"cells\": [\n{}\n  ]\n}}\n"
        ),
        quick,
        n,
        set_size,
        speedup,
        windowed_vs_binary,
        accel_vs_windowed,
        entries.join(",\n")
    );
    std::fs::write("BENCH_crypto_hotpath.json", &json).expect("write BENCH_crypto_hotpath.json");
    println!("\nwrote BENCH_crypto_hotpath.json");
}
