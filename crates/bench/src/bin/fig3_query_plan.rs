//! Experiment F3: distributed confidential query processing (Fig. 3) —
//! normalization of Q into subqueries SQ_i, classification into pure
//! internal (local) vs. cross auditing predicates, and the final
//! glsn-keyed secure set intersection.
//!
//! Run with: `cargo run -p dla-bench --bin fig3_query_plan`

use dla_audit::normal::normalize;
use dla_audit::parser::parse;
use dla_audit::plan::{plan, SubqueryKind};
use dla_bench::render_table;
use dla_logstore::fragment::Partition;
use dla_logstore::schema::Schema;

fn main() {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);

    // A Figure 3 shaped query: Q = SQ0 ∧ SQ1 ∧ SQ2 ∧ SQ3 with a mix of
    // internal and cross subqueries.
    let q = "time > '20:18:00/05/12/2002' \
             AND (id = 'U1' OR c1 > 40) \
             AND (tid = 'T1100265' OR c3 = 'bank') \
             AND c2 < 400.00";
    println!("auditing query Q from u_j:\n  {q}\n");

    let parsed = parse(q, &schema).expect("query parses");
    let normalized = normalize(&parsed);
    println!(
        "normalized conjunctive form Q_N ({} subqueries):",
        normalized.len()
    );
    for (i, clause) in normalized.clauses().iter().enumerate() {
        println!("  SQ{i} = {clause}");
    }

    let planned = plan(&normalized, &partition).expect("planning succeeds");
    let rows: Vec<Vec<String>> = planned
        .subqueries
        .iter()
        .enumerate()
        .map(|(i, sq)| {
            let (kind, nodes) = match &sq.kind {
                SubqueryKind::Local { node } => ("pure internal".to_owned(), format!("P{node}")),
                SubqueryKind::Cross { nodes } => (
                    "cross (relaxed secure computing)".to_owned(),
                    nodes
                        .iter()
                        .map(|n| format!("P{n}"))
                        .collect::<Vec<_>>()
                        .join(","),
                ),
            };
            vec![format!("SQ{i}"), sq.clause.to_string(), kind, nodes]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            "FIGURE 3 - SUBQUERY PLACEMENT",
            &["SQ", "predicate", "kind", "DLA nodes"],
            &rows
        )
    );
    println!(
        "metric inputs: s = {} atomic predicates, t = {} cross, q = {} conjunctions",
        planned.atom_count, planned.cross_atom_count, planned.conjunct_count
    );

    // Execute on the loaded paper cluster and show the conjunction step.
    let (mut cluster, _, _) = dla_bench::paper_cluster(3);
    let result = cluster.query(q).expect("query executes");
    println!(
        "\nexecuted: {} subquery protocols + final ∩_s on glsn; result = {:?}",
        result.reports.len() - 1,
        result
            .glsns
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    for report in &result.reports {
        println!("  {report}");
    }
}
