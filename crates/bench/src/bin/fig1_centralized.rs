//! Experiment F1: the Figure 1 centralized auditing baseline — one
//! auditor, plaintext repository, full visibility — with its cost and
//! exposure profile, side by side with the DLA cluster on the same
//! workload.
//!
//! Run with: `cargo run -p dla-bench --bin fig1_centralized --release`

use dla_audit::centralized::CentralizedAuditor;
use dla_bench::{fmt_bytes, render_table, timed};
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::schema::Schema;
use rand::SeedableRng;

fn main() {
    let schema = Schema::paper_example();
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let records = generate(
        &WorkloadConfig {
            records: 100,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let queries = [
        "c1 > 50",
        "protocol = 'TCP' AND c2 > 100.00",
        "(id = 'U1' OR id = 'U2') AND c1 < 20",
    ];

    // Centralized (Fig. 1).
    let mut auditor = CentralizedAuditor::new(schema.clone(), 2);
    let user = auditor.register_user().expect("capacity");
    let (_, log_ms) = timed(|| {
        for r in &records {
            auditor.log_record(user, r).expect("logging succeeds");
        }
    });
    let log_msgs = auditor.net().stats().messages_sent;
    let log_bytes = auditor.net().stats().bytes_sent;
    let mut central_rows = Vec::new();
    for q in queries {
        let (result, ms) = timed(|| auditor.query_text(q).expect("query succeeds"));
        central_rows.push(vec![
            q.to_owned(),
            result.len().to_string(),
            format!("{ms:.2} ms"),
            "0".into(),
            "auditor sees ALL attributes of ALL records".into(),
        ]);
    }

    // Distributed (Fig. 2) on the same workload.
    let (mut cluster, _cluster_user, _glsns) = dla_bench::workload_cluster(4, 100, 10);
    let dla_log_msgs = cluster.net().stats().messages_sent;
    let dla_log_bytes = cluster.net().stats().bytes_sent;
    let mut dla_rows = Vec::new();
    for q in queries {
        let (result, ms) = timed(|| cluster.query(q).expect("query succeeds"));
        dla_rows.push(vec![
            q.to_owned(),
            result.glsns.len().to_string(),
            format!("{ms:.2} ms"),
            result.messages.to_string(),
            format!("C_auditing = {:.2}", result.auditing_confidentiality),
        ]);
    }

    println!(
        "{}",
        render_table(
            "FIGURE 1 BASELINE - CENTRALIZED AUDITING (100-record workload)",
            &["query", "matches", "latency", "msgs", "exposure"],
            &central_rows
        )
    );
    println!(
        "logging: {log_msgs} messages, {} plaintext, {log_ms:.1} ms\n",
        fmt_bytes(log_bytes)
    );
    println!(
        "{}",
        render_table(
            "FIGURE 2 SYSTEM - DLA CLUSTER, SAME WORKLOAD",
            &["query", "matches", "latency", "msgs", "exposure"],
            &dla_rows
        )
    );
    println!(
        "logging: {dla_log_msgs} messages, {} (fragmented + deposits)",
        fmt_bytes(dla_log_bytes)
    );
    println!("\nshape: the centralized auditor is cheaper but sees everything;");
    println!("the DLA cluster pays messages/crypto to keep every node partially blind.");
}
