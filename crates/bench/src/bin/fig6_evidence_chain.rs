//! Experiment F6: the Figure 6 evidence chain — member joins as chain
//! pieces e1…e4, end-to-end verification, and the double-invite
//! exposure property.
//!
//! Run with: `cargo run -p dla-bench --bin fig6_evidence_chain`

use dla_audit::membership::{EvidenceChain, MembershipAuthority};
use dla_bench::render_table;
use dla_crypto::schnorr::SchnorrGroup;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(606);
    let group = SchnorrGroup::fixed_256();
    let mut authority = MembershipAuthority::new(&group, &mut rng);

    // Figure 6's P0..P3 join chain.
    let creds: Vec<_> = (0..4)
        .map(|i| authority.enroll(&format!("org-{i}.example"), &mut rng))
        .collect();
    let mut chain = EvidenceChain::found(&authority, &creds[0], "cluster charter", &mut rng);
    for i in 1..4 {
        chain.invite(
            &creds[i - 1],
            &creds[i],
            &format!("PP: serve DLA role #{i}"),
            "SC: agreed",
            &mut rng,
        );
    }

    let rows: Vec<Vec<String>> = chain
        .pieces()
        .iter()
        .map(|p| {
            vec![
                format!("e{}", p.seq + 1),
                p.inviter
                    .as_ref()
                    .map_or("(genesis)".into(), |i| format!("token #{}", i.token.serial)),
                format!("token #{}", p.joiner.token.serial),
                format!("{}…", hex_prefix(&p.digest)),
                p.policy_proposal.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "FIGURE 6 - DLA NODE JOIN CHAIN (evidence pieces)",
            &["piece", "inviter", "joiner", "digest", "bound terms"],
            &rows
        )
    );

    println!("chain verification: {:?}", chain.verify().map(|()| "OK"));
    println!(
        "authorized next inviter: join-token #{}",
        chain.authorized_inviter()
    );
    println!(
        "double-use scan (honest chain): {:?}",
        chain.detect_double_use()
    );

    // One member breaks the one-invite rule.
    let extra = authority.enroll("late-joiner.example", &mut rng);
    chain.invite(&creds[1], &extra, "PP: out of turn", "SC", &mut rng);
    let exposed = chain.detect_double_use();
    println!("\nafter org-1 invites out of turn:");
    for e in &exposed {
        println!(
            "  token #{} double-used -> identity: {}",
            e.serial,
            authority.identify(&e.identity).unwrap_or("<unknown>")
        );
    }
    assert_eq!(exposed.len(), 1);
}

fn hex_prefix(digest: &[u8; 32]) -> String {
    digest[..6].iter().map(|b| format!("{b:02x}")).collect()
}
