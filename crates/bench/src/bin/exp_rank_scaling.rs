//! Experiment P3 (§3.3): blind-TTP secure ranking vs. the classical
//! pairwise-comparison tournament.
//!
//! "However, if all n parties negotiate for a transformation, and let a
//! blind TTP process these transformed numbers, the cost of the three
//! operations will be significantly reduced." — quantified here.
//!
//! Run with: `cargo run -p dla-bench --bin exp_rank_scaling --release`

use dla_bench::{fmt_bytes, render_table, timed};
use dla_crypto::pohlig_hellman::CommutativeDomain;
use dla_mpc::baseline::baseline_ranking;
use dla_mpc::ranking::secure_ranking;
use dla_net::{NetConfig, NodeId, SimNet};
use rand::{Rng, SeedableRng};

fn main() {
    let domain = CommutativeDomain::fixed_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(333);
    let mut rows = Vec::new();

    for n in [2usize, 3, 4, 6, 8] {
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 30)).collect();
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();

        // Relaxed: order-preserving masking + blind TTP.
        let mut net = SimNet::new(n + 1, NetConfig::ideal());
        let (relaxed, relaxed_ms) = timed(|| {
            secure_ranking(&mut net, &parties, NodeId(n), &values, &mut rng).expect("runs")
        });

        // Classical: n(n-1)/2 pairwise Lin–Tzeng comparisons (each a
        // full 2-party commutative-cipher set intersection).
        let mut net = SimNet::new(n, NetConfig::ideal());
        let (classical, classical_ms) = timed(|| {
            baseline_ranking(&mut net, &domain, &parties, &values, &mut rng).expect("runs")
        });

        assert_eq!(relaxed.ascending, classical.ascending, "same ranking");
        rows.push(vec![
            n.to_string(),
            format!(
                "{} / {} / {:.1}ms",
                relaxed.report.messages,
                fmt_bytes(relaxed.report.bytes),
                relaxed_ms
            ),
            format!(
                "{} / {} / {:.1}ms",
                classical.report.messages,
                fmt_bytes(classical.report.bytes),
                classical_ms
            ),
            format!(
                "{:.0}x msgs, {:.0}x time",
                classical.report.messages as f64 / relaxed.report.messages as f64,
                (classical_ms / relaxed_ms).max(1.0)
            ),
        ]);
    }

    println!(
        "{}",
        render_table(
            "P3 - Rank_s: blind-TTP (relaxed, §3.3) vs pairwise 2PC tournament",
            &[
                "n",
                "relaxed msgs/bytes/time",
                "classical msgs/bytes/time",
                "gap"
            ],
            &rows
        )
    );
    println!("shape: relaxed is 3n-1 messages and near-zero crypto; the classical");
    println!("tournament runs O(n^2) two-party set intersections with ~64 modexps");
    println!("each — the cost gap the paper's TTP relaxation buys.");
}
