//! Experiment: adversary detection & collusion confidentiality —
//! every integrity attack class of the threat model replayed from
//! seeds, with detection rate, responsible detector and detection
//! latency per class; an honest baseline proving zero false alarms;
//! and the §5 confidentiality metrics (`C_store`, `C_auditing`,
//! `C_query`, `C_DLA`) measured empirically under curious-coalition
//! patterns up to threshold `k − 1`, next to the paper's pinned
//! formula values.
//!
//! Run with: `cargo run -p dla-bench --bin exp_adversary --release`
//! (pass `--quick` for a reduced sweep, as used by CI).

use dla_audit::adversary::{run_attack, run_coalition, run_honest, AttackClass};
use dla_audit::metrics::paper;
use dla_bench::render_table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: &[u64] = if quick {
        &[0xAD01]
    } else {
        &[0xAD01, 0xAD02, 0xAD03]
    };

    // Part 1: attack classes × seeds — detection rate and latency.
    let mut rows = Vec::new();
    let mut attacks_json = Vec::new();
    let mut undetected = 0usize;
    for class in AttackClass::ALL {
        let mut detected = 0usize;
        let mut messages = 0u64;
        let mut virtual_ns = 0u64;
        let mut by_accumulator = 0usize;
        let mut by_meta = 0usize;
        let mut by_chain = 0usize;
        let mut by_protocol = 0usize;
        for &seed in seeds {
            let report = run_attack(class, seed).expect("attack scenario runs");
            if report.detected.any() {
                detected += 1;
            } else {
                undetected += 1;
            }
            messages += report.messages_to_detect;
            virtual_ns += report.virtual_ns_to_detect;
            by_accumulator += usize::from(report.detected.accumulator);
            by_meta += usize::from(report.detected.meta_journal);
            by_chain += usize::from(report.detected.checkpoint_chain);
            by_protocol += usize::from(report.detected.protocol);
        }
        let trials = seeds.len();
        let mean_messages = messages / trials as u64;
        let mean_ns = virtual_ns / trials as u64;
        rows.push(vec![
            class.key().to_string(),
            format!("{detected}/{trials}"),
            format!("{mean_messages}"),
            format!("{mean_ns}"),
            format!("acc={by_accumulator} meta={by_meta} chain={by_chain} proto={by_protocol}"),
        ]);
        attacks_json.push(format!(
            concat!(
                "    {{\n",
                "      \"class\": \"{class}\",\n",
                "      \"trials\": {trials},\n",
                "      \"detected\": {detected},\n",
                "      \"detection_rate\": {rate:.4},\n",
                "      \"mean_messages_to_detect\": {msgs},\n",
                "      \"mean_virtual_ns_to_detect\": {ns},\n",
                "      \"detected_by\": {{\"accumulator\": {acc}, \"meta_journal\": {meta}, ",
                "\"checkpoint_chain\": {chain}, \"protocol\": {proto}}}\n",
                "    }}",
            ),
            class = class.key(),
            trials = trials,
            detected = detected,
            rate = detected as f64 / trials as f64,
            msgs = mean_messages,
            ns = mean_ns,
            acc = by_accumulator,
            meta = by_meta,
            chain = by_chain,
            proto = by_protocol,
        ));
    }
    println!(
        "{}",
        render_table(
            &format!("ADVERSARY DETECTION ({} seeds/class)", seeds.len()),
            &[
                "attack class",
                "detected",
                "msgs",
                "virtual ns",
                "detectors"
            ],
            &rows
        )
    );

    // Part 2: honest negative control — any detector firing on a clean
    // cluster is a false alarm.
    let mut false_alarms = 0usize;
    for &seed in seeds {
        let report = run_honest(seed).expect("honest baseline runs");
        if report.detected.any() {
            false_alarms += 1;
        }
    }
    println!(
        "honest baseline: {false_alarms} false alarms over {} runs\n",
        seeds.len()
    );

    // Part 3: collusion patterns — §5 metrics measured under curious
    // coalitions, with the transcript leak scan.
    let patterns: &[&[usize]] = &[&[], &[1], &[1, 2], &[1, 2, 3]];
    let mut rows = Vec::new();
    let mut collusion_json = Vec::new();
    let mut leaks = 0usize;
    for &coalition in patterns {
        let report = run_coalition(seeds[0], coalition).expect("coalition scenario runs");
        leaks += report.foreign_plaintext_hits;
        rows.push(vec![
            format!("{coalition:?}"),
            format!("{}", report.observed_domains),
            format!("{:.4}", report.c_store),
            format!("{:.4}", report.c_auditing),
            format!("{:.4}", report.c_query),
            format!("{:.4}", report.c_dla),
            format!(
                "{}/{}",
                report.foreign_plaintext_hits, report.captured_messages
            ),
        ]);
        let members: Vec<String> = report.coalition.iter().map(usize::to_string).collect();
        collusion_json.push(format!(
            concat!(
                "    {{\n",
                "      \"coalition\": [{members}],\n",
                "      \"size\": {size},\n",
                "      \"observed_domains\": {u},\n",
                "      \"c_store\": {cs:.6},\n",
                "      \"c_store_formula\": {csf:.6},\n",
                "      \"c_auditing\": {ca:.6},\n",
                "      \"c_query\": {cq:.6},\n",
                "      \"c_dla\": {cd:.6},\n",
                "      \"captured_messages\": {cap},\n",
                "      \"needles_scanned\": {needles},\n",
                "      \"foreign_plaintext_hits\": {hits}\n",
                "    }}",
            ),
            members = members.join(", "),
            size = report.coalition.len(),
            u = report.observed_domains,
            cs = report.c_store,
            csf = report.c_store_formula,
            ca = report.c_auditing,
            cq = report.c_query,
            cd = report.c_dla,
            cap = report.captured_messages,
            needles = report.needles_scanned,
            hits = report.foreign_plaintext_hits,
        ));
    }
    println!(
        "{}",
        render_table(
            "COLLUSION: §5 metrics under curious coalitions",
            &[
                "coalition",
                "u",
                "C_store",
                "C_auditing",
                "C_query",
                "C_DLA",
                "leaks/seen",
            ],
            &rows
        )
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"adversary\",\n",
            "  \"nodes\": 4,\n",
            "  \"records\": 5,\n",
            "  \"seeds_per_class\": {seeds_n},\n",
            "  \"attacks\": [\n{attacks}\n  ],\n",
            "  \"honest_baseline\": {{\"trials\": {seeds_n}, \"false_alarms\": {fa}}},\n",
            "  \"paper\": {{\"c_store\": {p_cs:.6}, \"c_auditing_fig3\": {p_ca:.6}, ",
            "\"c_auditing_cross\": {p_cx:.6}, \"c_query_fig3\": {p_cq:.6}, ",
            "\"c_dla\": {p_cd:.6}}},\n",
            "  \"collusion\": [\n{collusion}\n  ]\n",
            "}}\n",
        ),
        seeds_n = seeds.len(),
        attacks = attacks_json.join(",\n"),
        fa = false_alarms,
        p_cs = paper::C_STORE,
        p_ca = paper::C_AUDITING_FIG3,
        p_cx = paper::C_AUDITING_CROSS,
        p_cq = paper::C_QUERY_FIG3,
        p_cd = paper::C_DLA,
        collusion = collusion_json.join(",\n"),
    );
    std::fs::write("BENCH_adversary.json", &json).expect("write BENCH_adversary.json");
    println!("wrote BENCH_adversary.json");

    assert_eq!(undetected, 0, "every integrity attack must be detected");
    assert_eq!(false_alarms, 0, "honest runs must raise no alarms");
    assert_eq!(
        leaks, 0,
        "sub-threshold coalitions must learn nothing foreign"
    );
}
