//! Experiment P14: hierarchical federation scaling. Sweeps the
//! sub-ring count (1 → 8) over one fixed many-user workload and shows
//! that
//!
//! * ingest scales: rings absorb deposits in parallel, so the
//!   virtual-time makespan shrinks and deposits/sec grows roughly
//!   linearly with the ring count (gated at ≥ 2x for 4 rings vs 1),
//! * answers are topology-independent: the federated answer digest
//!   (sorted global record indices) is byte-identical at every ring
//!   count, for both broadcast and router-pinned queries,
//! * the root ring catches tampering: a sub-ring presenting a
//!   rewritten checkpoint digest fails the root accumulator
//!   cross-check.
//!
//! Writes `BENCH_federation.json`.
//!
//! Run with: `cargo run -p dla-bench --bin exp_federation --release`
//! (pass `--quick` for the CI-sized configuration).

use dla_audit::federation::{FederatedCluster, FederationConfig};
use dla_bench::render_table;
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::{AttrValue, LogRecord};
use dla_logstore::schema::Schema;
use dla_net::latency::LatencyModel;
use rand::SeedableRng;
use std::time::Instant;

const SEED: u64 = 14;
const EPOCH_LEN: u64 = 8;
/// The broadcast query: no partition pin, every ring answers.
const BROADCAST: &str = "protocol = 'UDP'";
/// The routed query: an `id` equality pins it to one home ring.
const ROUTED: &str = "id = 'U5' AND c1 > 10";

struct Row {
    rings: usize,
    makespan_ns: u64,
    deposits_per_sec: f64,
    broadcast_ms: f64,
    routed_ms: f64,
    rings_routed: usize,
    count_ms: f64,
    count: u64,
    broadcast_digest: String,
    routed_digest: String,
    published: usize,
    root_ok: bool,
    tamper_detected: bool,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn fixed_workload(records: usize, users: usize) -> Vec<LogRecord> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    generate(
        &WorkloadConfig {
            records,
            users,
            ..WorkloadConfig::default()
        },
        &mut rng,
    )
}

/// Builds an `rings`-ring federation and deposits the shared workload
/// record by record in global order (so deposit indices agree across
/// ring counts).
fn loaded_federation(rings: usize, users: usize, workload: &[LogRecord]) -> FederatedCluster {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut fed = FederatedCluster::new(
        FederationConfig::new(rings, 4, schema)
            .with_partition(partition)
            .with_seed(SEED)
            .with_epoch_length(EPOCH_LEN)
            .with_latency(LatencyModel::lan())
            .with_max_users(users),
    )
    .expect("federation builds");
    for u in 1..=users {
        fed.register_user(&format!("U{u}")).expect("capacity");
    }
    for record in workload {
        let Some(AttrValue::Text(id)) = record.get(&"id".into()) else {
            unreachable!("generated records carry an id");
        };
        fed.log_records(id, std::slice::from_ref(record))
            .expect("logs");
    }
    fed
}

fn run_row(rings: usize, users: usize, workload: &[LogRecord], iters: usize) -> Row {
    let mut fed = loaded_federation(rings, users, workload);
    let makespan_ns = fed.ingest_makespan_ns();
    assert!(makespan_ns > 0, "deposits must advance the virtual clock");
    let deposits_per_sec = workload.len() as f64 / (makespan_ns as f64 / 1e9);

    let mut broadcast_ms = f64::INFINITY;
    let mut routed_ms = f64::INFINITY;
    let mut count_ms = f64::INFINITY;
    let mut broadcast_digest = String::new();
    let mut routed_digest = String::new();
    let mut rings_routed = 0;
    let mut count = 0;
    for _ in 0..iters {
        let started = Instant::now();
        let b = fed.query(BROADCAST).expect("broadcast query runs");
        broadcast_ms = broadcast_ms.min(started.elapsed().as_secs_f64() * 1000.0);
        let started = Instant::now();
        let r = fed.query(ROUTED).expect("routed query runs");
        routed_ms = routed_ms.min(started.elapsed().as_secs_f64() * 1000.0);
        let started = Instant::now();
        let c = fed.count(BROADCAST).expect("federated count runs");
        count_ms = count_ms.min(started.elapsed().as_secs_f64() * 1000.0);
        broadcast_digest = hex(&b.answer_digest());
        routed_digest = hex(&r.answer_digest());
        rings_routed = r.rings_queried.len();
        count = c.count;
    }

    // The seal path pushes checkpoints as they happen; the sweep is a
    // no-op and `published()` holds the full archive.
    let swept = fed.publish_checkpoints().expect("publication runs");
    assert_eq!(swept, 0, "push-at-seal must leave nothing for catch-up");
    let published = fed.published().len();
    let root_ok = fed.check_root().ok();
    let mut tampered = fed.published().to_vec();
    tampered[0].checkpoint.items += 1;
    let tamper_detected = !fed.verify_presented(&tampered);

    Row {
        rings,
        makespan_ns,
        deposits_per_sec,
        broadcast_ms,
        routed_ms,
        rings_routed,
        count_ms,
        count,
        broadcast_digest,
        routed_digest,
        published,
        root_ok,
        tamper_detected,
    }
}

fn json_row(r: &Row) -> String {
    format!(
        concat!(
            "    {{\"rings\": {}, \"makespan_ns\": {}, \"deposits_per_sec\": {:.1}, ",
            "\"broadcast_query_ms\": {:.3}, \"routed_query_ms\": {:.3}, ",
            "\"rings_routed\": {}, \"count_ms\": {:.3}, \"count\": {}, ",
            "\"broadcast_digest\": \"{}\", \"routed_digest\": \"{}\", ",
            "\"published\": {}, \"root_ok\": {}, \"tamper_detected\": {}}}"
        ),
        r.rings,
        r.makespan_ns,
        r.deposits_per_sec,
        r.broadcast_ms,
        r.routed_ms,
        r.rings_routed,
        r.count_ms,
        r.count,
        r.broadcast_digest,
        r.routed_digest,
        r.published,
        r.root_ok,
        r.tamper_detected,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (ring_counts, records, users, iters): (&[usize], usize, usize, usize) = if quick {
        (&[1, 2, 4], 144, 48, 1)
    } else {
        (&[1, 2, 4, 8], 288, 64, 3)
    };

    let workload = fixed_workload(records, users);
    let rows: Vec<Row> = ring_counts
        .iter()
        .map(|&r| run_row(r, users, &workload, iters))
        .collect();

    // Gates. (1) Answers are byte-identical at every ring count.
    let broadcast_digest = rows[0].broadcast_digest.clone();
    let routed_digest = rows[0].routed_digest.clone();
    for r in &rows {
        assert_eq!(
            r.broadcast_digest, broadcast_digest,
            "broadcast answer digest diverged at {} rings",
            r.rings
        );
        assert_eq!(
            r.routed_digest, routed_digest,
            "routed answer digest diverged at {} rings",
            r.rings
        );
        assert_eq!(r.count, rows[0].count, "federated count diverged");
    }
    // (2) Ingest scales: 4 rings absorb the same workload in well
    // under half the 1-ring makespan.
    let one = rows.iter().find(|r| r.rings == 1).expect("1-ring row");
    let four = rows.iter().find(|r| r.rings == 4).expect("4-ring row");
    let speedup = one.makespan_ns as f64 / four.makespan_ns as f64;
    assert!(
        speedup >= 2.0,
        "4-ring ingest speedup {speedup:.2}x is below the 2x gate"
    );
    // (3) The router pins the `id` query to one ring; the root
    // accumulator cross-check closes honestly and catches tampering.
    for r in &rows {
        assert_eq!(r.rings_routed, 1, "routed query must touch one ring");
        assert!(r.published > 0, "every ring count must seal epochs");
        assert!(
            r.root_ok,
            "root cross-check must close at {} rings",
            r.rings
        );
        assert!(r.tamper_detected, "tampered checkpoint must be caught");
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.rings.to_string(),
                format!("{:.2}", r.makespan_ns as f64 / 1e6),
                format!("{:.0}", r.deposits_per_sec),
                format!("{:.2}", r.broadcast_ms),
                format!("{:.2}", r.routed_ms),
                format!("{:.2}", r.count_ms),
                r.published.to_string(),
                if r.tamper_detected { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "P14 - FEDERATION SCALING ({records} records, {users} users{})",
                if quick { ", quick" } else { "" }
            ),
            &[
                "rings",
                "makespan ms",
                "dep/s",
                "bcast ms",
                "routed ms",
                "count ms",
                "seals",
                "tamper?",
            ],
            &table
        )
    );
    println!(
        "4-ring ingest speedup {speedup:.2}x over 1 ring; answer digests byte-identical at every \
         ring count; every tampered checkpoint caught by the root accumulator cross-check."
    );

    let entries: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"federation\",\n  \"quick\": {},\n",
            "  \"records\": {},\n  \"users\": {},\n  \"epoch_length\": {},\n",
            "  \"speedup_4x_vs_1\": {:.3},\n",
            "  \"broadcast_digest\": \"{}\",\n  \"routed_digest\": \"{}\",\n",
            "  \"digests_identical\": true,\n  \"tamper_detected\": true,\n",
            "  \"rows\": [\n{}\n  ]\n}}\n"
        ),
        quick,
        records,
        users,
        EPOCH_LEN,
        speedup,
        broadcast_digest,
        routed_digest,
        entries.join(",\n")
    );
    std::fs::write("BENCH_federation.json", &json).expect("write BENCH_federation.json");
    println!("\nwrote BENCH_federation.json");
}
