//! Experiment P5: end-to-end distributed query processing vs. the
//! centralized baseline (Fig. 1 vs Fig. 2) across workload sizes, plus
//! a latency-model ablation (ideal vs LAN vs WAN links) using the
//! simulator's virtual clocks.
//!
//! Run with: `cargo run -p dla-bench --bin exp_query_e2e --release`

use dla_audit::centralized::CentralizedAuditor;
use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::exec::{execute_with_options, ExecMode};
use dla_bench::{fmt_bytes, render_table, timed};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::schema::Schema;
use dla_net::latency::LatencyModel;
use rand::SeedableRng;

const QUERY: &str = "(id = 'U1' OR c1 > 80) AND c2 < 500.00 AND protocol = 'UDP'";

/// Four cross-node clauses (each spans two DLA nodes under the paper
/// partition), so the concurrent scheduler has four independent
/// sessions to overlap.
const SCHED_QUERY: &str = "(id = 'U1' OR c1 > 30) AND (protocol = 'TCP' OR c2 < 400.00) \
     AND (tid = 'T2' OR c2 > 100.00) AND id != c3";

/// One serial-vs-concurrent measurement of [`SCHED_QUERY`].
struct SchedulerRun {
    virtual_ns: u64,
    messages: u64,
    bytes: u64,
    wall_ms: f64,
    subqueries: usize,
    sessions: usize,
    max_concurrent_sessions: usize,
    matches: usize,
}

fn scheduler_run(mode: ExecMode) -> SchedulerRun {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(7)
            .with_latency(LatencyModel::lan()),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let data = generate(
        &WorkloadConfig {
            records: 100,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    cluster.log_records(&user, &data).expect("logs");

    let parsed = dla_audit::parser::parse(SCHED_QUERY, cluster.schema()).expect("parses");
    let normalized = dla_audit::normal::normalize(&parsed);
    let plan = dla_audit::plan::plan(&normalized, cluster.partition()).expect("plans");
    cluster.net_mut().reset_accounting();

    let (result, wall_ms) =
        timed(|| execute_with_options(&mut cluster, &plan, true, mode).expect("query runs"));
    let net = cluster.net();
    SchedulerRun {
        virtual_ns: result.elapsed.as_nanos(),
        messages: result.messages,
        bytes: result.bytes,
        wall_ms,
        subqueries: plan.subqueries.len(),
        sessions: result.sessions.len(),
        max_concurrent_sessions: net.stats().max_concurrent_sessions(),
        matches: result.glsns.len(),
    }
}

fn main() {
    // Part 1: cost vs workload size, distributed vs centralized.
    let mut rows = Vec::new();
    for records in [10usize, 50, 200, 500] {
        let (mut cluster, _, _) = dla_bench::workload_cluster(4, records, 42);
        let before_msgs = cluster.net().stats().messages_sent;
        let before_bytes = cluster.net().stats().bytes_sent;
        let (dla_result, dla_ms) = timed(|| cluster.query(QUERY).expect("query runs"));
        let dla_msgs = cluster.net().stats().messages_sent - before_msgs;
        let dla_bytes = cluster.net().stats().bytes_sent - before_bytes;

        let schema = Schema::paper_example();
        let mut auditor = CentralizedAuditor::new(schema, 2);
        let user = auditor.register_user().expect("capacity");
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let data = generate(
            &WorkloadConfig {
                records,
                ..WorkloadConfig::default()
            },
            &mut rng,
        );
        for r in &data {
            auditor.log_record(user, r).expect("logs");
        }
        let (central_result, central_ms) = timed(|| auditor.query_text(QUERY).expect("query runs"));

        assert_eq!(dla_result.glsns.len(), central_result.len(), "same answers");
        rows.push(vec![
            records.to_string(),
            dla_result.glsns.len().to_string(),
            format!(
                "{dla_ms:.1} ms / {dla_msgs} msgs / {}",
                fmt_bytes(dla_bytes)
            ),
            format!("{central_ms:.2} ms / 0 msgs"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "P5a - END-TO-END QUERY: DLA cluster vs centralized auditor",
            &["records", "matches", "distributed cost", "centralized cost"],
            &rows
        )
    );
    println!("query: {QUERY}");
    println!("shape: identical answers; the DLA cluster pays protocol messages and");
    println!("commutative encryption for auditor blindness. Cost grows with the\nmatch count (set elements), not the store size.\n");

    // Part 2: simulated network latency ablation.
    let mut rows = Vec::new();
    for (label, latency) in [
        ("ideal", LatencyModel::Zero),
        ("LAN", LatencyModel::lan()),
        ("WAN", LatencyModel::wan()),
    ] {
        let schema = Schema::paper_example();
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_seed(7)
                .with_latency(latency),
        )
        .expect("cluster builds");
        let user = cluster.register_user("u").expect("capacity");
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let data = generate(
            &WorkloadConfig {
                records: 100,
                ..WorkloadConfig::default()
            },
            &mut rng,
        );
        cluster.log_records(&user, &data).expect("logs");
        let before = cluster.net().elapsed();
        let result = cluster.query(QUERY).expect("query runs");
        let simulated = cluster.net().elapsed() - before;
        rows.push(vec![
            label.to_owned(),
            result.messages.to_string(),
            format!("{simulated}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "P5b - SIMULATED NETWORK LATENCY ABLATION (100 records, 4 nodes)",
            &["link model", "messages", "simulated protocol latency"],
            &rows
        )
    );
    println!("shape: ring protocols serialize hops, so WAN round-trips dominate");
    println!("end-to-end latency — the cluster belongs on one administrative LAN.");

    // Part 3: serial vs concurrent subquery scheduling on a plan with
    // four independent cross-node subqueries (LAN latency, 4 nodes).
    let serial = scheduler_run(ExecMode::Serial);
    let concurrent = scheduler_run(ExecMode::Concurrent);
    assert_eq!(serial.matches, concurrent.matches, "same answers");
    let speedup = serial.virtual_ns as f64 / concurrent.virtual_ns.max(1) as f64;
    let rows = vec![
        vec![
            "serial".to_owned(),
            format!("{:.3} ms", serial.virtual_ns as f64 / 1e6),
            serial.messages.to_string(),
            fmt_bytes(serial.bytes),
            serial.max_concurrent_sessions.to_string(),
        ],
        vec![
            "concurrent".to_owned(),
            format!("{:.3} ms", concurrent.virtual_ns as f64 / 1e6),
            concurrent.messages.to_string(),
            fmt_bytes(concurrent.bytes),
            concurrent.max_concurrent_sessions.to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            "P5c - SUBQUERY SCHEDULING: serial vs concurrent sessions (LAN, 4 nodes)",
            &[
                "scheduler",
                "virtual latency",
                "messages",
                "bytes",
                "max sessions in flight",
            ],
            &rows
        )
    );
    println!("query: {SCHED_QUERY}");
    println!(
        "shape: {} independent subqueries overlap in {} sessions, so the plan's",
        concurrent.subqueries, concurrent.sessions
    );
    println!("makespan drops from the sum to the max of subquery latencies ({speedup:.2}x).");

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"query_e2e\",\n",
            "  \"query\": \"{query}\",\n",
            "  \"nodes\": 4,\n",
            "  \"records\": 100,\n",
            "  \"latency_model\": \"lan\",\n",
            "  \"subqueries\": {subqueries},\n",
            "  \"matches\": {matches},\n",
            "  \"serial\": {{\n",
            "    \"virtual_latency_ns\": {s_ns},\n",
            "    \"messages\": {s_msgs},\n",
            "    \"bytes\": {s_bytes},\n",
            "    \"wall_ms\": {s_wall:.3},\n",
            "    \"sessions\": {s_sessions},\n",
            "    \"max_concurrent_sessions\": {s_conc}\n",
            "  }},\n",
            "  \"concurrent\": {{\n",
            "    \"virtual_latency_ns\": {c_ns},\n",
            "    \"messages\": {c_msgs},\n",
            "    \"bytes\": {c_bytes},\n",
            "    \"wall_ms\": {c_wall:.3},\n",
            "    \"sessions\": {c_sessions},\n",
            "    \"max_concurrent_sessions\": {c_conc}\n",
            "  }},\n",
            "  \"virtual_speedup\": {speedup:.4}\n",
            "}}\n",
        ),
        query = SCHED_QUERY,
        subqueries = concurrent.subqueries,
        matches = concurrent.matches,
        s_ns = serial.virtual_ns,
        s_msgs = serial.messages,
        s_bytes = serial.bytes,
        s_wall = serial.wall_ms,
        s_sessions = serial.sessions,
        s_conc = serial.max_concurrent_sessions,
        c_ns = concurrent.virtual_ns,
        c_msgs = concurrent.messages,
        c_bytes = concurrent.bytes,
        c_wall = concurrent.wall_ms,
        c_sessions = concurrent.sessions,
        c_conc = concurrent.max_concurrent_sessions,
        speedup = speedup,
    );
    std::fs::write("BENCH_query_e2e.json", &json).expect("write BENCH_query_e2e.json");
    println!("\nwrote BENCH_query_e2e.json");
    assert!(
        concurrent.virtual_ns < serial.virtual_ns,
        "concurrent scheduling must beat serial wall-clock on this plan"
    );
    assert!(
        concurrent.max_concurrent_sessions >= 2,
        "at least two sessions must have been in flight simultaneously"
    );
}
