//! Experiment P5: end-to-end distributed query processing vs. the
//! centralized baseline (Fig. 1 vs Fig. 2) across workload sizes, plus
//! a latency-model ablation (ideal vs LAN vs WAN links) using the
//! simulator's virtual clocks.
//!
//! Run with: `cargo run -p dla-bench --bin exp_query_e2e --release`

use dla_audit::centralized::CentralizedAuditor;
use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_bench::{fmt_bytes, render_table, timed};
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::schema::Schema;
use dla_net::latency::LatencyModel;
use rand::SeedableRng;

const QUERY: &str = "(id = 'U1' OR c1 > 80) AND c2 < 500.00 AND protocol = 'UDP'";

fn main() {
    // Part 1: cost vs workload size, distributed vs centralized.
    let mut rows = Vec::new();
    for records in [10usize, 50, 200, 500] {
        let (mut cluster, _, _) = dla_bench::workload_cluster(4, records, 42);
        let before_msgs = cluster.net().stats().messages_sent;
        let before_bytes = cluster.net().stats().bytes_sent;
        let (dla_result, dla_ms) = timed(|| cluster.query(QUERY).expect("query runs"));
        let dla_msgs = cluster.net().stats().messages_sent - before_msgs;
        let dla_bytes = cluster.net().stats().bytes_sent - before_bytes;

        let schema = Schema::paper_example();
        let mut auditor = CentralizedAuditor::new(schema, 2);
        let user = auditor.register_user().expect("capacity");
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let data = generate(
            &WorkloadConfig {
                records,
                ..WorkloadConfig::default()
            },
            &mut rng,
        );
        for r in &data {
            auditor.log_record(user, r).expect("logs");
        }
        let (central_result, central_ms) =
            timed(|| auditor.query_text(QUERY).expect("query runs"));

        assert_eq!(dla_result.glsns.len(), central_result.len(), "same answers");
        rows.push(vec![
            records.to_string(),
            dla_result.glsns.len().to_string(),
            format!("{dla_ms:.1} ms / {dla_msgs} msgs / {}", fmt_bytes(dla_bytes)),
            format!("{central_ms:.2} ms / 0 msgs"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "P5a - END-TO-END QUERY: DLA cluster vs centralized auditor",
            &["records", "matches", "distributed cost", "centralized cost"],
            &rows
        )
    );
    println!("query: {QUERY}");
    println!("shape: identical answers; the DLA cluster pays protocol messages and");
    println!("commutative encryption for auditor blindness. Cost grows with the\nmatch count (set elements), not the store size.\n");

    // Part 2: simulated network latency ablation.
    let mut rows = Vec::new();
    for (label, latency) in [
        ("ideal", LatencyModel::Zero),
        ("LAN", LatencyModel::lan()),
        ("WAN", LatencyModel::wan()),
    ] {
        let schema = Schema::paper_example();
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_seed(7)
                .with_latency(latency),
        )
        .expect("cluster builds");
        let user = cluster.register_user("u").expect("capacity");
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let data = generate(
            &WorkloadConfig {
                records: 100,
                ..WorkloadConfig::default()
            },
            &mut rng,
        );
        cluster.log_records(&user, &data).expect("logs");
        let before = cluster.net().elapsed();
        let result = cluster.query(QUERY).expect("query runs");
        let simulated = cluster.net().elapsed() - before;
        rows.push(vec![
            label.to_owned(),
            result.messages.to_string(),
            format!("{simulated}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "P5b - SIMULATED NETWORK LATENCY ABLATION (100 records, 4 nodes)",
            &["link model", "messages", "simulated protocol latency"],
            &rows
        )
    );
    println!("shape: ring protocols serialize hops, so WAN round-trips dominate");
    println!("end-to-end latency — the cluster belongs on one administrative LAN.");
}
