//! Experiment: fault tolerance & recovery — query success rate and
//! virtual-time latency under injected message loss/duplication, with
//! and without the reliable (ARQ) transport layer, plus degraded-mode
//! auditing after a node loss.
//!
//! Run with: `cargo run -p dla-bench --bin exp_fault_recovery --release`
//! (pass `--quick` for a reduced sweep, as used by CI).

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::exec::ResilientPolicy;
use dla_bench::render_table;
use dla_logstore::fragment::Partition;
use dla_logstore::gen::paper_table1;
use dla_logstore::model::Glsn;
use dla_logstore::schema::Schema;
use dla_net::latency::LatencyModel;

const DUPLICATE_PROBABILITY: f64 = 0.05;

const QUERIES: &[&str] = &[
    "c2 > 100.00",
    "c1 > 20 and c2 > 40.00",
    "id = 'U2' or c1 > 50",
    "protocol = 'TCP' and c2 > 40.00",
];

/// Queries whose plans touch node 2 (owner of `tid`/`c3`), so killing
/// that node forces the degraded-mode re-plan.
const DEGRADED_QUERIES: &[&str] = &[
    "tid = 'T1100267' and c2 > 100.00",
    "c3 = 'account' or c1 > 50",
];

struct ArmStats {
    successes: usize,
    trials: usize,
    latency_sum_ns: u128,
}

impl ArmStats {
    fn new() -> Self {
        ArmStats {
            successes: 0,
            trials: 0,
            latency_sum_ns: 0,
        }
    }

    fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    fn mean_latency_ns(&self) -> u128 {
        if self.successes == 0 {
            0
        } else {
            self.latency_sum_ns / self.successes as u128
        }
    }
}

fn fresh_cluster(seed: u64) -> DlaCluster {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed)
            .with_latency(LatencyModel::lan())
            .with_standby_replication(),
    )
    .expect("paper cluster is valid");
    let user = cluster.register_user("u0").expect("capacity available");
    cluster
        .log_records(&user, &paper_table1())
        .expect("Table 1 logs cleanly");
    cluster
}

/// Runs one trial arm: fresh cluster, clean-net reference answer, then
/// the same query under injected faults. Success means the faulty run
/// returned exactly the reference glsn set.
fn run_trial(seed: u64, query: &str, drop: f64, reliable: bool, stats: &mut ArmStats) {
    let mut cluster = fresh_cluster(seed);
    let reference: Vec<Glsn> = cluster
        .query(query)
        .expect("clean-net reference query succeeds")
        .glsns;
    {
        let mut net = cluster.net_mut();
        let faults = net.faults_mut();
        faults.drop_probability = drop;
        faults.duplicate_probability = DUPLICATE_PROBABILITY;
    }
    let policy = if reliable {
        ResilientPolicy::default()
    } else {
        ResilientPolicy {
            reliable: None,
            max_attempts: 1,
            ..ResilientPolicy::default()
        }
    };
    stats.trials += 1;
    if let Ok(outcome) = cluster.query_resilient(query, &policy) {
        if outcome.result.glsns == reference {
            stats.successes += 1;
            stats.latency_sum_ns += u128::from(outcome.result.elapsed.as_nanos());
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let drops: &[f64] = if quick {
        &[0.0, 0.05]
    } else {
        &[0.0, 0.02, 0.05, 0.10]
    };
    let trials = if quick { 4 } else { 20 };

    // Part 1: drop-probability sweep, unprotected vs reliable.
    let mut rows = Vec::new();
    let mut sweep_json = Vec::new();
    for (pi, &drop) in drops.iter().enumerate() {
        let mut unprotected = ArmStats::new();
        let mut protected = ArmStats::new();
        for trial in 0..trials {
            let seed = 0xFA01 + (pi as u64) * 1_000 + trial as u64;
            let query = QUERIES[trial % QUERIES.len()];
            run_trial(seed, query, drop, false, &mut unprotected);
            run_trial(seed, query, drop, true, &mut protected);
        }
        rows.push(vec![
            format!("{drop:.2}"),
            format!(
                "{}/{} ({:.0}%)",
                unprotected.successes,
                unprotected.trials,
                unprotected.rate() * 100.0
            ),
            format!(
                "{}/{} ({:.0}%)",
                protected.successes,
                protected.trials,
                protected.rate() * 100.0
            ),
            format!("{}", unprotected.mean_latency_ns()),
            format!("{}", protected.mean_latency_ns()),
        ]);
        sweep_json.push(format!(
            concat!(
                "    {{\n",
                "      \"drop_probability\": {drop},\n",
                "      \"unprotected\": {{\"successes\": {us}, \"trials\": {ut}, ",
                "\"success_rate\": {ur:.4}, \"mean_virtual_latency_ns\": {ul}}},\n",
                "      \"reliable\": {{\"successes\": {ps}, \"trials\": {pt}, ",
                "\"success_rate\": {pr:.4}, \"mean_virtual_latency_ns\": {pl}}}\n",
                "    }}",
            ),
            drop = drop,
            us = unprotected.successes,
            ut = unprotected.trials,
            ur = unprotected.rate(),
            ul = unprotected.mean_latency_ns(),
            ps = protected.successes,
            pt = protected.trials,
            pr = protected.rate(),
            pl = protected.mean_latency_ns(),
        ));
    }
    println!(
        "{}",
        render_table(
            &format!(
                "FAULT RECOVERY: query success under loss (dup = {DUPLICATE_PROBABILITY}, \
                 {trials} trials/point)"
            ),
            &[
                "drop",
                "unprotected",
                "reliable",
                "lat(unprot) ns",
                "lat(rel) ns",
            ],
            &rows
        )
    );

    // Part 2: degraded-mode auditing — kill a node mid-service; the
    // resilient ladder must detect it, re-replicate from standbys and
    // answer from the survivor set.
    let loss_trials = if quick { 2 } else { 8 };
    let mut recovered = 0;
    let mut replans = 0;
    for trial in 0..loss_trials {
        let query = DEGRADED_QUERIES[trial % DEGRADED_QUERIES.len()];
        let mut cluster = fresh_cluster(0xDEAD + trial as u64);
        let reference = cluster
            .query(query)
            .expect("clean-net reference query succeeds")
            .glsns;
        cluster.net_mut().faults_mut().kill_node(2);
        let outcome = cluster
            .query_resilient(query, &ResilientPolicy::default())
            .expect("resilient query survives a node loss");
        if outcome.result.glsns == reference {
            recovered += 1;
        }
        replans += outcome.replans as usize;
        assert!(
            outcome.repairs.iter().all(|r| r.is_fully_verified()),
            "re-replication must verify against the deposits"
        );
    }
    println!(
        "node loss: {recovered}/{loss_trials} queries answered correctly from the \
         survivor set ({replans} re-plans, all repairs accumulator-verified)\n"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"fault_recovery\",\n",
            "  \"nodes\": 4,\n",
            "  \"records\": 5,\n",
            "  \"duplicate_probability\": {dup},\n",
            "  \"trials_per_point\": {trials},\n",
            "  \"sweep\": [\n{sweep}\n  ],\n",
            "  \"node_loss\": {{\"trials\": {lt}, \"recovered\": {rec}, \"replans\": {rp}}}\n",
            "}}\n",
        ),
        dup = DUPLICATE_PROBABILITY,
        trials = trials,
        sweep = sweep_json.join(",\n"),
        lt = loss_trials,
        rec = recovered,
        rp = replans,
    );
    std::fs::write("BENCH_fault_recovery.json", &json).expect("write BENCH_fault_recovery.json");
    println!("wrote BENCH_fault_recovery.json");

    assert_eq!(
        recovered, loss_trials,
        "degraded-mode execution must reproduce the reference answers"
    );
}
