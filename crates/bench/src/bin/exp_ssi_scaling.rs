//! Experiment P2: commutative-encryption set intersection cost vs. set
//! size and party count (§3.1), plus the effect of the domain width
//! (256- vs 512-bit safe primes).
//!
//! Run with: `cargo run -p dla-bench --bin exp_ssi_scaling --release`

use dla_bench::{fmt_bytes, render_table, timed};
use dla_crypto::pohlig_hellman::CommutativeDomain;
use dla_mpc::set_intersection::secure_set_intersection;
use dla_net::topology::Ring;
use dla_net::{NetConfig, NodeId, SimNet};
use rand::SeedableRng;

fn run_once(
    n: usize,
    set_size: usize,
    domain: &CommutativeDomain,
    seed: u64,
) -> (dla_mpc::set_intersection::SsiOutcome, f64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut net = SimNet::new(n, NetConfig::ideal());
    let ring = Ring::canonical(n);
    // Half the elements are shared by everyone; the rest are private.
    let inputs: Vec<Vec<Vec<u8>>> = (0..n)
        .map(|party| {
            (0..set_size)
                .map(|i| {
                    if i < set_size / 2 {
                        format!("shared-{i}").into_bytes()
                    } else {
                        format!("private-{party}-{i}").into_bytes()
                    }
                })
                .collect()
        })
        .collect();
    timed(move || {
        secure_set_intersection(&mut net, &ring, domain, &inputs, NodeId(0), false, &mut rng)
            .expect("protocol runs")
    })
}

fn main() {
    let domain256 = CommutativeDomain::fixed_256();
    let domain512 = CommutativeDomain::fixed_512();

    // Sweep party count at fixed set size.
    let mut rows = Vec::new();
    for n in [2usize, 3, 4, 6, 8] {
        let (outcome, ms) = run_once(n, 16, &domain256, n as u64);
        assert_eq!(outcome.cardinality(), 8);
        rows.push(vec![
            n.to_string(),
            outcome.report.messages.to_string(),
            fmt_bytes(outcome.report.bytes),
            format!("{ms:.1} ms"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "P2a - SSI vs PARTY COUNT (16-element sets, 256-bit domain)",
            &["parties", "messages", "bytes", "wall time"],
            &rows
        )
    );
    println!("shape: n(n-1)+n messages — quadratic relays dominate.\n");

    // Sweep set size at fixed party count.
    let mut rows = Vec::new();
    for set_size in [4usize, 16, 64, 256] {
        let (outcome, ms) = run_once(3, set_size, &domain256, 100 + set_size as u64);
        assert_eq!(outcome.cardinality(), set_size / 2);
        rows.push(vec![
            set_size.to_string(),
            outcome.report.messages.to_string(),
            fmt_bytes(outcome.report.bytes),
            format!("{ms:.1} ms"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "P2b - SSI vs SET SIZE (3 parties, 256-bit domain)",
            &["set size", "messages", "bytes", "wall time"],
            &rows
        )
    );
    println!("shape: messages constant in set size; bytes and CPU linear.\n");

    // Domain width ablation.
    let mut rows = Vec::new();
    for (label, domain) in [("256-bit", &domain256), ("512-bit", &domain512)] {
        let (outcome, ms) = run_once(3, 32, domain, 999);
        rows.push(vec![
            label.to_owned(),
            fmt_bytes(outcome.report.bytes),
            format!("{ms:.1} ms"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "P2c - DOMAIN WIDTH ABLATION (3 parties, 32-element sets)",
            &["safe prime", "bytes", "wall time"],
            &rows
        )
    );
    println!("shape: doubling the modulus doubles bytes and ~4-8x's the modexp cost.");
}
