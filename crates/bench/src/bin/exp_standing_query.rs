//! Experiment P16: standing queries and per-epoch materialized
//! aggregates. Grows the log trail while holding the audited time
//! window fixed, and shows that
//!
//! * a windowed bucket aggregate answered from the partials cached at
//!   seal time touches a near-constant number of fragments (only the
//!   window's boundary epochs are scanned; covered epochs combine
//!   O(1) cached partials), while the full-rescan baseline touches
//!   every fragment ever logged — with byte-identical answers on both
//!   paths in every row,
//! * a standing subscription's accumulated per-epoch deltas equal a
//!   fresh whole-trail query restricted to sealed epochs — the
//!   subscriber never re-scans history it has already been pushed,
//! * the same holds on a federated topology, where deltas relay
//!   through the root ring with no driver poll.
//!
//! Writes `BENCH_standing_query.json`.
//!
//! Run with: `cargo run -p dla-bench --bin exp_standing_query --release`
//! (pass `--quick` for the CI-sized configuration).

use dla_audit::aggregate::{windowed_bucket_aggregate, AggregatePath};
use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::federation::{FederatedCluster, FederationConfig};
use dla_audit::plan::TimeWindow;
use dla_bench::render_table;
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::{AttrValue, Glsn};
use dla_logstore::schema::Schema;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::time::Instant;

const SEED: u64 = 13;
const EPOCH_LEN: u64 = 8;
/// The audited window: the first WINDOW_SECS seconds of the workload,
/// held fixed while the trail grows underneath it.
const WINDOW_SECS: u64 = 720;
const STANDING_CRITERIA: &str = "protocol = 'UDP'";

struct Row {
    records: usize,
    epochs: usize,
    sealed_epochs: usize,
    epochs_cached: usize,
    cached_fragments: u64,
    rescan_fragments: u64,
    cached_ms: f64,
    rescan_ms: f64,
    cached_count: u64,
    cached_sum: i64,
    identical: bool,
    standing_matches: usize,
    standing_identical: bool,
    catchup_ms: f64,
    fresh_ms: f64,
}

fn loaded_cluster(records: usize) -> DlaCluster {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(SEED)
            .with_epoch_length(EPOCH_LEN),
    )
    .expect("cluster builds");
    let user = cluster.register_user("auditor").expect("capacity");
    // Same seed for every trail length: the generated prefix is
    // identical, so the fixed window always covers the same records.
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let workload = generate(
        &WorkloadConfig {
            records,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    cluster.log_records(&user, &workload).expect("logs");
    cluster
}

/// The glsns of sealed epochs — the domain a standing subscription has
/// covered.
fn sealed_glsns(cluster: &DlaCluster) -> BTreeSet<Glsn> {
    cluster
        .epoch_stats()
        .filter(|s| s.sealed && s.deposits > 0)
        .flat_map(|s| (s.glsn_lo.0..=s.glsn_hi.0).map(Glsn))
        .collect()
}

fn run_row(records: usize, iters: usize) -> Row {
    let mut cluster = loaded_cluster(records);
    let base = WorkloadConfig::default().start_time;
    let window = TimeWindow {
        lo: Some(base),
        hi: Some(base + WINDOW_SECS),
    };
    let attr = "protocol".into();
    let sum_attr = "c1".into();

    let mut cached_ms = f64::INFINITY;
    let mut rescan_ms = f64::INFINITY;
    let mut cached = None;
    let mut rescan = None;
    for _ in 0..iters {
        let started = Instant::now();
        cached = Some(
            windowed_bucket_aggregate(
                &cluster,
                &attr,
                "UDP",
                Some(&sum_attr),
                &window,
                AggregatePath::Cached,
            )
            .expect("cached aggregate"),
        );
        cached_ms = cached_ms.min(started.elapsed().as_secs_f64() * 1000.0);
        let started = Instant::now();
        rescan = Some(
            windowed_bucket_aggregate(
                &cluster,
                &attr,
                "UDP",
                Some(&sum_attr),
                &window,
                AggregatePath::Rescan,
            )
            .expect("rescan aggregate"),
        );
        rescan_ms = rescan_ms.min(started.elapsed().as_secs_f64() * 1000.0);
    }
    let cached = cached.expect("at least one iteration");
    let rescan = rescan.expect("at least one iteration");
    let identical = cached.count == rescan.count && cached.sum == rescan.sum;

    // The standing leg: register once (catch-up evaluates every sealed
    // epoch), then compare against a fresh whole-trail query restricted
    // to sealed epochs.
    let started = Instant::now();
    let id = cluster
        .register_standing(STANDING_CRITERIA)
        .expect("registers");
    let catchup_ms = started.elapsed().as_secs_f64() * 1000.0;
    let accumulated: Vec<Glsn> = cluster.standing_matches(id).expect("matches");
    let sealed = sealed_glsns(&cluster);
    let started = Instant::now();
    let fresh: Vec<Glsn> = cluster
        .query_shared(STANDING_CRITERIA)
        .expect("fresh query")
        .glsns
        .into_iter()
        .filter(|g| sealed.contains(g))
        .collect();
    let fresh_ms = started.elapsed().as_secs_f64() * 1000.0;
    let mut fresh_sorted = fresh;
    fresh_sorted.sort_unstable();
    let standing_identical = accumulated == fresh_sorted;

    Row {
        records,
        epochs: cluster.epoch_stats().count(),
        sealed_epochs: cluster.epoch_stats().filter(|s| s.sealed).count(),
        epochs_cached: cached.epochs_cached,
        cached_fragments: cached.fragments_scanned,
        rescan_fragments: rescan.fragments_scanned,
        cached_ms,
        rescan_ms,
        cached_count: cached.count,
        cached_sum: cached.sum.unwrap_or(0),
        identical,
        standing_matches: accumulated.len(),
        standing_identical,
        catchup_ms,
        fresh_ms,
    }
}

/// The federated leg: a federation whose sub-ring seals push standing
/// deltas through the root ring with no driver poll. Returns (records
/// relayed, whether the accumulated answer equals the fresh federated
/// answer restricted to sealed epochs, checkpoints pushed at seal).
fn run_federated(records: usize) -> (usize, bool, usize) {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let users = 8usize;
    let mut fed = FederatedCluster::new(
        FederationConfig::new(3, 4, schema)
            .with_partition(partition)
            .with_seed(SEED)
            .with_epoch_length(4)
            .with_max_users(users),
    )
    .expect("federation builds");
    let id = fed
        .register_standing(STANDING_CRITERIA)
        .expect("registers before any deposit");
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let workload = generate(
        &WorkloadConfig {
            records,
            users,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    for u in 1..=users {
        fed.register_user(&format!("U{u}")).expect("capacity");
    }
    for record in &workload {
        let Some(AttrValue::Text(user)) = record.get(&"id".into()) else {
            unreachable!("generated records carry an id");
        };
        fed.log_records(user, std::slice::from_ref(record))
            .expect("logs");
    }
    // Sealed deposit indices across the federation.
    let mut sealed: BTreeSet<u64> = BTreeSet::new();
    for ring in fed.rings() {
        for glsn in sealed_glsns(ring) {
            if let Some(index) = fed.deposit_index(glsn) {
                sealed.insert(index);
            }
        }
    }
    let accumulated = fed.standing_matches(id).expect("matches");
    let fresh: Vec<u64> = fed
        .query(STANDING_CRITERIA)
        .expect("fresh federated query")
        .records
        .into_iter()
        .filter(|index| sealed.contains(index))
        .collect();
    let identical = accumulated == fresh;
    (accumulated.len(), identical, fed.published().len())
}

fn json_row(r: &Row) -> String {
    format!(
        concat!(
            "    {{\"records\": {}, \"epochs\": {}, \"sealed_epochs\": {}, ",
            "\"epochs_cached\": {}, \"cached_fragments\": {}, \"rescan_fragments\": {}, ",
            "\"cached_ms\": {:.3}, \"rescan_ms\": {:.3}, ",
            "\"cached_count\": {}, \"cached_sum\": {}, \"identical\": {}, ",
            "\"standing_matches\": {}, \"standing_identical\": {}, ",
            "\"catchup_ms\": {:.3}, \"fresh_ms\": {:.3}}}"
        ),
        r.records,
        r.epochs,
        r.sealed_epochs,
        r.epochs_cached,
        r.cached_fragments,
        r.rescan_fragments,
        r.cached_ms,
        r.rescan_ms,
        r.cached_count,
        r.cached_sum,
        r.identical,
        r.standing_matches,
        r.standing_identical,
        r.catchup_ms,
        r.fresh_ms,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (trail_lengths, iters, fed_records): (&[usize], usize, usize) = if quick {
        (&[32, 96], 1, 24)
    } else {
        (&[64, 128, 256], 3, 48)
    };

    let rows: Vec<Row> = trail_lengths.iter().map(|&n| run_row(n, iters)).collect();

    // Gates. (1) Cached and rescan answers are identical in every row,
    // and so are the standing-delta and fresh-query answers.
    for r in &rows {
        assert!(
            r.identical,
            "cached aggregate diverged from rescan at {} records",
            r.records
        );
        assert!(
            r.standing_identical,
            "standing deltas diverged from the fresh query at {} records",
            r.records
        );
    }
    // (2) The cached path's scan work does not move as the trail
    // grows — only the window's boundary epochs are ever scanned —
    // while the rescan baseline touches every fragment.
    let cached_fragments = rows[0].cached_fragments;
    for r in &rows {
        assert_eq!(
            r.cached_fragments, cached_fragments,
            "cached fragments scanned must stay constant as the trail grows"
        );
        assert!(r.epochs_cached > 0, "the window must hit cached epochs");
        assert_eq!(
            r.rescan_fragments, r.records as u64,
            "the rescan baseline touches every fragment at the owner"
        );
    }
    // (3) At the longest trail the rescan does strictly more scan work.
    let last = rows.last().expect("at least one row");
    assert!(
        last.rescan_fragments > last.cached_fragments,
        "rescan ({}) must scan strictly more fragments than cached ({})",
        last.rescan_fragments,
        last.cached_fragments
    );

    // (4) The federated topology reproduces the same equivalence, with
    // seal-time pushes only (no publish/poll call anywhere).
    let (fed_matches, fed_identical, fed_published) = run_federated(fed_records);
    assert!(
        fed_identical,
        "federated standing deltas diverged from the fresh federated query"
    );
    assert!(
        fed_published > 0,
        "sub-ring seals must push checkpoints to the root with no poll"
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.records.to_string(),
                format!("{}/{}", r.sealed_epochs, r.epochs),
                r.epochs_cached.to_string(),
                format!("{}/{}", r.cached_fragments, r.rescan_fragments),
                format!("{:.2}", r.cached_ms),
                format!("{:.2}", r.rescan_ms),
                format!("{}", r.cached_count),
                r.standing_matches.to_string(),
                format!("{:.2}", r.catchup_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "P16 - STANDING QUERIES + MATERIALIZED AGGREGATES (epoch={EPOCH_LEN}, \
                 window={WINDOW_SECS}s{})",
                if quick { ", quick" } else { "" }
            ),
            &[
                "records",
                "sealed/ep",
                "cached ep",
                "frags c/r",
                "cache ms",
                "rescan ms",
                "count",
                "standing",
                "catchup ms",
            ],
            &table
        )
    );
    println!(
        "cached windowed aggregate scans {} fragments at every trail length (rescan: {} at {} \
         records); cached/rescan and standing/fresh answers identical in every row; federated \
         standing relay archived {} records over {} pushed checkpoints.",
        cached_fragments, last.rescan_fragments, last.records, fed_matches, fed_published
    );

    let entries: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"standing_query\",\n  \"quick\": {},\n",
            "  \"epoch_length\": {},\n  \"window_secs\": {},\n",
            "  \"cached_fragments\": {},\n",
            "  \"federated_matches\": {},\n  \"federated_identical\": {},\n",
            "  \"federated_published\": {},\n",
            "  \"rows\": [\n{}\n  ]\n}}\n"
        ),
        quick,
        EPOCH_LEN,
        WINDOW_SECS,
        cached_fragments,
        fed_matches,
        fed_identical,
        fed_published,
        entries.join(",\n")
    );
    std::fs::write("BENCH_standing_query.json", &json).expect("write BENCH_standing_query.json");
    println!("\nwrote BENCH_standing_query.json");
}
