//! Experiment P7: the design tradeoff the paper implies but never
//! plots — confidentiality (§5 metrics) versus protocol cost, as the
//! fragmentation width grows. Wider partitions make every node blinder
//! (C_store and C_auditing rise) but turn local subqueries into cross
//! subqueries, which cost relay messages and commutative encryption.
//!
//! Run with: `cargo run -p dla-bench --bin exp_tradeoff --release`

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::metrics;
use dla_bench::{fmt_bytes, render_table, timed};
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::schema::Schema;
use rand::SeedableRng;

const QUERIES: [&str; 4] = [
    "c1 > 50",
    "c1 > 50 AND protocol = 'TCP'",
    "id = 'U1' OR c1 > 80",
    "(id = 'U1' OR c1 > 80) AND c2 < 500.00",
];

fn main() {
    let schema = Schema::paper_example();
    let mut rows = Vec::new();

    for n in [1usize, 2, 4, 7] {
        let mut cluster = DlaCluster::new(ClusterConfig::new(n, schema.clone()).with_seed(20))
            .expect("cluster builds");
        let user = cluster.register_user("u").expect("capacity");
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let records = generate(
            &WorkloadConfig {
                records: 60,
                ..WorkloadConfig::default()
            },
            &mut rng,
        );
        cluster.log_records(&user, &records).expect("logs");
        let sample_record = {
            // A representative full record for C_store.
            dla_logstore::gen::paper_table1().remove(0)
        };

        let mut total_ms = 0.0;
        let mut total_msgs = 0u64;
        let mut total_bytes = 0u64;
        let mut workload = Vec::new();
        for q in QUERIES {
            let (result, ms) = timed(|| cluster.query(q).expect("query runs"));
            total_ms += ms;
            total_msgs += result.messages;
            total_bytes += result.bytes;
            workload.push((result.plan, sample_record.clone()));
        }
        let cdla = metrics::dla_confidentiality(&workload, &schema, cluster.partition());
        let cstore = metrics::store_confidentiality(&sample_record, &schema, cluster.partition());

        rows.push(vec![
            n.to_string(),
            format!("{cstore:.2}"),
            format!("{cdla:.2}"),
            (total_msgs / QUERIES.len() as u64).to_string(),
            fmt_bytes(total_bytes / QUERIES.len() as u64),
            format!("{:.1} ms", total_ms / QUERIES.len() as f64),
        ]);
    }

    println!(
        "{}",
        render_table(
            "P7 - CONFIDENTIALITY vs COST as fragmentation widens (60-record store, 4 queries)",
            &[
                "DLA nodes",
                "C_store",
                "C_DLA",
                "avg msgs/query",
                "avg bytes/query",
                "avg latency/query",
            ],
            &rows
        )
    );
    println!("shape: both confidentiality metrics and protocol cost rise with the");
    println!("node count — the knob the paper leaves to the deployment. A single");
    println!("node is the Figure 1 auditor in disguise (C = 0, near-zero cost);");
    println!("one attribute per node maximizes blindness at peak protocol cost.");
}
