//! Experiment P1 (§3 cost claim): relaxed secure sum vs. the classical
//! zero-disclosure baseline (Feldman-VSS verified sharing with result
//! broadcast) vs. the insecure plaintext reference, swept over the
//! party count.
//!
//! The paper claims classical protocols have "excessive computing and
//! communication overheads"; this experiment quantifies the gap on
//! identical inputs.
//!
//! Run with: `cargo run -p dla-bench --bin exp_sum_scaling --release`

use dla_bench::{fmt_bytes, render_table, timed};
use dla_bigint::{Ubig, F61};
use dla_crypto::schnorr::SchnorrGroup;
use dla_mpc::baseline::{plaintext_sum, vss_sum};
use dla_mpc::sum::secure_sum;
use dla_net::{NetConfig, NodeId, SimNet};
use rand::SeedableRng;

fn main() {
    let group = SchnorrGroup::fixed_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(111);
    let mut rows = Vec::new();

    for n in [2usize, 4, 8, 16, 32] {
        let k = n / 2 + 1;
        let values: Vec<u64> = (1..=n as u64).map(|v| v * 10).collect();
        let expect: u64 = values.iter().sum();
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();

        // Plaintext reference.
        let mut net = SimNet::new(n + 1, NetConfig::ideal());
        let (plain, plain_ms) =
            timed(|| plaintext_sum(&mut net, &parties, &values, NodeId(n)).expect("runs"));
        assert_eq!(plain.total, Ubig::from_u64(expect));

        // Relaxed §3.5 secure sum.
        let mut net = SimNet::new(n + 1, NetConfig::ideal());
        let inputs: Vec<F61> = values.iter().map(|&v| F61::new(v)).collect();
        let (relaxed, relaxed_ms) = timed(|| {
            secure_sum(&mut net, &parties, &inputs, k, NodeId(n), &mut rng).expect("runs")
        });
        assert_eq!(relaxed.total, F61::new(expect));

        // Classical VSS baseline.
        let mut net = SimNet::new(n, NetConfig::ideal());
        let inputs_big: Vec<Ubig> = values.iter().map(|&v| Ubig::from_u64(v)).collect();
        let (vss, vss_ms) =
            timed(|| vss_sum(&mut net, &group, &parties, &inputs_big, k, &mut rng).expect("runs"));
        assert_eq!(vss.total, Ubig::from_u64(expect));

        rows.push(vec![
            n.to_string(),
            format!(
                "{} / {} / {:.1}ms",
                plain.report.messages,
                fmt_bytes(plain.report.bytes),
                plain_ms
            ),
            format!(
                "{} / {} / {:.1}ms",
                relaxed.report.messages,
                fmt_bytes(relaxed.report.bytes),
                relaxed_ms
            ),
            format!(
                "{} / {} / {:.1}ms",
                vss.report.messages,
                fmt_bytes(vss.report.bytes),
                vss_ms
            ),
            format!(
                "{:.1}x",
                vss.report.bytes as f64 / relaxed.report.bytes as f64
            ),
        ]);
    }

    println!(
        "{}",
        render_table(
            "P1 - SECURE SUM: relaxed (Shamir, §3.5) vs classical (Feldman VSS + broadcast)",
            &[
                "n",
                "plaintext msgs/bytes/time",
                "relaxed msgs/bytes/time",
                "classical msgs/bytes/time",
                "bytes ratio",
            ],
            &rows
        )
    );
    println!("shape: both secure protocols are O(n^2) messages, but the classical");
    println!("baseline ships k commitments per share and runs O(n^2 k) modexp");
    println!("verifications — the byte and CPU gap widens with n, matching the");
    println!("paper's argument for the relaxed model.");
}
