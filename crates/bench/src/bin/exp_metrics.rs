//! Experiments M10–M13 (§5, Eqs. 10–13): parameter sweeps of the
//! confidentiality metrics — the paper's only quantitative "results".
//!
//! Run with: `cargo run -p dla-bench --bin exp_metrics`

use dla_audit::metrics;
use dla_audit::normal::normalize;
use dla_audit::parser::parse;
use dla_audit::plan::plan;
use dla_bench::render_table;
use dla_logstore::fragment::Partition;
use dla_logstore::gen::paper_table1;
use dla_logstore::model::{AttrValue, Glsn, LogRecord};
use dla_logstore::schema::{AttrDef, Schema};

fn main() {
    sweep_store_confidentiality();
    sweep_auditing_confidentiality();
    sweep_dla_confidentiality();
}

/// Eq. 10: C_store = v·u/w as the undefined-attribute count v and the
/// covering-node count u vary.
fn sweep_store_confidentiality() {
    // Build schemas with w = 8 attributes, v of them undefined.
    let mut rows = Vec::new();
    for v in 0..=8usize {
        let mut defs = Vec::new();
        for i in 0..8 {
            if i < v {
                defs.push(AttrDef::undefined(
                    &format!("c{i}"),
                    dla_logstore::model::AttrType::Int,
                ));
            } else {
                defs.push(AttrDef::known(
                    &format!("k{i}"),
                    dla_logstore::model::AttrType::Int,
                ));
            }
        }
        let schema = Schema::new(defs).expect("valid schema");
        let mut record = LogRecord::new(Glsn(1));
        for def in schema.iter() {
            record.insert(def.name().clone(), AttrValue::Int(1));
        }
        let mut row = vec![format!("v = {v}")];
        for u in [1usize, 2, 4, 8] {
            let partition = Partition::round_robin(&schema, u).expect("valid partition");
            let c = metrics::store_confidentiality(&record, &schema, &partition);
            row.push(format!("{c:.3}"));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "EQ. 10 - C_store(Log) = v*u/w sweep (w = 8 attributes)",
            &["undefined attrs", "u=1 node", "u=2", "u=4", "u=8"],
            &rows
        )
    );
    println!("shape: rises linearly in both v (private attributes) and u (fragmentation width).\n");
}

/// Eq. 11: C_auditing = (t+q)/(s+q) across query shapes.
fn sweep_auditing_confidentiality() {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let queries = [
        ("1 local pred", "c1 > 5"),
        ("2 local conjuncts", "c1 > 5 AND id = 'U1'"),
        (
            "4 local conjuncts",
            "c1 > 5 AND id = 'U1' AND tid = 'T1' AND c2 > 1.00",
        ),
        ("1 cross clause (2 atoms)", "c1 > 5 OR id = 'U1'"),
        (
            "1 cross clause (3 atoms)",
            "c1 > 5 OR id = 'U1' OR tid = 'T1'",
        ),
        ("cross + local", "(c1 > 5 OR id = 'U1') AND c2 < 9.00"),
        (
            "2 cross clauses",
            "(c1 > 5 OR id = 'U1') AND (tid = 'T1' OR time > '20:00:00/05/12/2002')",
        ),
        ("cross join", "id = c3"),
    ];
    let mut rows = Vec::new();
    for (label, q) in queries {
        let planned =
            plan(&normalize(&parse(q, &schema).expect("parses")), &partition).expect("plans");
        rows.push(vec![
            label.to_owned(),
            planned.atom_count.to_string(),
            planned.cross_atom_count.to_string(),
            planned.conjunct_count.to_string(),
            format!("{:.3}", metrics::auditing_confidentiality(&planned)),
        ]);
    }
    println!(
        "{}",
        render_table(
            "EQ. 11 - C_auditing(Q) = (t+q)/(s+q) by query shape (paper partition)",
            &["query shape", "s", "t", "q", "C_auditing"],
            &rows
        )
    );
    println!("shape: local-only queries score 0 (one node sees the whole subquery);");
    println!("fully-cross queries score 1 (every predicate needs collaboration).\n");
}

/// Eqs. 12–13: C_query and the workload average C_DLA across
/// fragmentation widths.
fn sweep_dla_confidentiality() {
    let schema = Schema::paper_example();
    let record = paper_table1().remove(0);
    let queries = [
        "c1 > 5",
        "c1 > 5 AND id = 'U1'",
        "c1 > 5 OR id = 'U1'",
        "(c1 > 5 OR id = 'U1') AND c2 < 9.00",
        "id = c3",
    ];
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 7] {
        let partition = Partition::round_robin(&schema, n).expect("valid partition");
        let workload: Vec<_> = queries
            .iter()
            .map(|q| {
                (
                    plan(&normalize(&parse(q, &schema).expect("parses")), &partition)
                        .expect("plans"),
                    record.clone(),
                )
            })
            .collect();
        let cdla = metrics::dla_confidentiality(&workload, &schema, &partition);
        let cq: Vec<String> = workload
            .iter()
            .map(|(p, r)| {
                format!(
                    "{:.2}",
                    metrics::query_confidentiality(p, r, &schema, &partition)
                )
            })
            .collect();
        rows.push(vec![n.to_string(), cq.join(" / "), format!("{cdla:.3}")]);
    }
    println!(
        "{}",
        render_table(
            "EQS. 12-13 - C_query per query / C_DLA average vs cluster size",
            &["nodes", "C_query (5 queries)", "C_DLA"],
            &rows
        )
    );
    println!("shape: wider fragmentation raises store confidentiality AND turns");
    println!("previously-local clauses into cross clauses, compounding C_DLA.");
}
