//! Experiment P9: exact per-protocol cost profiles from the telemetry
//! subsystem — modular exponentiations, inverses, accumulator folds,
//! Shamir evaluations, messages, bytes and rounds for each of the five
//! MPC protocols, captured by running each one under an installed
//! [`dla_telemetry::Recorder`].
//!
//! Writes `BENCH_cost_profile.json`.
//!
//! Run with: `cargo run -p dla-bench --bin exp_cost_profile --release`
//! (pass `--quick` for the CI-sized configuration).

use dla_bigint::F61;
use dla_crypto::pohlig_hellman::CommutativeDomain;
use dla_mpc::equality::secure_equality;
use dla_mpc::ranking::secure_ranking;
use dla_mpc::report::ProtocolReport;
use dla_mpc::set_intersection::secure_set_intersection;
use dla_mpc::set_union::secure_set_union;
use dla_mpc::sum::secure_sum;
use dla_net::topology::Ring;
use dla_net::{NetConfig, NodeId, SimNet};
use dla_telemetry::{CostVector, Recorder};

use dla_bench::render_table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One profiled protocol run.
struct Profile {
    label: &'static str,
    report: ProtocolReport,
    costs: CostVector,
}

/// Runs `f` under a fresh recorder and pulls out the cost scope the
/// protocol attributed itself to.
fn profile(label: &'static str, f: impl FnOnce() -> ProtocolReport) -> Profile {
    let recorder = Recorder::new();
    let report = {
        let _install = recorder.install();
        f()
    };
    let trace = recorder.take();
    let costs = trace
        .cost_by_label()
        .remove(label)
        .unwrap_or_else(|| trace.total_cost());
    Profile {
        label,
        report,
        costs,
    }
}

fn sets(n: usize, size: usize) -> Vec<Vec<Vec<u8>>> {
    (0..n)
        .map(|party| {
            (0..size)
                .map(|i| {
                    if i < size / 2 {
                        format!("shared-{i}").into_bytes()
                    } else {
                        format!("private-{party}-{i}").into_bytes()
                    }
                })
                .collect()
        })
        .collect()
}

fn json_entry(p: &Profile) -> String {
    format!(
        concat!(
            "    {{\"protocol\": \"{}\", \"parties\": {}, \"rounds\": {}, ",
            "\"messages\": {}, \"bytes\": {}, \"modexp\": {}, \"mont_mul_steps\": {}, ",
            "\"modinv\": {}, \"accumulator_folds\": {}, \"shamir_evals\": {}, ",
            "\"telemetry_rounds\": {}, \"telemetry_msgs\": {}}}"
        ),
        p.label,
        p.report.parties,
        p.report.rounds,
        p.report.messages,
        p.report.bytes,
        p.costs.modexp,
        p.costs.mont_mul_steps,
        p.costs.modinv,
        p.costs.acc_fold,
        p.costs.shamir_eval,
        p.costs.rounds,
        p.costs.msgs_sent,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, set_size) = if quick { (3, 4) } else { (4, 16) };
    let domain = CommutativeDomain::fixed_256();

    let mut profiles = Vec::new();

    profiles.push(profile("secure-set-intersection", || {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = SimNet::new(n, NetConfig::ideal());
        let ring = Ring::canonical(n);
        secure_set_intersection(
            &mut net,
            &ring,
            &domain,
            &sets(n, set_size),
            NodeId(0),
            true,
            &mut rng,
        )
        .expect("ssi runs")
        .report
    }));

    profiles.push(profile("secure-set-union", || {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = SimNet::new(n, NetConfig::ideal());
        let ring = Ring::canonical(n);
        secure_set_union(
            &mut net,
            &ring,
            &domain,
            &sets(n, set_size),
            NodeId(0),
            &mut rng,
        )
        .expect("union runs")
        .report
    }));

    profiles.push(profile("secure-sum", || {
        let mut rng = StdRng::seed_from_u64(3);
        // One extra node acts as the off-party collector.
        let mut net = SimNet::new(n + 1, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
        let inputs: Vec<F61> = (0..n).map(|i| F61::new(10 + i as u64)).collect();
        secure_sum(&mut net, &parties, &inputs, 2, NodeId(n), &mut rng)
            .expect("sum runs")
            .report
    }));

    profiles.push(profile("secure-equality", || {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = SimNet::new(3, NetConfig::ideal());
        secure_equality(
            &mut net,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            F61::new(42),
            F61::new(42),
            &mut rng,
        )
        .expect("equality runs")
        .report
    }));

    profiles.push(profile("secure-ranking", || {
        let mut rng = StdRng::seed_from_u64(5);
        // The blind TTP is the extra node.
        let mut net = SimNet::new(n + 1, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
        let values: Vec<u64> = (0..n).map(|i| 100 + 7 * i as u64).collect();
        secure_ranking(&mut net, &parties, NodeId(n), &values, &mut rng)
            .expect("ranking runs")
            .report
    }));

    // Cross-check: the telemetry sink and the session meter count the
    // same traffic and rounds.
    for p in &profiles {
        assert_eq!(
            p.costs.msgs_sent, p.report.messages,
            "{}: telemetry msgs vs meter",
            p.label
        );
        assert_eq!(
            p.costs.rounds, p.report.rounds as u64,
            "{}: telemetry rounds vs meter",
            p.label
        );
    }

    let rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                p.report.parties.to_string(),
                p.report.rounds.to_string(),
                p.report.messages.to_string(),
                p.report.bytes.to_string(),
                p.costs.modexp.to_string(),
                p.costs.mont_mul_steps.to_string(),
                p.costs.modinv.to_string(),
                p.costs.shamir_eval.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "P9 - PER-PROTOCOL COST PROFILE ({n} parties, {set_size}-element sets{})",
                if quick { ", quick" } else { "" }
            ),
            &[
                "protocol",
                "parties",
                "rounds",
                "messages",
                "bytes",
                "modexp",
                "mont_steps",
                "modinv",
                "shamir",
            ],
            &rows
        )
    );
    println!(
        "shape: commutative-encryption protocols are modexp-bound; \
         Shamir-based sum costs field ops only."
    );

    let entries: Vec<String> = profiles.iter().map(json_entry).collect();
    let json = format!(
        "{{\n  \"experiment\": \"cost_profile\",\n  \"quick\": {},\n  \"protocols\": [\n{}\n  ]\n}}\n",
        quick,
        entries.join(",\n")
    );
    std::fs::write("BENCH_cost_profile.json", &json).expect("write BENCH_cost_profile.json");
    println!("\nwrote BENCH_cost_profile.json");
}
