//! Experiment P9: exact per-protocol cost profiles from the telemetry
//! subsystem — modular exponentiations, inverses, accumulator folds,
//! Shamir evaluations, messages, bytes and rounds for each of the five
//! MPC protocols, captured by running each one under an installed
//! [`dla_telemetry::Recorder`].
//!
//! Also profiles the accumulator verification leg twice — once with
//! the per-epoch refold ladder, once through the cached fixed-base
//! table plus one RLC batch check — and asserts against the session
//! meters that the fixed-base route does strictly fewer Montgomery
//! multiplication steps for the same items-folded work units.
//!
//! Writes `BENCH_cost_profile.json`.
//!
//! Run with: `cargo run -p dla-bench --bin exp_cost_profile --release`
//! (pass `--quick` for the CI-sized configuration).

use dla_bigint::{Ubig, F61};
use dla_crypto::accumulator::AccumulatorParams;
use dla_crypto::pohlig_hellman::CommutativeDomain;
use dla_mpc::equality::secure_equality;
use dla_mpc::ranking::secure_ranking;
use dla_mpc::report::ProtocolReport;
use dla_mpc::set_intersection::secure_set_intersection;
use dla_mpc::set_union::secure_set_union;
use dla_mpc::sum::secure_sum;
use dla_net::topology::Ring;
use dla_net::{NetConfig, NodeId, SimNet};
use dla_telemetry::{CostVector, Recorder};

use dla_bench::render_table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One profiled protocol run.
struct Profile {
    label: &'static str,
    report: ProtocolReport,
    costs: CostVector,
}

/// Runs `f` under a fresh recorder and pulls out the cost scope the
/// protocol attributed itself to.
fn profile(label: &'static str, f: impl FnOnce() -> ProtocolReport) -> Profile {
    let recorder = Recorder::new();
    let report = {
        let _install = recorder.install();
        f()
    };
    let trace = recorder.take();
    let costs = trace
        .cost_by_label()
        .remove(label)
        .unwrap_or_else(|| trace.total_cost());
    Profile {
        label,
        report,
        costs,
    }
}

/// Runs `f` under a fresh recorder and returns its result together
/// with the total session cost it incurred.
fn metered<T>(f: impl FnOnce() -> T) -> (T, CostVector) {
    let recorder = Recorder::new();
    let out = {
        let _install = recorder.install();
        f()
    };
    (out, recorder.take().total_cost())
}

/// The fixed-base-vs-ladder comparison on the accumulator leg.
struct FixedBaseProfile {
    epochs: usize,
    items_per_epoch: usize,
    build_cost: CostVector,
    ladder_cost: CostVector,
    accel_cost: CostVector,
}

/// Audits the same sealed trail twice: the ladder auditor refolds each
/// epoch from `x₀` (one modexp ladder per epoch), the accelerated
/// auditor derives the per-epoch exponents and settles every claim in
/// one RLC batch check over the cached `x₀` table. Digest agreement,
/// equal items-folded units and the strict Montgomery-step win are all
/// asserted against the session meters.
fn profile_fixed_base_vs_ladder(quick: bool) -> FixedBaseProfile {
    let params = AccumulatorParams::fixed_512();
    let epochs = if quick { 6 } else { 12 };
    let items_per_epoch = 2usize;
    let epoch_items: Vec<Vec<Vec<u8>>> = (0..epochs)
        .map(|e| {
            (0..items_per_epoch)
                .map(|i| format!("deposit-{e}-{i}").into_bytes())
                .collect()
        })
        .collect();

    // One-time table construction, metered separately so its
    // amortisation is explicit in the report.
    let (_, build_cost) = metered(|| params.power_of_start(&Ubig::one()));
    assert_eq!(build_cost.fixed_base_builds, 1, "exactly one table build");

    // Seal the epoch digests outside either auditor's bill.
    let digests: Vec<Ubig> = epoch_items
        .iter()
        .map(|items| params.accumulate(items.iter().map(Vec::as_slice)))
        .collect();

    let (ladder_ok, ladder_cost) = metered(|| {
        epoch_items
            .iter()
            .zip(&digests)
            .all(|(items, digest)| params.accumulate(items.iter().map(Vec::as_slice)) == *digest)
    });
    let (accel_ok, accel_cost) = metered(|| {
        let claims: Vec<(Ubig, Ubig)> = epoch_items
            .iter()
            .zip(&digests)
            .map(|(items, digest)| {
                let refs: Vec<&[u8]> = items.iter().map(Vec::as_slice).collect();
                (digest.clone(), params.batch_exponent(&refs))
            })
            .collect();
        params.batch_verify(&claims)
    });

    assert!(ladder_ok, "ladder auditor accepts the genuine trail");
    assert!(accel_ok, "fixed-base auditor accepts the genuine trail");
    assert_eq!(
        accel_cost.acc_fold, ladder_cost.acc_fold,
        "both routes bill the same items-folded units"
    );
    assert_eq!(
        accel_cost.multi_exp_terms, epochs as u64,
        "one multi-exp term per epoch claim"
    );
    assert_eq!(
        accel_cost.fixed_base_builds, 0,
        "the cached table is reused, never rebuilt"
    );
    assert!(
        accel_cost.mont_mul_steps < ladder_cost.mont_mul_steps,
        "fixed-base verification ({} steps) must beat the refold ladder ({} steps)",
        accel_cost.mont_mul_steps,
        ladder_cost.mont_mul_steps
    );

    FixedBaseProfile {
        epochs,
        items_per_epoch,
        build_cost,
        ladder_cost,
        accel_cost,
    }
}

fn sets(n: usize, size: usize) -> Vec<Vec<Vec<u8>>> {
    (0..n)
        .map(|party| {
            (0..size)
                .map(|i| {
                    if i < size / 2 {
                        format!("shared-{i}").into_bytes()
                    } else {
                        format!("private-{party}-{i}").into_bytes()
                    }
                })
                .collect()
        })
        .collect()
}

fn json_entry(p: &Profile) -> String {
    format!(
        concat!(
            "    {{\"protocol\": \"{}\", \"parties\": {}, \"rounds\": {}, ",
            "\"messages\": {}, \"bytes\": {}, \"modexp\": {}, \"mont_mul_steps\": {}, ",
            "\"modinv\": {}, \"accumulator_folds\": {}, \"shamir_evals\": {}, ",
            "\"fixed_base_builds\": {}, \"multi_exp_terms\": {}, ",
            "\"telemetry_rounds\": {}, \"telemetry_msgs\": {}}}"
        ),
        p.label,
        p.report.parties,
        p.report.rounds,
        p.report.messages,
        p.report.bytes,
        p.costs.modexp,
        p.costs.mont_mul_steps,
        p.costs.modinv,
        p.costs.acc_fold,
        p.costs.shamir_eval,
        p.costs.fixed_base_builds,
        p.costs.multi_exp_terms,
        p.costs.rounds,
        p.costs.msgs_sent,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, set_size) = if quick { (3, 4) } else { (4, 16) };
    let domain = CommutativeDomain::fixed_256();

    let mut profiles = Vec::new();

    profiles.push(profile("secure-set-intersection", || {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = SimNet::new(n, NetConfig::ideal());
        let ring = Ring::canonical(n);
        secure_set_intersection(
            &mut net,
            &ring,
            &domain,
            &sets(n, set_size),
            NodeId(0),
            true,
            &mut rng,
        )
        .expect("ssi runs")
        .report
    }));

    profiles.push(profile("secure-set-union", || {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = SimNet::new(n, NetConfig::ideal());
        let ring = Ring::canonical(n);
        secure_set_union(
            &mut net,
            &ring,
            &domain,
            &sets(n, set_size),
            NodeId(0),
            &mut rng,
        )
        .expect("union runs")
        .report
    }));

    profiles.push(profile("secure-sum", || {
        let mut rng = StdRng::seed_from_u64(3);
        // One extra node acts as the off-party collector.
        let mut net = SimNet::new(n + 1, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
        let inputs: Vec<F61> = (0..n).map(|i| F61::new(10 + i as u64)).collect();
        secure_sum(&mut net, &parties, &inputs, 2, NodeId(n), &mut rng)
            .expect("sum runs")
            .report
    }));

    profiles.push(profile("secure-equality", || {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = SimNet::new(3, NetConfig::ideal());
        secure_equality(
            &mut net,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            F61::new(42),
            F61::new(42),
            &mut rng,
        )
        .expect("equality runs")
        .report
    }));

    profiles.push(profile("secure-ranking", || {
        let mut rng = StdRng::seed_from_u64(5);
        // The blind TTP is the extra node.
        let mut net = SimNet::new(n + 1, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
        let values: Vec<u64> = (0..n).map(|i| 100 + 7 * i as u64).collect();
        secure_ranking(&mut net, &parties, NodeId(n), &values, &mut rng)
            .expect("ranking runs")
            .report
    }));

    // Cross-check: the telemetry sink and the session meter count the
    // same traffic and rounds.
    for p in &profiles {
        assert_eq!(
            p.costs.msgs_sent, p.report.messages,
            "{}: telemetry msgs vs meter",
            p.label
        );
        assert_eq!(
            p.costs.rounds, p.report.rounds as u64,
            "{}: telemetry rounds vs meter",
            p.label
        );
    }

    let rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                p.report.parties.to_string(),
                p.report.rounds.to_string(),
                p.report.messages.to_string(),
                p.report.bytes.to_string(),
                p.costs.modexp.to_string(),
                p.costs.mont_mul_steps.to_string(),
                p.costs.modinv.to_string(),
                p.costs.shamir_eval.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "P9 - PER-PROTOCOL COST PROFILE ({n} parties, {set_size}-element sets{})",
                if quick { ", quick" } else { "" }
            ),
            &[
                "protocol",
                "parties",
                "rounds",
                "messages",
                "bytes",
                "modexp",
                "mont_steps",
                "modinv",
                "shamir",
            ],
            &rows
        )
    );
    println!(
        "shape: commutative-encryption protocols are modexp-bound; \
         Shamir-based sum costs field ops only."
    );

    let fb = profile_fixed_base_vs_ladder(quick);
    println!(
        "\nfixed-base vs ladder ({} epochs x {} deposits): table build {} steps \
         (once), refold ladder {} steps, fixed-base + RLC batch {} steps \
         ({:.1}x fewer per audit)",
        fb.epochs,
        fb.items_per_epoch,
        fb.build_cost.mont_mul_steps,
        fb.ladder_cost.mont_mul_steps,
        fb.accel_cost.mont_mul_steps,
        fb.ladder_cost.mont_mul_steps as f64 / fb.accel_cost.mont_mul_steps as f64
    );

    let entries: Vec<String> = profiles.iter().map(json_entry).collect();
    let fb_json = format!(
        concat!(
            "  \"fixed_base_vs_ladder\": {{\"epochs\": {}, \"items_per_epoch\": {}, ",
            "\"table_build_mont_mul_steps\": {}, \"table_builds\": {}, ",
            "\"ladder_mont_mul_steps\": {}, \"fixed_base_mont_mul_steps\": {}, ",
            "\"items_folded\": {}, \"multi_exp_terms\": {}, \"step_ratio\": {:.2}}}"
        ),
        fb.epochs,
        fb.items_per_epoch,
        fb.build_cost.mont_mul_steps,
        fb.build_cost.fixed_base_builds,
        fb.ladder_cost.mont_mul_steps,
        fb.accel_cost.mont_mul_steps,
        fb.ladder_cost.acc_fold,
        fb.accel_cost.multi_exp_terms,
        fb.ladder_cost.mont_mul_steps as f64 / fb.accel_cost.mont_mul_steps as f64
    );
    let json = format!(
        "{{\n  \"experiment\": \"cost_profile\",\n  \"quick\": {},\n  \"protocols\": [\n{}\n  ],\n{}\n}}\n",
        quick,
        entries.join(",\n"),
        fb_json
    );
    std::fs::write("BENCH_cost_profile.json", &json).expect("write BENCH_cost_profile.json");
    println!("\nwrote BENCH_cost_profile.json");
}
