//! Experiment P12: socket-deployed end-to-end audit. Runs the seeded
//! deployment workload — trail-fragment deposits plus the five MPC
//! query protocols — twice:
//!
//! * over a **TCP mesh** of node processes (spawned `dla-node`
//!   binaries when one can be located, in-process serve loops on
//!   plain threads otherwise), every protocol hop crossing the
//!   route → forward → deliver socket path, and
//! * over the **in-process channel transport** (the baseline every
//!   virtual-clock suite uses),
//!
//! and asserts the answers are **byte-identical** before reporting
//! deposits/sec and per-protocol latency for both. Writes
//! `BENCH_socket_e2e.json`.
//!
//! Run with: `cargo run -p dla-bench --bin exp_socket_e2e --release`
//! (pass `--quick` for the CI-sized configuration).

use dla_audit::deploy::{build_cluster, fragments, run_workload, WorkloadOutcome, WorkloadSpec};
use dla_bench::render_table;
use dla_deploy::{locate_node_bin, ChildNode, PeerTable};
use dla_net::tcp::{serve, NodeConfig, TcpConfig, TcpNet};
use dla_net::{ChannelNet, NodeId, SimTime, VirtualClock};
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PROTOCOLS: usize = 5;

/// The socket mesh under measurement: either spawned node processes or
/// serve loops on threads, torn down after the run.
enum Mesh {
    Processes(Vec<ChildNode>),
    Threads(Vec<std::thread::JoinHandle<std::io::Result<dla_net::NodeReport>>>),
}

fn spawn_process_mesh(total: usize) -> Option<(Vec<Option<SocketAddr>>, Mesh)> {
    let bin = locate_node_bin()?;
    let mut children = Vec::new();
    for id in 0..total {
        match ChildNode::spawn(&bin, id, "bench", 1000 + id as u64) {
            Ok(child) => children.push(child),
            Err(_) => {
                for child in &mut children {
                    child.kill();
                }
                return None;
            }
        }
    }
    let table = PeerTable(children.iter().map(|c| Some(c.addr)).collect());
    for child in &mut children {
        if child.send_peers(&table).is_err() {
            for child in &mut children {
                child.kill();
            }
            return None;
        }
    }
    Some((table.0, Mesh::Processes(children)))
}

fn spawn_thread_mesh(total: usize) -> (Vec<Option<SocketAddr>>, Mesh) {
    let listeners: Vec<TcpListener> = (0..total)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let peers: Vec<Option<SocketAddr>> = listeners
        .iter()
        .map(|l| Some(l.local_addr().expect("local addr")))
        .collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let config = NodeConfig {
                id,
                peers: peers.clone(),
                role: "bench".to_string(),
                key: 1000 + id as u64,
            };
            std::thread::spawn(move || serve(listener, config))
        })
        .collect();
    (peers, Mesh::Threads(handles))
}

struct SocketRun {
    outcome: WorkloadOutcome,
    store_deposits_per_sec: f64,
}

/// One full workload over a fresh mesh: store-path deposits first
/// (measured), then the session-shipped workload.
fn socket_run(spec: &WorkloadSpec, mode: &str) -> SocketRun {
    let total = spec.network_size();
    let (peers, mesh) = if mode == "process" {
        spawn_process_mesh(total).expect("process mesh launches")
    } else {
        spawn_thread_mesh(total)
    };
    let net = TcpNet::connect(
        &peers,
        BTreeSet::new(),
        TcpConfig {
            timeout: SimTime::from_millis(10_000),
            ..TcpConfig::default()
        },
    )
    .expect("connect to mesh");
    let cluster = build_cluster(spec).expect("cluster");

    let items = fragments(&cluster, spec.nodes);
    let started = Instant::now();
    for (glsn, owner, item) in &items {
        net.deposit(NodeId(*owner), *glsn, item).expect("store ack");
    }
    let store_secs = started.elapsed().as_secs_f64();
    let store_deposits_per_sec = items.len() as f64 / store_secs.max(1e-9);

    let outcome = run_workload(&cluster, &net, spec).expect("socket workload");

    let reports = net.shutdown();
    assert_eq!(reports.len(), total, "every node farewells");
    match mesh {
        Mesh::Processes(children) => {
            for child in children {
                let id = child.id;
                let report = child.finish(Duration::from_secs(10)).expect("child report");
                let bye = reports.iter().find(|b| b.id == id).expect("bye for node");
                assert_eq!(&report, bye, "farewell matches the printed report");
            }
        }
        Mesh::Threads(handles) => {
            for handle in handles {
                handle.join().expect("join").expect("serve");
            }
        }
    }
    SocketRun {
        outcome,
        store_deposits_per_sec,
    }
}

fn channel_run(spec: &WorkloadSpec) -> WorkloadOutcome {
    let cluster = build_cluster(spec).expect("cluster");
    let net = ChannelNet::with_clock(
        spec.network_size(),
        SimTime::from_millis(10_000),
        Arc::new(VirtualClock::new()),
    );
    run_workload(&cluster, &net, spec).expect("channel workload")
}

fn deposits_per_sec(outcome: &WorkloadOutcome) -> f64 {
    outcome.deposits_shipped as f64 / (outcome.deposit_millis / 1e3).max(1e-9)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (spec, iters) = if quick {
        (
            WorkloadSpec {
                records: 8,
                ..WorkloadSpec::default()
            },
            1,
        )
    } else {
        (WorkloadSpec::default(), 3)
    };
    let mode = if locate_node_bin().is_some() {
        "process"
    } else {
        "thread"
    };

    // Iterate whole runs (fresh mesh + fresh cluster each time), keep
    // the fastest latency per protocol; answers must agree on every
    // iteration.
    let mut tcp_ms = [f64::INFINITY; PROTOCOLS];
    let mut channel_ms = [f64::INFINITY; PROTOCOLS];
    let mut tcp_store_rate = 0f64;
    let mut tcp_dep_rate = 0f64;
    let mut channel_dep_rate = 0f64;
    let mut digest = String::new();
    let mut answers: Vec<(String, String)> = Vec::new();
    for _ in 0..iters {
        let socket = socket_run(&spec, mode);
        let channel = channel_run(&spec);

        assert_eq!(
            socket.outcome.digest_hex(),
            channel.digest_hex(),
            "socket and channel answers must be byte-identical"
        );
        assert!(socket.outcome.integrity_ok(), "socket trail verifies");
        assert!(channel.integrity_ok(), "channel trail verifies");

        for (i, (s, c)) in socket
            .outcome
            .runs
            .iter()
            .zip(channel.runs.iter())
            .enumerate()
        {
            assert_eq!((s.protocol, &s.answer), (c.protocol, &c.answer));
            tcp_ms[i] = tcp_ms[i].min(s.millis);
            channel_ms[i] = channel_ms[i].min(c.millis);
        }
        tcp_store_rate = tcp_store_rate.max(socket.store_deposits_per_sec);
        tcp_dep_rate = tcp_dep_rate.max(deposits_per_sec(&socket.outcome));
        channel_dep_rate = channel_dep_rate.max(deposits_per_sec(&channel));
        digest = socket.outcome.digest_hex();
        answers = socket
            .outcome
            .runs
            .iter()
            .map(|r| (r.protocol.to_string(), r.answer.clone()))
            .collect();
    }

    let table: Vec<Vec<String>> = answers
        .iter()
        .enumerate()
        .map(|(i, (protocol, answer))| {
            vec![
                protocol.clone(),
                format!("{:.2}", tcp_ms[i]),
                format!("{:.2}", channel_ms[i]),
                if answer.len() > 28 {
                    format!("{}…", &answer[..27])
                } else {
                    answer.clone()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "P12 - SOCKET-DEPLOYED E2E AUDIT ({mode} mesh, {} nodes{})",
                spec.network_size(),
                if quick { ", quick" } else { "" }
            ),
            &["protocol", "tcp ms", "channel ms", "answer"],
            &table
        )
    );
    println!(
        "deposits/sec: tcp session {tcp_dep_rate:.0}, tcp store path {tcp_store_rate:.0}, \
         channel {channel_dep_rate:.0}; answers byte-identical across transports (digest {digest})."
    );

    let rows: Vec<String> = answers
        .iter()
        .enumerate()
        .map(|(i, (protocol, _))| {
            format!(
                "    {{\"protocol\": \"{}\", \"tcp_ms\": {:.3}, \"channel_ms\": {:.3}}}",
                protocol, tcp_ms[i], channel_ms[i]
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"socket_e2e\",\n  \"quick\": {},\n",
            "  \"mode\": \"{}\",\n  \"nodes\": {},\n  \"records\": {},\n",
            "  \"answers_identical\": true,\n  \"digest\": \"{}\",\n",
            "  \"tcp_deposits_per_sec\": {:.1},\n",
            "  \"tcp_store_deposits_per_sec\": {:.1},\n",
            "  \"channel_deposits_per_sec\": {:.1},\n",
            "  \"rows\": [\n{}\n  ]\n}}\n"
        ),
        quick,
        mode,
        spec.nodes,
        spec.records,
        digest,
        tcp_dep_rate,
        tcp_store_rate,
        channel_dep_rate,
        rows.join(",\n")
    );
    std::fs::write("BENCH_socket_e2e.json", &json).expect("write BENCH_socket_e2e.json");
    println!("\nwrote BENCH_socket_e2e.json");
}
