//! Experiment F4: the Figure 4 secure-set-intersection trace, printed
//! in the paper's own layout — S1={c,d,e}, S2={d,e,f}, S3={e,f,g},
//! every relay hop, and the triple-encrypted coincidence
//! E132(e) = E321(e) = E213(e).
//!
//! Run with: `cargo run -p dla-bench --bin fig4_ssi_trace`

use dla_bench::render_table;
use dla_crypto::pohlig_hellman::CommutativeDomain;
use dla_mpc::set_intersection::secure_set_intersection_traced;
use dla_net::topology::Ring;
use dla_net::{NetConfig, NodeId, SimNet};
use rand::SeedableRng;

fn main() {
    let sets: [&[&str]; 3] = [&["c", "d", "e"], &["d", "e", "f"], &["e", "f", "g"]];
    let mut net = SimNet::new(3, NetConfig::ideal());
    let ring = Ring::canonical(3);
    let domain = CommutativeDomain::fixed_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(44);
    let inputs: Vec<Vec<Vec<u8>>> = sets
        .iter()
        .map(|s| s.iter().map(|e| e.as_bytes().to_vec()).collect())
        .collect();

    let (outcome, trace) = secure_set_intersection_traced(
        &mut net,
        &ring,
        &domain,
        &inputs,
        NodeId(0),
        true,
        &mut rng,
    )
    .expect("protocol succeeds");

    let mut rows = Vec::new();
    for hop in &trace {
        let layer_label: String = hop
            .layers
            .iter()
            .rev()
            .map(|l| (l + 1).to_string())
            .collect();
        let items: Vec<String> = sets[hop.origin]
            .iter()
            .zip(&hop.elements)
            .map(|(name, ct)| format!("E{layer_label}({name})={}…", &ct.to_hex()[..6]))
            .collect();
        rows.push(vec![
            format!("S{}", hop.origin + 1),
            format!("P{}", hop.holder + 1),
            hop.layers.len().to_string(),
            items.join("  "),
        ]);
    }
    println!(
        "{}",
        render_table(
            "FIGURE 4 - SECURE SET INTERSECTION (3 nodes, 2 relay hops)",
            &["set", "holder", "layers", "encrypted elements"],
            &rows
        )
    );

    // The coincidence check: the fully-encrypted value of "e" is equal
    // across all three sets, regardless of encryption order.
    let finals: Vec<_> = trace.iter().filter(|h| h.layers.len() == 3).collect();
    let common = &outcome.common_encrypted[0];
    println!("fully-encrypted common value: {}…", &common.to_hex()[..16]);
    for f in &finals {
        let pos = f
            .elements
            .iter()
            .position(|e| e == common)
            .expect("common element present");
        let order: String = f.layers.iter().rev().map(|l| (l + 1).to_string()).collect();
        println!(
            "  set S{}: element #{} encrypted in order E{}(e) -> identical",
            f.origin + 1,
            pos + 1,
            order
        );
    }
    let decoded: Vec<String> = outcome
        .common_items
        .unwrap_or_default()
        .iter()
        .map(|b| String::from_utf8_lossy(b).into_owned())
        .collect();
    println!("\nS1 ∩ S2 ∩ S3 = {{{}}}", decoded.join(", "));
    println!(
        "cost: {} messages, {} bytes",
        outcome.report.messages, outcome.report.bytes
    );
    assert_eq!(decoded, ["e"]);
}
