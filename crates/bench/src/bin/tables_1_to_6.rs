//! Experiments T1–T6: regenerate the paper's Tables 1–6 exactly — the
//! global event log, the four per-node fragment tables (the Tables 2–5
//! partition applied to Table 1, paper glsns preserved) and the
//! three-ticket access-control table of Table 6.
//!
//! Run with: `cargo run -p dla-bench --bin tables_1_to_6`

use dla_bench::render_table;
use dla_logstore::acl::{AccessControlTable, OperationSet, TicketAuthority};
use dla_logstore::fragment::{fragment, Partition};
use dla_logstore::gen::paper_table1;
use dla_logstore::model::AttrName;
use dla_logstore::schema::Schema;
use rand::SeedableRng;

fn main() {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let records = paper_table1();

    // Table 1: the global event log.
    let headers = ["glsn", "Time", "id", "protocol", "Tid", "C1", "C2", "C3"];
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            let mut row = vec![r.glsn.to_string()];
            for attr in ["time", "id", "protocol", "tid", "c1", "c2", "c3"] {
                row.push(
                    r.get(&AttrName::new(attr))
                        .map_or(String::new(), ToString::to_string),
                );
            }
            row
        })
        .collect();
    println!(
        "{}",
        render_table(
            "TABLE 1 - AN EXAMPLE OF THE GLOBAL EVENT LOG",
            &headers,
            &rows
        )
    );

    // Tables 2-5: fragments per DLA node, paper glsns preserved.
    let fragments: Vec<Vec<_>> = records.iter().map(|r| fragment(r, &partition)).collect();
    for node in 0..partition.num_nodes() {
        let attrs = partition.attrs_of(node);
        let mut headers: Vec<String> = vec!["glsn".into()];
        headers.extend(attrs.iter().map(ToString::to_string));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = fragments
            .iter()
            .map(|frags| {
                let frag = &frags[node];
                let mut row = vec![frag.glsn.to_string()];
                for attr in attrs {
                    row.push(
                        frag.values
                            .get(attr)
                            .map_or(String::new(), ToString::to_string),
                    );
                }
                row
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "TABLE {} - EVENT LOG FRAGMENTS STORED IN DLA NODE P{node}",
                    node + 2
                ),
                &header_refs,
                &rows
            )
        );
    }

    // Table 6: the paper's three tickets — T1 covers rows 1 and 3,
    // T2 rows 2 and 4, T3 row 5.
    let group = dla_crypto::schnorr::SchnorrGroup::fixed_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut authority = TicketAuthority::new(&group, &mut rng);
    let holder = dla_crypto::schnorr::SchnorrKeyPair::generate(&group, &mut rng);
    let mut acl = AccessControlTable::new();
    let assignment = [vec![0usize, 2], vec![1, 3], vec![4]];
    for rows_of_ticket in &assignment {
        let ticket = authority.issue(holder.public(), OperationSet::read_write(), &mut rng);
        for &row in rows_of_ticket {
            acl.authorize(&ticket, records[row].glsn);
        }
    }
    let rows: Vec<Vec<String>> = acl
        .iter()
        .map(|(ticket, ops, glsns)| {
            let list: Vec<String> = glsns.iter().map(ToString::to_string).collect();
            vec![ticket.to_string(), ops.to_string(), list.join(", ")]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "TABLE 6 - ACCESS CONTROL TABLE",
            &["Ticket ID", "Type", "glsn"],
            &rows
        )
    );
}
