//! Experiment F7: the Figure 7 r-binding handshake — token creation by
//! the credential authority (`g(t) =? 1`), the three-phase PP/SC/RE
//! exchange, evidence verification (`f(e) =? 1`), and forgery
//! rejection.
//!
//! Run with: `cargo run -p dla-bench --bin fig7_rbinding`

use dla_audit::membership::{EvidenceChain, MembershipAuthority};
use dla_crypto::evidence::verify_spend;
use dla_crypto::schnorr::SchnorrGroup;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(707);
    let group = SchnorrGroup::fixed_256();
    let mut authority = MembershipAuthority::new(&group, &mut rng);

    // Creation phase: the credential authority grants tokens.
    let py = authority.enroll("p-y.example", &mut rng);
    let px = authority.enroll("p-x.example", &mut rng);
    println!("credential authority grants tokens:");
    for (who, token) in [("P_y", py.invite_token()), ("P_x", px.join_token())] {
        let ok = token.verify_certification(&group, authority.ca_public());
        println!("  {who}: token #{} — g(t) =? 1 → {ok}", token.serial);
        assert!(ok);
    }

    // Three-phase handshake (modelled in EvidenceChain::invite):
    println!("\nthree-way handshake:");
    println!("  phase 1  P_y -> P_x : PP (policy proposal)");
    println!("  phase 2  P_x -> P_y : SC (service commitment)");
    println!("  phase 3  P_y -> P_x : RE (evidence + invite authority)");
    let mut chain = EvidenceChain::found(&authority, &py, "charter", &mut rng);
    let piece = chain
        .invite(
            &py,
            &px,
            "PP: store fragments for attribute set A_x",
            "SC: committed, with 99.9% availability",
            &mut rng,
        )
        .clone();

    // Verification phase: f(e) =? 1.
    println!(
        "\nverification of the new evidence piece e{}:",
        piece.seq + 1
    );
    let inviter = piece.inviter.as_ref().expect("non-genesis piece");
    let context_ok = chain.verify().is_ok();
    println!("  full-chain f(e) =? 1 → {context_ok}");
    assert!(context_ok);

    // The binding is unforgeable: replaying the inviter's spend on a
    // different context fails.
    let forged_context = b"a different piece entirely";
    let replay_ok = verify_spend(
        authority.params(),
        &inviter.token,
        forged_context,
        &inviter.spend,
    );
    println!("  replaying P_y's spend on a forged context → {replay_ok}");
    assert!(!replay_ok);

    // Tampering with the bound terms breaks the piece.
    let mut tampered = chain;
    tampered_terms(&mut tampered);
    println!(
        "  tampering with the bound SC terms → verify: {:?}",
        tampered.verify().err().map(|e| e.to_string())
    );
    assert!(tampered.verify().is_err());
}

fn tampered_terms(chain: &mut EvidenceChain) {
    // Test-only surgery through the public API: rebuild with modified
    // terms is impossible without the secrets, so mutate in place via
    // the pieces accessor — the struct fields are public by design for
    // audit inspection.
    let piece = chain.pieces_mut().last_mut().expect("nonempty");
    piece.service_commitment = "SC: committed, with 0.1% availability".into();
}
