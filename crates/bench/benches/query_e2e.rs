//! Experiment P5 (Criterion form): end-to-end distributed queries on a
//! loaded cluster vs. the centralized baseline, plus the confidential
//! count aggregate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dla_audit::aggregate;
use dla_audit::centralized::CentralizedAuditor;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::schema::Schema;
use rand::SeedableRng;
use std::hint::black_box;

const QUERIES: [(&str, &str); 3] = [
    ("local", "c1 > 50"),
    ("conjunctive", "c1 > 50 AND protocol = 'TCP'"),
    ("cross", "(id = 'U1' OR c1 > 80) AND c2 < 500.00"),
];

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_e2e");
    group.sample_size(10);

    for (label, query) in QUERIES {
        group.bench_with_input(
            BenchmarkId::new("distributed", label),
            &query,
            |b, &query| {
                let (mut cluster, _, _) = dla_bench::workload_cluster(4, 100, 13);
                b.iter(|| black_box(cluster.query(query).expect("query runs")));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("centralized", label),
            &query,
            |b, &query| {
                let mut auditor = CentralizedAuditor::new(Schema::paper_example(), 2);
                let user = auditor.register_user().expect("capacity");
                let mut rng = rand::rngs::StdRng::seed_from_u64(13);
                for r in generate(
                    &WorkloadConfig {
                        records: 100,
                        ..WorkloadConfig::default()
                    },
                    &mut rng,
                ) {
                    auditor.log_record(user, &r).expect("logs");
                }
                b.iter(|| black_box(auditor.query_text(query).expect("query runs")));
            },
        );
    }

    group.bench_function("confidential_count", |b| {
        let (mut cluster, _, _) = dla_bench::workload_cluster(4, 100, 13);
        b.iter(|| {
            black_box(aggregate::count_matching(&mut cluster, "protocol = 'UDP'").expect("runs"))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
