//! Experiment E8 (Criterion form): one-way accumulator folding and the
//! §4.1 integrity circulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dla_audit::integrity;
use dla_crypto::accumulator::AccumulatorParams;
use std::hint::black_box;

fn bench_accumulator(c: &mut Criterion) {
    let params = AccumulatorParams::fixed_512();
    let mut group = c.benchmark_group("accumulator");

    group.bench_function("fold_one_item", |b| {
        let acc = params.start().clone();
        b.iter(|| black_box(params.fold(&acc, b"fragment canonical bytes: 128 bytes of payload xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")));
    });

    for items in [4usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("accumulate", items),
            &items,
            |b, &items| {
                let data: Vec<Vec<u8>> = (0..items)
                    .map(|i| format!("fragment-{i}").into_bytes())
                    .collect();
                b.iter(|| black_box(params.accumulate(data.iter().map(Vec::as_slice))));
            },
        );
    }

    group.sample_size(10);
    group.bench_function("integrity_circulation_4_nodes", |b| {
        let (mut cluster, _, glsns) = dla_bench::paper_cluster(9);
        b.iter(|| {
            black_box(integrity::check_record(&mut cluster, glsns[0], 0).expect("check runs"))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_accumulator);
criterion_main!(benches);
