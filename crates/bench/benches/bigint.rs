//! Substrate ablation: Montgomery vs. schoolbook modular
//! exponentiation — the optimization every protocol's CPU budget rides
//! on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dla_bigint::modular;
use dla_bigint::montgomery::MontgomeryContext;
use dla_bigint::Ubig;
use dla_crypto::pohlig_hellman::{SAFE_PRIME_256_HEX, SAFE_PRIME_512_HEX};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_modexp(c: &mut Criterion) {
    let mut group = c.benchmark_group("modexp");
    for (label, hex) in [("256", SAFE_PRIME_256_HEX), ("512", SAFE_PRIME_512_HEX)] {
        let p = Ubig::from_hex(hex).expect("valid constant");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let base = Ubig::random_below(&mut rng, &p);
        let exp = Ubig::random_below(&mut rng, &p);

        group.bench_with_input(BenchmarkId::new("schoolbook", label), &p, |b, p| {
            b.iter(|| black_box(modular::modexp_schoolbook(&base, &exp, p)));
        });
        group.bench_with_input(BenchmarkId::new("montgomery", label), &p, |b, p| {
            b.iter(|| black_box(modular::modexp(&base, &exp, p)));
        });
        group.bench_with_input(
            BenchmarkId::new("montgomery_reused_ctx", label),
            &p,
            |b, p| {
                let ctx = MontgomeryContext::new(p).expect("odd modulus");
                b.iter(|| black_box(ctx.modexp(&base, &exp)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_modexp);
criterion_main!(benches);
