//! Experiment P2 (Criterion form): secure set intersection cost over
//! party count and set size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dla_crypto::pohlig_hellman::CommutativeDomain;
use dla_mpc::set_intersection::secure_set_intersection;
use dla_net::topology::Ring;
use dla_net::{NetConfig, NodeId, SimNet};
use rand::SeedableRng;
use std::hint::black_box;

fn inputs(n: usize, set_size: usize) -> Vec<Vec<Vec<u8>>> {
    (0..n)
        .map(|party| {
            (0..set_size)
                .map(|i| {
                    if i % 2 == 0 {
                        format!("shared-{i}").into_bytes()
                    } else {
                        format!("private-{party}-{i}").into_bytes()
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_ssi(c: &mut Criterion) {
    let domain = CommutativeDomain::fixed_256();
    let mut group = c.benchmark_group("set_intersection");
    group.sample_size(10);

    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parties", n), &n, |b, &n| {
            let sets = inputs(n, 16);
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                let mut net = SimNet::new(n, NetConfig::ideal());
                let ring = Ring::canonical(n);
                black_box(
                    secure_set_intersection(
                        &mut net,
                        &ring,
                        &domain,
                        &sets,
                        NodeId(0),
                        false,
                        &mut rng,
                    )
                    .expect("runs"),
                )
            });
        });
    }

    for set_size in [8usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("set_size", set_size),
            &set_size,
            |b, &set_size| {
                let sets = inputs(3, set_size);
                b.iter(|| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
                    let mut net = SimNet::new(3, NetConfig::ideal());
                    let ring = Ring::canonical(3);
                    black_box(
                        secure_set_intersection(
                            &mut net,
                            &ring,
                            &domain,
                            &sets,
                            NodeId(0),
                            false,
                            &mut rng,
                        )
                        .expect("runs"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ssi);
criterion_main!(benches);
