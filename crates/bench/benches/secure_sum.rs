//! Experiment P1 (Criterion form): relaxed secure sum vs. the Feldman
//! VSS classical baseline vs. plaintext, at n = 4 and n = 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dla_bigint::{Ubig, F61};
use dla_crypto::schnorr::SchnorrGroup;
use dla_mpc::baseline::{plaintext_sum, vss_sum};
use dla_mpc::sum::secure_sum;
use dla_net::{NetConfig, NodeId, SimNet};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sums(c: &mut Criterion) {
    let group_params = SchnorrGroup::fixed_256();
    let mut group = c.benchmark_group("secure_sum");
    group.sample_size(10);

    for n in [4usize, 8] {
        let k = n / 2 + 1;
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
        let values: Vec<u64> = (1..=n as u64).collect();

        group.bench_with_input(BenchmarkId::new("plaintext", n), &n, |b, &n| {
            b.iter(|| {
                let mut net = SimNet::new(n + 1, NetConfig::ideal());
                black_box(plaintext_sum(&mut net, &parties, &values, NodeId(n)).expect("runs"))
            });
        });

        group.bench_with_input(BenchmarkId::new("relaxed_shamir", n), &n, |b, &n| {
            let inputs: Vec<F61> = values.iter().map(|&v| F61::new(v)).collect();
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(3);
                let mut net = SimNet::new(n + 1, NetConfig::ideal());
                black_box(
                    secure_sum(&mut net, &parties, &inputs, k, NodeId(n), &mut rng).expect("runs"),
                )
            });
        });

        group.bench_with_input(BenchmarkId::new("classical_vss", n), &n, |b, &n| {
            let inputs: Vec<Ubig> = values.iter().map(|&v| Ubig::from_u64(v)).collect();
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(4);
                let mut net = SimNet::new(n, NetConfig::ideal());
                black_box(
                    vss_sum(&mut net, &group_params, &parties, &inputs, k, &mut rng).expect("runs"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sums);
criterion_main!(benches);
