//! Figures 6–7 cost profile: evidence-chain construction, full-chain
//! verification and the double-use scan, by chain length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dla_audit::membership::{EvidenceChain, MembershipAuthority, NodeCredential};
use dla_crypto::schnorr::SchnorrGroup;
use rand::SeedableRng;
use std::hint::black_box;

fn build_chain(len: usize, seed: u64) -> (MembershipAuthority, EvidenceChain) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let group = SchnorrGroup::fixed_256();
    let mut authority = MembershipAuthority::new(&group, &mut rng);
    let creds: Vec<NodeCredential> = (0..len)
        .map(|i| authority.enroll(&format!("org-{i}"), &mut rng))
        .collect();
    let mut chain = EvidenceChain::found(&authority, &creds[0], "charter", &mut rng);
    for i in 1..len {
        chain.invite(&creds[i - 1], &creds[i], "pp", "sc", &mut rng);
    }
    (authority, chain)
}

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    group.sample_size(10);
    for len in [2usize, 8] {
        let (_, chain) = build_chain(len, 7);
        group.bench_with_input(BenchmarkId::new("verify_chain", len), &chain, |b, chain| {
            b.iter(|| black_box(chain.verify().is_ok()));
        });
        group.bench_with_input(
            BenchmarkId::new("double_use_scan", len),
            &chain,
            |b, chain| {
                b.iter(|| black_box(chain.detect_double_use()));
            },
        );
    }
    group.bench_function("enroll_and_invite", |b| {
        b.iter(|| black_box(build_chain(2, 9)));
    });
    group.finish();
}

criterion_group!(benches, bench_membership);
criterion_main!(benches);
