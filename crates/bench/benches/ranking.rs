//! Experiment P3 (Criterion form): blind-TTP `Rank_s` vs. the pairwise
//! comparison tournament.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dla_crypto::pohlig_hellman::CommutativeDomain;
use dla_mpc::baseline::baseline_ranking;
use dla_mpc::ranking::secure_ranking;
use dla_net::{NetConfig, NodeId, SimNet};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ranking(c: &mut Criterion) {
    let domain = CommutativeDomain::fixed_256();
    let mut group = c.benchmark_group("ranking");
    group.sample_size(10);

    for n in [3usize, 5] {
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
        let values: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % 100).collect();

        group.bench_with_input(BenchmarkId::new("relaxed_blind_ttp", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                let mut net = SimNet::new(n + 1, NetConfig::ideal());
                black_box(
                    secure_ranking(&mut net, &parties, NodeId(n), &values, &mut rng).expect("runs"),
                )
            });
        });

        group.bench_with_input(BenchmarkId::new("classical_pairwise", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                let mut net = SimNet::new(n, NetConfig::ideal());
                black_box(
                    baseline_ranking(&mut net, &domain, &parties, &values, &mut rng).expect("runs"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
