//! Experiment P4: Pohlig–Hellman commutative-cipher microbenchmarks —
//! key generation, encryption/decryption and message encoding at 256-
//! and 512-bit moduli (Eq. 6–7 substrate costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dla_crypto::pohlig_hellman::{CommutativeDomain, CommutativeKey, PhKey};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_pohlig_hellman(c: &mut Criterion) {
    let mut group = c.benchmark_group("pohlig_hellman");
    for (label, domain) in [
        ("256", CommutativeDomain::fixed_256()),
        ("512", CommutativeDomain::fixed_512()),
    ] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let key = PhKey::generate(&domain, &mut rng);
        let message = domain.fingerprint(b"glsn=139aef78");
        let ciphertext = key.encrypt(&message);

        group.bench_with_input(BenchmarkId::new("keygen", label), &domain, |b, d| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            b.iter(|| black_box(PhKey::generate(d, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("encrypt", label), &message, |b, m| {
            b.iter(|| black_box(key.encrypt(m)));
        });
        group.bench_with_input(BenchmarkId::new("decrypt", label), &ciphertext, |b, ct| {
            b.iter(|| black_box(key.decrypt(ct)));
        });
        group.bench_with_input(BenchmarkId::new("fingerprint", label), &domain, |b, d| {
            b.iter(|| black_box(d.fingerprint(b"transaction T1100265 event 3")));
        });
        group.bench_with_input(BenchmarkId::new("encode", label), &domain, |b, d| {
            b.iter(|| black_box(d.encode(b"glsn=139aef78").expect("encodes")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pohlig_hellman);
criterion_main!(benches);
