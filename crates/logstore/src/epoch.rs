//! Epoch sharding of the log trail.
//!
//! The paper's §4.1 integrity circulation folds the *entire* trail into
//! one accumulator, so verification is O(total trail) even for a narrow
//! audit window. Sharding the glsn space into fixed-length **epochs**
//! (cf. Crosby & Wallach's tamper-evident logging and the checkpoint
//! trees of Certificate Transparency) lets a sealed epoch be summarized
//! once — its accumulator digest chained to the previous seal — so a
//! windowed audit folds only the epochs it overlaps.
//!
//! The epoch of a record is a pure function of its glsn, fixed at
//! deposit time by the allocator: `epoch = (glsn - base) / length`.
//! Every node therefore agrees on epoch membership without any extra
//! coordination.

use crate::model::{AttrName, Glsn};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one epoch of the glsn space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EpochId(pub u64);

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Maps glsns to epochs: `epoch = (glsn - base) / length`. Glsns below
/// `base` (there are none in a well-formed trail — the allocator starts
/// at `base`) saturate into epoch 0.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpochPolicy {
    base: u64,
    length: u64,
}

impl EpochPolicy {
    /// A policy carving the glsn space from `base` into epochs of
    /// `length` glsns. `length` is clamped to at least 1.
    #[must_use]
    pub fn new(base: Glsn, length: u64) -> Self {
        EpochPolicy {
            base: base.0,
            length: length.max(1),
        }
    }

    /// The default policy: epochs of 1024 glsns starting at the paper's
    /// first glsn (`0x139aef78`). Long enough that small workloads stay
    /// within the open epoch.
    #[must_use]
    pub fn paper_default() -> Self {
        EpochPolicy::new(Glsn(0x139a_ef78), 1024)
    }

    /// Epoch length in glsns.
    #[must_use]
    pub fn length(&self) -> u64 {
        self.length
    }

    /// First glsn of epoch 0.
    #[must_use]
    pub fn base(&self) -> Glsn {
        Glsn(self.base)
    }

    /// The epoch containing `glsn`.
    #[must_use]
    pub fn epoch_of(&self, glsn: Glsn) -> EpochId {
        EpochId(glsn.0.saturating_sub(self.base) / self.length)
    }

    /// The inclusive glsn range `[lo, hi]` covered by `epoch`.
    #[must_use]
    pub fn glsn_range(&self, epoch: EpochId) -> (Glsn, Glsn) {
        let lo = self
            .base
            .saturating_add(epoch.0.saturating_mul(self.length));
        let hi = lo.saturating_add(self.length - 1);
        (Glsn(lo), Glsn(hi))
    }
}

impl Default for EpochPolicy {
    fn default() -> Self {
        EpochPolicy::paper_default()
    }
}

/// A running (count, total) pair for one numeric attribute. `total`
/// is the sum of raw `Int`/`Fixed2` values (hundredths for fixed-point)
/// over the contributing fragments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NumericPartial {
    /// Fragments that carried the attribute.
    pub count: u64,
    /// Sum of the raw values.
    pub total: i64,
}

impl NumericPartial {
    /// Folds one more value in.
    pub fn observe(&mut self, value: i64) {
        self.count += 1;
        self.total = self.total.wrapping_add(value);
    }
}

/// One equality bucket's partial: how many of the epoch's fragments
/// carry `attr = value`, plus the sums of every *co-resident* numeric
/// attribute over exactly those fragments (co-resident: stored in the
/// same fragment, i.e. served by the same node — a cross-node sum still
/// goes through the secure-sum pipeline).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BucketPartial {
    /// Fragments matching the bucket's equality predicate.
    pub count: u64,
    /// Per numeric attribute, its sum over the matching fragments.
    pub sums: BTreeMap<AttrName, NumericPartial>,
}

/// Materialized aggregate partials for one epoch at one node, computed
/// from the node's own fragments at seal time: the per-predicate-bucket
/// counts and sums a windowed aggregate combines instead of rescanning
/// the epoch. Buckets are the text-valued equality predicates
/// (`attr = 'value'`) actually present in the data; numeric attributes
/// additionally contribute whole-epoch totals.
///
/// Partials are journaled (blob `0x14`) and rebuilt-or-invalidated on
/// [`crate::store::FragmentStore::restore`]; the cluster folds a digest
/// of every node's partials into the epoch's sealed checkpoint so a
/// cached answer is integrity-checked, never trusted.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EpochPartials {
    /// The epoch the partials summarize.
    pub epoch: EpochId,
    /// Fragments folded in (the node's own fragments in the epoch).
    pub fragments: u64,
    /// Whole-epoch totals per numeric attribute.
    pub totals: BTreeMap<AttrName, NumericPartial>,
    /// Equality buckets: `(attr, text value)` → partial.
    pub buckets: BTreeMap<(AttrName, String), BucketPartial>,
}

impl EpochPartials {
    /// Empty partials for `epoch`.
    #[must_use]
    pub fn empty(epoch: EpochId) -> Self {
        EpochPartials {
            epoch,
            fragments: 0,
            totals: BTreeMap::new(),
            buckets: BTreeMap::new(),
        }
    }

    /// The bucket partial for `attr = value`, if any fragment matched.
    #[must_use]
    pub fn bucket(&self, attr: &AttrName, value: &str) -> Option<&BucketPartial> {
        self.buckets.get(&(attr.clone(), value.to_owned()))
    }

    /// Canonical byte encoding (big-endian throughout):
    /// `epoch ‖ fragments ‖ totals ‖ buckets`, every map
    /// length-prefixed and iterated in key order so equal partials
    /// encode identically.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        fn put_name(out: &mut Vec<u8>, name: &AttrName) {
            let bytes = name.as_str().as_bytes();
            out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
            out.extend_from_slice(bytes);
        }
        fn put_numeric(out: &mut Vec<u8>, p: &NumericPartial) {
            out.extend_from_slice(&p.count.to_be_bytes());
            out.extend_from_slice(&p.total.to_be_bytes());
        }
        let mut out = Vec::new();
        out.extend_from_slice(&self.epoch.0.to_be_bytes());
        out.extend_from_slice(&self.fragments.to_be_bytes());
        out.extend_from_slice(&(self.totals.len() as u32).to_be_bytes());
        for (name, partial) in &self.totals {
            put_name(&mut out, name);
            put_numeric(&mut out, partial);
        }
        out.extend_from_slice(&(self.buckets.len() as u32).to_be_bytes());
        for ((name, value), bucket) in &self.buckets {
            put_name(&mut out, name);
            out.extend_from_slice(&(value.len() as u32).to_be_bytes());
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(&bucket.count.to_be_bytes());
            out.extend_from_slice(&(bucket.sums.len() as u32).to_be_bytes());
            for (sum_name, partial) in &bucket.sums {
                put_name(&mut out, sum_name);
                put_numeric(&mut out, partial);
            }
        }
        out
    }

    /// Decodes an [`EpochPartials::encode`] blob; `None` on any
    /// structural mismatch (truncation, bad UTF-8, trailing bytes).
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        struct Cursor<'a>(&'a [u8]);
        impl<'a> Cursor<'a> {
            fn take(&mut self, n: usize) -> Option<&'a [u8]> {
                let (head, tail) = (self.0.get(..n)?, self.0.get(n..)?);
                self.0 = tail;
                Some(head)
            }
            fn u16(&mut self) -> Option<u16> {
                Some(u16::from_be_bytes(self.take(2)?.try_into().ok()?))
            }
            fn u32(&mut self) -> Option<u32> {
                Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
            }
            fn u64(&mut self) -> Option<u64> {
                Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
            }
            fn i64(&mut self) -> Option<i64> {
                Some(i64::from_be_bytes(self.take(8)?.try_into().ok()?))
            }
            fn name(&mut self) -> Option<AttrName> {
                let len = self.u16()? as usize;
                let raw = std::str::from_utf8(self.take(len)?).ok()?;
                Some(AttrName::new(raw))
            }
            fn numeric(&mut self) -> Option<NumericPartial> {
                Some(NumericPartial {
                    count: self.u64()?,
                    total: self.i64()?,
                })
            }
        }
        let mut c = Cursor(bytes);
        let epoch = EpochId(c.u64()?);
        let fragments = c.u64()?;
        let mut totals = BTreeMap::new();
        for _ in 0..c.u32()? {
            let name = c.name()?;
            totals.insert(name, c.numeric()?);
        }
        let mut buckets = BTreeMap::new();
        for _ in 0..c.u32()? {
            let name = c.name()?;
            let value_len = c.u32()? as usize;
            let value = std::str::from_utf8(c.take(value_len)?).ok()?.to_owned();
            let count = c.u64()?;
            let mut sums = BTreeMap::new();
            for _ in 0..c.u32()? {
                let sum_name = c.name()?;
                sums.insert(sum_name, c.numeric()?);
            }
            buckets.insert((name, value), BucketPartial { count, sums });
        }
        if !c.0.is_empty() {
            return None;
        }
        Some(EpochPartials {
            epoch,
            fragments,
            totals,
            buckets,
        })
    }
}

/// Per-epoch bookkeeping a [`crate::store::FragmentStore`] maintains:
/// how many fragments landed in the epoch, the glsn extremes actually
/// observed, whether the epoch has been sealed (no further deposits
/// admitted; its accumulator digest is checkpointed cluster-side), and
/// — once sealed — the materialized aggregate partials cached for
/// windowed queries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EpochManifest {
    /// The epoch this manifest describes.
    pub epoch: EpochId,
    /// Fragments stored in this epoch (own fragments only).
    pub fragments: u64,
    /// Smallest glsn actually stored in the epoch.
    pub glsn_lo: Glsn,
    /// Largest glsn actually stored in the epoch.
    pub glsn_hi: Glsn,
    /// Whether the epoch is sealed. Sealing is recorded in the node's
    /// journal, so it survives [`crate::store::FragmentStore::restore`].
    pub sealed: bool,
    /// Materialized aggregate partials, populated at seal time
    /// ([`crate::store::FragmentStore::materialize_partials`]) and
    /// rebuilt from the surviving fragments on restore. `None` until
    /// materialized (or after invalidation).
    pub partials: Option<EpochPartials>,
}

impl EpochManifest {
    /// A manifest for a freshly opened epoch with one fragment at
    /// `glsn`.
    #[must_use]
    pub fn opened_at(epoch: EpochId, glsn: Glsn) -> Self {
        EpochManifest {
            epoch,
            fragments: 1,
            glsn_lo: glsn,
            glsn_hi: glsn,
            sealed: false,
            partials: None,
        }
    }

    /// Records one more fragment at `glsn`.
    pub fn observe(&mut self, glsn: Glsn) {
        self.fragments += 1;
        self.glsn_lo = self.glsn_lo.min(glsn);
        self.glsn_hi = self.glsn_hi.max(glsn);
    }
}

/// Ring-scoped glsn namespacing for the hierarchical federation: ring
/// `r` owns the half-open span `[base + r·span, base + (r+1)·span)`,
/// so every federated deposit carries a globally unique glsn and any
/// glsn maps back to its owning ring without coordination — the same
/// pure-function trick [`EpochPolicy`] plays one level down for
/// epochs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RingNamespace {
    base: u64,
    span: u64,
}

impl RingNamespace {
    /// A namespace carving the glsn space from `base` into per-ring
    /// spans of `span` glsns. `span` is clamped to at least 1.
    #[must_use]
    pub fn new(base: Glsn, span: u64) -> Self {
        RingNamespace {
            base: base.0,
            span: span.max(1),
        }
    }

    /// The default namespace: spans of 2³² glsns starting at the
    /// paper's first glsn — room for four billion deposits per ring
    /// before spans could collide.
    #[must_use]
    pub fn paper_default() -> Self {
        RingNamespace::new(Glsn(0x139a_ef78), 1 << 32)
    }

    /// Span width in glsns.
    #[must_use]
    pub fn span(&self) -> u64 {
        self.span
    }

    /// The first glsn of ring `ring`'s span (its allocator start and
    /// epoch-policy base).
    #[must_use]
    pub fn base_of(&self, ring: u64) -> Glsn {
        Glsn(self.base.saturating_add(ring.saturating_mul(self.span)))
    }

    /// The ring owning `glsn`, or `None` for glsns below the namespace
    /// base (none exist in a well-formed federated trail).
    #[must_use]
    pub fn ring_of(&self, glsn: Glsn) -> Option<u64> {
        glsn.0
            .checked_sub(self.base)
            .map(|offset| offset / self.span)
    }

    /// The epoch policy ring `ring` runs: epochs of `epoch_length`
    /// glsns carved from the ring's own span base, so each sub-ring's
    /// epoch numbering starts at 0 exactly as a standalone cluster's
    /// does.
    #[must_use]
    pub fn policy_for(&self, ring: u64, epoch_length: u64) -> EpochPolicy {
        EpochPolicy::new(self.base_of(ring), epoch_length)
    }
}

impl Default for RingNamespace {
    fn default() -> Self {
        RingNamespace::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_of_partitions_the_glsn_space() {
        let policy = EpochPolicy::new(Glsn(100), 10);
        assert_eq!(policy.epoch_of(Glsn(100)), EpochId(0));
        assert_eq!(policy.epoch_of(Glsn(109)), EpochId(0));
        assert_eq!(policy.epoch_of(Glsn(110)), EpochId(1));
        assert_eq!(policy.epoch_of(Glsn(345)), EpochId(24));
        // Below base saturates to epoch 0 rather than underflowing.
        assert_eq!(policy.epoch_of(Glsn(5)), EpochId(0));
    }

    #[test]
    fn glsn_range_is_inclusive_and_consistent_with_epoch_of() {
        let policy = EpochPolicy::new(Glsn(0x139a_ef78), 16);
        for e in [0u64, 1, 7, 100] {
            let (lo, hi) = policy.glsn_range(EpochId(e));
            assert_eq!(hi.0 - lo.0 + 1, 16);
            assert_eq!(policy.epoch_of(lo), EpochId(e));
            assert_eq!(policy.epoch_of(hi), EpochId(e));
            assert_eq!(policy.epoch_of(Glsn(hi.0 + 1)), EpochId(e + 1));
        }
    }

    #[test]
    fn zero_length_is_clamped() {
        let policy = EpochPolicy::new(Glsn(0), 0);
        assert_eq!(policy.length(), 1);
        assert_eq!(policy.epoch_of(Glsn(3)), EpochId(3));
    }

    #[test]
    fn ring_namespace_partitions_and_inverts() {
        let ns = RingNamespace::new(Glsn(1000), 100);
        assert_eq!(ns.base_of(0), Glsn(1000));
        assert_eq!(ns.base_of(3), Glsn(1300));
        assert_eq!(ns.ring_of(Glsn(1000)), Some(0));
        assert_eq!(ns.ring_of(Glsn(1099)), Some(0));
        assert_eq!(ns.ring_of(Glsn(1100)), Some(1));
        assert_eq!(ns.ring_of(Glsn(999)), None);
        // Per-ring epoch policies re-base so every ring's epochs count
        // from 0 over its own span.
        let policy = ns.policy_for(2, 10);
        assert_eq!(policy.base(), Glsn(1200));
        assert_eq!(policy.epoch_of(Glsn(1215)), EpochId(1));
        // Zero span is clamped; defaults line up with the paper base.
        assert_eq!(RingNamespace::new(Glsn(0), 0).span(), 1);
        assert_eq!(
            RingNamespace::default().base_of(0),
            EpochPolicy::paper_default().base()
        );
    }

    #[test]
    fn partials_encode_round_trips_and_rejects_garbage() {
        let mut partials = EpochPartials::empty(EpochId(7));
        partials.fragments = 3;
        partials
            .totals
            .entry(AttrName::new("c2"))
            .or_default()
            .observe(2345);
        partials
            .totals
            .entry(AttrName::new("c2"))
            .or_default()
            .observe(-11);
        let bucket = partials
            .buckets
            .entry((AttrName::new("id"), "U3".to_owned()))
            .or_default();
        bucket.count = 2;
        bucket
            .sums
            .entry(AttrName::new("c2"))
            .or_default()
            .observe(34511);

        let bytes = partials.encode();
        assert_eq!(EpochPartials::decode(&bytes), Some(partials.clone()));
        // Trailing bytes, truncation, and non-UTF-8 names all reject.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(EpochPartials::decode(&trailing), None);
        assert_eq!(EpochPartials::decode(&bytes[..bytes.len() - 1]), None);
        assert_eq!(EpochPartials::decode(&[]), None);
        // Equal partials encode identically (canonical map order).
        assert_eq!(bytes, partials.clone().encode());
    }

    #[test]
    fn manifest_tracks_extremes() {
        let mut m = EpochManifest::opened_at(EpochId(2), Glsn(25));
        m.observe(Glsn(21));
        m.observe(Glsn(29));
        assert_eq!(m.fragments, 3);
        assert_eq!(m.glsn_lo, Glsn(21));
        assert_eq!(m.glsn_hi, Glsn(29));
        assert!(!m.sealed);
    }
}
