//! Epoch sharding of the log trail.
//!
//! The paper's §4.1 integrity circulation folds the *entire* trail into
//! one accumulator, so verification is O(total trail) even for a narrow
//! audit window. Sharding the glsn space into fixed-length **epochs**
//! (cf. Crosby & Wallach's tamper-evident logging and the checkpoint
//! trees of Certificate Transparency) lets a sealed epoch be summarized
//! once — its accumulator digest chained to the previous seal — so a
//! windowed audit folds only the epochs it overlaps.
//!
//! The epoch of a record is a pure function of its glsn, fixed at
//! deposit time by the allocator: `epoch = (glsn - base) / length`.
//! Every node therefore agrees on epoch membership without any extra
//! coordination.

use crate::model::Glsn;
use std::fmt;

/// Identifies one epoch of the glsn space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EpochId(pub u64);

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Maps glsns to epochs: `epoch = (glsn - base) / length`. Glsns below
/// `base` (there are none in a well-formed trail — the allocator starts
/// at `base`) saturate into epoch 0.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpochPolicy {
    base: u64,
    length: u64,
}

impl EpochPolicy {
    /// A policy carving the glsn space from `base` into epochs of
    /// `length` glsns. `length` is clamped to at least 1.
    #[must_use]
    pub fn new(base: Glsn, length: u64) -> Self {
        EpochPolicy {
            base: base.0,
            length: length.max(1),
        }
    }

    /// The default policy: epochs of 1024 glsns starting at the paper's
    /// first glsn (`0x139aef78`). Long enough that small workloads stay
    /// within the open epoch.
    #[must_use]
    pub fn paper_default() -> Self {
        EpochPolicy::new(Glsn(0x139a_ef78), 1024)
    }

    /// Epoch length in glsns.
    #[must_use]
    pub fn length(&self) -> u64 {
        self.length
    }

    /// First glsn of epoch 0.
    #[must_use]
    pub fn base(&self) -> Glsn {
        Glsn(self.base)
    }

    /// The epoch containing `glsn`.
    #[must_use]
    pub fn epoch_of(&self, glsn: Glsn) -> EpochId {
        EpochId(glsn.0.saturating_sub(self.base) / self.length)
    }

    /// The inclusive glsn range `[lo, hi]` covered by `epoch`.
    #[must_use]
    pub fn glsn_range(&self, epoch: EpochId) -> (Glsn, Glsn) {
        let lo = self
            .base
            .saturating_add(epoch.0.saturating_mul(self.length));
        let hi = lo.saturating_add(self.length - 1);
        (Glsn(lo), Glsn(hi))
    }
}

impl Default for EpochPolicy {
    fn default() -> Self {
        EpochPolicy::paper_default()
    }
}

/// Per-epoch bookkeeping a [`crate::store::FragmentStore`] maintains:
/// how many fragments landed in the epoch, the glsn extremes actually
/// observed, and whether the epoch has been sealed (no further deposits
/// admitted; its accumulator digest is checkpointed cluster-side).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EpochManifest {
    /// The epoch this manifest describes.
    pub epoch: EpochId,
    /// Fragments stored in this epoch (own fragments only).
    pub fragments: u64,
    /// Smallest glsn actually stored in the epoch.
    pub glsn_lo: Glsn,
    /// Largest glsn actually stored in the epoch.
    pub glsn_hi: Glsn,
    /// Whether the epoch is sealed. Sealing is recorded in the node's
    /// journal, so it survives [`crate::store::FragmentStore::restore`].
    pub sealed: bool,
}

impl EpochManifest {
    /// A manifest for a freshly opened epoch with one fragment at
    /// `glsn`.
    #[must_use]
    pub fn opened_at(epoch: EpochId, glsn: Glsn) -> Self {
        EpochManifest {
            epoch,
            fragments: 1,
            glsn_lo: glsn,
            glsn_hi: glsn,
            sealed: false,
        }
    }

    /// Records one more fragment at `glsn`.
    pub fn observe(&mut self, glsn: Glsn) {
        self.fragments += 1;
        self.glsn_lo = self.glsn_lo.min(glsn);
        self.glsn_hi = self.glsn_hi.max(glsn);
    }
}

/// Ring-scoped glsn namespacing for the hierarchical federation: ring
/// `r` owns the half-open span `[base + r·span, base + (r+1)·span)`,
/// so every federated deposit carries a globally unique glsn and any
/// glsn maps back to its owning ring without coordination — the same
/// pure-function trick [`EpochPolicy`] plays one level down for
/// epochs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RingNamespace {
    base: u64,
    span: u64,
}

impl RingNamespace {
    /// A namespace carving the glsn space from `base` into per-ring
    /// spans of `span` glsns. `span` is clamped to at least 1.
    #[must_use]
    pub fn new(base: Glsn, span: u64) -> Self {
        RingNamespace {
            base: base.0,
            span: span.max(1),
        }
    }

    /// The default namespace: spans of 2³² glsns starting at the
    /// paper's first glsn — room for four billion deposits per ring
    /// before spans could collide.
    #[must_use]
    pub fn paper_default() -> Self {
        RingNamespace::new(Glsn(0x139a_ef78), 1 << 32)
    }

    /// Span width in glsns.
    #[must_use]
    pub fn span(&self) -> u64 {
        self.span
    }

    /// The first glsn of ring `ring`'s span (its allocator start and
    /// epoch-policy base).
    #[must_use]
    pub fn base_of(&self, ring: u64) -> Glsn {
        Glsn(self.base.saturating_add(ring.saturating_mul(self.span)))
    }

    /// The ring owning `glsn`, or `None` for glsns below the namespace
    /// base (none exist in a well-formed federated trail).
    #[must_use]
    pub fn ring_of(&self, glsn: Glsn) -> Option<u64> {
        glsn.0
            .checked_sub(self.base)
            .map(|offset| offset / self.span)
    }

    /// The epoch policy ring `ring` runs: epochs of `epoch_length`
    /// glsns carved from the ring's own span base, so each sub-ring's
    /// epoch numbering starts at 0 exactly as a standalone cluster's
    /// does.
    #[must_use]
    pub fn policy_for(&self, ring: u64, epoch_length: u64) -> EpochPolicy {
        EpochPolicy::new(self.base_of(ring), epoch_length)
    }
}

impl Default for RingNamespace {
    fn default() -> Self {
        RingNamespace::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_of_partitions_the_glsn_space() {
        let policy = EpochPolicy::new(Glsn(100), 10);
        assert_eq!(policy.epoch_of(Glsn(100)), EpochId(0));
        assert_eq!(policy.epoch_of(Glsn(109)), EpochId(0));
        assert_eq!(policy.epoch_of(Glsn(110)), EpochId(1));
        assert_eq!(policy.epoch_of(Glsn(345)), EpochId(24));
        // Below base saturates to epoch 0 rather than underflowing.
        assert_eq!(policy.epoch_of(Glsn(5)), EpochId(0));
    }

    #[test]
    fn glsn_range_is_inclusive_and_consistent_with_epoch_of() {
        let policy = EpochPolicy::new(Glsn(0x139a_ef78), 16);
        for e in [0u64, 1, 7, 100] {
            let (lo, hi) = policy.glsn_range(EpochId(e));
            assert_eq!(hi.0 - lo.0 + 1, 16);
            assert_eq!(policy.epoch_of(lo), EpochId(e));
            assert_eq!(policy.epoch_of(hi), EpochId(e));
            assert_eq!(policy.epoch_of(Glsn(hi.0 + 1)), EpochId(e + 1));
        }
    }

    #[test]
    fn zero_length_is_clamped() {
        let policy = EpochPolicy::new(Glsn(0), 0);
        assert_eq!(policy.length(), 1);
        assert_eq!(policy.epoch_of(Glsn(3)), EpochId(3));
    }

    #[test]
    fn ring_namespace_partitions_and_inverts() {
        let ns = RingNamespace::new(Glsn(1000), 100);
        assert_eq!(ns.base_of(0), Glsn(1000));
        assert_eq!(ns.base_of(3), Glsn(1300));
        assert_eq!(ns.ring_of(Glsn(1000)), Some(0));
        assert_eq!(ns.ring_of(Glsn(1099)), Some(0));
        assert_eq!(ns.ring_of(Glsn(1100)), Some(1));
        assert_eq!(ns.ring_of(Glsn(999)), None);
        // Per-ring epoch policies re-base so every ring's epochs count
        // from 0 over its own span.
        let policy = ns.policy_for(2, 10);
        assert_eq!(policy.base(), Glsn(1200));
        assert_eq!(policy.epoch_of(Glsn(1215)), EpochId(1));
        // Zero span is clamped; defaults line up with the paper base.
        assert_eq!(RingNamespace::new(Glsn(0), 0).span(), 1);
        assert_eq!(
            RingNamespace::default().base_of(0),
            EpochPolicy::paper_default().base()
        );
    }

    #[test]
    fn manifest_tracks_extremes() {
        let mut m = EpochManifest::opened_at(EpochId(2), Glsn(25));
        m.observe(Glsn(21));
        m.observe(Glsn(29));
        assert_eq!(m.fragments, 3);
        assert_eq!(m.glsn_lo, Glsn(21));
        assert_eq!(m.glsn_hi, Glsn(29));
        assert!(!m.sealed);
    }
}
