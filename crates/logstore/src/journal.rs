//! Durable append-only fragment journal.
//!
//! A production DLA node must survive restarts without losing the log
//! fragments it is trusted to keep (losing one would make every
//! integrity circulation for that glsn fail, §4.1). The journal is the
//! simplest crash-safe shape: length- and CRC-framed entries appended
//! to a file, fsynced per append, replayed at startup. A torn final
//! entry (crash mid-write) is detected by the CRC and truncated away;
//! corruption anywhere earlier is reported loudly.
//!
//! Entry layout: `[len: u32 BE][crc32: u32 BE][kind: u8][payload]` with
//! `len = 1 + payload.len()` and the CRC computed over `kind ‖ payload`.

use crate::fragment::Fragment;
use crate::model::Glsn;
use crate::LogError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One journal entry.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEntry {
    /// A fragment was stored.
    Fragment(Fragment),
    /// A fragment was deleted.
    Tombstone(Glsn),
    /// A glsn was authorized under a ticket.
    AclGrant {
        /// The ticket id.
        ticket: String,
        /// The encoded operation set ([`crate::acl::OperationSet::to_byte`]).
        ops: u8,
        /// The authorized glsn.
        glsn: Glsn,
    },
    /// An opaque, caller-defined record (higher layers journal their own
    /// state — e.g. the DLA cluster's accumulator deposits — through the
    /// same crash-safe framing).
    Blob {
        /// Caller-defined discriminator.
        tag: u8,
        /// Caller-encoded payload.
        bytes: Vec<u8>,
    },
}

const KIND_FRAGMENT: u8 = 0x01;
const KIND_TOMBSTONE: u8 = 0x02;
const KIND_ACL_GRANT: u8 = 0x03;
const KIND_BLOB: u8 = 0x04;

/// The append-only journal file.
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Journal({})", self.path.display())
    }
}

impl Journal {
    /// Opens (or creates) the journal at `path` and replays every valid
    /// entry. A torn trailing entry is truncated away; corruption
    /// before the tail is an error.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] on I/O failure or mid-file
    /// corruption.
    pub fn open(path: &Path) -> Result<(Self, Vec<JournalEntry>), LogError> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| LogError::Store(format!("open {}: {e}", path.display())))?;
        let mut raw = Vec::new();
        file.seek(SeekFrom::Start(0))
            .and_then(|_| file.read_to_end(&mut raw))
            .map_err(|e| LogError::Store(format!("read {}: {e}", path.display())))?;

        let mut entries = Vec::new();
        let mut offset = 0usize;
        let mut valid_until = 0usize;
        while offset < raw.len() {
            match decode_entry(&raw[offset..]) {
                Ok((entry, consumed)) => {
                    entries.push(entry);
                    offset += consumed;
                    valid_until = offset;
                }
                Err(EntryError::Torn) => break, // crash tail: truncate
                Err(EntryError::Corrupt(what)) => {
                    return Err(LogError::Store(format!(
                        "journal {} corrupt at byte {offset}: {what}",
                        path.display()
                    )));
                }
            }
        }
        if valid_until < raw.len() {
            file.set_len(valid_until as u64)
                .and_then(|_| file.seek(SeekFrom::End(0)).map(|_| ()))
                .map_err(|e| LogError::Store(format!("truncate torn tail: {e}")))?;
        }
        Ok((
            Journal {
                file,
                path: path.to_owned(),
            },
            entries,
        ))
    }

    /// Appends and fsyncs one entry.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] on I/O failure.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), LogError> {
        self.append_batch(std::slice::from_ref(entry))
    }

    /// Appends a batch of entries with a **single** fsync: every frame
    /// is written back-to-back, then `sync_data` once. A crash mid-batch
    /// leaves a torn tail that [`Journal::open`] truncates away, so the
    /// batch is atomic per entry (a prefix survives) but costs one disk
    /// sync instead of one per entry — the amortization behind the
    /// cluster's batched deposit pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] on I/O failure.
    pub fn append_batch(&mut self, entries: &[JournalEntry]) -> Result<(), LogError> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut framed = Vec::new();
        for entry in entries {
            encode_framed(entry, &mut framed);
        }
        self.file
            .write_all(&framed)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| LogError::Store(format!("append to {}: {e}", self.path.display())))
    }

    /// The journal file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Folds replayed entries into the live fragment map (tombstones
    /// remove). A *different* fragment entry for a glsn that is already
    /// live is a duplicated deposit — the write path rejects those, so
    /// one in the journal means replayed or tampered history and is an
    /// error rather than a silent keep-latest rewrite. A byte-identical
    /// re-append (a crash between write and ack, retried) is idempotent,
    /// and a delete-then-rewrite (fragment, tombstone, fragment) remains
    /// legal.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::DuplicateGlsn`] on a conflicting rewrite of a
    /// live fragment.
    pub fn materialize(entries: Vec<JournalEntry>) -> Result<Vec<Fragment>, LogError> {
        let mut live = std::collections::BTreeMap::new();
        for entry in entries {
            match entry {
                JournalEntry::Fragment(frag) => {
                    if let Some(existing) = live.get(&frag.glsn) {
                        if *existing != frag {
                            return Err(LogError::DuplicateGlsn {
                                glsn: frag.glsn,
                                node: frag.node,
                            });
                        }
                    }
                    live.insert(frag.glsn, frag);
                }
                JournalEntry::Tombstone(glsn) => {
                    live.remove(&glsn);
                }
                JournalEntry::AclGrant { .. } | JournalEntry::Blob { .. } => {}
            }
        }
        Ok(live.into_values().collect())
    }
}

/// Frames one entry (`[len][crc][kind ‖ payload]`) onto `out`.
fn encode_framed(entry: &JournalEntry, out: &mut Vec<u8>) {
    let (kind, payload) = match entry {
        JournalEntry::Fragment(frag) => (KIND_FRAGMENT, frag.to_canonical_bytes()),
        JournalEntry::Tombstone(glsn) => (KIND_TOMBSTONE, glsn.0.to_be_bytes().to_vec()),
        JournalEntry::AclGrant { ticket, ops, glsn } => {
            let mut payload = Vec::with_capacity(9 + ticket.len());
            payload.push(*ops);
            payload.extend_from_slice(&glsn.0.to_be_bytes());
            payload.extend_from_slice(ticket.as_bytes());
            (KIND_ACL_GRANT, payload)
        }
        JournalEntry::Blob { tag, bytes } => {
            let mut payload = Vec::with_capacity(1 + bytes.len());
            payload.push(*tag);
            payload.extend_from_slice(bytes);
            (KIND_BLOB, payload)
        }
    };
    let mut body = Vec::with_capacity(1 + payload.len());
    body.push(kind);
    body.extend_from_slice(&payload);
    out.reserve(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(&body).to_be_bytes());
    out.extend_from_slice(&body);
}

enum EntryError {
    /// The buffer ends mid-entry (a crash tail).
    Torn,
    /// Framing is intact but the content is wrong.
    Corrupt(String),
}

fn decode_entry(raw: &[u8]) -> Result<(JournalEntry, usize), EntryError> {
    if raw.len() < 8 {
        return Err(EntryError::Torn);
    }
    let len = u32::from_be_bytes(raw[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(raw[4..8].try_into().expect("4 bytes"));
    if len == 0 {
        return Err(EntryError::Corrupt("zero-length entry".into()));
    }
    if raw.len() < 8 + len {
        return Err(EntryError::Torn);
    }
    let body = &raw[8..8 + len];
    if crc32(body) != crc {
        // A bad CRC on the *last* entry is indistinguishable from a torn
        // write; callers treat it as torn only when nothing follows.
        return if raw.len() == 8 + len {
            Err(EntryError::Torn)
        } else {
            Err(EntryError::Corrupt("crc mismatch".into()))
        };
    }
    let (kind, payload) = body.split_first().expect("len >= 1");
    let entry = match *kind {
        KIND_FRAGMENT => JournalEntry::Fragment(
            Fragment::from_canonical_bytes(payload)
                .map_err(|e| EntryError::Corrupt(e.to_string()))?,
        ),
        KIND_TOMBSTONE => {
            let bytes: [u8; 8] = payload
                .try_into()
                .map_err(|_| EntryError::Corrupt("tombstone payload".into()))?;
            JournalEntry::Tombstone(Glsn(u64::from_be_bytes(bytes)))
        }
        KIND_ACL_GRANT => {
            if payload.len() < 9 {
                return Err(EntryError::Corrupt("acl grant payload".into()));
            }
            let ops = payload[0];
            let glsn = Glsn(u64::from_be_bytes(
                payload[1..9].try_into().expect("8 bytes"),
            ));
            let ticket = String::from_utf8(payload[9..].to_vec())
                .map_err(|_| EntryError::Corrupt("acl grant ticket utf-8".into()))?;
            JournalEntry::AclGrant { ticket, ops, glsn }
        }
        KIND_BLOB => {
            let (tag, bytes) = payload
                .split_first()
                .ok_or_else(|| EntryError::Corrupt("empty blob payload".into()))?;
            JournalEntry::Blob {
                tag: *tag,
                bytes: bytes.to_vec(),
            }
        }
        other => {
            return Err(EntryError::Corrupt(format!(
                "unknown entry kind {other:#x}"
            )))
        }
    };
    Ok((entry, 8 + len))
}

/// CRC-32 (IEEE 802.3), bitwise implementation — journal entries are
/// small, table-free keeps it obviously correct.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{fragment, Partition};
    use crate::gen::paper_table1;
    use crate::schema::Schema;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "dla-journal-{tag}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_fragments() -> Vec<Fragment> {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        paper_table1()
            .iter()
            .map(|r| fragment(r, &partition).remove(1))
            .collect()
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_path("roundtrip");
        let frags = sample_fragments();
        {
            let (mut journal, replayed) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty());
            for f in &frags {
                journal.append(&JournalEntry::Fragment(f.clone())).unwrap();
            }
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), frags.len());
        let live = Journal::materialize(replayed).unwrap();
        assert_eq!(live, frags);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_batch_single_sync_round_trips() {
        let path = temp_path("batch");
        let frags = sample_fragments();
        {
            let (mut journal, _) = Journal::open(&path).unwrap();
            let entries: Vec<JournalEntry> = frags
                .iter()
                .map(|f| JournalEntry::Fragment(f.clone()))
                .collect();
            journal.append_batch(&entries).unwrap();
            journal.append_batch(&[]).unwrap(); // empty batch is a no-op
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(Journal::materialize(replayed).unwrap(), frags);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tombstones_remove_on_materialize() {
        let path = temp_path("tombstone");
        let frags = sample_fragments();
        {
            let (mut journal, _) = Journal::open(&path).unwrap();
            for f in &frags {
                journal.append(&JournalEntry::Fragment(f.clone())).unwrap();
            }
            journal
                .append(&JournalEntry::Tombstone(frags[2].glsn))
                .unwrap();
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        let live = Journal::materialize(replayed).unwrap();
        assert_eq!(live.len(), frags.len() - 1);
        assert!(live.iter().all(|f| f.glsn != frags[2].glsn));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_succeeds() {
        let path = temp_path("torn");
        let frags = sample_fragments();
        {
            let (mut journal, _) = Journal::open(&path).unwrap();
            for f in &frags[..3] {
                journal.append(&JournalEntry::Fragment(f.clone())).unwrap();
            }
        }
        // Simulate a crash mid-append: chop bytes off the end.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();

        let (mut journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2, "the torn third entry is dropped");
        // The journal is usable again after truncation.
        journal
            .append(&JournalEntry::Fragment(frags[3].clone()))
            .unwrap();
        drop(journal);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_reported() {
        let path = temp_path("corrupt");
        let frags = sample_fragments();
        {
            let (mut journal, _) = Journal::open(&path).unwrap();
            for f in &frags[..3] {
                journal.append(&JournalEntry::Fragment(f.clone())).unwrap();
            }
        }
        // Flip a byte in the FIRST entry's body (not the tail).
        let mut raw = std::fs::read(&path).unwrap();
        raw[12] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fragment_canonical_round_trip() {
        for frag in sample_fragments() {
            let bytes = frag.to_canonical_bytes();
            let back = Fragment::from_canonical_bytes(&bytes).unwrap();
            assert_eq!(back, frag);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Fragment::from_canonical_bytes(&[]).is_err());
        assert!(Fragment::from_canonical_bytes(&[1, 2, 3]).is_err());
        let mut valid = sample_fragments()[0].to_canonical_bytes();
        valid.push(0xFF); // trailing junk makes the record decoder fail
        assert!(Fragment::from_canonical_bytes(&valid).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn rewrites_of_same_glsn_are_rejected() {
        // A second fragment entry for a live glsn used to silently win
        // ("keep latest") — a duplicated deposit could rewrite history
        // on replay. Materialize now refuses.
        let path = temp_path("rewrite");
        let mut frag = sample_fragments()[0].clone();
        {
            let (mut journal, _) = Journal::open(&path).unwrap();
            journal
                .append(&JournalEntry::Fragment(frag.clone()))
                .unwrap();
            frag.values.insert(
                crate::model::AttrName::new("c2"),
                crate::model::AttrValue::Fixed2(99_999),
            );
            journal
                .append(&JournalEntry::Fragment(frag.clone()))
                .unwrap();
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        let err = Journal::materialize(replayed).unwrap_err();
        assert!(
            matches!(err, LogError::DuplicateGlsn { glsn, .. } if glsn == frag.glsn),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn delete_then_rewrite_is_legal() {
        let path = temp_path("del-rewrite");
        let frag = sample_fragments()[0].clone();
        {
            let (mut journal, _) = Journal::open(&path).unwrap();
            journal
                .append(&JournalEntry::Fragment(frag.clone()))
                .unwrap();
            journal.append(&JournalEntry::Tombstone(frag.glsn)).unwrap();
            journal
                .append(&JournalEntry::Fragment(frag.clone()))
                .unwrap();
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        let live = Journal::materialize(replayed).unwrap();
        assert_eq!(live, vec![frag]);
        std::fs::remove_file(&path).unwrap();
    }
}
