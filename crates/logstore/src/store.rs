//! Per-node fragment storage and the cluster-wide glsn allocator.

use crate::acl::{AccessControlTable, Operation, OperationSet, Ticket};
use crate::epoch::{EpochId, EpochManifest, EpochPartials, EpochPolicy};
use crate::fragment::Fragment;
use crate::journal::{Journal, JournalEntry};
use crate::model::{AttrName, AttrValue, Glsn};
use crate::LogError;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocates monotonically increasing, cluster-unique glsns ("uniquely
/// assigned by DLA cluster", §4). Thread-safe so concurrent application
/// nodes can log in parallel.
#[derive(Debug)]
pub struct GlsnAllocator {
    next: AtomicU64,
}

impl GlsnAllocator {
    /// Starts allocation at `first` (the paper's examples start at
    /// `0x139aef78`).
    #[must_use]
    pub fn starting_at(first: Glsn) -> Self {
        GlsnAllocator {
            next: AtomicU64::new(first.0),
        }
    }

    /// Allocates the next glsn.
    ///
    /// # Panics
    ///
    /// Panics when the glsn space is exhausted (the counter would pass
    /// `u64::MAX`): a wrapping counter would silently reissue glsn 0 and
    /// break the §4 "uniquely assigned" invariant, which every
    /// accumulator deposit depends on. Exhaustion is unreachable in
    /// practice (2⁶⁴ deposits) and unrecoverable if it happens, so a
    /// loud panic beats a quietly corrupted trail.
    pub fn allocate(&self) -> Glsn {
        match self
            .next
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_add(1))
        {
            Ok(prev) => Glsn(prev),
            Err(_) => panic!(
                "glsn space exhausted: allocator reached u64::MAX and cannot \
                 issue another unique glsn"
            ),
        }
    }
}

impl Default for GlsnAllocator {
    fn default() -> Self {
        GlsnAllocator::starting_at(Glsn(0x139a_ef78))
    }
}

/// Journal blob tag for a standby copy of another node's fragment
/// (payload: [`Fragment::to_canonical_bytes`]).
pub const BLOB_STANDBY: u8 = 0x10;
/// Journal blob tag for an adopted fragment — a standby promoted after
/// its owner died (payload: [`Fragment::to_canonical_bytes`]).
pub const BLOB_ADOPTED: u8 = 0x11;
/// Journal blob tag for an epoch seal (payload: epoch id as u64 BE).
/// Replayed by [`FragmentStore::restore`] so a sealed epoch stays
/// closed to deposits across restarts.
pub const BLOB_EPOCH_SEAL: u8 = 0x12;
/// Journal blob tag for the store's epoch policy (payload: base glsn
/// then epoch length, both u64 BE). Written once when a durable store
/// first opens its journal, so [`FragmentStore::restore`] rebuilds
/// manifests under the policy the trail was actually sharded with
/// instead of silently assuming the default.
pub const BLOB_EPOCH_POLICY: u8 = 0x13;
/// Journal blob tag for materialized per-epoch aggregate partials
/// (payload: [`EpochPartials::encode`]). Written by
/// [`FragmentStore::materialize_partials`] at seal time; on restore the
/// cached copy is never trusted — it is recomputed from the surviving
/// fragments, so a crash-tail truncation can only invalidate, never
/// serve, a stale aggregate.
pub const BLOB_EPOCH_PARTIALS: u8 = 0x14;

fn encode_epoch_policy(policy: EpochPolicy) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&policy.base().0.to_be_bytes());
    out.extend_from_slice(&policy.length().to_be_bytes());
    out
}

fn decode_epoch_policy(bytes: &[u8]) -> Result<EpochPolicy, LogError> {
    if bytes.len() != 16 {
        return Err(LogError::Store(
            "epoch policy payload must be 16 bytes".into(),
        ));
    }
    let base = u64::from_be_bytes(bytes[..8].try_into().expect("sliced to 8"));
    let length = u64::from_be_bytes(bytes[8..].try_into().expect("sliced to 8"));
    Ok(EpochPolicy::new(Glsn(base), length))
}

/// One DLA node's fragment store plus its replica of the access-control
/// table. Optionally backed by a durable [`Journal`]: writes and
/// deletes are then logged (fsynced) before they apply, and
/// [`FragmentStore::restore`] rebuilds the store after a restart.
///
/// Beyond its own fragments the store can hold two recovery-oriented
/// collections, both keyed by `(origin node, glsn)`:
///
/// * **standby** — warm copies of another node's fragments shipped at
///   log time (ring-successor replication). Never served to queries.
/// * **adopted** — standbys promoted after their owner was declared
///   dead. Served alongside own fragments by
///   [`FragmentStore::scan_all`], and folded into §4.1 integrity
///   circulations on the dead node's behalf. Adopted fragments keep
///   their original `node` field, so their canonical bytes — and hence
///   the accumulator — are unchanged by the move.
#[derive(Default)]
pub struct FragmentStore {
    node: usize,
    fragments: BTreeMap<Glsn, Fragment>,
    standby: BTreeMap<(usize, Glsn), Fragment>,
    adopted: BTreeMap<(usize, Glsn), Fragment>,
    acl: AccessControlTable,
    journal: Option<Journal>,
    epoch_policy: EpochPolicy,
    epochs: BTreeMap<EpochId, EpochManifest>,
}

impl fmt::Debug for FragmentStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FragmentStore(node: {}, fragments: {})",
            self.node,
            self.fragments.len()
        )
    }
}

impl FragmentStore {
    /// Creates the store for DLA node `node` with the default epoch
    /// policy.
    #[must_use]
    pub fn new(node: usize) -> Self {
        FragmentStore::with_policy(node, EpochPolicy::default())
    }

    /// Creates the store for DLA node `node` sharding its trail per
    /// `policy`.
    #[must_use]
    pub fn with_policy(node: usize, policy: EpochPolicy) -> Self {
        FragmentStore {
            node,
            fragments: BTreeMap::new(),
            standby: BTreeMap::new(),
            adopted: BTreeMap::new(),
            acl: AccessControlTable::new(),
            journal: None,
            epoch_policy: policy,
            epochs: BTreeMap::new(),
        }
    }

    /// Creates a durable store journaling to `path` (which may already
    /// contain a previous run's entries — they are replayed). The epoch
    /// policy is read back from the journal's [`BLOB_EPOCH_POLICY`]
    /// record; only a genuinely fresh (or pre-policy legacy) journal
    /// falls back to the default policy, which is then persisted.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] on I/O failure or journal corruption,
    /// [`LogError::DuplicateGlsn`] if the journal contains a duplicated
    /// deposit.
    pub fn restore(node: usize, path: &Path) -> Result<Self, LogError> {
        FragmentStore::restore_inner(node, path, None)
    }

    /// [`FragmentStore::restore`] with an explicit epoch policy. Epoch
    /// seal records are replayed so sealed epochs stay closed, and
    /// per-epoch manifests are rebuilt from the surviving fragments.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] on I/O failure or journal corruption,
    /// or if the journal already records a *different* epoch policy
    /// (re-sharding an existing trail would silently re-bucket history);
    /// [`LogError::DuplicateGlsn`] if the journal contains a duplicated
    /// deposit or a conflicting standby/adopted copy.
    pub fn restore_with_policy(
        node: usize,
        path: &Path,
        policy: EpochPolicy,
    ) -> Result<Self, LogError> {
        FragmentStore::restore_inner(node, path, Some(policy))
    }

    fn restore_inner(
        node: usize,
        path: &Path,
        requested: Option<EpochPolicy>,
    ) -> Result<Self, LogError> {
        let (mut journal, entries) = Journal::open(path)?;
        let mut persisted: Option<EpochPolicy> = None;
        for entry in &entries {
            if let JournalEntry::Blob { tag, bytes } = entry {
                if *tag == BLOB_EPOCH_POLICY {
                    persisted = Some(decode_epoch_policy(bytes)?);
                }
            }
        }
        let policy = match (persisted, requested) {
            (Some(p), Some(r)) if p != r => {
                return Err(LogError::Store(format!(
                    "journal {} was sharded with epoch policy \
                     (base={}, length={}) but restore requested \
                     (base={}, length={})",
                    path.display(),
                    p.base(),
                    p.length(),
                    r.base(),
                    r.length()
                )));
            }
            (Some(p), _) => p,
            (None, requested) => {
                let policy = requested.unwrap_or_default();
                journal.append(&JournalEntry::Blob {
                    tag: BLOB_EPOCH_POLICY,
                    bytes: encode_epoch_policy(policy),
                })?;
                policy
            }
        };
        let mut acl = AccessControlTable::new();
        let mut standby: BTreeMap<(usize, Glsn), Fragment> = BTreeMap::new();
        let mut adopted: BTreeMap<(usize, Glsn), Fragment> = BTreeMap::new();
        let mut sealed = Vec::new();
        let mut materialized: Vec<EpochId> = Vec::new();
        for entry in &entries {
            match entry {
                JournalEntry::AclGrant { ticket, ops, glsn } => {
                    acl.authorize_parts(
                        crate::acl::TicketId::new(ticket),
                        OperationSet::from_byte(*ops),
                        *glsn,
                    );
                }
                JournalEntry::Blob { tag, bytes } if *tag == BLOB_STANDBY => {
                    let frag = Fragment::from_canonical_bytes(bytes)?;
                    // Re-shipped identical copies are idempotent; a
                    // conflicting copy for the same (origin, glsn) is a
                    // duplicated deposit.
                    if let Some(existing) = standby.get(&(frag.node, frag.glsn)) {
                        if *existing != frag {
                            return Err(LogError::DuplicateGlsn {
                                glsn: frag.glsn,
                                node: frag.node,
                            });
                        }
                    }
                    standby.insert((frag.node, frag.glsn), frag);
                }
                JournalEntry::Blob { tag, bytes } if *tag == BLOB_ADOPTED => {
                    let frag = Fragment::from_canonical_bytes(bytes)?;
                    if let Some(existing) = adopted.get(&(frag.node, frag.glsn)) {
                        if *existing != frag {
                            return Err(LogError::DuplicateGlsn {
                                glsn: frag.glsn,
                                node: frag.node,
                            });
                        }
                    }
                    // A promoted standby is no longer a standby.
                    standby.remove(&(frag.node, frag.glsn));
                    adopted.insert((frag.node, frag.glsn), frag);
                }
                JournalEntry::Blob { tag, bytes } if *tag == BLOB_EPOCH_SEAL => {
                    let raw: [u8; 8] = bytes.as_slice().try_into().map_err(|_| {
                        LogError::Store("epoch seal payload must be 8 bytes".into())
                    })?;
                    sealed.push(EpochId(u64::from_be_bytes(raw)));
                }
                JournalEntry::Blob { tag, bytes } if *tag == BLOB_EPOCH_PARTIALS => {
                    let partials = EpochPartials::decode(bytes).ok_or_else(|| {
                        LogError::Store("epoch partials payload is malformed".into())
                    })?;
                    materialized.push(partials.epoch);
                }
                _ => {}
            }
        }
        let fragments: BTreeMap<Glsn, Fragment> = Journal::materialize(entries)?
            .into_iter()
            .map(|f| (f.glsn, f))
            .collect();
        let mut epochs: BTreeMap<EpochId, EpochManifest> = BTreeMap::new();
        for glsn in fragments.keys() {
            let epoch = policy.epoch_of(*glsn);
            epochs
                .entry(epoch)
                .and_modify(|m| m.observe(*glsn))
                .or_insert_with(|| EpochManifest::opened_at(epoch, *glsn));
        }
        for epoch in sealed {
            epochs
                .entry(epoch)
                .or_insert_with(|| empty_manifest(&policy, epoch))
                .sealed = true;
        }
        let mut store = FragmentStore {
            node,
            fragments,
            standby,
            adopted,
            acl,
            journal: Some(journal),
            epoch_policy: policy,
            epochs,
        };
        // The journal records *that* an epoch's partials were
        // materialized, not the authoritative values: cached aggregates
        // are recomputed from the surviving fragments, so a journal
        // whose tail was truncated (or tampered with) after the 0x14
        // record can never serve a stale aggregate.
        for epoch in materialized {
            let rebuilt = store.compute_partials(epoch);
            let policy = store.epoch_policy;
            store
                .epochs
                .entry(epoch)
                .or_insert_with(|| empty_manifest(&policy, epoch))
                .partials = Some(rebuilt);
        }
        Ok(store)
    }

    /// Whether the store is journal-backed.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.journal.is_some()
    }

    /// The owning node index.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// Writes a fragment under a ticket: the glsn is registered in the
    /// ACL and the fragment stored.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::AccessDenied`] if the ticket does not permit
    /// writes, [`LogError::Store`] if the fragment belongs to another
    /// node or the glsn is already present.
    pub fn write(&mut self, ticket: &Ticket, fragment: Fragment) -> Result<(), LogError> {
        if !ticket.ops.allows(Operation::Write) {
            return Err(LogError::AccessDenied(format!(
                "ticket {} does not permit W",
                ticket.id
            )));
        }
        if fragment.node != self.node {
            return Err(LogError::Store(format!(
                "fragment for node {} written to node {}",
                fragment.node, self.node
            )));
        }
        if self.fragments.contains_key(&fragment.glsn) {
            // A silent BTreeMap::insert here would let a replayed or
            // duplicated deposit rewrite history without tripping the
            // accumulator.
            return Err(LogError::DuplicateGlsn {
                glsn: fragment.glsn,
                node: self.node,
            });
        }
        let epoch = self.epoch_policy.epoch_of(fragment.glsn);
        if self.epochs.get(&epoch).is_some_and(|m| m.sealed) {
            return Err(LogError::Store(format!(
                "epoch {epoch} is sealed at node {}: glsn {} cannot be deposited",
                self.node, fragment.glsn
            )));
        }
        if let Some(journal) = &mut self.journal {
            journal.append(&JournalEntry::Fragment(fragment.clone()))?;
            journal.append(&JournalEntry::AclGrant {
                ticket: ticket.id.as_str().to_owned(),
                ops: ticket.ops.to_byte(),
                glsn: fragment.glsn,
            })?;
        }
        self.acl.authorize(ticket, fragment.glsn);
        self.epochs
            .entry(epoch)
            .and_modify(|m| m.observe(fragment.glsn))
            .or_insert_with(|| EpochManifest::opened_at(epoch, fragment.glsn));
        self.fragments.insert(fragment.glsn, fragment);
        Ok(())
    }

    /// Reads a fragment under a ticket.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::AccessDenied`] per the ACL, or
    /// [`LogError::Store`] if the glsn is absent.
    pub fn read(&self, ticket: &Ticket, glsn: Glsn) -> Result<&Fragment, LogError> {
        self.acl.check(ticket, Operation::Read, glsn)?;
        self.fragments
            .get(&glsn)
            .ok_or_else(|| LogError::Store(format!("glsn {glsn} not stored at node {}", self.node)))
    }

    /// Deletes a fragment under a ticket.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::AccessDenied`] per the ACL, or
    /// [`LogError::Store`] if the glsn is absent.
    pub fn delete(&mut self, ticket: &Ticket, glsn: Glsn) -> Result<Fragment, LogError> {
        self.acl.check(ticket, Operation::Delete, glsn)?;
        if !self.fragments.contains_key(&glsn) {
            return Err(LogError::Store(format!(
                "glsn {glsn} not stored at node {}",
                self.node
            )));
        }
        if let Some(journal) = &mut self.journal {
            journal.append(&JournalEntry::Tombstone(glsn))?;
        }
        if let Some(m) = self.epochs.get_mut(&self.epoch_policy.epoch_of(glsn)) {
            m.fragments = m.fragments.saturating_sub(1);
        }
        Ok(self.fragments.remove(&glsn).expect("checked above"))
    }

    /// Node-internal access for protocol machinery (integrity checking,
    /// local predicate evaluation). "P_i has full access to its own
    /// stored log fragments" (§4).
    #[must_use]
    pub fn get_local(&self, glsn: Glsn) -> Option<&Fragment> {
        self.fragments.get(&glsn)
    }

    /// Iterates all fragments in glsn order.
    pub fn scan(&self) -> impl Iterator<Item = &Fragment> {
        self.fragments.values()
    }

    /// Iterates own fragments **plus adopted ones** — the degraded-mode
    /// scan surface. With nothing adopted this is exactly
    /// [`FragmentStore::scan`].
    pub fn scan_all(&self) -> impl Iterator<Item = &Fragment> {
        self.fragments.values().chain(self.adopted.values())
    }

    /// [`FragmentStore::scan_all`] restricted to the inclusive glsn
    /// window `[lo, hi]` — the epoch-pruned scan surface. Own fragments
    /// come from a BTreeMap range (no full-trail walk); adopted ones
    /// are filtered.
    pub fn scan_window(&self, lo: Glsn, hi: Glsn) -> impl Iterator<Item = &Fragment> {
        let adopted = self
            .adopted
            .values()
            .filter(move |f| f.glsn >= lo && f.glsn <= hi);
        // An inverted window (lo > hi) is the planner's "provably no
        // answers" sentinel — BTreeMap::range would panic on it.
        let stored = if lo <= hi {
            Some(self.fragments.range(lo..=hi))
        } else {
            None
        };
        stored.into_iter().flatten().map(|(_, f)| f).chain(adopted)
    }

    /// The store's epoch policy.
    #[must_use]
    pub fn epoch_policy(&self) -> EpochPolicy {
        self.epoch_policy
    }

    /// The manifest for `epoch`, if any deposit or seal touched it.
    #[must_use]
    pub fn epoch_manifest(&self, epoch: EpochId) -> Option<&EpochManifest> {
        self.epochs.get(&epoch)
    }

    /// Iterates the per-epoch manifests in epoch order.
    pub fn epoch_manifests(&self) -> impl Iterator<Item = &EpochManifest> {
        self.epochs.values()
    }

    /// Whether `epoch` has been sealed on this node.
    #[must_use]
    pub fn is_sealed(&self, epoch: EpochId) -> bool {
        self.epochs.get(&epoch).is_some_and(|m| m.sealed)
    }

    /// Seals `epoch`: no further deposits are admitted into it. The
    /// seal is journaled (when durable), so it survives
    /// [`FragmentStore::restore`]. Idempotent — re-sealing a sealed
    /// epoch is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] if journaling fails.
    pub fn seal_epoch(&mut self, epoch: EpochId) -> Result<(), LogError> {
        if self.is_sealed(epoch) {
            return Ok(());
        }
        if let Some(journal) = &mut self.journal {
            journal.append(&JournalEntry::Blob {
                tag: BLOB_EPOCH_SEAL,
                bytes: epoch.0.to_be_bytes().to_vec(),
            })?;
        }
        let policy = self.epoch_policy;
        self.epochs
            .entry(epoch)
            .or_insert_with(|| empty_manifest(&policy, epoch))
            .sealed = true;
        Ok(())
    }

    /// Deterministically folds the epoch's scan surface (own plus
    /// adopted fragments in the policy's nominal glsn range) into
    /// count/sum partials per predicate bucket: every `Text` attribute
    /// value forms a bucket counting matching fragments and summing
    /// each co-resident numeric attribute, and epoch-wide numeric
    /// totals ride along. A pure function of the stored fragments —
    /// restore recomputes it rather than trusting a cached copy.
    #[must_use]
    pub fn compute_partials(&self, epoch: EpochId) -> EpochPartials {
        let (lo, hi) = self.epoch_policy.glsn_range(epoch);
        let mut partials = EpochPartials::empty(epoch);
        for frag in self.scan_window(lo, hi) {
            partials.fragments += 1;
            let numerics: Vec<(&AttrName, i64)> = frag
                .values
                .iter()
                .filter_map(|(name, value)| match value {
                    AttrValue::Int(raw) | AttrValue::Fixed2(raw) => Some((name, *raw)),
                    _ => None,
                })
                .collect();
            for (name, raw) in &numerics {
                partials
                    .totals
                    .entry((*name).clone())
                    .or_default()
                    .observe(*raw);
            }
            for (name, value) in frag.values.iter() {
                if let AttrValue::Text(text) = value {
                    let bucket = partials
                        .buckets
                        .entry((name.clone(), text.clone()))
                        .or_default();
                    bucket.count += 1;
                    for (num_name, raw) in &numerics {
                        bucket
                            .sums
                            .entry((*num_name).clone())
                            .or_default()
                            .observe(*raw);
                    }
                }
            }
        }
        partials
    }

    /// Materializes the epoch's aggregate partials into its manifest
    /// (journaled when durable), so windowed aggregate queries combine
    /// cached partials instead of rescanning fragments. Called at seal
    /// time; idempotent — an epoch whose manifest already carries
    /// partials is left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] if journaling fails.
    pub fn materialize_partials(&mut self, epoch: EpochId) -> Result<(), LogError> {
        if self
            .epochs
            .get(&epoch)
            .is_some_and(|m| m.partials.is_some())
        {
            return Ok(());
        }
        let partials = self.compute_partials(epoch);
        if let Some(journal) = &mut self.journal {
            journal.append(&JournalEntry::Blob {
                tag: BLOB_EPOCH_PARTIALS,
                bytes: partials.encode(),
            })?;
        }
        let policy = self.epoch_policy;
        self.epochs
            .entry(epoch)
            .or_insert_with(|| empty_manifest(&policy, epoch))
            .partials = Some(partials);
        Ok(())
    }

    /// The cached aggregate partials for `epoch`, if materialized.
    #[must_use]
    pub fn epoch_partials(&self, epoch: EpochId) -> Option<&EpochPartials> {
        self.epochs.get(&epoch).and_then(|m| m.partials.as_ref())
    }

    /// Stores a warm standby copy of another node's fragment (ring
    /// replication at log time). Idempotent per (origin, glsn) for
    /// byte-identical re-ships.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] if the fragment belongs to this node
    /// (a node is not its own standby) or journaling fails, and
    /// [`LogError::DuplicateGlsn`] if a *different* fragment is already
    /// held for the same (origin, glsn).
    pub fn store_standby(&mut self, fragment: Fragment) -> Result<(), LogError> {
        if fragment.node == self.node {
            return Err(LogError::Store(format!(
                "node {} cannot hold a standby of its own fragment",
                self.node
            )));
        }
        match self.standby.get(&(fragment.node, fragment.glsn)) {
            Some(existing) if *existing == fragment => return Ok(()),
            Some(_) => {
                return Err(LogError::DuplicateGlsn {
                    glsn: fragment.glsn,
                    node: fragment.node,
                })
            }
            None => {}
        }
        if let Some(journal) = &mut self.journal {
            journal.append(&JournalEntry::Blob {
                tag: BLOB_STANDBY,
                bytes: fragment.to_canonical_bytes(),
            })?;
        }
        self.standby
            .insert((fragment.node, fragment.glsn), fragment);
        Ok(())
    }

    /// Adopts a fragment on behalf of a dead node: it keeps its
    /// original `node` field (preserving the accumulator's canonical
    /// bytes) and is served by [`FragmentStore::scan_all`] from now on.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] if the fragment belongs to this node
    /// or journaling fails, and [`LogError::DuplicateGlsn`] if a
    /// *different* fragment was already adopted for the same
    /// (origin, glsn).
    pub fn adopt(&mut self, fragment: Fragment) -> Result<(), LogError> {
        if fragment.node == self.node {
            return Err(LogError::Store(format!(
                "node {} cannot adopt its own fragment",
                self.node
            )));
        }
        match self.adopted.get(&(fragment.node, fragment.glsn)) {
            Some(existing) if *existing == fragment => return Ok(()),
            Some(_) => {
                return Err(LogError::DuplicateGlsn {
                    glsn: fragment.glsn,
                    node: fragment.node,
                })
            }
            None => {}
        }
        if let Some(journal) = &mut self.journal {
            journal.append(&JournalEntry::Blob {
                tag: BLOB_ADOPTED,
                bytes: fragment.to_canonical_bytes(),
            })?;
        }
        self.standby.remove(&(fragment.node, fragment.glsn));
        self.adopted
            .insert((fragment.node, fragment.glsn), fragment);
        Ok(())
    }

    /// Promotes every standby copy held for `dead_node` to adopted
    /// status, returning the promoted fragments.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] if journaling fails.
    pub fn promote_standby(&mut self, dead_node: usize) -> Result<Vec<Fragment>, LogError> {
        let keys: Vec<(usize, Glsn)> = self
            .standby
            .range((dead_node, Glsn(0))..=(dead_node, Glsn(u64::MAX)))
            .map(|(&k, _)| k)
            .collect();
        let mut promoted = Vec::with_capacity(keys.len());
        for key in keys {
            let frag = self.standby.remove(&key).expect("key just listed");
            promoted.push(frag.clone());
            self.adopt(frag)?;
        }
        Ok(promoted)
    }

    /// An adopted fragment originally owned by `node`, if held here.
    #[must_use]
    pub fn get_adopted(&self, node: usize, glsn: Glsn) -> Option<&Fragment> {
        self.adopted.get(&(node, glsn))
    }

    /// Number of standby copies held.
    #[must_use]
    pub fn standby_count(&self) -> usize {
        self.standby.len()
    }

    /// Number of adopted fragments held.
    #[must_use]
    pub fn adopted_count(&self) -> usize {
        self.adopted.len()
    }

    /// Number of stored fragments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// The node's ACL replica.
    #[must_use]
    pub fn acl(&self) -> &AccessControlTable {
        &self.acl
    }

    /// **Adversarial test hook**: mutable ACL access, modelling a
    /// compromised node rewriting its access-control table (§4.1).
    pub fn acl_mut_for_tests(&mut self) -> &mut AccessControlTable {
        &mut self.acl
    }

    /// **Adversarial test hook**: silently modifies a stored value, as a
    /// compromised node would (§4.1: "when a DLA node is compromised,
    /// its access control tables and log records could be modified").
    /// Returns `true` if the glsn/attribute existed.
    pub fn tamper(&mut self, glsn: Glsn, attr: &AttrName, value: AttrValue) -> bool {
        match self.fragments.get_mut(&glsn) {
            Some(frag) if frag.values.get(attr).is_some() => {
                frag.values.insert(attr.clone(), value);
                true
            }
            _ => false,
        }
    }

    /// **Adversarial test hook**: overwrites the cached aggregate
    /// partials of `epoch`, as a compromised node lying about its
    /// materialized summaries would. Returns `true` if the epoch had a
    /// manifest to corrupt.
    pub fn tamper_partials(&mut self, epoch: EpochId, partials: EpochPartials) -> bool {
        match self.epochs.get_mut(&epoch) {
            Some(manifest) => {
                manifest.partials = Some(partials);
                true
            }
            None => false,
        }
    }
}

/// A manifest for an epoch sealed before any deposit touched it: zero
/// fragments, bounds set to the policy's nominal range.
fn empty_manifest(policy: &EpochPolicy, epoch: EpochId) -> EpochManifest {
    let (lo, hi) = policy.glsn_range(epoch);
    EpochManifest {
        epoch,
        fragments: 0,
        glsn_lo: lo,
        glsn_hi: hi,
        sealed: false,
        partials: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{OperationSet, TicketAuthority};
    use crate::fragment::{fragment, Partition};
    use crate::model::LogRecord;
    use crate::schema::Schema;
    use dla_crypto::schnorr::{SchnorrGroup, SchnorrKeyPair};
    use rand::SeedableRng;

    fn ticket(ops: OperationSet) -> Ticket {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(321);
        let mut authority = TicketAuthority::new(&group, &mut rng);
        let user = SchnorrKeyPair::generate(&group, &mut rng);
        authority.issue(user.public(), ops, &mut rng)
    }

    fn sample_fragments(glsn: u64) -> Vec<Fragment> {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let record = LogRecord::new(Glsn(glsn))
            .with("time", AttrValue::Time(100))
            .with("id", AttrValue::text("U1"))
            .with("protocol", AttrValue::text("UDP"))
            .with("tid", AttrValue::text("T1"))
            .with("c1", AttrValue::Int(20))
            .with("c2", AttrValue::Fixed2(2345))
            .with("c3", AttrValue::text("sig"));
        fragment(&record, &partition)
    }

    #[test]
    fn glsn_allocator_is_monotonic_and_unique() {
        let alloc = GlsnAllocator::default();
        let a = alloc.allocate();
        let b = alloc.allocate();
        assert_eq!(a, Glsn(0x139a_ef78));
        assert_eq!(b, Glsn(0x139a_ef79));
        assert!(b > a);
    }

    #[test]
    fn glsn_allocator_is_thread_safe() {
        let alloc = std::sync::Arc::new(GlsnAllocator::starting_at(Glsn(0)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let alloc = std::sync::Arc::clone(&alloc);
                std::thread::spawn(move || (0..250).map(|_| alloc.allocate().0).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "no duplicate glsns under concurrency");
    }

    #[test]
    fn write_then_read_round_trips() {
        let t = ticket(OperationSet::read_write());
        let mut store = FragmentStore::new(1);
        let frag = sample_fragments(7).remove(1);
        store.write(&t, frag.clone()).unwrap();
        assert_eq!(store.read(&t, Glsn(7)).unwrap(), &frag);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn write_rejects_wrong_node() {
        let t = ticket(OperationSet::read_write());
        let mut store = FragmentStore::new(0);
        let frag_for_p1 = sample_fragments(7).remove(1);
        let err = store.write(&t, frag_for_p1).unwrap_err();
        assert!(err.to_string().contains("node 1 written to node 0"));
    }

    #[test]
    fn write_rejects_duplicate_glsn() {
        let t = ticket(OperationSet::read_write());
        let mut store = FragmentStore::new(1);
        let frag = sample_fragments(7).remove(1);
        store.write(&t, frag.clone()).unwrap();
        let err = store.write(&t, frag).unwrap_err();
        assert_eq!(
            err,
            LogError::DuplicateGlsn {
                glsn: Glsn(7),
                node: 1
            }
        );
    }

    #[test]
    fn allocator_panics_at_glsn_exhaustion() {
        let alloc = GlsnAllocator::starting_at(Glsn(u64::MAX - 1));
        assert_eq!(alloc.allocate(), Glsn(u64::MAX - 1));
        let result = std::panic::catch_unwind(|| alloc.allocate());
        let err = result.expect_err("allocating past u64::MAX must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("glsn space exhausted"), "panic said: {msg}");
        // The allocator is poisoned at MAX, not wrapped: it keeps
        // refusing rather than silently reissuing glsn 0.
        assert!(std::panic::catch_unwind(|| alloc.allocate()).is_err());
    }

    #[test]
    fn restore_rejects_duplicated_deposit_in_journal() {
        // Regression for the silent-overwrite bug: a journal carrying
        // two Fragment entries for one glsn (a duplicated deposit) used
        // to materialize keep-latest; restore must now refuse.
        let mut path = std::env::temp_dir();
        path.push(format!(
            "dla-store-dup-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let frag = sample_fragments(7).remove(1);
        let mut tampered = frag.clone();
        tampered
            .values
            .insert(AttrName::new("c2"), AttrValue::Fixed2(666_666));
        {
            let (mut journal, _) = Journal::open(&path).unwrap();
            journal.append(&JournalEntry::Fragment(frag)).unwrap();
            journal.append(&JournalEntry::Fragment(tampered)).unwrap();
        }
        let err = FragmentStore::restore(1, &path).unwrap_err();
        assert!(
            matches!(err, LogError::DuplicateGlsn { glsn: Glsn(7), .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn standby_is_idempotent_but_rejects_conflicting_copy() {
        let mut store = FragmentStore::new(1);
        let frag = sample_fragments(7).remove(0);
        store.store_standby(frag.clone()).unwrap();
        // Byte-identical re-ship: fine.
        store.store_standby(frag.clone()).unwrap();
        assert_eq!(store.standby_count(), 1);
        // Conflicting content for the same (origin, glsn): refused.
        let mut conflicting = frag;
        conflicting
            .values
            .insert(AttrName::new("time"), AttrValue::Time(424_242));
        let err = store.store_standby(conflicting.clone()).unwrap_err();
        assert!(matches!(err, LogError::DuplicateGlsn { .. }), "{err}");
        // Same audit on the adopted map.
        store.promote_standby(0).unwrap();
        let err = store.adopt(conflicting).unwrap_err();
        assert!(matches!(err, LogError::DuplicateGlsn { .. }), "{err}");
    }

    #[test]
    fn epoch_manifests_track_deposits() {
        let t = ticket(OperationSet::read_write());
        let policy = EpochPolicy::new(Glsn(0), 4);
        let mut store = FragmentStore::with_policy(1, policy);
        for glsn in [1u64, 3, 5, 6] {
            store.write(&t, sample_fragments(glsn).remove(1)).unwrap();
        }
        let e0 = store.epoch_manifest(EpochId(0)).unwrap();
        assert_eq!(
            (e0.fragments, e0.glsn_lo, e0.glsn_hi),
            (2, Glsn(1), Glsn(3))
        );
        let e1 = store.epoch_manifest(EpochId(1)).unwrap();
        assert_eq!(
            (e1.fragments, e1.glsn_lo, e1.glsn_hi),
            (2, Glsn(5), Glsn(6))
        );
        assert_eq!(store.epoch_manifests().count(), 2);
    }

    #[test]
    fn sealed_epoch_rejects_deposits() {
        let t = ticket(OperationSet::read_write());
        let policy = EpochPolicy::new(Glsn(0), 4);
        let mut store = FragmentStore::with_policy(1, policy);
        store.write(&t, sample_fragments(1).remove(1)).unwrap();
        store.seal_epoch(EpochId(0)).unwrap();
        store.seal_epoch(EpochId(0)).unwrap(); // idempotent
        assert!(store.is_sealed(EpochId(0)));
        let err = store.write(&t, sample_fragments(2).remove(1)).unwrap_err();
        assert!(err.to_string().contains("sealed"), "{err}");
        // The next epoch is still open.
        store.write(&t, sample_fragments(5).remove(1)).unwrap();
    }

    #[test]
    fn scan_window_prunes_to_range() {
        let t = ticket(OperationSet::read_write());
        let mut store = FragmentStore::new(1);
        for glsn in [2u64, 4, 6, 8] {
            store.write(&t, sample_fragments(glsn).remove(1)).unwrap();
        }
        // An adopted fragment inside and one outside the window.
        store.store_standby(sample_fragments(5).remove(0)).unwrap();
        store.store_standby(sample_fragments(9).remove(0)).unwrap();
        store.promote_standby(0).unwrap();

        let mut seen: Vec<u64> = store
            .scan_window(Glsn(4), Glsn(7))
            .map(|f| f.glsn.0)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![4, 5, 6]);
        // Full-range window matches scan_all.
        assert_eq!(
            store.scan_window(Glsn(0), Glsn(u64::MAX)).count(),
            store.scan_all().count()
        );
        // Inverted window = the planner's empty sentinel, not a panic.
        assert_eq!(store.scan_window(Glsn(1), Glsn(0)).count(), 0);
    }

    #[test]
    fn epoch_seals_survive_restart() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "dla-store-seal-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let t = ticket(OperationSet::read_write());
        let policy = EpochPolicy::new(Glsn(0), 4);
        {
            let mut store = FragmentStore::restore_with_policy(1, &path, policy).unwrap();
            store.write(&t, sample_fragments(1).remove(1)).unwrap();
            store.write(&t, sample_fragments(5).remove(1)).unwrap();
            store.seal_epoch(EpochId(0)).unwrap();
        }
        let mut store = FragmentStore::restore_with_policy(1, &path, policy).unwrap();
        assert!(store.is_sealed(EpochId(0)), "seal must survive restart");
        assert!(!store.is_sealed(EpochId(1)));
        let m0 = store.epoch_manifest(EpochId(0)).unwrap();
        assert_eq!((m0.fragments, m0.glsn_lo), (1, Glsn(1)));
        let err = store.write(&t, sample_fragments(2).remove(1)).unwrap_err();
        assert!(err.to_string().contains("sealed"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn restore_reads_back_the_persisted_epoch_policy() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "dla-store-policy-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let t = ticket(OperationSet::read_write());
        let policy = EpochPolicy::new(Glsn(0), 4);
        assert_ne!(
            policy,
            EpochPolicy::default(),
            "test needs a non-default policy"
        );
        {
            let mut store = FragmentStore::restore_with_policy(1, &path, policy).unwrap();
            store.write(&t, sample_fragments(1).remove(1)).unwrap();
            store.write(&t, sample_fragments(5).remove(1)).unwrap();
            store.seal_epoch(EpochId(0)).unwrap();
        }
        // A plain restore (no policy argument) must come back under the
        // journaled policy, not the default: glsn 5 sits in epoch 1 of
        // the length-4 policy but would land elsewhere under the
        // default's 0x139aef78 base.
        let store = FragmentStore::restore(1, &path).unwrap();
        assert_eq!(store.epoch_policy(), policy);
        assert!(store.is_sealed(EpochId(0)));
        let m1 = store.epoch_manifest(EpochId(1)).unwrap();
        assert_eq!((m1.fragments, m1.glsn_lo), (1, Glsn(5)));

        // Restoring under a conflicting policy is refused outright.
        let err =
            FragmentStore::restore_with_policy(1, &path, EpochPolicy::new(Glsn(0), 8)).unwrap_err();
        assert!(err.to_string().contains("epoch policy"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn materialized_partials_survive_restart_and_match_recompute() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "dla-store-partials-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let t = ticket(OperationSet::read_write());
        let policy = EpochPolicy::new(Glsn(0), 4);
        let expected = {
            let mut store = FragmentStore::restore_with_policy(1, &path, policy).unwrap();
            store.write(&t, sample_fragments(1).remove(1)).unwrap();
            store.write(&t, sample_fragments(2).remove(1)).unwrap();
            store.materialize_partials(EpochId(0)).unwrap();
            store.seal_epoch(EpochId(0)).unwrap();
            // Idempotent: a second call must not re-journal.
            store.materialize_partials(EpochId(0)).unwrap();
            store.epoch_partials(EpochId(0)).unwrap().clone()
        };
        assert_eq!(expected.fragments, 2);

        let store = FragmentStore::restore_with_policy(1, &path, policy).unwrap();
        let restored = store.epoch_partials(EpochId(0)).expect("partials restored");
        assert_eq!(*restored, expected);
        assert_eq!(*restored, store.compute_partials(EpochId(0)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_partials_are_rebuilt_after_crash_tail_recovery() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "dla-store-partials-stale-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let t = ticket(OperationSet::read_write());
        let policy = EpochPolicy::new(Glsn(0), 4);
        {
            let mut store = FragmentStore::restore_with_policy(1, &path, policy).unwrap();
            store.write(&t, sample_fragments(1).remove(1)).unwrap();
            // Materialize early, then keep depositing into the still-open
            // epoch: the journaled 0x14 snapshot is now stale relative to
            // the fragment tail.
            store.materialize_partials(EpochId(0)).unwrap();
            store.write(&t, sample_fragments(2).remove(1)).unwrap();
        }
        let store = FragmentStore::restore_with_policy(1, &path, policy).unwrap();
        let restored = store.epoch_partials(EpochId(0)).expect("partials restored");
        assert_eq!(
            restored.fragments, 2,
            "restore must rebuild partials from surviving fragments, \
             not replay the stale journaled snapshot"
        );
        assert_eq!(*restored, store.compute_partials(EpochId(0)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn forged_partials_blob_cannot_poison_restore() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "dla-store-partials-forged-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let t = ticket(OperationSet::read_write());
        let policy = EpochPolicy::new(Glsn(0), 4);
        {
            let mut store = FragmentStore::restore_with_policy(1, &path, policy).unwrap();
            store.write(&t, sample_fragments(1).remove(1)).unwrap();
            store.materialize_partials(EpochId(0)).unwrap();
            store.seal_epoch(EpochId(0)).unwrap();
        }
        // A compromised node appends a 0x14 blob claiming a wildly
        // different aggregate for the sealed epoch.
        {
            let mut forged = EpochPartials::empty(EpochId(0));
            forged.fragments = 99;
            let (mut journal, _) = Journal::open(&path).unwrap();
            journal
                .append(&JournalEntry::Blob {
                    tag: BLOB_EPOCH_PARTIALS,
                    bytes: forged.encode(),
                })
                .unwrap();
        }
        let store = FragmentStore::restore_with_policy(1, &path, policy).unwrap();
        let restored = store.epoch_partials(EpochId(0)).expect("partials restored");
        assert_eq!(restored.fragments, 1, "forged snapshot must be ignored");
        assert_eq!(*restored, store.compute_partials(EpochId(0)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_requires_authorized_ticket() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut authority = TicketAuthority::new(&group, &mut rng);
        let user = SchnorrKeyPair::generate(&group, &mut rng);
        let writer = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        let stranger = authority.issue(user.public(), OperationSet::all(), &mut rng);

        let mut store = FragmentStore::new(1);
        store.write(&writer, sample_fragments(7).remove(1)).unwrap();
        // A different ticket (no glsns authorized under it) is denied.
        assert!(store.read(&stranger, Glsn(7)).is_err());
    }

    #[test]
    fn write_only_ticket_cannot_read() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut authority = TicketAuthority::new(&group, &mut rng);
        let user = SchnorrKeyPair::generate(&group, &mut rng);
        let wo = authority.issue(
            user.public(),
            OperationSet::none().with(Operation::Write),
            &mut rng,
        );
        let mut store = FragmentStore::new(1);
        store.write(&wo, sample_fragments(7).remove(1)).unwrap();
        let err = store.read(&wo, Glsn(7)).unwrap_err();
        assert!(err.to_string().contains("does not permit R"));
    }

    #[test]
    fn delete_requires_delete_right() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut authority = TicketAuthority::new(&group, &mut rng);
        let user = SchnorrKeyPair::generate(&group, &mut rng);
        let rw = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        let all = authority.issue(user.public(), OperationSet::all(), &mut rng);

        let mut store = FragmentStore::new(1);
        store.write(&rw, sample_fragments(7).remove(1)).unwrap();
        assert!(store.delete(&rw, Glsn(7)).is_err(), "W/R cannot delete");

        let mut store2 = FragmentStore::new(1);
        store2.write(&all, sample_fragments(8).remove(1)).unwrap();
        assert!(store2.delete(&all, Glsn(8)).is_ok());
        assert!(store2.is_empty());
    }

    #[test]
    fn tamper_changes_stored_value() {
        let t = ticket(OperationSet::read_write());
        let mut store = FragmentStore::new(1);
        store.write(&t, sample_fragments(7).remove(1)).unwrap();
        assert!(store.tamper(Glsn(7), &"c2".into(), AttrValue::Fixed2(999_999)));
        assert_eq!(
            store.get_local(Glsn(7)).unwrap().values.get(&"c2".into()),
            Some(&AttrValue::Fixed2(999_999))
        );
        // Tampering a missing attribute or glsn reports false.
        assert!(!store.tamper(Glsn(7), &"time".into(), AttrValue::Time(0)));
        assert!(!store.tamper(Glsn(99), &"c2".into(), AttrValue::Fixed2(0)));
    }

    #[test]
    fn durable_store_survives_restart() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "dla-store-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let t = ticket(OperationSet::read_write());
        {
            let mut store = FragmentStore::restore(1, &path).unwrap();
            assert!(store.is_durable());
            assert!(store.is_empty());
            for glsn in [3u64, 7] {
                store.write(&t, sample_fragments(glsn).remove(1)).unwrap();
            }
        }
        // "Restart": restore from the journal; data and ACL survive.
        let store = FragmentStore::restore(1, &path).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.read(&t, Glsn(3)).is_ok());
        assert!(store.read(&t, Glsn(7)).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_delete_survives_restart() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "dla-store-del-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let t = ticket(OperationSet::all());
        {
            let mut store = FragmentStore::restore(1, &path).unwrap();
            store.write(&t, sample_fragments(9).remove(1)).unwrap();
            store.delete(&t, Glsn(9)).unwrap();
        }
        let store = FragmentStore::restore(1, &path).unwrap();
        assert!(store.is_empty(), "tombstone must survive restart");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn standby_promotes_to_adopted_and_is_scanned() {
        let t = ticket(OperationSet::read_write());
        let mut store = FragmentStore::new(1);
        store.write(&t, sample_fragments(7).remove(1)).unwrap();
        // Hold standby copies for node 0's fragments.
        store.store_standby(sample_fragments(7).remove(0)).unwrap();
        store.store_standby(sample_fragments(8).remove(0)).unwrap();
        assert_eq!(store.standby_count(), 2);
        assert_eq!(store.adopted_count(), 0);
        // Standbys are invisible to scans.
        assert_eq!(store.scan_all().count(), 1);

        let promoted = store.promote_standby(0).unwrap();
        assert_eq!(promoted.len(), 2);
        assert_eq!(store.standby_count(), 0);
        assert_eq!(store.adopted_count(), 2);
        // Adopted fragments keep their origin node id (accumulator
        // canonical bytes unchanged) and appear in scan_all.
        let adopted = store.get_adopted(0, Glsn(7)).unwrap();
        assert_eq!(adopted.node, 0);
        assert_eq!(store.scan_all().count(), 3);
        assert_eq!(store.scan().count(), 1, "own fragments unchanged");
    }

    #[test]
    fn standby_rejects_own_fragment() {
        let mut store = FragmentStore::new(1);
        let own = sample_fragments(7).remove(1);
        assert!(store.store_standby(own.clone()).is_err());
        assert!(store.adopt(own).is_err());
    }

    #[test]
    fn standby_and_adopted_survive_restart() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "dla-store-standby-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        {
            let mut store = FragmentStore::restore(1, &path).unwrap();
            store.store_standby(sample_fragments(7).remove(0)).unwrap();
            store.store_standby(sample_fragments(8).remove(0)).unwrap();
            let _ = store.promote_standby(0).unwrap();
            store.store_standby(sample_fragments(9).remove(2)).unwrap();
        }
        let store = FragmentStore::restore(1, &path).unwrap();
        assert_eq!(store.adopted_count(), 2, "promotions survive restart");
        assert_eq!(store.standby_count(), 1, "pending standby survives");
        assert!(store.get_adopted(0, Glsn(7)).is_some());
        assert!(store.get_adopted(0, Glsn(8)).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_is_glsn_ordered() {
        let t = ticket(OperationSet::read_write());
        let mut store = FragmentStore::new(1);
        for glsn in [9u64, 3, 7] {
            store.write(&t, sample_fragments(glsn).remove(1)).unwrap();
        }
        let order: Vec<u64> = store.scan().map(|f| f.glsn.0).collect();
        assert_eq!(order, vec![3, 7, 9]);
    }
}
