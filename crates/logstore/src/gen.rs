//! Workload generation: the paper's exact Table 1 data plus synthetic
//! transaction-log generators for the benchmark harness.
//!
//! The paper evaluates on worked examples rather than production traces
//! (none are published), so the harness substitutes configurable
//! synthetic e-commerce-style logs with the same shape as Table 1 —
//! see DESIGN.md §2.

use crate::model::{epoch_from_civil, AttrValue, Glsn, LogRecord};
use rand::Rng;

/// The five Table 1 records, verbatim.
#[must_use]
pub fn paper_table1() -> Vec<LogRecord> {
    type Row = (
        &'static str,
        (u64, u64, u64),
        &'static str,
        &'static str,
        &'static str,
        i64,
        i64,
        &'static str,
    );
    let rows: [Row; 5] = [
        (
            "139aef78",
            (20, 18, 35),
            "U1",
            "UDP",
            "T1100265",
            20,
            2345,
            "signature",
        ),
        (
            "139aef79",
            (20, 20, 35),
            "U2",
            "UDP",
            "T1100265",
            34,
            34511,
            "evidence",
        ),
        (
            "139aef80",
            (20, 23, 35),
            "U1",
            "UDP",
            "T1100267",
            45,
            23500,
            "bank",
        ),
        (
            "139aef81",
            (20, 23, 38),
            "U2",
            "TCP",
            "T1100265",
            18,
            4502,
            "salary",
        ),
        (
            "139aef82",
            (20, 25, 35),
            "U3",
            "TCP",
            "T1100267",
            53,
            67875,
            "account",
        ),
    ];
    rows.iter()
        .map(|&(glsn, (h, m, s), id, protocol, tid, c1, c2, c3)| {
            LogRecord::new(Glsn::parse(glsn).expect("static glsn"))
                .with(
                    "time",
                    AttrValue::Time(epoch_from_civil(2002, 5, 12, h, m, s)),
                )
                .with("id", AttrValue::text(id))
                .with("protocol", AttrValue::text(protocol))
                .with("tid", AttrValue::text(tid))
                .with("c1", AttrValue::Int(c1))
                .with("c2", AttrValue::Fixed2(c2))
                .with("c3", AttrValue::text(c3))
        })
        .collect()
}

/// Parameters for the synthetic transaction-log generator.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of records to generate.
    pub records: usize,
    /// Number of distinct application users (`U1 … Um`).
    pub users: usize,
    /// Number of distinct transactions.
    pub transactions: usize,
    /// First glsn to assign.
    pub first_glsn: Glsn,
    /// Base timestamp (epoch seconds).
    pub start_time: u64,
    /// Maximum seconds between consecutive events.
    pub max_gap_secs: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            records: 100,
            users: 5,
            transactions: 20,
            first_glsn: Glsn(0x139a_ef78),
            start_time: epoch_from_civil(2002, 5, 12, 20, 0, 0),
            max_gap_secs: 120,
        }
    }
}

/// Generates a synthetic log conforming to [`crate::schema::Schema::paper_example`]:
/// timestamps increase monotonically, users/transactions/protocols are
/// drawn per record, and the undefined attributes carry e-commerce-ish
/// values (event count, volume, note).
///
/// # Panics
///
/// Panics if `users`, `transactions` or `records` is zero.
pub fn generate<R: Rng + ?Sized>(config: &WorkloadConfig, rng: &mut R) -> Vec<LogRecord> {
    assert!(config.records > 0, "records must be positive");
    assert!(config.users > 0, "users must be positive");
    assert!(config.transactions > 0, "transactions must be positive");
    const NOTES: [&str; 6] = [
        "signature",
        "evidence",
        "bank",
        "salary",
        "account",
        "order",
    ];
    let mut time = config.start_time;
    (0..config.records)
        .map(|i| {
            time += rng.gen_range(1..=config.max_gap_secs);
            let user = rng.gen_range(1..=config.users);
            let txn = rng.gen_range(1..=config.transactions);
            let protocol = if rng.gen_bool(0.5) { "UDP" } else { "TCP" };
            LogRecord::new(Glsn(config.first_glsn.0 + i as u64))
                .with("time", AttrValue::Time(time))
                .with("id", AttrValue::text(&format!("U{user}")))
                .with("protocol", AttrValue::text(protocol))
                .with("tid", AttrValue::text(&format!("T{:07}", 1_100_000 + txn)))
                .with("c1", AttrValue::Int(rng.gen_range(1..100)))
                .with("c2", AttrValue::Fixed2(rng.gen_range(100..100_000)))
                .with("c3", AttrValue::text(NOTES[rng.gen_range(0..NOTES.len())]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use rand::SeedableRng;

    #[test]
    fn table1_has_five_schema_conforming_records() {
        let schema = Schema::paper_example();
        let records = paper_table1();
        assert_eq!(records.len(), 5);
        for r in &records {
            schema.validate(r).unwrap();
            assert_eq!(r.len(), 7, "all seven attributes present");
        }
    }

    #[test]
    fn table1_matches_paper_values() {
        let records = paper_table1();
        assert_eq!(records[0].glsn.to_string(), "139aef78");
        assert_eq!(
            records[0].get(&"time".into()).unwrap().to_string(),
            "20:18:35/05/12/2002"
        );
        assert_eq!(records[0].get(&"c2".into()).unwrap().to_string(), "23.45");
        assert_eq!(records[4].get(&"id".into()).unwrap().to_string(), "U3");
        assert_eq!(records[4].get(&"c2".into()).unwrap().to_string(), "678.75");
        assert_eq!(
            records[3].get(&"protocol".into()).unwrap().to_string(),
            "TCP"
        );
    }

    #[test]
    fn table1_glsns_are_consecutive_hex() {
        let records = paper_table1();
        // Note: the paper's glsns are hex strings; 139aef79 + 1 = 139aef7a,
        // but the paper's third row is 139aef80 — the authors treated them
        // as decimal-looking hex. We reproduce the printed values exactly.
        assert_eq!(records[1].glsn.to_string(), "139aef79");
        assert_eq!(records[2].glsn.to_string(), "139aef80");
    }

    #[test]
    fn generator_produces_valid_monotone_logs() {
        let schema = Schema::paper_example();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let config = WorkloadConfig {
            records: 500,
            ..WorkloadConfig::default()
        };
        let records = generate(&config, &mut rng);
        assert_eq!(records.len(), 500);
        let mut last_time = 0u64;
        let mut last_glsn = 0u64;
        for r in &records {
            schema.validate(r).unwrap();
            let AttrValue::Time(t) = *r.get(&"time".into()).unwrap() else {
                panic!("time attribute must be Time");
            };
            assert!(t > last_time);
            assert!(r.glsn.0 > last_glsn || last_glsn == 0);
            last_time = t;
            last_glsn = r.glsn.0;
        }
    }

    #[test]
    fn generator_respects_user_and_txn_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let config = WorkloadConfig {
            records: 200,
            users: 2,
            transactions: 3,
            ..WorkloadConfig::default()
        };
        for r in generate(&config, &mut rng) {
            let AttrValue::Text(id) = r.get(&"id".into()).unwrap().clone() else {
                panic!("id must be text")
            };
            assert!(id == "U1" || id == "U2", "unexpected user {id}");
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let config = WorkloadConfig::default();
        let a = generate(&config, &mut rand::rngs::StdRng::seed_from_u64(7));
        let b = generate(&config, &mut rand::rngs::StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "records must be positive")]
    fn zero_records_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let config = WorkloadConfig {
            records: 0,
            ..WorkloadConfig::default()
        };
        let _ = generate(&config, &mut rng);
    }
}
