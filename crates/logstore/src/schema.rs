//! Attribute schemas: the universe `I` of audit-trail attributes and
//! their types, including the distinction between *well-known* and
//! *undefined* attributes that drives the paper's store-confidentiality
//! metric (§5).

use crate::model::{AttrName, AttrType, AttrValue, LogRecord};
use crate::LogError;
use std::fmt;

/// One schema column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttrDef {
    name: AttrName,
    attr_type: AttrType,
    undefined: bool,
}

impl AttrDef {
    /// A well-known attribute (`time`, `id`, `protocol`, …) whose
    /// semantics any DLA node understands.
    #[must_use]
    pub fn known(name: &str, attr_type: AttrType) -> Self {
        AttrDef {
            name: AttrName::new(name),
            attr_type,
            undefined: false,
        }
    }

    /// An *undefined* attribute (`C1, C2, …`): "an abstract attribute
    /// that is only meaningful to the application subsystem by private
    /// agreements" (§5). Undefined attributes raise store
    /// confidentiality.
    #[must_use]
    pub fn undefined(name: &str, attr_type: AttrType) -> Self {
        AttrDef {
            name: AttrName::new(name),
            attr_type,
            undefined: true,
        }
    }

    /// The attribute name.
    #[must_use]
    pub fn name(&self) -> &AttrName {
        &self.name
    }

    /// The attribute type.
    #[must_use]
    pub fn attr_type(&self) -> AttrType {
        self.attr_type
    }

    /// Whether the attribute is undefined (application-private).
    #[must_use]
    pub fn is_undefined(&self) -> bool {
        self.undefined
    }
}

/// The ordered attribute universe `I` for one application subsystem.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    attrs: Vec<AttrDef>,
}

impl Schema {
    /// Builds a schema from definitions.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Schema`] on duplicate names or an empty list.
    pub fn new(attrs: Vec<AttrDef>) -> Result<Self, LogError> {
        if attrs.is_empty() {
            return Err(LogError::Schema("schema has no attributes".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for a in &attrs {
            if !seen.insert(a.name.clone()) {
                return Err(LogError::Schema(format!("duplicate attribute {}", a.name)));
            }
        }
        Ok(Schema { attrs })
    }

    /// The paper's Table 1 schema: `time`, `id`, `protocol`, `tid`
    /// (well-known) plus undefined `C1` (int), `C2` (fixed-point),
    /// `C3` (text).
    #[must_use]
    pub fn paper_example() -> Self {
        Schema::new(vec![
            AttrDef::known("time", AttrType::Time),
            AttrDef::known("id", AttrType::Text),
            AttrDef::known("protocol", AttrType::Text),
            AttrDef::known("tid", AttrType::Text),
            AttrDef::undefined("c1", AttrType::Int),
            AttrDef::undefined("c2", AttrType::Fixed2),
            AttrDef::undefined("c3", AttrType::Text),
        ])
        .expect("static schema is valid")
    }

    /// Number of attributes (`|I|`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema is empty (never, for constructed schemas).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Number of undefined attributes.
    #[must_use]
    pub fn undefined_count(&self) -> usize {
        self.attrs.iter().filter(|a| a.undefined).count()
    }

    /// Iterates the definitions in schema order.
    pub fn iter(&self) -> impl Iterator<Item = &AttrDef> {
        self.attrs.iter()
    }

    /// Looks up a definition by name.
    #[must_use]
    pub fn get(&self, name: &AttrName) -> Option<&AttrDef> {
        self.attrs.iter().find(|a| &a.name == name)
    }

    /// Whether the schema defines `name`.
    #[must_use]
    pub fn contains(&self, name: &AttrName) -> bool {
        self.get(name).is_some()
    }

    /// All attribute names in schema order.
    #[must_use]
    pub fn names(&self) -> Vec<AttrName> {
        self.attrs.iter().map(|a| a.name.clone()).collect()
    }

    /// Validates a record against the schema: every attribute must be
    /// defined and carry the declared type. Missing attributes are
    /// permitted (fragments are partial by design).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Schema`] naming the offending attribute.
    pub fn validate(&self, record: &LogRecord) -> Result<(), LogError> {
        for (name, value) in record.iter() {
            let def = self
                .get(name)
                .ok_or_else(|| LogError::Schema(format!("attribute {name} not in schema")))?;
            if def.attr_type != value.attr_type() {
                return Err(LogError::Schema(format!(
                    "attribute {name}: expected {}, got {}",
                    def.attr_type,
                    value.attr_type()
                )));
            }
        }
        Ok(())
    }

    /// Validates a value for one attribute.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Schema`] if the attribute is unknown or the
    /// type mismatches.
    pub fn validate_value(&self, name: &AttrName, value: &AttrValue) -> Result<(), LogError> {
        let def = self
            .get(name)
            .ok_or_else(|| LogError::Schema(format!("attribute {name} not in schema")))?;
        if def.attr_type != value.attr_type() {
            return Err(LogError::Schema(format!(
                "attribute {name}: expected {}, got {}",
                def.attr_type,
                value.attr_type()
            )));
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema[")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}:{}{}",
                a.name,
                a.attr_type,
                if a.undefined { "?" } else { "" }
            )?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Glsn;

    #[test]
    fn paper_schema_shape() {
        let s = Schema::paper_example();
        assert_eq!(s.len(), 7);
        assert_eq!(s.undefined_count(), 3);
        assert!(s.contains(&"time".into()));
        assert!(s.contains(&"c2".into()));
        assert!(!s.contains(&"salary".into()));
        assert_eq!(s.get(&"c2".into()).unwrap().attr_type(), AttrType::Fixed2);
        assert!(s.get(&"c1".into()).unwrap().is_undefined());
        assert!(!s.get(&"id".into()).unwrap().is_undefined());
    }

    #[test]
    fn duplicate_names_rejected() {
        let result = Schema::new(vec![
            AttrDef::known("x", AttrType::Int),
            AttrDef::undefined("X", AttrType::Text), // case-insensitive dup
        ]);
        assert!(result.is_err());
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn validate_accepts_conforming_records() {
        let s = Schema::paper_example();
        let rec = LogRecord::new(Glsn(1))
            .with("id", AttrValue::text("U1"))
            .with("c1", AttrValue::Int(20))
            .with("c2", AttrValue::Fixed2(2345));
        assert!(s.validate(&rec).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_attribute() {
        let s = Schema::paper_example();
        let rec = LogRecord::new(Glsn(1)).with("salary", AttrValue::Int(1));
        let err = s.validate(&rec).unwrap_err();
        assert!(err.to_string().contains("salary"));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let s = Schema::paper_example();
        let rec = LogRecord::new(Glsn(1)).with("c1", AttrValue::text("twenty"));
        let err = s.validate(&rec).unwrap_err();
        assert!(err.to_string().contains("expected int"));
    }

    #[test]
    fn partial_records_are_fine() {
        // Fragments only carry a subset — validation must allow that.
        let s = Schema::paper_example();
        let rec = LogRecord::new(Glsn(1)).with("time", AttrValue::Time(0));
        assert!(s.validate(&rec).is_ok());
    }

    #[test]
    fn display_marks_undefined_attributes() {
        let s = Schema::paper_example();
        let text = s.to_string();
        assert!(text.contains("c1:int?"));
        assert!(text.contains("time:time"));
    }
}
