//! Log fragmentation across DLA nodes (paper §4, Tables 2–5).
//!
//! A global record `Log = {glsn, L}` is split into `n` fragments
//! `Log_i = {glsn, L_i}` with `L_i ⊆ A_i` (the attributes node `P_i`
//! supports), `⋃ A_i = I` and `A_i ∩ A_j = ∅` — so the DLA cluster as a
//! whole holds the complete record while no single node can reconstruct
//! it. The `glsn` travels with every fragment as the join key.

use crate::model::{AttrName, Glsn, LogRecord};
use crate::schema::Schema;
use crate::LogError;
use std::collections::BTreeMap;
use std::fmt;

/// The attribute-to-node assignment `A_0 … A_{n−1}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Partition {
    assignments: Vec<Vec<AttrName>>,
}

impl Partition {
    /// Builds a partition; validates the paper's invariants against
    /// `schema`: every attribute assigned exactly once, every node
    /// nonempty-capable (empty nodes are allowed but flagged only if
    /// all are empty).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Partition`] if an attribute is unknown,
    /// assigned twice, or left unassigned.
    pub fn new(schema: &Schema, assignments: Vec<Vec<AttrName>>) -> Result<Self, LogError> {
        if assignments.is_empty() {
            return Err(LogError::Partition("no DLA nodes in partition".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for (node, attrs) in assignments.iter().enumerate() {
            for attr in attrs {
                if !schema.contains(attr) {
                    return Err(LogError::Partition(format!(
                        "node {node}: attribute {attr} not in schema"
                    )));
                }
                if !seen.insert(attr.clone()) {
                    return Err(LogError::Partition(format!(
                        "attribute {attr} assigned to more than one node"
                    )));
                }
            }
        }
        for name in schema.names() {
            if !seen.contains(&name) {
                return Err(LogError::Partition(format!(
                    "attribute {name} not assigned to any node"
                )));
            }
        }
        Ok(Partition { assignments })
    }

    /// Round-robin assignment of the schema's attributes to `n` nodes —
    /// the "evenly spread" strategy of §2.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Partition`] if `n` is zero.
    pub fn round_robin(schema: &Schema, n: usize) -> Result<Self, LogError> {
        if n == 0 {
            return Err(LogError::Partition("no DLA nodes in partition".into()));
        }
        let mut assignments = vec![Vec::new(); n];
        for (i, name) in schema.names().into_iter().enumerate() {
            assignments[i % n].push(name);
        }
        Partition::new(schema, assignments)
    }

    /// The paper's Tables 2–5 assignment over
    /// [`Schema::paper_example`]: `P0 = {time}`, `P1 = {id, c2}`,
    /// `P2 = {tid, c3}`, `P3 = {protocol, c1}`.
    #[must_use]
    pub fn paper_example(schema: &Schema) -> Self {
        Partition::new(
            schema,
            vec![
                vec!["time".into()],
                vec!["id".into(), "c2".into()],
                vec!["tid".into(), "c3".into()],
                vec!["protocol".into(), "c1".into()],
            ],
        )
        .expect("paper partition is valid for the paper schema")
    }

    /// Number of DLA nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.assignments.len()
    }

    /// Attributes supported by node `i` (its `A_i`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn attrs_of(&self, i: usize) -> &[AttrName] {
        &self.assignments[i]
    }

    /// Which node supports `attr`, if any.
    #[must_use]
    pub fn node_of(&self, attr: &AttrName) -> Option<usize> {
        self.assignments
            .iter()
            .position(|attrs| attrs.contains(attr))
    }

    /// Reassigns every attribute of `from_node` to `to_node` — the
    /// degraded-mode partition used after a DLA node dies and a
    /// survivor adopts its fragments. The node count is unchanged (the
    /// dead node keeps an empty slot), so node indices stay aligned
    /// with the cluster's network layout.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Partition`] if either index is out of range
    /// or the two are equal.
    pub fn reassign(&self, from_node: usize, to_node: usize) -> Result<Partition, LogError> {
        if from_node >= self.assignments.len() || to_node >= self.assignments.len() {
            return Err(LogError::Partition(format!(
                "reassign {from_node}->{to_node} out of range (n = {})",
                self.assignments.len()
            )));
        }
        if from_node == to_node {
            return Err(LogError::Partition(format!(
                "reassign {from_node}->{to_node}: nodes must differ"
            )));
        }
        let mut assignments = self.assignments.clone();
        let moved = std::mem::take(&mut assignments[from_node]);
        assignments[to_node].extend(moved);
        Ok(Partition { assignments })
    }

    /// The minimum number of nodes whose attribute sets cover all
    /// attributes present in `record` — the `u` of the §5 store
    /// confidentiality metric. With disjoint assignments this is simply
    /// the number of distinct owning nodes.
    #[must_use]
    pub fn covering_nodes(&self, record: &LogRecord) -> usize {
        let mut nodes = std::collections::HashSet::new();
        for (name, _) in record.iter() {
            if let Some(node) = self.node_of(name) {
                nodes.insert(node);
            }
        }
        nodes.len()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, attrs) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "P{i}={{")?;
            for (j, a) in attrs.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// One node's fragment of a global record: `Log_i = {glsn, L_i}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fragment {
    /// The owning DLA node index.
    pub node: usize,
    /// The join key shared by all fragments of one record.
    pub glsn: Glsn,
    /// The attribute subset stored at this node.
    pub values: LogRecord,
}

impl Fragment {
    /// Canonical bytes (node + record), the accumulator folding unit of
    /// §4.1.
    #[must_use]
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.node as u64).to_be_bytes());
        out.extend_from_slice(&self.values.to_canonical_bytes());
        out
    }

    /// Decodes a fragment previously produced by
    /// [`to_canonical_bytes`](Self::to_canonical_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Store`] on malformed input.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<Self, LogError> {
        if bytes.len() < 8 {
            return Err(LogError::Store("truncated fragment encoding".into()));
        }
        let (node_bytes, record_bytes) = bytes.split_at(8);
        let node = u64::from_be_bytes(node_bytes.try_into().expect("8 bytes")) as usize;
        let values = LogRecord::from_canonical_bytes(record_bytes).map_err(LogError::Store)?;
        Ok(Fragment {
            node,
            glsn: values.glsn,
            values,
        })
    }
}

/// Splits a global record into per-node fragments. Nodes whose
/// attribute set does not intersect the record still receive an empty
/// fragment (they participate in integrity checking).
#[must_use]
pub fn fragment(record: &LogRecord, partition: &Partition) -> Vec<Fragment> {
    (0..partition.num_nodes())
        .map(|node| {
            let mut values = LogRecord::new(record.glsn);
            for attr in partition.attrs_of(node) {
                if let Some(v) = record.get(attr) {
                    values.insert(attr.clone(), v.clone());
                }
            }
            Fragment {
                node,
                glsn: record.glsn,
                values,
            }
        })
        .collect()
}

/// Reassembles a global record from fragments.
///
/// # Errors
///
/// Returns [`LogError::Partition`] if fragments disagree on the glsn,
/// repeat an attribute, or the list is empty.
pub fn reassemble(fragments: &[Fragment]) -> Result<LogRecord, LogError> {
    let first = fragments
        .first()
        .ok_or_else(|| LogError::Partition("no fragments to reassemble".into()))?;
    let glsn = first.glsn;
    let mut merged: BTreeMap<AttrName, crate::model::AttrValue> = BTreeMap::new();
    for frag in fragments {
        if frag.glsn != glsn {
            return Err(LogError::Partition(format!(
                "fragment glsn mismatch: {} vs {glsn}",
                frag.glsn
            )));
        }
        for (name, value) in frag.values.iter() {
            if merged.insert(name.clone(), value.clone()).is_some() {
                return Err(LogError::Partition(format!(
                    "attribute {name} appears in multiple fragments"
                )));
            }
        }
    }
    let mut record = LogRecord::new(glsn);
    for (name, value) in merged {
        record.insert(name, value);
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AttrValue;

    fn paper_record() -> LogRecord {
        LogRecord::new(Glsn(0x139a_ef78))
            .with("time", AttrValue::Time(1_021_234_715))
            .with("id", AttrValue::text("U1"))
            .with("protocol", AttrValue::text("UDP"))
            .with("tid", AttrValue::text("T1100265"))
            .with("c1", AttrValue::Int(20))
            .with("c2", AttrValue::Fixed2(2345))
            .with("c3", AttrValue::text("signature"))
    }

    #[test]
    fn paper_partition_matches_tables_2_to_5() {
        let schema = Schema::paper_example();
        let p = Partition::paper_example(&schema);
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.attrs_of(0), &[AttrName::new("time")]);
        assert_eq!(p.node_of(&"id".into()), Some(1));
        assert_eq!(p.node_of(&"c2".into()), Some(1));
        assert_eq!(p.node_of(&"tid".into()), Some(2));
        assert_eq!(p.node_of(&"c3".into()), Some(2));
        assert_eq!(p.node_of(&"protocol".into()), Some(3));
        assert_eq!(p.node_of(&"c1".into()), Some(3));
    }

    #[test]
    fn fragment_then_reassemble_is_identity() {
        let schema = Schema::paper_example();
        let p = Partition::paper_example(&schema);
        let record = paper_record();
        let frags = fragment(&record, &p);
        assert_eq!(frags.len(), 4);
        assert_eq!(reassemble(&frags).unwrap(), record);
    }

    #[test]
    fn no_fragment_holds_everything() {
        let schema = Schema::paper_example();
        let p = Partition::paper_example(&schema);
        let record = paper_record();
        for frag in fragment(&record, &p) {
            assert!(
                frag.values.len() < record.len(),
                "node {} would see the whole record",
                frag.node
            );
        }
    }

    #[test]
    fn round_robin_covers_schema() {
        let schema = Schema::paper_example();
        for n in 1..=7 {
            let p = Partition::round_robin(&schema, n).unwrap();
            assert_eq!(p.num_nodes(), n);
            for name in schema.names() {
                assert!(p.node_of(&name).is_some(), "{name} unassigned at n={n}");
            }
        }
    }

    #[test]
    fn partition_rejects_double_assignment() {
        let schema = Schema::paper_example();
        let bad = Partition::new(
            &schema,
            vec![
                vec!["time".into(), "id".into()],
                vec![
                    "id".into(),
                    "protocol".into(),
                    "tid".into(),
                    "c1".into(),
                    "c2".into(),
                    "c3".into(),
                ],
            ],
        );
        assert!(bad.unwrap_err().to_string().contains("more than one node"));
    }

    #[test]
    fn partition_rejects_missing_attribute() {
        let schema = Schema::paper_example();
        let bad = Partition::new(&schema, vec![vec!["time".into()]]);
        assert!(bad.unwrap_err().to_string().contains("not assigned"));
    }

    #[test]
    fn partition_rejects_unknown_attribute() {
        let schema = Schema::paper_example();
        let mut full: Vec<AttrName> = schema.names();
        full.push("salary".into());
        let bad = Partition::new(&schema, vec![full]);
        assert!(bad.unwrap_err().to_string().contains("not in schema"));
    }

    #[test]
    fn covering_nodes_counts_distinct_owners() {
        let schema = Schema::paper_example();
        let p = Partition::paper_example(&schema);
        let full = paper_record();
        assert_eq!(p.covering_nodes(&full), 4);
        let partial = LogRecord::new(Glsn(1))
            .with("id", AttrValue::text("U1"))
            .with("c2", AttrValue::Fixed2(1));
        assert_eq!(p.covering_nodes(&partial), 1, "both live on P1");
    }

    #[test]
    fn reassemble_rejects_glsn_mismatch() {
        let schema = Schema::paper_example();
        let p = Partition::paper_example(&schema);
        let mut frags = fragment(&paper_record(), &p);
        frags[1].glsn = Glsn(999);
        assert!(reassemble(&frags).is_err());
    }

    #[test]
    fn reassemble_rejects_duplicate_attribute() {
        let schema = Schema::paper_example();
        let p = Partition::paper_example(&schema);
        let mut frags = fragment(&paper_record(), &p);
        // Duplicate P1's fragment (same attrs twice).
        let dup = frags[1].clone();
        frags.push(dup);
        assert!(reassemble(&frags).is_err());
    }

    #[test]
    fn empty_fragments_for_uncovered_nodes() {
        let schema = Schema::paper_example();
        let p = Partition::paper_example(&schema);
        let record = LogRecord::new(Glsn(5)).with("time", AttrValue::Time(0));
        let frags = fragment(&record, &p);
        assert_eq!(frags[0].values.len(), 1);
        assert!(frags[1].values.is_empty());
        assert!(frags[2].values.is_empty());
        assert!(frags[3].values.is_empty());
    }

    #[test]
    fn reassign_moves_attributes_and_keeps_node_count() {
        let schema = Schema::paper_example();
        let p = Partition::paper_example(&schema);
        let degraded = p.reassign(1, 2).unwrap();
        assert_eq!(degraded.num_nodes(), 4, "dead node keeps its slot");
        assert!(degraded.attrs_of(1).is_empty());
        assert_eq!(degraded.node_of(&"id".into()), Some(2));
        assert_eq!(degraded.node_of(&"c2".into()), Some(2));
        assert_eq!(degraded.node_of(&"tid".into()), Some(2));
        // Untouched assignments survive.
        assert_eq!(degraded.node_of(&"time".into()), Some(0));
        // A degraded partition can still fragment/reassemble records.
        let frags = fragment(&paper_record(), &degraded);
        assert!(frags[1].values.is_empty());
        assert_eq!(reassemble(&frags).unwrap(), paper_record());
    }

    #[test]
    fn reassign_rejects_bad_indices() {
        let schema = Schema::paper_example();
        let p = Partition::paper_example(&schema);
        assert!(p.reassign(1, 9).is_err());
        assert!(p.reassign(9, 1).is_err());
        assert!(p.reassign(2, 2).is_err());
    }

    #[test]
    fn fragment_canonical_bytes_bind_node_identity() {
        let schema = Schema::paper_example();
        let p = Partition::paper_example(&schema);
        let frags = fragment(&paper_record(), &p);
        let mut a = frags[0].clone();
        a.node = 2;
        assert_ne!(a.to_canonical_bytes(), frags[0].to_canonical_bytes());
    }
}
