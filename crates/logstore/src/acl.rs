//! Tickets and access control (paper §4, Table 6).
//!
//! "Before a user `u_j ∈ U` can log (write) a message in a DLA cluster,
//! it must obtain a ticket… Each audit node maintains the same access
//! control table for every glsn. Each assigned glsn is authorized by
//! some ticket."
//!
//! Tickets here are Schnorr-signed capability statements issued by the
//! DLA cluster's authority key (a Kerberos-like TGS is out of scope and
//! would add nothing to the protocols under study).

use crate::model::Glsn;
use crate::LogError;
use dla_crypto::schnorr::{self, SchnorrGroup, SchnorrKeyPair, SchnorrPublicKey, Signature};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A ticket identifier (`T1`, `T2`, … in Table 6).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TicketId(String);

impl TicketId {
    /// Creates a ticket id.
    #[must_use]
    pub fn new(id: &str) -> Self {
        TicketId(id.to_owned())
    }

    /// The id string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TicketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The operations a ticket can authorize (read/query, write/log,
/// delete — §4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operation {
    /// Read/query stored fragments.
    Read,
    /// Write/log new fragments.
    Write,
    /// Delete fragments.
    Delete,
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Operation::Read => "R",
            Operation::Write => "W",
            Operation::Delete => "D",
        };
        write!(f, "{s}")
    }
}

/// A set of permitted operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OperationSet {
    read: bool,
    write: bool,
    delete: bool,
}

impl OperationSet {
    /// The empty set.
    #[must_use]
    pub fn none() -> Self {
        OperationSet::default()
    }

    /// Read + write (the Table 6 `W/R` type).
    #[must_use]
    pub fn read_write() -> Self {
        OperationSet {
            read: true,
            write: true,
            delete: false,
        }
    }

    /// All operations.
    #[must_use]
    pub fn all() -> Self {
        OperationSet {
            read: true,
            write: true,
            delete: true,
        }
    }

    /// Adds an operation.
    #[must_use]
    pub fn with(mut self, op: Operation) -> Self {
        match op {
            Operation::Read => self.read = true,
            Operation::Write => self.write = true,
            Operation::Delete => self.delete = true,
        }
        self
    }

    /// Whether `op` is permitted.
    #[must_use]
    pub fn allows(&self, op: Operation) -> bool {
        match op {
            Operation::Read => self.read,
            Operation::Write => self.write,
            Operation::Delete => self.delete,
        }
    }

    /// Canonical encoding byte for signing.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        u8::from(self.read) | (u8::from(self.write) << 1) | (u8::from(self.delete) << 2)
    }

    /// Inverts [`to_byte`](Self::to_byte) (journal recovery).
    #[must_use]
    pub fn from_byte(byte: u8) -> Self {
        OperationSet {
            read: byte & 1 != 0,
            write: byte & 2 != 0,
            delete: byte & 4 != 0,
        }
    }
}

impl fmt::Display for OperationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.write {
            parts.push("W");
        }
        if self.read {
            parts.push("R");
        }
        if self.delete {
            parts.push("D");
        }
        if parts.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", parts.join("/"))
        }
    }
}

/// A signed ticket: (id, holder key, operations) certified by the DLA
/// authority.
#[derive(Clone, Debug)]
pub struct Ticket {
    /// Ticket identifier.
    pub id: TicketId,
    /// The holder's public key (presented on use).
    pub holder: SchnorrPublicKey,
    /// Authorized operations.
    pub ops: OperationSet,
    /// Authority signature over (id ‖ holder ‖ ops).
    pub signature: Signature,
}

impl Ticket {
    fn signed_content(id: &TicketId, holder: &SchnorrPublicKey, ops: OperationSet) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"dla-ticket");
        out.extend_from_slice(id.as_str().as_bytes());
        out.push(0);
        out.extend_from_slice(&holder.to_bytes());
        out.push(ops.to_byte());
        out
    }

    /// Verifies the authority certification.
    #[must_use]
    pub fn verify(&self, group: &SchnorrGroup, authority: &SchnorrPublicKey) -> bool {
        schnorr::verify(
            group,
            authority,
            &Self::signed_content(&self.id, &self.holder, self.ops),
            &self.signature,
        )
    }
}

/// The DLA cluster's ticket-granting authority.
pub struct TicketAuthority {
    key: SchnorrKeyPair,
    issued: u64,
}

impl fmt::Debug for TicketAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TicketAuthority(issued: {})", self.issued)
    }
}

impl TicketAuthority {
    /// Creates an authority with a fresh key.
    pub fn new<R: Rng + ?Sized>(group: &SchnorrGroup, rng: &mut R) -> Self {
        TicketAuthority {
            key: SchnorrKeyPair::generate(group, rng),
            issued: 0,
        }
    }

    /// The verification key every DLA node holds.
    #[must_use]
    pub fn public(&self) -> &SchnorrPublicKey {
        self.key.public()
    }

    /// Number of tickets issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Advances the id counter past a recovered high-water mark so
    /// ticket ids issued after a restart never collide with pre-restart
    /// ids still present in recovered access-control tables.
    pub fn resume_from(&mut self, issued: u64) {
        self.issued = self.issued.max(issued);
    }

    /// Issues a ticket to `holder` with the given operations.
    pub fn issue<R: Rng + ?Sized>(
        &mut self,
        holder: &SchnorrPublicKey,
        ops: OperationSet,
        rng: &mut R,
    ) -> Ticket {
        self.issued += 1;
        let id = TicketId::new(&format!("T{}", self.issued));
        let signature = self
            .key
            .sign(&Ticket::signed_content(&id, holder, ops), rng);
        Ticket {
            id,
            holder: holder.clone(),
            ops,
            signature,
        }
    }
}

/// The per-glsn access-control table every DLA node replicates
/// (Table 6): `ticket id → (operations, authorized glsns)`.
#[derive(Clone, Debug, Default)]
pub struct AccessControlTable {
    entries: BTreeMap<TicketId, (OperationSet, BTreeSet<Glsn>)>,
}

impl AccessControlTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        AccessControlTable::default()
    }

    /// Records that `glsn` was assigned under `ticket`.
    pub fn authorize(&mut self, ticket: &Ticket, glsn: Glsn) {
        self.authorize_parts(ticket.id.clone(), ticket.ops, glsn);
    }

    /// Raw authorization record (journal recovery, where the original
    /// ticket object is not materialized).
    pub fn authorize_parts(&mut self, id: TicketId, ops: OperationSet, glsn: Glsn) {
        let entry = self
            .entries
            .entry(id)
            .or_insert_with(|| (ops, BTreeSet::new()));
        entry.1.insert(glsn);
    }

    /// Checks whether `ticket` may perform `op` on `glsn`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::AccessDenied`] describing the failure.
    pub fn check(&self, ticket: &Ticket, op: Operation, glsn: Glsn) -> Result<(), LogError> {
        let Some((ops, glsns)) = self.entries.get(&ticket.id) else {
            return Err(LogError::AccessDenied(format!(
                "ticket {} unknown to the access table",
                ticket.id
            )));
        };
        if !ops.allows(op) {
            return Err(LogError::AccessDenied(format!(
                "ticket {} does not permit {op}",
                ticket.id
            )));
        }
        if !glsns.contains(&glsn) {
            return Err(LogError::AccessDenied(format!(
                "ticket {} not authorized for glsn {glsn}",
                ticket.id
            )));
        }
        Ok(())
    }

    /// The glsn set authorized under a ticket id — the per-ticket
    /// authorization sets whose cross-node consistency §4.1 checks with
    /// secure set intersection.
    #[must_use]
    pub fn glsns_of(&self, id: &TicketId) -> BTreeSet<Glsn> {
        self.entries
            .get(id)
            .map(|(_, g)| g.clone())
            .unwrap_or_default()
    }

    /// Iterates entries in ticket order (Table 6 layout).
    pub fn iter(&self) -> impl Iterator<Item = (&TicketId, &OperationSet, &BTreeSet<Glsn>)> + '_ {
        self.entries.iter().map(|(id, (ops, g))| (id, ops, g))
    }

    /// Number of tickets known to the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (
        SchnorrGroup,
        TicketAuthority,
        SchnorrKeyPair,
        rand::rngs::StdRng,
    ) {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let authority = TicketAuthority::new(&group, &mut rng);
        let user = SchnorrKeyPair::generate(&group, &mut rng);
        (group, authority, user, rng)
    }

    #[test]
    fn issued_tickets_verify() {
        let (group, mut authority, user, mut rng) = setup();
        let t = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        assert!(t.verify(&group, authority.public()));
        assert_eq!(t.id.as_str(), "T1");
    }

    #[test]
    fn tampered_ticket_rejected() {
        let (group, mut authority, user, mut rng) = setup();
        let mut t = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        t.ops = OperationSet::all(); // privilege escalation attempt
        assert!(!t.verify(&group, authority.public()));
    }

    #[test]
    fn ticket_ids_increment() {
        let (_, mut authority, user, mut rng) = setup();
        let t1 = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        let t2 = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        assert_eq!(t1.id.as_str(), "T1");
        assert_eq!(t2.id.as_str(), "T2");
    }

    #[test]
    fn operation_set_semantics() {
        let rw = OperationSet::read_write();
        assert!(rw.allows(Operation::Read));
        assert!(rw.allows(Operation::Write));
        assert!(!rw.allows(Operation::Delete));
        assert_eq!(rw.to_string(), "W/R");
        assert_eq!(OperationSet::none().to_string(), "-");
        assert_eq!(OperationSet::all().to_string(), "W/R/D");
        let custom = OperationSet::none().with(Operation::Delete);
        assert!(custom.allows(Operation::Delete));
        assert!(!custom.allows(Operation::Read));
    }

    #[test]
    fn operation_set_bytes_distinct() {
        let sets = [
            OperationSet::none(),
            OperationSet::read_write(),
            OperationSet::all(),
            OperationSet::none().with(Operation::Read),
            OperationSet::none().with(Operation::Write),
            OperationSet::none().with(Operation::Delete),
        ];
        let bytes: std::collections::HashSet<u8> = sets.iter().map(|s| s.to_byte()).collect();
        assert_eq!(bytes.len(), sets.len());
    }

    #[test]
    fn acl_authorize_then_check() {
        let (_, mut authority, user, mut rng) = setup();
        let t = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        let mut acl = AccessControlTable::new();
        acl.authorize(&t, Glsn(0x139a_ef78));
        acl.authorize(&t, Glsn(0x139a_ef80));
        assert!(acl.check(&t, Operation::Read, Glsn(0x139a_ef78)).is_ok());
        assert!(acl.check(&t, Operation::Write, Glsn(0x139a_ef80)).is_ok());
    }

    #[test]
    fn acl_denies_unknown_ticket() {
        let (_, mut authority, user, mut rng) = setup();
        let t = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        let acl = AccessControlTable::new();
        let err = acl.check(&t, Operation::Read, Glsn(1)).unwrap_err();
        assert!(err.to_string().contains("unknown"));
    }

    #[test]
    fn acl_denies_wrong_operation() {
        let (_, mut authority, user, mut rng) = setup();
        let t = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        let mut acl = AccessControlTable::new();
        acl.authorize(&t, Glsn(1));
        let err = acl.check(&t, Operation::Delete, Glsn(1)).unwrap_err();
        assert!(err.to_string().contains("does not permit D"));
    }

    #[test]
    fn acl_denies_foreign_glsn() {
        let (_, mut authority, user, mut rng) = setup();
        let t = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        let mut acl = AccessControlTable::new();
        acl.authorize(&t, Glsn(1));
        let err = acl.check(&t, Operation::Read, Glsn(2)).unwrap_err();
        assert!(err.to_string().contains("not authorized for glsn"));
    }

    #[test]
    fn glsns_of_returns_authorization_set() {
        let (_, mut authority, user, mut rng) = setup();
        let t = authority.issue(user.public(), OperationSet::read_write(), &mut rng);
        let mut acl = AccessControlTable::new();
        acl.authorize(&t, Glsn(2));
        acl.authorize(&t, Glsn(1));
        let set = acl.glsns_of(&t.id);
        assert_eq!(set.into_iter().collect::<Vec<_>>(), vec![Glsn(1), Glsn(2)]);
        assert!(acl.glsns_of(&TicketId::new("T99")).is_empty());
    }
}
