#![deny(rust_2018_idioms)]

//! Event-log storage for the DLA cluster: the data model, attribute
//! fragmentation, tickets/ACLs and per-node fragment stores.
//!
//! This crate realizes the paper's §2/§4 storage design:
//!
//! * [`model`] — records `Log = {glsn, L}`, typed attribute values, the
//!   paper's time rendering (Table 1).
//! * [`schema`] — the attribute universe `I` with well-known vs.
//!   *undefined* attributes (§5).
//! * [`fragment`] — splitting records across DLA nodes so "no single
//!   node owns the full set of log records" (Tables 2–5).
//! * [`acl`] — tickets and the replicated access-control table
//!   (Table 6).
//! * [`store`] — per-node fragment stores and the glsn allocator.
//! * [`gen`] — the Table 1 dataset and synthetic workload generation.
//!
//! # Examples
//!
//! ```
//! use dla_logstore::fragment::{fragment, reassemble, Partition};
//! use dla_logstore::gen::paper_table1;
//! use dla_logstore::schema::Schema;
//!
//! let schema = Schema::paper_example();
//! let partition = Partition::paper_example(&schema);
//! for record in paper_table1() {
//!     let frags = fragment(&record, &partition);
//!     // The cluster as a whole holds the record; no node holds it all.
//!     assert!(frags.iter().all(|f| f.values.len() < record.len()));
//!     assert_eq!(reassemble(&frags)?, record);
//! }
//! # Ok::<(), dla_logstore::LogError>(())
//! ```

use std::fmt;

pub mod acl;
pub mod epoch;
pub mod fragment;
pub mod gen;
pub mod journal;
pub mod model;
pub mod schema;
pub mod store;

pub use model::{AttrName, AttrType, AttrValue, Glsn, LogRecord, TransactionId};

/// Errors surfaced by the log-storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogError {
    /// Schema violation (unknown attribute, type mismatch, duplicates).
    Schema(String),
    /// Partition violation (unassigned/doubly assigned attributes,
    /// fragment mismatches).
    Partition(String),
    /// An operation was denied by a ticket or access-control table.
    AccessDenied(String),
    /// A storage-level failure (missing glsn, wrong node).
    Store(String),
    /// A deposit arrived for a glsn that is already stored with
    /// different content — a replayed or duplicated deposit must never
    /// silently rewrite history (§4's "uniquely assigned" invariant).
    DuplicateGlsn { glsn: Glsn, node: usize },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Schema(msg) => write!(f, "schema error: {msg}"),
            LogError::Partition(msg) => write!(f, "partition error: {msg}"),
            LogError::AccessDenied(msg) => write!(f, "access denied: {msg}"),
            LogError::Store(msg) => write!(f, "store error: {msg}"),
            LogError::DuplicateGlsn { glsn, node } => {
                write!(f, "duplicate glsn: {glsn} already stored at node {node}")
            }
        }
    }
}

impl std::error::Error for LogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_prefixes() {
        assert!(LogError::Schema("x".into())
            .to_string()
            .starts_with("schema error"));
        assert!(LogError::AccessDenied("x".into())
            .to_string()
            .starts_with("access denied"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LogError>();
    }
}
