//! The event-log data model (paper §2, Eq. 1–5 and Table 1).
//!
//! A transaction `T = {R_T, E_T, L_T, tsn, ttn}` executed by application
//! nodes generates log records; each record is identified by a globally
//! unique, monotonically increasing **glsn** (global log sequence
//! number) and carries typed attribute values.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A global log sequence number — "a monotonically increasing integer
/// that uniquely defines a log record" (Eq. 5). Rendered in hex like the
/// paper's examples (`139aef78`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Glsn(pub u64);

impl fmt::Display for Glsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

impl Glsn {
    /// Parses the paper's hex rendering.
    ///
    /// # Errors
    ///
    /// Returns an error string for non-hex input.
    pub fn parse(s: &str) -> Result<Self, String> {
        u64::from_str_radix(s, 16)
            .map(Glsn)
            .map_err(|e| format!("invalid glsn {s:?}: {e}"))
    }
}

/// An audit-trail attribute name (an element of the paper's universe
/// `I = {i₀, i₁, …}` — `time`, `id`, `protocol`, or undefined attributes
/// `C1, C2, …`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AttrName(String);

impl AttrName {
    /// Creates an attribute name (lowercased for canonical comparison).
    #[must_use]
    pub fn new(name: &str) -> Self {
        AttrName(name.to_ascii_lowercase())
    }

    /// The canonical string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::new(s)
    }
}

/// The type of an attribute, fixed by the schema.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttrType {
    /// 64-bit signed integer (counts, sizes).
    Int,
    /// Fixed-point with two decimals (money/volume), stored as
    /// hundredths.
    Fixed2,
    /// UTF-8 text (ids, protocol names, undefined attributes).
    Text,
    /// Seconds since the Unix epoch, rendered in the paper's
    /// `HH:MM:SS/MM/DD/YYYY` style.
    Time,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttrType::Int => "int",
            AttrType::Fixed2 => "fixed2",
            AttrType::Text => "text",
            AttrType::Time => "time",
        };
        write!(f, "{name}")
    }
}

/// A typed attribute value.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum AttrValue {
    /// Integer value.
    Int(i64),
    /// Fixed-point (hundredths): `Fixed2(2345)` renders `23.45`.
    Fixed2(i64),
    /// Text value.
    Text(String),
    /// Unix-epoch seconds.
    Time(u64),
}

impl AttrValue {
    /// The value's type.
    #[must_use]
    pub fn attr_type(&self) -> AttrType {
        match self {
            AttrValue::Int(_) => AttrType::Int,
            AttrValue::Fixed2(_) => AttrType::Fixed2,
            AttrValue::Text(_) => AttrType::Text,
            AttrValue::Time(_) => AttrType::Time,
        }
    }

    /// Convenience constructor for text.
    #[must_use]
    pub fn text(s: &str) -> Self {
        AttrValue::Text(s.to_owned())
    }

    /// Compares two values of the same type; `None` across types.
    #[must_use]
    pub fn try_cmp(&self, other: &AttrValue) -> Option<Ordering> {
        match (self, other) {
            (AttrValue::Int(a), AttrValue::Int(b)) => Some(a.cmp(b)),
            (AttrValue::Fixed2(a), AttrValue::Fixed2(b)) => Some(a.cmp(b)),
            (AttrValue::Text(a), AttrValue::Text(b)) => Some(a.cmp(b)),
            (AttrValue::Time(a), AttrValue::Time(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Decodes a value previously produced by
    /// [`to_canonical_bytes`](Self::to_canonical_bytes).
    ///
    /// # Errors
    ///
    /// Returns an error string on unknown tags, truncation or invalid
    /// UTF-8.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<Self, String> {
        let (&tag, payload) = bytes
            .split_first()
            .ok_or_else(|| "empty value encoding".to_owned())?;
        let fixed_u64 = |payload: &[u8]| -> Result<[u8; 8], String> {
            payload
                .try_into()
                .map_err(|_| format!("value payload must be 8 bytes, got {}", payload.len()))
        };
        match tag {
            0x01 => Ok(AttrValue::Int(i64::from_be_bytes(fixed_u64(payload)?))),
            0x02 => Ok(AttrValue::Fixed2(i64::from_be_bytes(fixed_u64(payload)?))),
            0x03 => String::from_utf8(payload.to_vec())
                .map(AttrValue::Text)
                .map_err(|_| "invalid utf-8 in text value".to_owned()),
            0x04 => Ok(AttrValue::Time(u64::from_be_bytes(fixed_u64(payload)?))),
            other => Err(format!("unknown value tag {other:#x}")),
        }
    }

    /// Canonical byte encoding (type tag + payload) for hashing,
    /// fingerprinting and accumulator folding.
    #[must_use]
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            AttrValue::Int(v) => {
                out.push(0x01);
                out.extend_from_slice(&v.to_be_bytes());
            }
            AttrValue::Fixed2(v) => {
                out.push(0x02);
                out.extend_from_slice(&v.to_be_bytes());
            }
            AttrValue::Text(s) => {
                out.push(0x03);
                out.extend_from_slice(s.as_bytes());
            }
            AttrValue::Time(t) => {
                out.push(0x04);
                out.extend_from_slice(&t.to_be_bytes());
            }
        }
        out
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Fixed2(v) => {
                let sign = if *v < 0 { "-" } else { "" };
                let abs = v.unsigned_abs();
                write!(f, "{sign}{}.{:02}", abs / 100, abs % 100)
            }
            AttrValue::Text(s) => write!(f, "{s}"),
            AttrValue::Time(t) => write!(f, "{}", format_paper_time(*t)),
        }
    }
}

/// Formats epoch seconds in the paper's Table 1 style
/// `HH:MM:SS/MM/DD/YYYY`.
#[must_use]
pub fn format_paper_time(epoch: u64) -> String {
    let (secs_of_day, days) = (epoch % 86_400, epoch / 86_400);
    let (h, m, s) = (
        secs_of_day / 3600,
        (secs_of_day % 3600) / 60,
        secs_of_day % 60,
    );
    let (year, month, day) = civil_from_days(days as i64);
    format!("{h:02}:{m:02}:{s:02}/{month:02}/{day:02}/{year}")
}

/// Builds epoch seconds from a civil date/time (UTC).
///
/// # Panics
///
/// Panics on out-of-range fields or pre-1970 dates.
#[must_use]
pub fn epoch_from_civil(year: i64, month: u64, day: u64, h: u64, m: u64, s: u64) -> u64 {
    assert!((1..=12).contains(&month), "month out of range");
    assert!((1..=31).contains(&day), "day out of range");
    assert!(h < 24 && m < 60 && s < 60, "time out of range");
    let days = days_from_civil(year, month as i64, day as i64);
    assert!(days >= 0, "pre-epoch dates unsupported");
    days as u64 * 86_400 + h * 3600 + m * 60 + s
}

// Howard Hinnant's civil-date algorithms (public domain).
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

fn civil_from_days(z: i64) -> (i64, u64, u64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m as u64, d as u64)
}

/// A transaction identifier (`Tid` in Table 1, e.g. `T1100265`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TransactionId(String);

impl TransactionId {
    /// Creates a transaction id.
    #[must_use]
    pub fn new(id: &str) -> Self {
        TransactionId(id.to_owned())
    }

    /// The id string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One global log record: `Log = {glsn, L = (l₀ … l_m)}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogRecord {
    /// The unique sequence number.
    pub glsn: Glsn,
    values: BTreeMap<AttrName, AttrValue>,
}

impl LogRecord {
    /// Creates an empty record for `glsn`.
    #[must_use]
    pub fn new(glsn: Glsn) -> Self {
        LogRecord {
            glsn,
            values: BTreeMap::new(),
        }
    }

    /// Sets an attribute (builder style).
    #[must_use]
    pub fn with(mut self, name: impl Into<AttrName>, value: AttrValue) -> Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Inserts an attribute, returning any previous value.
    pub fn insert(&mut self, name: AttrName, value: AttrValue) -> Option<AttrValue> {
        self.values.insert(name, value)
    }

    /// Looks up an attribute.
    #[must_use]
    pub fn get(&self, name: &AttrName) -> Option<&AttrValue> {
        self.values.get(name)
    }

    /// Iterates attributes in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrName, &AttrValue)> {
        self.values.iter()
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the record carries no attributes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Decodes a record previously produced by
    /// [`to_canonical_bytes`](Self::to_canonical_bytes).
    ///
    /// # Errors
    ///
    /// Returns an error string on truncation or malformed fields.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<Self, String> {
        let take = |bytes: &mut &[u8], n: usize, what: &str| -> Result<Vec<u8>, String> {
            if bytes.len() < n {
                return Err(format!("truncated record encoding at {what}"));
            }
            let (head, rest) = bytes.split_at(n);
            *bytes = rest;
            Ok(head.to_vec())
        };
        let take_u64 = |bytes: &mut &[u8], what: &str| -> Result<u64, String> {
            let head = take(bytes, 8, what)?;
            Ok(u64::from_be_bytes(head.try_into().expect("8 bytes")))
        };

        let mut rest = bytes;
        let glsn = Glsn(take_u64(&mut rest, "glsn")?);
        let mut record = LogRecord::new(glsn);
        while !rest.is_empty() {
            let name_len = take_u64(&mut rest, "name length")? as usize;
            if name_len > rest.len() {
                return Err("attribute name length exceeds payload".into());
            }
            let name_bytes = take(&mut rest, name_len, "name")?;
            let name = String::from_utf8(name_bytes)
                .map_err(|_| "invalid utf-8 in attribute name".to_owned())?;
            let value_len = take_u64(&mut rest, "value length")? as usize;
            if value_len > rest.len() {
                return Err("attribute value length exceeds payload".into());
            }
            let value_bytes = take(&mut rest, value_len, "value")?;
            record.insert(
                AttrName::new(&name),
                AttrValue::from_canonical_bytes(&value_bytes)?,
            );
        }
        Ok(record)
    }

    /// Canonical bytes of the whole record (glsn + sorted attributes),
    /// used for accumulator folding and signatures.
    #[must_use]
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.glsn.0.to_be_bytes());
        for (name, value) in &self.values {
            let nb = name.as_str().as_bytes();
            out.extend_from_slice(&(nb.len() as u64).to_be_bytes());
            out.extend_from_slice(nb);
            let vb = value.to_canonical_bytes();
            out.extend_from_slice(&(vb.len() as u64).to_be_bytes());
            out.extend_from_slice(&vb);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glsn_displays_as_hex_and_parses_back() {
        let g = Glsn(0x139a_ef78);
        assert_eq!(g.to_string(), "139aef78");
        assert_eq!(Glsn::parse("139aef78").unwrap(), g);
        assert!(Glsn::parse("xyz").is_err());
    }

    #[test]
    fn attr_names_are_case_insensitive() {
        assert_eq!(AttrName::new("Time"), AttrName::new("time"));
        assert_eq!(AttrName::from("TID").as_str(), "tid");
    }

    #[test]
    fn fixed2_display() {
        assert_eq!(AttrValue::Fixed2(2345).to_string(), "23.45");
        assert_eq!(AttrValue::Fixed2(4).to_string(), "0.04");
        assert_eq!(AttrValue::Fixed2(-150).to_string(), "-1.50");
        assert_eq!(AttrValue::Fixed2(67875).to_string(), "678.75");
    }

    #[test]
    fn cross_type_comparison_is_none() {
        assert_eq!(
            AttrValue::Int(1).try_cmp(&AttrValue::Text("1".into())),
            None
        );
        assert_eq!(
            AttrValue::Int(1).try_cmp(&AttrValue::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            AttrValue::Text("b".into()).try_cmp(&AttrValue::text("a")),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn paper_time_round_trip() {
        // Table 1 row 1: 20:18:35/05/12/2002
        let epoch = epoch_from_civil(2002, 5, 12, 20, 18, 35);
        assert_eq!(format_paper_time(epoch), "20:18:35/05/12/2002");
    }

    #[test]
    fn civil_conversion_handles_epoch_and_leap_years() {
        assert_eq!(format_paper_time(0), "00:00:00/01/01/1970");
        let leap = epoch_from_civil(2000, 2, 29, 12, 0, 0);
        assert_eq!(format_paper_time(leap), "12:00:00/02/29/2000");
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn bad_month_panics() {
        let _ = epoch_from_civil(2002, 13, 1, 0, 0, 0);
    }

    #[test]
    fn time_values_order_chronologically() {
        let earlier = AttrValue::Time(epoch_from_civil(2002, 5, 12, 20, 18, 35));
        let later = AttrValue::Time(epoch_from_civil(2002, 5, 12, 20, 20, 35));
        assert_eq!(earlier.try_cmp(&later), Some(Ordering::Less));
    }

    #[test]
    fn record_builder_and_lookup() {
        let rec = LogRecord::new(Glsn(1))
            .with("id", AttrValue::text("U1"))
            .with("c1", AttrValue::Int(20));
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.get(&"id".into()), Some(&AttrValue::text("U1")));
        assert_eq!(rec.get(&"missing".into()), None);
        assert!(!rec.is_empty());
    }

    #[test]
    fn canonical_bytes_are_injective_on_content() {
        let a = LogRecord::new(Glsn(1)).with("x", AttrValue::Int(1));
        let b = LogRecord::new(Glsn(1)).with("x", AttrValue::Int(2));
        let c = LogRecord::new(Glsn(2)).with("x", AttrValue::Int(1));
        assert_ne!(a.to_canonical_bytes(), b.to_canonical_bytes());
        assert_ne!(a.to_canonical_bytes(), c.to_canonical_bytes());
    }

    #[test]
    fn canonical_bytes_independent_of_insertion_order() {
        let a = LogRecord::new(Glsn(1))
            .with("b", AttrValue::Int(2))
            .with("a", AttrValue::Int(1));
        let b = LogRecord::new(Glsn(1))
            .with("a", AttrValue::Int(1))
            .with("b", AttrValue::Int(2));
        assert_eq!(a.to_canonical_bytes(), b.to_canonical_bytes());
    }

    #[test]
    fn value_type_tags_distinguish_same_payload() {
        // Int(1) and Time(1) share payload bytes but differ in tag.
        assert_ne!(
            AttrValue::Int(1).to_canonical_bytes(),
            AttrValue::Time(1).to_canonical_bytes()
        );
    }

    #[test]
    fn transaction_id_display() {
        assert_eq!(TransactionId::new("T1100265").to_string(), "T1100265");
    }
}
