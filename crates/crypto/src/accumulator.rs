//! Benaloh–de Mare one-way accumulator (paper §4.1, Eq. 8–9).
//!
//! `A(x, y) = x^y mod n` with `n` an RSA modulus is a *quasi-commutative*
//! one-way function: accumulating a multiset of items yields the same
//! value in any order,
//! `A(A(A(x₀,y₁),y₂),y₃) = A(A(A(x₀,y₂),y₃),y₁)` (Eq. 9).
//!
//! The DLA cluster uses this for **distributed integrity checking**: a
//! user accumulates all fragments of a log record and deposits the value
//! at every DLA node; later, the nodes circulate a partial accumulation
//! (each folding in its own stored fragment, keyed by `glsn`) and the
//! initiator compares the final value with the deposited one. Order
//! independence is what lets the check start at any node and traverse
//! the ring in any order — and a single tampered fragment changes the
//! result.

use crate::sha256;
use dla_bigint::montgomery::MontgomeryContext;
use dla_bigint::{modular, multi_exp, prime, FixedBase, Ubig};
use rand::Rng;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Public parameters of a one-way accumulator: an RSA modulus `n`
/// (factorization discarded after setup — a "rigid" modulus in the
/// Benaloh–de Mare sense) and an agreed starting value `x₀`.
#[derive(Clone)]
pub struct AccumulatorParams {
    n: Arc<Ubig>,
    x0: Ubig,
    ctx: Arc<MontgomeryContext>,
    /// Fixed-base table over `x₀`, built on first use and shared by
    /// every clone of these parameters. Every verification path raises
    /// `x₀` to some combined exponent, so the table amortises across
    /// the whole cluster lifetime.
    fixed: Arc<OnceLock<FixedBase>>,
}

impl PartialEq for AccumulatorParams {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.x0 == other.x0
    }
}

impl Eq for AccumulatorParams {}

impl fmt::Debug for AccumulatorParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AccumulatorParams(n: {} bits, x0: {} bits)",
            self.n.bit_len(),
            self.x0.bit_len()
        )
    }
}

/// A precomputed 512-bit RSA modulus for deterministic tests/benches
/// (factors were generated and discarded; verified composite & odd by
/// the test suite).
pub const RSA_MODULUS_512_HEX: &str = "b73acbd60cd937ea48dadd7c9e723d7c80b202525158ef7fc41c1fd14387edbc9c064bc43958643f0de39942f514ca540335f74de50589eff414431f12ff6129";

impl AccumulatorParams {
    /// Generates fresh parameters with a `bits`-bit RSA modulus; the
    /// prime factors are dropped on the floor, never returned.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        let (n, _p, _q) = prime::gen_rsa_modulus(bits, rng);
        Self::from_modulus(n)
    }

    /// Builds parameters from an externally agreed modulus.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (no room for nontrivial residues).
    #[must_use]
    pub fn from_modulus(n: Ubig) -> Self {
        assert!(n > Ubig::from_u64(3), "accumulator modulus too small");
        let x0 = Self::derive_x0(&n);
        let ctx = MontgomeryContext::new(&n).expect("RSA moduli are odd products of odd primes");
        AccumulatorParams {
            n: Arc::new(n),
            x0,
            ctx: Arc::new(ctx),
            fixed: Arc::new(OnceLock::new()),
        }
    }

    /// Generates fresh parameters **keeping** the factorization as an
    /// [`AccumulatorTrapdoor`], for the setup party that is allowed to
    /// fold with CRT-split exponent reduction. Everyone else sees the
    /// same public parameters as [`AccumulatorParams::generate`].
    pub fn generate_with_trapdoor<R: Rng + ?Sized>(
        bits: usize,
        rng: &mut R,
    ) -> (Self, AccumulatorTrapdoor) {
        let (n, p, q) = prime::gen_rsa_modulus(bits, rng);
        let trapdoor = AccumulatorTrapdoor::new(p, q);
        (Self::from_modulus(n), trapdoor)
    }

    /// The standard 512-bit test parameters.
    #[must_use]
    pub fn fixed_512() -> Self {
        Self::from_modulus(Ubig::from_hex(RSA_MODULUS_512_HEX).expect("valid constant"))
    }

    /// `x₀` is derived deterministically from `n` so all parties agree
    /// on it without extra negotiation ("x₀ must be agreed upon in
    /// advance", §4.1).
    fn derive_x0(n: &Ubig) -> Ubig {
        let h = sha256::digest_parts(&[b"dla-accumulator-x0", &n.to_bytes_be()]);
        let x = &Ubig::from_bytes_be(&h) % n;
        // Square so x0 is a quadratic residue and never 0/1.
        let sq = dla_bigint::modular::modmul(&x, &x, n);
        if sq.is_zero() || sq.is_one() {
            Ubig::from_u64(4) % n
        } else {
            sq
        }
    }

    /// The modulus `n`.
    #[must_use]
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// The agreed start value `x₀`.
    #[must_use]
    pub fn start(&self) -> &Ubig {
        &self.x0
    }

    /// Maps an arbitrary item to an odd exponent `y ≥ 3`, so every item
    /// contributes a nontrivial power.
    #[must_use]
    pub fn item_exponent(&self, item: &[u8]) -> Ubig {
        let h = sha256::digest_parts(&[b"dla-accumulator-item", item]);
        let mut y = Ubig::from_bytes_be(&h);
        if y.is_even() {
            y = y + Ubig::one();
        }
        if y.is_one() {
            y = Ubig::from_u64(3);
        }
        y
    }

    /// One accumulation step: `A(acc, item) = acc^{y(item)} mod n`.
    #[must_use]
    pub fn fold(&self, acc: &Ubig, item: &[u8]) -> Ubig {
        dla_telemetry::record(dla_telemetry::CostKind::AccumulatorFold, 1);
        self.ctx.modexp(acc, &self.item_exponent(item))
    }

    /// Accumulates a full collection starting from `x₀`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dla_crypto::accumulator::AccumulatorParams;
    ///
    /// let mut rng = rand::thread_rng();
    /// let params = AccumulatorParams::generate(256, &mut rng);
    /// let a = params.accumulate([b"y1".as_slice(), b"y2", b"y3"]);
    /// let b = params.accumulate([b"y2".as_slice(), b"y3", b"y1"]);
    /// assert_eq!(a, b); // Eq. 9: order independence
    /// ```
    #[must_use]
    pub fn accumulate<'a, I>(&self, items: I) -> Ubig
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        items
            .into_iter()
            .fold(self.x0.clone(), |acc, item| self.fold(&acc, item))
    }

    /// Folds a whole batch of items into each of several running
    /// accumulators at once. Quasi-commutativity (Eq. 9) collapses the
    /// per-item ladder into a single exponentiation per accumulator:
    /// `acc^{y₁·y₂·…·y_k} mod n`, and the shared exponent lets all
    /// accumulators reuse one window plan via
    /// [`MontgomeryContext::modexp_batch`]. This is the accumulator leg
    /// of the batched deposit pipeline — one fold per batch instead of
    /// one per deposit.
    ///
    /// Telemetry counts `items.len() × accs.len()` logical accumulator
    /// folds, keeping windowed-vs-full verification comparisons in
    /// units of *items folded* regardless of batching.
    #[must_use]
    pub fn fold_batch(&self, accs: &[Ubig], items: &[&[u8]]) -> Vec<Ubig> {
        if items.is_empty() {
            return accs.to_vec();
        }
        dla_telemetry::record(
            dla_telemetry::CostKind::AccumulatorFold,
            (items.len() * accs.len()) as u64,
        );
        let exponent = items
            .iter()
            .map(|item| self.item_exponent(item))
            .reduce(|a, b| a * b)
            .expect("items is non-empty");
        self.ctx.modexp_batch(accs, &exponent)
    }

    /// The fixed-base table over `x₀`, built once per parameter set.
    /// Capacity covers the common case (a handful of items' combined
    /// exponent plus batch-verification randomizers); anything larger
    /// takes the table's chunked fallback and stays correct.
    fn fixed_base(&self) -> &FixedBase {
        self.fixed
            .get_or_init(|| FixedBase::new(&self.ctx, &self.x0, 2 * self.n.bit_len() + 128))
    }

    /// The combined exponent one batched fold of `items` applies:
    /// `∏ y(itemᵢ)` (Eq. 9 collapses the fold ladder into one power).
    ///
    /// Telemetry counts one logical accumulator fold per item — the
    /// work is measured in *items absorbed* no matter how the power is
    /// later evaluated.
    #[must_use]
    pub fn batch_exponent(&self, items: &[&[u8]]) -> Ubig {
        dla_telemetry::record(dla_telemetry::CostKind::AccumulatorFold, items.len() as u64);
        items
            .iter()
            .map(|item| self.item_exponent(item))
            .fold(Ubig::one(), |a, b| a * b)
    }

    /// `x₀^exp mod n` through the cached fixed-base table —
    /// bit-identical to folding from [`AccumulatorParams::start`] with
    /// a ladder, minus the per-call squaring chain.
    #[must_use]
    pub fn power_of_start(&self, exp: &Ubig) -> Ubig {
        self.fixed_base().pow(exp)
    }

    /// Accumulates a whole collection from `x₀` in **one** fixed-base
    /// power, `x₀^{∏ yᵢ}` — the same value [`AccumulatorParams::accumulate`]
    /// reaches with one ladder per item.
    #[must_use]
    pub fn accumulate_batch(&self, items: &[&[u8]]) -> Ubig {
        if items.is_empty() {
            return self.x0.clone();
        }
        let exponent = self.batch_exponent(items);
        self.power_of_start(&exponent)
    }

    /// Batch-verifies claims of the form `digestⱼ = x₀^{Eⱼ}` with one
    /// random-linear-combination check instead of one power per claim:
    /// draw Fiat–Shamir randomizers `rⱼ` from the claims themselves and
    /// test `x₀^{Σ rⱼ·Eⱼ} = ∏ digestⱼ^{rⱼ}` — the left side one
    /// fixed-base power, the right side one [`multi_exp`] product.
    /// Coefficient arithmetic is over ℤ (the group order is unknown),
    /// so a forged digest slips through only by guessing a 128-bit
    /// `rⱼ` relation. Callers wanting to *localise* a failure fall back
    /// to per-claim [`AccumulatorParams::power_of_start`] comparisons.
    #[must_use]
    pub fn batch_verify(&self, claims: &[(Ubig, Ubig)]) -> bool {
        if claims.is_empty() {
            return true;
        }
        // Bind every randomizer to the full claim transcript.
        let mut transcript = Vec::new();
        for (digest, exponent) in claims {
            let d = digest.to_bytes_be();
            let e = exponent.to_bytes_be();
            transcript.extend_from_slice(&(d.len() as u64).to_be_bytes());
            transcript.extend_from_slice(&d);
            transcript.extend_from_slice(&(e.len() as u64).to_be_bytes());
            transcript.extend_from_slice(&e);
        }
        let seed = sha256::digest_parts(&[b"dla-batch-verify", &self.n.to_bytes_be(), &transcript]);
        let randomizers: Vec<Ubig> = (0..claims.len())
            .map(|j| {
                let h = sha256::digest_parts(&[
                    b"dla-batch-verify-r",
                    &seed,
                    &(j as u64).to_be_bytes(),
                ]);
                let r = Ubig::from_bytes_be(&h[..16]);
                if r.is_zero() {
                    Ubig::one()
                } else {
                    r
                }
            })
            .collect();

        let combined = claims
            .iter()
            .zip(&randomizers)
            .map(|((_, exponent), r)| exponent.clone() * r.clone())
            .fold(Ubig::zero(), |a, b| a + b);
        let lhs = self.power_of_start(&combined);
        let terms: Vec<(Ubig, Ubig)> = claims
            .iter()
            .zip(&randomizers)
            .map(|((digest, _), r)| (digest.clone(), r.clone()))
            .collect();
        let rhs = multi_exp(&self.ctx, &terms);
        lhs == rhs
    }

    /// CRT-split [`AccumulatorParams::fold_batch`] for the party that
    /// kept the modulus factorization: the combined exponent is reduced
    /// mod `p−1` / `q−1` and each power evaluated in the two half-size
    /// prime fields, then recombined. Values are bit-identical to the
    /// public fold; only the arithmetic route (and its cost) differs.
    ///
    /// # Panics
    ///
    /// Panics if `trapdoor` does not factor these parameters' modulus.
    #[must_use]
    pub fn fold_batch_with_trapdoor(
        &self,
        trapdoor: &AccumulatorTrapdoor,
        accs: &[Ubig],
        items: &[&[u8]],
    ) -> Vec<Ubig> {
        assert_eq!(
            *self.n,
            trapdoor.modulus(),
            "trapdoor does not match these accumulator parameters"
        );
        if items.is_empty() {
            return accs.to_vec();
        }
        dla_telemetry::record(
            dla_telemetry::CostKind::AccumulatorFold,
            (items.len() * accs.len()) as u64,
        );
        let exponent = items
            .iter()
            .map(|item| self.item_exponent(item))
            .reduce(|a, b| a * b)
            .expect("items is non-empty");
        trapdoor.pow_batch(accs, &exponent)
    }
}

/// The factorization of an accumulator modulus — held only by the
/// setup party (everyone else works with the "rigid" public modulus).
/// Knowing `p`, `q` turns one `n`-size exponentiation by a huge batch
/// exponent into two half-size exponentiations by exponents reduced
/// mod `p−1` / `q−1` (Fermat), recombined with the CRT.
pub struct AccumulatorTrapdoor {
    p: Ubig,
    q: Ubig,
    ctx_p: MontgomeryContext,
    ctx_q: MontgomeryContext,
    /// `q⁻¹ mod p`, for the CRT recombination.
    q_inv: Ubig,
}

impl fmt::Debug for AccumulatorTrapdoor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the factors.
        write!(
            f,
            "AccumulatorTrapdoor({} + {} bit factors)",
            self.p.bit_len(),
            self.q.bit_len()
        )
    }
}

impl AccumulatorTrapdoor {
    fn new(p: Ubig, q: Ubig) -> Self {
        let ctx_p = MontgomeryContext::new(&p).expect("RSA factors are odd primes");
        let ctx_q = MontgomeryContext::new(&q).expect("RSA factors are odd primes");
        let q_inv = modular::modinv(&q, &p).expect("distinct primes are coprime");
        AccumulatorTrapdoor {
            p,
            q,
            ctx_p,
            ctx_q,
            q_inv,
        }
    }

    /// The modulus this trapdoor factors.
    #[must_use]
    pub fn modulus(&self) -> Ubig {
        &self.p * &self.q
    }

    /// `exp mod (m−1)`, guarded so a non-zero exponent never reduces to
    /// zero: `base^{m−1}` and `base^{e(m−1)}` agree mod the prime `m`
    /// for every base (including multiples of `m`, where both are 0),
    /// while `base^0 = 1` would not.
    fn reduce(exp: &Ubig, order: &Ubig) -> Ubig {
        if exp < order {
            return exp.clone();
        }
        let r = exp % order;
        if r.is_zero() && !exp.is_zero() {
            order.clone()
        } else {
            r
        }
    }

    /// `base^exp mod pq` via the CRT split.
    #[must_use]
    pub fn pow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        self.pow_batch(std::slice::from_ref(base), exp)
            .pop()
            .expect("one base in, one power out")
    }

    /// `baseᵢ^exp mod pq` for every base: the exponent reduces once per
    /// prime, both half-size batches share their window plans.
    #[must_use]
    pub fn pow_batch(&self, bases: &[Ubig], exp: &Ubig) -> Vec<Ubig> {
        let e_p = Self::reduce(exp, &(&self.p - &Ubig::one()));
        let e_q = Self::reduce(exp, &(&self.q - &Ubig::one()));
        let bases_p: Vec<Ubig> = bases.iter().map(|b| b % &self.p).collect();
        let bases_q: Vec<Ubig> = bases.iter().map(|b| b % &self.q).collect();
        let pows_p = self.ctx_p.modexp_batch(&bases_p, &e_p);
        let pows_q = self.ctx_q.modexp_batch(&bases_q, &e_q);
        pows_p
            .into_iter()
            .zip(pows_q)
            .map(|(a_p, a_q)| {
                // x ≡ a_p (mod p), x ≡ a_q (mod q):
                // x = a_q + q·((a_p − a_q)·q⁻¹ mod p).
                let diff = modular::modsub(&a_p, &(&a_q % &self.p), &self.p);
                let t = modular::modmul(&diff, &self.q_inv, &self.p);
                a_q + t * self.q.clone()
            })
            .collect()
    }
}

/// One sealed epoch's summary: its accumulator digest, how many items
/// it folded, and a hash link binding it to every earlier seal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EpochCheckpoint {
    /// The sealed epoch.
    pub epoch: u64,
    /// Number of items folded into `digest`.
    pub items: u64,
    /// The epoch's accumulator value (fold of its items from `x₀`).
    pub digest: Ubig,
    /// Commitment to the epoch's materialized aggregate partials
    /// (count/sum buckets cached at seal time). All zeros when the
    /// sealer materialized nothing. Folding it into the link means a
    /// cached aggregate is integrity-checked against the published
    /// chain, never trusted.
    pub aggregates: [u8; 32],
    /// `H(prev_link ‖ epoch ‖ items ‖ digest ‖ aggregates)` — position-
    /// and history-binding, like the meta-audit trail's hash chain.
    pub link: [u8; 32],
}

impl EpochCheckpoint {
    /// Canonical byte encoding for gossiping a head between peers:
    /// `epoch ‖ items ‖ digest_len ‖ digest ‖ aggregates ‖ link`, all
    /// big-endian. (The crypto crate carries no wire dependency, so the
    /// format is spelled out here and transported opaquely.)
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let digest = self.digest.to_bytes_be();
        let mut out = Vec::with_capacity(8 + 8 + 4 + digest.len() + 64);
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&self.items.to_be_bytes());
        out.extend_from_slice(&(digest.len() as u32).to_be_bytes());
        out.extend_from_slice(&digest);
        out.extend_from_slice(&self.aggregates);
        out.extend_from_slice(&self.link);
        out
    }

    /// Decodes an [`EpochCheckpoint::encode`] blob; `None` on any
    /// structural mismatch (truncation, bad length, trailing bytes).
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let fixed = 8 + 8 + 4;
        let digest_len = u32::from_be_bytes(bytes.get(16..20)?.try_into().ok()?) as usize;
        if bytes.len() != fixed + digest_len + 64 {
            return None;
        }
        let digest = Ubig::from_bytes_be(&bytes[fixed..fixed + digest_len]);
        let aggregates: [u8; 32] = bytes[fixed + digest_len..fixed + digest_len + 32]
            .try_into()
            .ok()?;
        let link: [u8; 32] = bytes[fixed + digest_len + 32..].try_into().ok()?;
        Some(EpochCheckpoint {
            epoch: u64::from_be_bytes(bytes[..8].try_into().ok()?),
            items: u64::from_be_bytes(bytes[8..16].try_into().ok()?),
            digest,
            aggregates,
            link,
        })
    }

    /// Whether `other` is an equivocation of this checkpoint: the same
    /// epoch presented with different contents. Two honest copies of a
    /// sealed epoch are bytewise equal, so any divergence between what
    /// a node showed two different peers is proof of misbehavior.
    #[must_use]
    pub fn equivocates(&self, other: &EpochCheckpoint) -> bool {
        self.epoch == other.epoch && self != other
    }
}

/// The incremental checkpoint chain over sealed epochs.
///
/// Each seal stores the epoch's accumulator digest and chains it to the
/// previous seal with a hash link, so a windowed audit can verify
/// *only* the epochs it overlaps plus this O(#epochs) chain of links —
/// never the whole trail. Dropping, reordering, or rewriting any sealed
/// epoch breaks every later link.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CheckpointChain {
    checkpoints: Vec<EpochCheckpoint>,
}

impl CheckpointChain {
    /// An empty chain (no epoch sealed yet).
    #[must_use]
    pub fn new() -> Self {
        CheckpointChain::default()
    }

    /// The link a seal of (`epoch`, `items`, `digest`, `aggregates`) on
    /// top of `prev_link` would carry.
    #[must_use]
    pub fn link_over(
        prev_link: &[u8; 32],
        epoch: u64,
        items: u64,
        digest: &Ubig,
        aggregates: &[u8; 32],
    ) -> [u8; 32] {
        sha256::digest_parts(&[
            b"dla-epoch-checkpoint",
            prev_link,
            &epoch.to_be_bytes(),
            &items.to_be_bytes(),
            &digest.to_bytes_be(),
            aggregates,
        ])
    }

    /// Seals `epoch` with its accumulator `digest` over `items` items
    /// and no aggregate commitment (all-zeros `aggregates`).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` does not strictly follow the last sealed epoch
    /// — seals are totally ordered by construction (the open epoch only
    /// rolls forward).
    pub fn seal(&mut self, epoch: u64, items: u64, digest: Ubig) -> &EpochCheckpoint {
        self.seal_with_aggregates(epoch, items, digest, [0u8; 32])
    }

    /// [`CheckpointChain::seal`] carrying a commitment to the epoch's
    /// materialized aggregate partials, so cached aggregates are
    /// endorsed by the published chain.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` does not strictly follow the last sealed
    /// epoch.
    pub fn seal_with_aggregates(
        &mut self,
        epoch: u64,
        items: u64,
        digest: Ubig,
        aggregates: [u8; 32],
    ) -> &EpochCheckpoint {
        if let Some(last) = self.checkpoints.last() {
            assert!(
                epoch > last.epoch,
                "epoch {epoch} sealed out of order (last sealed: {})",
                last.epoch
            );
        }
        let link = Self::link_over(&self.head_link(), epoch, items, &digest, &aggregates);
        self.checkpoints.push(EpochCheckpoint {
            epoch,
            items,
            digest,
            aggregates,
            link,
        });
        self.checkpoints.last().expect("just pushed")
    }

    /// The link of the most recent seal (all zeros when empty).
    #[must_use]
    pub fn head_link(&self) -> [u8; 32] {
        self.checkpoints.last().map_or([0u8; 32], |c| c.link)
    }

    /// Recomputes every link from the genesis and compares: `true` iff
    /// the chain is internally consistent.
    #[must_use]
    pub fn verify_links(&self) -> bool {
        let mut prev = [0u8; 32];
        for c in &self.checkpoints {
            if Self::link_over(&prev, c.epoch, c.items, &c.digest, &c.aggregates) != c.link {
                return false;
            }
            prev = c.link;
        }
        true
    }

    /// The checkpoint for `epoch`, if sealed.
    #[must_use]
    pub fn get(&self, epoch: u64) -> Option<&EpochCheckpoint> {
        self.checkpoints.iter().find(|c| c.epoch == epoch)
    }

    /// Whether a checkpoint `presented` by a peer matches this chain's
    /// own seal of the same epoch. A forged head — even one whose link
    /// is internally consistent because it was re-linked over the true
    /// prefix — fails here, since the local chain already holds the
    /// genuine seal.
    #[must_use]
    pub fn endorses(&self, presented: &EpochCheckpoint) -> bool {
        self.get(presented.epoch) == Some(presented)
    }

    /// Iterates seals in seal order.
    pub fn iter(&self) -> impl Iterator<Item = &EpochCheckpoint> {
        self.checkpoints.iter()
    }

    /// Number of sealed epochs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether no epoch has been sealed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }
}

/// A sealed sub-ring checkpoint as published to the federation's root
/// ring: the checkpoint plus the ring that sealed it.
///
/// The root ring folds [`RingCheckpoint::root_item`] into its global
/// accumulator — the same §4.1 primitive applied recursively, one level
/// up: sub-rings accumulate deposits into epoch digests, the root ring
/// accumulates epoch digests into one federation-wide value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RingCheckpoint {
    /// The sub-ring that sealed this epoch.
    pub ring: u64,
    /// The sealed epoch checkpoint, exactly as the sub-ring's own
    /// [`CheckpointChain`] holds it.
    pub checkpoint: EpochCheckpoint,
}

impl RingCheckpoint {
    /// Canonical byte encoding: `ring ‖ checkpoint`, big-endian.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let inner = self.checkpoint.encode();
        let mut out = Vec::with_capacity(8 + inner.len());
        out.extend_from_slice(&self.ring.to_be_bytes());
        out.extend_from_slice(&inner);
        out
    }

    /// Decodes a [`RingCheckpoint::encode`] blob; `None` on any
    /// structural mismatch.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let ring = u64::from_be_bytes(bytes.get(..8)?.try_into().ok()?);
        let checkpoint = EpochCheckpoint::decode(&bytes[8..])?;
        Some(RingCheckpoint { ring, checkpoint })
    }

    /// The item the root ring folds into its global accumulator for
    /// this publication. Domain-separated and ring-qualified, so the
    /// same epoch digest published by two different rings contributes
    /// two distinct items.
    #[must_use]
    pub fn root_item(&self) -> Vec<u8> {
        let inner = self.checkpoint.encode();
        let mut out = Vec::with_capacity(18 + 8 + inner.len());
        out.extend_from_slice(b"dla-root-ring-item");
        out.extend_from_slice(&self.ring.to_be_bytes());
        out.extend_from_slice(&inner);
        out
    }
}

/// A cross-ring endorsement record: ring `endorser` vouches that it saw
/// `subject` (another ring's sealed checkpoint) while its own chain
/// head was `endorser_head`. Published alongside the root fold, these
/// records mean no single ring can rewrite its history — a rewrite
/// would have to recall endorsements held by every *other* ring.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RingEndorsement {
    /// The endorsing ring.
    pub endorser: u64,
    /// The foreign checkpoint being endorsed.
    pub subject: RingCheckpoint,
    /// The endorser's own chain head link at endorsement time — pins
    /// the endorsement to a state the endorser's chain actually passed
    /// through.
    pub endorser_head: [u8; 32],
    /// `H(tag ‖ endorser ‖ subject ‖ endorser_head)` — the record's
    /// integrity seal.
    pub seal: [u8; 32],
}

impl RingEndorsement {
    /// The seal an endorsement of `subject` by `endorser` at
    /// `endorser_head` must carry.
    #[must_use]
    pub fn seal_over(
        endorser: u64,
        subject: &RingCheckpoint,
        endorser_head: &[u8; 32],
    ) -> [u8; 32] {
        sha256::digest_parts(&[
            b"dla-ring-endorsement",
            &endorser.to_be_bytes(),
            &subject.encode(),
            endorser_head,
        ])
    }

    /// Whether the record's seal matches its contents.
    #[must_use]
    pub fn verify(&self) -> bool {
        Self::seal_over(self.endorser, &self.subject, &self.endorser_head) == self.seal
    }

    /// Canonical byte encoding:
    /// `endorser ‖ subject_len ‖ subject ‖ endorser_head ‖ seal`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let subject = self.subject.encode();
        let mut out = Vec::with_capacity(8 + 4 + subject.len() + 64);
        out.extend_from_slice(&self.endorser.to_be_bytes());
        out.extend_from_slice(&(subject.len() as u32).to_be_bytes());
        out.extend_from_slice(&subject);
        out.extend_from_slice(&self.endorser_head);
        out.extend_from_slice(&self.seal);
        out
    }

    /// Decodes a [`RingEndorsement::encode`] blob; `None` on any
    /// structural mismatch.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let subject_len = u32::from_be_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
        if bytes.len() != 12 + subject_len + 64 {
            return None;
        }
        let subject = RingCheckpoint::decode(&bytes[12..12 + subject_len])?;
        Some(RingEndorsement {
            endorser: u64::from_be_bytes(bytes[..8].try_into().ok()?),
            subject,
            endorser_head: bytes[12 + subject_len..12 + subject_len + 32]
                .try_into()
                .ok()?,
            seal: bytes[12 + subject_len + 32..].try_into().ok()?,
        })
    }
}

impl CheckpointChain {
    /// Issues this chain's endorsement of a *foreign* ring's sealed
    /// checkpoint, pinned to the current head link. The companion check
    /// is [`CheckpointChain::upholds`] — the foreign-ring extension of
    /// the local [`CheckpointChain::endorses`].
    #[must_use]
    pub fn endorse_foreign(&self, endorser: u64, subject: RingCheckpoint) -> RingEndorsement {
        let endorser_head = self.head_link();
        let seal = RingEndorsement::seal_over(endorser, &subject, &endorser_head);
        RingEndorsement {
            endorser,
            subject,
            endorser_head,
            seal,
        }
    }

    /// Whether this chain (the *endorser's* chain) stands behind an
    /// endorsement: the seal must verify and `endorser_head` must be a
    /// state this chain actually passed through — the zero genesis head
    /// or one of its sealed links. An endorsement forged against a head
    /// the endorser never held fails here even with a valid seal.
    #[must_use]
    pub fn upholds(&self, endorsement: &RingEndorsement) -> bool {
        endorsement.verify()
            && (endorsement.endorser_head == [0u8; 32]
                || self
                    .checkpoints
                    .iter()
                    .any(|c| c.link == endorsement.endorser_head))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn params() -> AccumulatorParams {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        AccumulatorParams::generate(256, &mut rng)
    }

    #[test]
    fn order_independence_eq9() {
        let p = params();
        let items: Vec<&[u8]> = vec![b"y1", b"y2", b"y3"];
        let a = p.accumulate(items.iter().copied());
        for perm in [
            vec![0usize, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ] {
            let b = p.accumulate(perm.iter().map(|&i| items[i]));
            assert_eq!(a, b, "permutation {perm:?}");
        }
    }

    #[test]
    fn incremental_fold_matches_batch() {
        let p = params();
        let batch = p.accumulate([b"a".as_slice(), b"b", b"c"]);
        let mut acc = p.start().clone();
        for item in [b"a".as_slice(), b"b", b"c"] {
            acc = p.fold(&acc, item);
        }
        assert_eq!(acc, batch);
    }

    #[test]
    fn tampering_changes_value() {
        let p = params();
        let honest = p.accumulate([b"frag0".as_slice(), b"frag1", b"frag2"]);
        let tampered = p.accumulate([b"frag0".as_slice(), b"frag1-evil", b"frag2"]);
        assert_ne!(honest, tampered);
    }

    #[test]
    fn missing_item_changes_value() {
        let p = params();
        let all = p.accumulate([b"frag0".as_slice(), b"frag1"]);
        let partial = p.accumulate([b"frag0".as_slice()]);
        assert_ne!(all, partial);
    }

    #[test]
    fn empty_accumulation_is_start_value() {
        let p = params();
        assert_eq!(p.accumulate(std::iter::empty()), *p.start());
    }

    #[test]
    fn item_exponents_are_odd_and_distinct() {
        let p = params();
        let y1 = p.item_exponent(b"a");
        let y2 = p.item_exponent(b"b");
        assert!(!y1.is_even());
        assert!(!y2.is_even());
        assert_ne!(y1, y2);
        assert!(y1 > Ubig::two());
    }

    #[test]
    fn x0_is_deterministic_per_modulus() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let (n, _, _) = prime::gen_rsa_modulus(128, &mut rng);
        let a = AccumulatorParams::from_modulus(n.clone());
        let b = AccumulatorParams::from_modulus(n);
        assert_eq!(a.start(), b.start());
    }

    #[test]
    fn fixed_params_are_usable() {
        let p = AccumulatorParams::fixed_512();
        assert_eq!(p.modulus().bit_len(), 512);
        assert!(!p.modulus().is_even(), "RSA modulus must be odd");
        let a = p.accumulate([b"x".as_slice(), b"y"]);
        let b = p.accumulate([b"y".as_slice(), b"x"]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_modulus_rejected() {
        let _ = AccumulatorParams::from_modulus(Ubig::two());
    }

    #[test]
    fn fold_batch_matches_sequential_folds() {
        let p = params();
        let items: Vec<&[u8]> = vec![b"d0", b"d1", b"d2", b"d3", b"d4"];
        // Two independent accumulators absorb the same batch.
        let a0 = p.accumulate([b"seed-a".as_slice()]);
        let b0 = p.accumulate([b"seed-b".as_slice()]);
        let batched = p.fold_batch(&[a0.clone(), b0.clone()], &items);
        let seq_a = items.iter().fold(a0.clone(), |acc, i| p.fold(&acc, i));
        let seq_b = items.iter().fold(b0.clone(), |acc, i| p.fold(&acc, i));
        assert_eq!(batched, vec![seq_a, seq_b]);
        // Empty batch is the identity.
        assert_eq!(p.fold_batch(std::slice::from_ref(&a0), &[]), vec![a0]);
    }

    #[test]
    fn checkpoint_chain_links_and_detects_tampering() {
        let p = params();
        let mut chain = CheckpointChain::new();
        assert!(chain.is_empty());
        assert!(chain.verify_links());
        for (e, label) in [(0u64, "epoch0"), (1, "epoch1"), (3, "epoch3")] {
            let digest = p.accumulate([label.as_bytes()]);
            chain.seal(e, 1, digest);
        }
        assert_eq!(chain.len(), 3);
        assert!(chain.verify_links());
        assert!(chain.get(1).is_some());
        assert!(chain.get(2).is_none());

        // Rewriting a sealed digest breaks its own link check.
        let mut tampered = chain.clone();
        tampered.checkpoints[1].digest = p.accumulate([b"evil".as_slice()]);
        assert!(!tampered.verify_links());

        // Dropping a middle seal breaks the next link.
        let mut dropped = chain.clone();
        dropped.checkpoints.remove(1);
        assert!(!dropped.verify_links());
    }

    #[test]
    fn checkpoint_encoding_round_trips_and_rejects_malformed() {
        let p = params();
        let mut chain = CheckpointChain::new();
        chain.seal(4, 9, p.accumulate([b"e4".as_slice()]));
        let checkpoint = chain.get(4).expect("sealed").clone();
        let encoded = checkpoint.encode();
        assert_eq!(EpochCheckpoint::decode(&encoded), Some(checkpoint));
        assert_eq!(EpochCheckpoint::decode(&encoded[..encoded.len() - 1]), None);
        assert_eq!(EpochCheckpoint::decode(&[encoded, vec![0]].concat()), None);
        assert_eq!(EpochCheckpoint::decode(b"short"), None);
    }

    #[test]
    fn aggregate_commitment_binds_the_link() {
        let p = params();
        let digest = p.accumulate([b"e0".as_slice()]);

        // The same seal with and without an aggregate commitment must
        // link differently — a sealer cannot later graft cached
        // partials under a chain that never endorsed them.
        let mut plain = CheckpointChain::new();
        plain.seal(0, 1, digest.clone());
        let mut committed = CheckpointChain::new();
        committed.seal_with_aggregates(0, 1, digest.clone(), [7u8; 32]);
        assert_ne!(plain.head_link(), committed.head_link());
        assert!(plain.verify_links() && committed.verify_links());

        // Non-zero commitments survive the wire round trip.
        let checkpoint = committed.get(0).expect("sealed").clone();
        assert_eq!(
            EpochCheckpoint::decode(&checkpoint.encode()),
            Some(checkpoint.clone())
        );

        // Flipping the stored commitment breaks the link check.
        let mut tampered = committed.clone();
        tampered.checkpoints[0].aggregates = [8u8; 32];
        assert!(!tampered.verify_links());
        assert!(checkpoint.equivocates(tampered.get(0).expect("sealed")));
    }

    #[test]
    fn equivocation_is_divergence_on_the_same_epoch() {
        let p = params();
        let mut chain = CheckpointChain::new();
        chain.seal(0, 2, p.accumulate([b"a".as_slice()]));
        chain.seal(1, 2, p.accumulate([b"b".as_slice()]));
        let genuine = chain.get(1).expect("sealed").clone();
        assert!(chain.endorses(&genuine));
        assert!(!genuine.equivocates(&genuine));

        // A forged head re-linked over the true prefix is internally
        // consistent, yet both peer cross-checks catch it.
        let prev = chain.get(0).expect("sealed").link;
        let digest = p.accumulate([b"forged".as_slice()]);
        let link = CheckpointChain::link_over(&prev, 1, 2, &digest, &[0u8; 32]);
        let forged = EpochCheckpoint {
            epoch: 1,
            items: 2,
            digest,
            aggregates: [0u8; 32],
            link,
        };
        assert!(genuine.equivocates(&forged));
        assert!(!chain.endorses(&forged));
        // Different epochs never equivocate, however different.
        assert!(!chain.get(0).expect("sealed").equivocates(&genuine));
    }

    #[test]
    fn ring_checkpoint_encoding_round_trips_and_domain_separates() {
        let p = params();
        let mut chain = CheckpointChain::new();
        chain.seal(0, 3, p.accumulate([b"ring-epoch".as_slice()]));
        let checkpoint = chain.get(0).expect("sealed").clone();
        let a = RingCheckpoint {
            ring: 1,
            checkpoint: checkpoint.clone(),
        };
        let b = RingCheckpoint {
            ring: 2,
            checkpoint,
        };
        assert_eq!(RingCheckpoint::decode(&a.encode()), Some(a.clone()));
        assert_eq!(RingCheckpoint::decode(b"short"), None);
        // Same epoch digest, different ring → different root items, so
        // the global fold distinguishes publications per ring.
        assert_ne!(a.root_item(), b.root_item());
        let fold_a = p.fold(p.start(), &a.root_item());
        let fold_b = p.fold(p.start(), &b.root_item());
        assert_ne!(fold_a, fold_b);
    }

    #[test]
    fn foreign_endorsements_verify_and_pin_the_endorser_head() {
        let p = params();
        // Ring 0 seals two epochs; ring 1 endorses ring 0's epoch 1.
        let mut ring0 = CheckpointChain::new();
        ring0.seal(0, 2, p.accumulate([b"r0e0".as_slice()]));
        ring0.seal(1, 2, p.accumulate([b"r0e1".as_slice()]));
        let mut ring1 = CheckpointChain::new();
        ring1.seal(0, 2, p.accumulate([b"r1e0".as_slice()]));

        let subject = RingCheckpoint {
            ring: 0,
            checkpoint: ring0.get(1).expect("sealed").clone(),
        };
        let endorsement = ring1.endorse_foreign(1, subject.clone());
        assert!(endorsement.verify());
        assert!(ring1.upholds(&endorsement));
        assert_eq!(
            RingEndorsement::decode(&endorsement.encode()),
            Some(endorsement.clone())
        );
        assert_eq!(RingEndorsement::decode(&endorsement.encode()[..20]), None);

        // A seal recomputed over a different subject fails verify.
        let mut forged = endorsement.clone();
        forged.subject.ring = 9;
        assert!(!forged.verify());
        assert!(!ring1.upholds(&forged));

        // A valid-sealed endorsement against a head ring 1 never held
        // is not upheld by ring 1's chain.
        let alien_head = [7u8; 32];
        let alien = RingEndorsement {
            endorser: 1,
            subject: subject.clone(),
            endorser_head: alien_head,
            seal: RingEndorsement::seal_over(1, &subject, &alien_head),
        };
        assert!(alien.verify());
        assert!(!ring1.upholds(&alien));

        // The zero genesis head is a state every chain passed through.
        let genesis = RingEndorsement {
            endorser: 1,
            subject: subject.clone(),
            endorser_head: [0u8; 32],
            seal: RingEndorsement::seal_over(1, &subject, &[0u8; 32]),
        };
        assert!(ring1.upholds(&genesis));
    }

    #[test]
    fn power_of_start_matches_ladder_and_accumulate() {
        let p = params();
        let items: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d"];
        let sequential = p.accumulate(items.iter().copied());
        let batched = p.accumulate_batch(&items);
        assert_eq!(sequential, batched);
        // And directly against the generic ladder on the same exponent.
        let exponent = p.batch_exponent(&items);
        assert_eq!(
            p.power_of_start(&exponent),
            dla_bigint::modular::modexp(p.start(), &exponent, p.modulus())
        );
        assert_eq!(p.accumulate_batch(&[]), *p.start());
    }

    #[test]
    fn batch_verify_accepts_genuine_and_rejects_forged_claims() {
        let p = params();
        let epochs: Vec<Vec<&[u8]>> = vec![
            vec![b"e0-a", b"e0-b"],
            vec![b"e1-a"],
            vec![b"e2-a", b"e2-b", b"e2-c"],
        ];
        let claims: Vec<(Ubig, Ubig)> = epochs
            .iter()
            .map(|items| {
                let e = p.batch_exponent(items);
                (p.power_of_start(&e), e)
            })
            .collect();
        assert!(p.batch_verify(&claims));
        assert!(p.batch_verify(&[]), "an empty claim set is vacuously true");
        assert!(p.batch_verify(&claims[..1]), "single claims verify too");

        // A tampered digest fails the combined check.
        let mut forged = claims.clone();
        forged[1].0 = p.accumulate([b"evil".as_slice()]);
        assert!(!p.batch_verify(&forged));

        // So does a digest paired with the wrong exponent.
        let mut swapped = claims.clone();
        swapped.swap(0, 2);
        let mut crossed = claims;
        crossed[0].1 = swapped[0].1.clone();
        assert!(!p.batch_verify(&crossed));
    }

    #[test]
    fn trapdoor_crt_folds_match_public_folds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let (p, trapdoor) = AccumulatorParams::generate_with_trapdoor(256, &mut rng);
        assert_eq!(*p.modulus(), trapdoor.modulus());

        let items: Vec<&[u8]> = (0..20)
            .map(|i| -> &[u8] {
                match i % 4 {
                    0 => b"w",
                    1 => b"x",
                    2 => b"y",
                    _ => b"z",
                }
            })
            .collect();
        let accs = vec![
            p.accumulate([b"s0".as_slice()]),
            p.accumulate([b"s1".as_slice()]),
        ];
        let public = p.fold_batch(&accs, &items);
        let split = p.fold_batch_with_trapdoor(&trapdoor, &accs, &items);
        assert_eq!(public, split, "CRT route must be bit-identical");
        assert_eq!(
            p.fold_batch_with_trapdoor(&trapdoor, &accs, &[]),
            accs,
            "empty batch is the identity"
        );

        // Direct powers, including exponents the reduction rewrites:
        // a multiple of (p−1)(q−1) must not collapse to base^0.
        let base = p.accumulate([b"base".as_slice()]);
        for exp in [
            Ubig::zero(),
            Ubig::one(),
            Ubig::from_u64(65_537),
            &(&trapdoor.modulus() - &Ubig::one()) * &Ubig::from_u64(3),
        ] {
            assert_eq!(
                trapdoor.pow(&base, &exp),
                dla_bigint::modular::modexp(&base, &exp, p.modulus()),
                "exp = {} bits",
                exp.bit_len()
            );
        }
    }

    #[test]
    fn trapdoor_folds_cost_fewer_mul_steps_on_large_batches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let (p, trapdoor) = AccumulatorParams::generate_with_trapdoor(256, &mut rng);
        let items: Vec<&[u8]> = (0..24).map(|_| b"item".as_slice()).collect();
        let accs = vec![p.accumulate([b"seed".as_slice()])];
        let capture = |f: &dyn Fn() -> Vec<Ubig>| {
            let recorder = dla_telemetry::Recorder::new();
            let out = {
                let _install = recorder.install();
                f()
            };
            (out, recorder.take().total_cost())
        };
        let (public, public_cost) = capture(&|| p.fold_batch(&accs, &items));
        let (split, split_cost) = capture(&|| p.fold_batch_with_trapdoor(&trapdoor, &accs, &items));
        assert_eq!(public, split);
        assert_eq!(
            public_cost.acc_fold, split_cost.acc_fold,
            "both routes absorb the same logical items"
        );
        assert!(
            split_cost.mont_mul_steps < public_cost.mont_mul_steps,
            "CRT split ({}) must beat the full-width fold ({})",
            split_cost.mont_mul_steps,
            public_cost.mont_mul_steps
        );
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn trapdoor_for_a_different_modulus_is_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (_, trapdoor) = AccumulatorParams::generate_with_trapdoor(128, &mut rng);
        let other = params();
        let _ =
            other.fold_batch_with_trapdoor(&trapdoor, &[other.start().clone()], &[b"x".as_slice()]);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn checkpoint_chain_rejects_out_of_order_seal() {
        let p = params();
        let mut chain = CheckpointChain::new();
        chain.seal(2, 1, p.accumulate([b"x".as_slice()]));
        chain.seal(2, 1, p.accumulate([b"y".as_slice()]));
    }
}
