//! Shamir secret sharing over a big prime field `Z_q` (arbitrary
//! [`Ubig`] modulus).
//!
//! The fast [`crate::shamir`] module works over the fixed 61-bit field
//! and serves the secure-sum protocol. This module shares *group
//! exponents* (e.g. Schnorr secret keys, Feldman-VSS secrets) whose
//! modulus is the several-hundred-bit subgroup order `q` — used by the
//! threshold-signature dealer and by the classical zero-disclosure
//! baseline protocols in `dla-mpc`.

use crate::CryptoError;
use dla_bigint::modular::{modinv, modmul, modsub};
use dla_bigint::Ubig;
use rand::Rng;

/// A share `(x, f(x))` over `Z_q`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BigShare {
    /// Public evaluation point (nonzero mod q).
    pub x: Ubig,
    /// Secret evaluation `f(x) mod q`.
    pub y: Ubig,
}

/// A dealer polynomial over `Z_q` with `f(0) = secret`.
#[derive(Clone, Debug)]
pub struct BigPolynomial {
    modulus: Ubig,
    coeffs: Vec<Ubig>,
}

impl BigPolynomial {
    /// Samples a degree-(k−1) polynomial hiding `secret` mod `q`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or `q < 2`.
    pub fn random<R: Rng + ?Sized>(secret: &Ubig, k: usize, q: &Ubig, rng: &mut R) -> Self {
        assert!(k >= 1, "threshold k must be at least 1");
        assert!(*q >= Ubig::two(), "modulus must be at least 2");
        let mut coeffs = Vec::with_capacity(k);
        coeffs.push(secret % q);
        for _ in 1..k {
            coeffs.push(Ubig::random_below(rng, q));
        }
        BigPolynomial {
            modulus: q.clone(),
            coeffs,
        }
    }

    /// The hidden secret `f(0)`.
    #[must_use]
    pub fn secret(&self) -> &Ubig {
        &self.coeffs[0]
    }

    /// The coefficients `f₀ … f_{k−1}` (Feldman VSS commits to these).
    #[must_use]
    pub fn coefficients(&self) -> &[Ubig] {
        &self.coeffs
    }

    /// Evaluates `f(x) mod q` by Horner's rule.
    #[must_use]
    pub fn eval(&self, x: &Ubig) -> Ubig {
        dla_telemetry::record(dla_telemetry::CostKind::ShamirEval, 1);
        let q = &self.modulus;
        self.coeffs
            .iter()
            .rev()
            .fold(Ubig::zero(), |acc, c| (&modmul(&acc, x, q) + c) % q)
    }

    /// Shares at canonical points `x = 1 … n`.
    #[must_use]
    pub fn shares(&self, n: usize) -> Vec<BigShare> {
        (1..=n as u64)
            .map(|i| {
                let x = Ubig::from_u64(i);
                BigShare {
                    y: self.eval(&x),
                    x,
                }
            })
            .collect()
    }
}

/// Lagrange-interpolates `f(0)` from shares over `Z_q`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] on an empty share list or
/// duplicate evaluation points.
pub fn reconstruct(shares: &[BigShare], q: &Ubig) -> Result<Ubig, CryptoError> {
    if shares.is_empty() {
        return Err(CryptoError::InvalidParameter("no shares"));
    }
    for (i, a) in shares.iter().enumerate() {
        for b in &shares[i + 1..] {
            if a.x == b.x {
                return Err(CryptoError::InvalidParameter("duplicate share x"));
            }
        }
    }
    let mut acc = Ubig::zero();
    for (i, si) in shares.iter().enumerate() {
        let mut num = Ubig::one();
        let mut den = Ubig::one();
        for (j, sj) in shares.iter().enumerate() {
            if i == j {
                continue;
            }
            num = modmul(&num, &modsub(&Ubig::zero(), &(&sj.x % q), q), q);
            den = modmul(&den, &modsub(&(&si.x % q), &(&sj.x % q), q), q);
        }
        let inv = modinv(&den, q).ok_or(CryptoError::InvalidParameter(
            "degenerate evaluation points",
        ))?;
        acc = (&acc + &modmul(&si.y, &modmul(&num, &inv, q), q)) % q;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::SchnorrGroup;
    use rand::SeedableRng;

    fn q() -> Ubig {
        SchnorrGroup::fixed_256().order().clone()
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(202)
    }

    #[test]
    fn any_k_shares_reconstruct() {
        let q = q();
        let mut rng = rng();
        let secret = Ubig::random_below(&mut rng, &q);
        let poly = BigPolynomial::random(&secret, 3, &q, &mut rng);
        let shares = poly.shares(6);
        for subset in [[0usize, 1, 2], [3, 4, 5], [0, 2, 5]] {
            let picked: Vec<BigShare> = subset.iter().map(|&i| shares[i].clone()).collect();
            assert_eq!(reconstruct(&picked, &q).unwrap(), secret);
        }
    }

    #[test]
    fn linearity_enables_share_addition() {
        let q = q();
        let mut rng = rng();
        let pa = BigPolynomial::random(&Ubig::from_u64(1000), 2, &q, &mut rng);
        let pb = BigPolynomial::random(&Ubig::from_u64(337), 2, &q, &mut rng);
        let summed: Vec<BigShare> = (1..=3u64)
            .map(|i| {
                let x = Ubig::from_u64(i);
                BigShare {
                    y: (&pa.eval(&x) + &pb.eval(&x)) % &q,
                    x,
                }
            })
            .collect();
        assert_eq!(reconstruct(&summed[..2], &q).unwrap(), Ubig::from_u64(1337));
    }

    #[test]
    fn rejects_bad_inputs() {
        let q = q();
        assert!(reconstruct(&[], &q).is_err());
        let s = BigShare {
            x: Ubig::one(),
            y: Ubig::two(),
        };
        assert!(reconstruct(&[s.clone(), s], &q).is_err());
    }

    #[test]
    fn secret_is_reduced_mod_q() {
        let q = q();
        let mut rng = rng();
        let big_secret = &q + &Ubig::from_u64(5);
        let poly = BigPolynomial::random(&big_secret, 2, &q, &mut rng);
        assert_eq!(poly.secret(), &Ubig::from_u64(5));
    }

    #[test]
    fn coefficients_exposed_for_vss() {
        let q = q();
        let mut rng = rng();
        let poly = BigPolynomial::random(&Ubig::from_u64(9), 4, &q, &mut rng);
        assert_eq!(poly.coefficients().len(), 4);
        assert_eq!(poly.coefficients()[0], Ubig::from_u64(9));
    }

    #[test]
    #[should_panic(expected = "threshold k")]
    fn zero_threshold_panics() {
        let mut rng = rng();
        let _ = BigPolynomial::random(&Ubig::one(), 0, &Ubig::from_u64(17), &mut rng);
    }
}
