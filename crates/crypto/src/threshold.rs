//! (k, n) threshold Schnorr signatures (paper §2: "DLA nodes use secure
//! multiparty computations, **threshold signature** and distributed
//! majority agreement to provide trusted and reliable auditing").
//!
//! A dealer Shamir-shares the signing exponent `x` over `Z_q` among the
//! `n` DLA nodes. Any `k` nodes jointly produce an ordinary Schnorr
//! signature — no single node (and no coalition below `k`) can sign an
//! audit result alone, which is exactly the paper's "no single node can
//! misuse log information" requirement applied to result attestation.
//!
//! Protocol (dealer-assisted keygen, standard two-round signing):
//! 1. each participating node `i` samples a nonce `k_i` and publishes
//!    `r_i = g^{k_i}`;
//! 2. everyone computes `r = Π r_i`, the challenge `e = H(r ‖ m ‖ y)`,
//!    and node `i` responds `s_i = k_i + λ_i·x_i·e (mod q)` where `λ_i`
//!    is the Lagrange coefficient of the signing subset;
//! 3. `s = Σ s_i (mod q)` and `(e, s)` verifies under the *group* public
//!    key with the plain [`crate::schnorr::verify`].

use crate::schnorr::{SchnorrGroup, SchnorrKeyPair, SchnorrPublicKey, Signature};
use crate::CryptoError;
use dla_bigint::modular::{modinv, modmul, modsub};
use dla_bigint::Ubig;
use rand::Rng;
use std::fmt;

/// One node's share of the group signing key.
#[derive(Clone)]
pub struct KeyShare {
    /// Public, distinct, nonzero evaluation point.
    pub index: u64,
    /// Secret polynomial evaluation `f(index) mod q`.
    share: Ubig,
}

impl fmt::Debug for KeyShare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyShare(index: {})", self.index)
    }
}

/// The dealer's output: the group public key plus one [`KeyShare`] per
/// node.
#[derive(Debug, Clone)]
pub struct ThresholdKey {
    group: SchnorrGroup,
    threshold: usize,
    public: SchnorrPublicKey,
    shares: Vec<KeyShare>,
}

impl ThresholdKey {
    /// Deals a fresh (k, n) threshold key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] unless
    /// `1 ≤ k ≤ n`.
    pub fn deal<R: Rng + ?Sized>(
        group: &SchnorrGroup,
        k: usize,
        n: usize,
        rng: &mut R,
    ) -> Result<Self, CryptoError> {
        if k == 0 || n == 0 || k > n {
            return Err(CryptoError::InvalidParameter("need 1 <= k <= n"));
        }
        let master = SchnorrKeyPair::generate(group, rng);
        let q = group.order();
        // Random degree-(k-1) polynomial over Z_q with f(0) = x.
        let mut coeffs = Vec::with_capacity(k);
        coeffs.push(master.secret().clone());
        for _ in 1..k {
            coeffs.push(Ubig::random_below(rng, q));
        }
        let shares = (1..=n as u64)
            .map(|index| {
                let x = Ubig::from_u64(index);
                // Horner evaluation mod q.
                let y = coeffs
                    .iter()
                    .rev()
                    .fold(Ubig::zero(), |acc, c| (&modmul(&acc, &x, q) + c) % q);
                KeyShare { index, share: y }
            })
            .collect();
        Ok(ThresholdKey {
            group: group.clone(),
            threshold: k,
            public: master.public().clone(),
            shares,
        })
    }

    /// The group public key the combined signatures verify under.
    #[must_use]
    pub fn public(&self) -> &SchnorrPublicKey {
        &self.public
    }

    /// The threshold `k`.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The per-node shares (dealer hands these out, one per node).
    #[must_use]
    pub fn shares(&self) -> &[KeyShare] {
        &self.shares
    }

    /// The group.
    #[must_use]
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }
}

/// Round-1 output of one signer: the nonce commitment `r_i = g^{k_i}`
/// (public) and the nonce itself (kept by the signer).
#[derive(Debug, Clone)]
pub struct NonceCommitment {
    /// Signer's share index.
    pub index: u64,
    /// Public commitment `g^{k_i} mod p`.
    pub r: Ubig,
}

/// A signer's in-flight signing session (round-1 secret state).
pub struct SigningSession {
    share: KeyShare,
    nonce: Ubig,
    commitment: NonceCommitment,
}

impl fmt::Debug for SigningSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SigningSession(index: {})", self.share.index)
    }
}

impl SigningSession {
    /// Round 1: commit to a fresh nonce.
    pub fn start<R: Rng + ?Sized>(group: &SchnorrGroup, share: &KeyShare, rng: &mut R) -> Self {
        let nonce = group.random_exponent(rng);
        let commitment = NonceCommitment {
            index: share.index,
            r: group.pow_g(&nonce),
        };
        SigningSession {
            share: share.clone(),
            nonce,
            commitment,
        }
    }

    /// The public round-1 commitment to broadcast.
    #[must_use]
    pub fn commitment(&self) -> &NonceCommitment {
        &self.commitment
    }

    /// Round 2: produce the partial response `s_i` given every signer's
    /// commitment and the message.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] if this signer's index
    /// is missing from `signers` or indices repeat.
    pub fn respond(
        self,
        group: &SchnorrGroup,
        public: &SchnorrPublicKey,
        signers: &[NonceCommitment],
        message: &[u8],
    ) -> Result<PartialSignature, CryptoError> {
        let indices: Vec<u64> = signers.iter().map(|c| c.index).collect();
        let mut dedup = indices.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() != indices.len() {
            return Err(CryptoError::InvalidParameter("duplicate signer index"));
        }
        if !indices.contains(&self.share.index) {
            return Err(CryptoError::InvalidParameter("signer not in the subset"));
        }
        let q = group.order();
        let e = combined_challenge(group, public, signers, message);
        let lambda = lagrange_at_zero(&indices, self.share.index, q)?;
        let s_i = (&self.nonce + &modmul(&modmul(&lambda, &self.share.share, q), &e, q)) % q;
        Ok(PartialSignature {
            index: self.share.index,
            s: s_i,
        })
    }
}

/// One signer's round-2 response.
#[derive(Debug, Clone)]
pub struct PartialSignature {
    /// Signer's share index.
    pub index: u64,
    /// Response scalar `s_i`.
    pub s: Ubig,
}

/// Computes the joint challenge `e = H(Π r_i ‖ m ‖ y)`.
fn combined_challenge(
    group: &SchnorrGroup,
    public: &SchnorrPublicKey,
    signers: &[NonceCommitment],
    message: &[u8],
) -> Ubig {
    let p = group.modulus();
    let r = signers
        .iter()
        .fold(Ubig::one(), |acc, c| modmul(&acc, &c.r, p));
    group.challenge(&[
        b"dla-schnorr",
        &r.to_bytes_be(),
        message,
        &public.to_bytes(),
    ])
}

/// Combines round-2 responses into a standard Schnorr [`Signature`].
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] if the responses do not
/// match the commitments one-to-one.
pub fn combine(
    group: &SchnorrGroup,
    public: &SchnorrPublicKey,
    signers: &[NonceCommitment],
    partials: &[PartialSignature],
    message: &[u8],
) -> Result<Signature, CryptoError> {
    if signers.len() != partials.len() {
        return Err(CryptoError::InvalidParameter(
            "commitment/response count mismatch",
        ));
    }
    let q = group.order();
    let e = combined_challenge(group, public, signers, message);
    let s = partials
        .iter()
        .fold(Ubig::zero(), |acc, p| (&acc + &p.s) % q);
    Ok(Signature { e, s })
}

/// Lagrange coefficient `λ_i(0)` for signer `i` within `indices`, mod q.
fn lagrange_at_zero(indices: &[u64], i: u64, q: &Ubig) -> Result<Ubig, CryptoError> {
    let xi = Ubig::from_u64(i) % q;
    let mut num = Ubig::one();
    let mut den = Ubig::one();
    for &j in indices {
        if j == i {
            continue;
        }
        let xj = Ubig::from_u64(j) % q;
        // num *= (0 - xj) = q - xj ; den *= (xi - xj)
        num = modmul(&num, &modsub(&Ubig::zero(), &xj, q), q);
        den = modmul(&den, &modsub(&xi, &xj, q), q);
    }
    let inv = modinv(&den, q).ok_or(CryptoError::InvalidParameter(
        "degenerate signer subset (repeated indices mod q)",
    ))?;
    Ok(modmul(&num, &inv, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::verify;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(88)
    }

    fn sign_with(
        tk: &ThresholdKey,
        subset: &[usize],
        message: &[u8],
        rng: &mut impl Rng,
    ) -> Signature {
        let group = tk.group().clone();
        let sessions: Vec<SigningSession> = subset
            .iter()
            .map(|&i| SigningSession::start(&group, &tk.shares()[i], rng))
            .collect();
        let commitments: Vec<NonceCommitment> =
            sessions.iter().map(|s| s.commitment().clone()).collect();
        let partials: Vec<PartialSignature> = sessions
            .into_iter()
            .map(|s| {
                s.respond(&group, tk.public(), &commitments, message)
                    .unwrap()
            })
            .collect();
        combine(&group, tk.public(), &commitments, &partials, message).unwrap()
    }

    #[test]
    fn k_of_n_signature_verifies() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let tk = ThresholdKey::deal(&group, 3, 5, &mut rng).unwrap();
        let sig = sign_with(&tk, &[0, 2, 4], b"audit result: 42", &mut rng);
        assert!(verify(&group, tk.public(), b"audit result: 42", &sig));
    }

    #[test]
    fn different_subsets_all_verify() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let tk = ThresholdKey::deal(&group, 2, 4, &mut rng).unwrap();
        for subset in [[0usize, 1], [1, 2], [2, 3], [0, 3]] {
            let sig = sign_with(&tk, &subset, b"m", &mut rng);
            assert!(verify(&group, tk.public(), b"m", &sig), "{subset:?}");
        }
    }

    #[test]
    fn fewer_than_k_signers_fail() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let tk = ThresholdKey::deal(&group, 3, 5, &mut rng).unwrap();
        // Two signers using 2-party Lagrange coefficients reconstruct the
        // wrong exponent for a degree-2 polynomial.
        let sig = sign_with(&tk, &[0, 1], b"m", &mut rng);
        assert!(!verify(&group, tk.public(), b"m", &sig));
    }

    #[test]
    fn signature_bound_to_message() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let tk = ThresholdKey::deal(&group, 2, 3, &mut rng).unwrap();
        let sig = sign_with(&tk, &[0, 1], b"original", &mut rng);
        assert!(!verify(&group, tk.public(), b"tampered", &sig));
    }

    #[test]
    fn deal_validates_parameters() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        assert!(ThresholdKey::deal(&group, 0, 3, &mut rng).is_err());
        assert!(ThresholdKey::deal(&group, 4, 3, &mut rng).is_err());
        assert!(ThresholdKey::deal(&group, 3, 0, &mut rng).is_err());
        assert!(ThresholdKey::deal(&group, 1, 1, &mut rng).is_ok());
    }

    #[test]
    fn respond_rejects_foreign_subset() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let tk = ThresholdKey::deal(&group, 2, 3, &mut rng).unwrap();
        let session = SigningSession::start(&group, &tk.shares()[0], &mut rng);
        let other = SigningSession::start(&group, &tk.shares()[1], &mut rng);
        // Subset without this signer's own index.
        let foreign = vec![other.commitment().clone()];
        assert!(session
            .respond(&group, tk.public(), &foreign, b"m")
            .is_err());
    }

    #[test]
    fn respond_rejects_duplicate_indices() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let tk = ThresholdKey::deal(&group, 2, 3, &mut rng).unwrap();
        let session = SigningSession::start(&group, &tk.shares()[0], &mut rng);
        let c = session.commitment().clone();
        let dup = vec![c.clone(), c];
        assert!(session.respond(&group, tk.public(), &dup, b"m").is_err());
    }

    #[test]
    fn one_of_one_threshold_is_plain_schnorr() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let tk = ThresholdKey::deal(&group, 1, 1, &mut rng).unwrap();
        let sig = sign_with(&tk, &[0], b"solo", &mut rng);
        assert!(verify(&group, tk.public(), b"solo", &sig));
    }

    #[test]
    fn key_share_debug_hides_secret() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let tk = ThresholdKey::deal(&group, 2, 3, &mut rng).unwrap();
        let dbg = format!("{:?}", tk.shares()[0]);
        assert!(!dbg.contains(&tk.shares()[0].share.to_hex()));
    }
}
