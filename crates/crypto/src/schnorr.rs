//! Schnorr signatures over a safe-prime group.
//!
//! The paper's DLA cluster relies on tickets ("a digital signature or
//! Kerberos like ticket", §4), a credential authority granting
//! logging/auditing tokens (§4.2), and "threshold signature and
//! distributed majority agreement" (§2). All of these are built here on
//! Schnorr signatures in the order-`q` subgroup of `Z_p^*`, `p = 2q+1`
//! the same safe primes the commutative cipher uses — so the whole
//! system needs exactly one algebraic substrate.

use crate::sha256;
use dla_bigint::modular::modmul;
use dla_bigint::montgomery::MontgomeryContext;
use dla_bigint::{prime, Ubig};
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// The group `(p, q, g)`: safe prime `p = 2q + 1` and a generator `g`
/// of the order-`q` quadratic-residue subgroup.
#[derive(Clone)]
pub struct SchnorrGroup {
    p: Arc<Ubig>,
    q: Arc<Ubig>,
    g: Ubig,
    ctx: Arc<MontgomeryContext>,
}

impl PartialEq for SchnorrGroup {
    fn eq(&self, other: &Self) -> bool {
        self.p == other.p && self.g == other.g
    }
}

impl Eq for SchnorrGroup {}

impl fmt::Debug for SchnorrGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SchnorrGroup({} bits)", self.p.bit_len())
    }
}

impl SchnorrGroup {
    /// Generates a fresh group over a random `bits`-bit safe prime.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        let (p, q) = prime::gen_safe_prime(bits, rng);
        let g = prime::subgroup_generator(&p, rng);
        Self::from_parts(p, q, g)
    }

    fn from_parts(p: Ubig, q: Ubig, g: Ubig) -> Self {
        let ctx = MontgomeryContext::new(&p).expect("safe primes are odd");
        SchnorrGroup {
            p: Arc::new(p),
            q: Arc::new(q),
            g,
            ctx: Arc::new(ctx),
        }
    }

    /// The standard 256-bit test group over
    /// [`crate::pohlig_hellman::SAFE_PRIME_256_HEX`] with `g = 4`
    /// (4 = 2² is a quadratic residue ≠ 1, hence has exact order `q`).
    #[must_use]
    pub fn fixed_256() -> Self {
        let p = Ubig::from_hex(crate::pohlig_hellman::SAFE_PRIME_256_HEX).expect("valid constant");
        let q = (&p - &Ubig::one()) >> 1;
        Self::from_parts(p, q, Ubig::from_u64(4))
    }

    /// The prime modulus `p`.
    #[must_use]
    pub fn modulus(&self) -> &Ubig {
        &self.p
    }

    /// The subgroup order `q`.
    #[must_use]
    pub fn order(&self) -> &Ubig {
        &self.q
    }

    /// The generator `g`.
    #[must_use]
    pub fn generator(&self) -> &Ubig {
        &self.g
    }

    /// `g^e mod p` (cached Montgomery context).
    #[must_use]
    pub fn pow_g(&self, e: &Ubig) -> Ubig {
        self.ctx.modexp(&self.g, e)
    }

    /// `base^e mod p` (cached Montgomery context).
    #[must_use]
    pub fn pow(&self, base: &Ubig, e: &Ubig) -> Ubig {
        self.ctx.modexp(base, e)
    }

    /// Samples a uniform exponent in `[1, q)`.
    pub fn random_exponent<R: Rng + ?Sized>(&self, rng: &mut R) -> Ubig {
        Ubig::random_range(rng, &Ubig::one(), &self.q)
    }

    /// Hashes arbitrary parts into a challenge in `[0, q)`.
    #[must_use]
    pub fn challenge(&self, parts: &[&[u8]]) -> Ubig {
        let d = sha256::digest_parts(parts);
        // Extend to 512 bits of hash output so the mod-q bias is negligible.
        let d2 = sha256::digest_parts(&[b"dla-challenge-ext", &d]);
        let mut wide = Vec::with_capacity(64);
        wide.extend_from_slice(&d);
        wide.extend_from_slice(&d2);
        &Ubig::from_bytes_be(&wide) % self.q.as_ref()
    }
}

/// A Schnorr secret/public key pair.
#[derive(Clone)]
pub struct SchnorrKeyPair {
    group: SchnorrGroup,
    x: Ubig,
    public: SchnorrPublicKey,
}

impl fmt::Debug for SchnorrKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SchnorrKeyPair(public: {:?})", self.public)
    }
}

/// A Schnorr public key `y = g^x mod p`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SchnorrPublicKey {
    y: Ubig,
}

impl fmt::Debug for SchnorrPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.y.to_hex();
        write!(f, "SchnorrPublicKey({}…)", &hex[..hex.len().min(12)])
    }
}

impl SchnorrPublicKey {
    /// The group element `y`.
    #[must_use]
    pub fn element(&self) -> &Ubig {
        &self.y
    }

    /// Canonical byte encoding (big-endian `y`).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.y.to_bytes_be()
    }

    /// Constructs a public key from a group element.
    #[must_use]
    pub fn from_element(y: Ubig) -> Self {
        SchnorrPublicKey { y }
    }
}

/// A Schnorr signature `(e, s)` with
/// `e = H(g^k ‖ m ‖ y)` and `s = k + x·e (mod q)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    /// Challenge scalar.
    pub e: Ubig,
    /// Response scalar.
    pub s: Ubig,
}

impl Signature {
    /// Canonical byte encoding, length-prefixed parts.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let eb = self.e.to_bytes_be();
        let sb = self.s.to_bytes_be();
        let mut out = Vec::with_capacity(eb.len() + sb.len() + 16);
        out.extend_from_slice(&(eb.len() as u64).to_be_bytes());
        out.extend_from_slice(&eb);
        out.extend_from_slice(&(sb.len() as u64).to_be_bytes());
        out.extend_from_slice(&sb);
        out
    }
}

impl SchnorrKeyPair {
    /// Generates a fresh key pair.
    pub fn generate<R: Rng + ?Sized>(group: &SchnorrGroup, rng: &mut R) -> Self {
        let x = group.random_exponent(rng);
        Self::from_secret(group, x)
    }

    /// Derives the key pair from a given secret exponent.
    #[must_use]
    pub fn from_secret(group: &SchnorrGroup, x: Ubig) -> Self {
        let y = group.pow_g(&x);
        SchnorrKeyPair {
            group: group.clone(),
            x,
            public: SchnorrPublicKey { y },
        }
    }

    /// The public half.
    #[must_use]
    pub fn public(&self) -> &SchnorrPublicKey {
        &self.public
    }

    /// The group.
    #[must_use]
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// The secret exponent (used by the threshold dealer; handle with
    /// care).
    #[must_use]
    pub fn secret(&self) -> &Ubig {
        &self.x
    }

    /// Signs a message.
    pub fn sign<R: Rng + ?Sized>(&self, message: &[u8], rng: &mut R) -> Signature {
        let k = self.group.random_exponent(rng);
        self.sign_with_nonce(message, &k)
    }

    /// Signs with an explicit nonce — exposed so the evidence-chain
    /// double-use detection (identity recovery from two responses with
    /// the same nonce) can be demonstrated. Never reuse a nonce for two
    /// different messages unless exposure is the point.
    #[must_use]
    pub fn sign_with_nonce(&self, message: &[u8], k: &Ubig) -> Signature {
        let q = self.group.order();
        let r = self.group.pow_g(k);
        let e = self.group.challenge(&[
            b"dla-schnorr",
            &r.to_bytes_be(),
            message,
            &self.public.to_bytes(),
        ]);
        let s = (k + &modmul(&self.x, &e, q)) % q;
        Signature { e, s }
    }
}

/// Verifies a signature: recompute `r' = g^s · y^{−e}` and check the
/// challenge matches.
#[must_use]
pub fn verify(
    group: &SchnorrGroup,
    public: &SchnorrPublicKey,
    message: &[u8],
    sig: &Signature,
) -> bool {
    let (p, q) = (group.modulus(), group.order());
    if sig.e >= *q || sig.s >= *q {
        return false;
    }
    // y^{-e} = y^{q - e} in the order-q subgroup.
    let neg_e = if sig.e.is_zero() {
        Ubig::zero()
    } else {
        q - &sig.e
    };
    let r = modmul(
        &group.pow_g(&sig.s),
        &group.pow(public.element(), &neg_e),
        p,
    );
    let e = group.challenge(&[
        b"dla-schnorr",
        &r.to_bytes_be(),
        message,
        &public.to_bytes(),
    ]);
    e == sig.e
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_bigint::modular::modexp;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn fixed_group_generator_has_order_q() {
        let g = SchnorrGroup::fixed_256();
        assert_eq!(modexp(g.generator(), g.order(), g.modulus()), Ubig::one());
        assert_ne!(*g.generator(), Ubig::one());
    }

    #[test]
    fn sign_verify_round_trip() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let key = SchnorrKeyPair::generate(&group, &mut rng);
        let sig = key.sign(b"audit ticket for u1", &mut rng);
        assert!(verify(&group, key.public(), b"audit ticket for u1", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let key = SchnorrKeyPair::generate(&group, &mut rng);
        let sig = key.sign(b"message A", &mut rng);
        assert!(!verify(&group, key.public(), b"message B", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let key1 = SchnorrKeyPair::generate(&group, &mut rng);
        let key2 = SchnorrKeyPair::generate(&group, &mut rng);
        let sig = key1.sign(b"m", &mut rng);
        assert!(!verify(&group, key2.public(), b"m", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let key = SchnorrKeyPair::generate(&group, &mut rng);
        let sig = key.sign(b"m", &mut rng);
        let bad_s = Signature {
            e: sig.e.clone(),
            s: (&sig.s + &Ubig::one()) % group.order(),
        };
        assert!(!verify(&group, key.public(), b"m", &bad_s));
        let bad_e = Signature {
            e: (&sig.e + &Ubig::one()) % group.order(),
            s: sig.s.clone(),
        };
        assert!(!verify(&group, key.public(), b"m", &bad_e));
    }

    #[test]
    fn verify_rejects_out_of_range_scalars() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let key = SchnorrKeyPair::generate(&group, &mut rng);
        let sig = key.sign(b"m", &mut rng);
        let oversized = Signature {
            e: sig.e.clone() + group.order(),
            s: sig.s,
        };
        assert!(!verify(&group, key.public(), b"m", &oversized));
    }

    #[test]
    fn nonce_reuse_reveals_secret() {
        // The e-coin double-spend equation: two signatures with the same
        // nonce on different messages solve for x.
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let key = SchnorrKeyPair::generate(&group, &mut rng);
        let k = group.random_exponent(&mut rng);
        let s1 = key.sign_with_nonce(b"first", &k);
        let s2 = key.sign_with_nonce(b"second", &k);
        let q = group.order();
        // x = (s1 - s2) / (e1 - e2) mod q
        let ds = dla_bigint::modular::modsub(&s1.s, &s2.s, q);
        let de = dla_bigint::modular::modsub(&s1.e, &s2.e, q);
        let x = modmul(
            &ds,
            &dla_bigint::modular::modinv(&de, q).expect("distinct challenges"),
            q,
        );
        assert_eq!(&x, key.secret());
    }

    #[test]
    fn signatures_are_randomized() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let key = SchnorrKeyPair::generate(&group, &mut rng);
        let s1 = key.sign(b"m", &mut rng);
        let s2 = key.sign(b"m", &mut rng);
        assert_ne!(s1, s2, "fresh nonce per signature");
        assert!(verify(&group, key.public(), b"m", &s1));
        assert!(verify(&group, key.public(), b"m", &s2));
    }

    #[test]
    fn challenge_is_reduced_and_stable() {
        let group = SchnorrGroup::fixed_256();
        let c1 = group.challenge(&[b"a", b"b"]);
        let c2 = group.challenge(&[b"a", b"b"]);
        assert_eq!(c1, c2);
        assert!(c1 < *group.order());
        assert_ne!(c1, group.challenge(&[b"ab", b""]));
    }

    #[test]
    fn signature_bytes_are_injective() {
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng();
        let key = SchnorrKeyPair::generate(&group, &mut rng);
        let s1 = key.sign(b"m1", &mut rng);
        let s2 = key.sign(b"m2", &mut rng);
        assert_ne!(s1.to_bytes(), s2.to_bytes());
    }
}
