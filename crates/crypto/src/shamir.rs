//! (k, n) Shamir secret sharing over `F_{2^61−1}` (paper §3.5).
//!
//! The secure-sum protocol has every node `P_i` pick a random polynomial
//! `f_i` of degree ≤ k−1 with `f_i(0) = a_i` (its secret), send the
//! share `s_ij = f_i(x_j)` to node `P_j`, and let each `P_j` publish
//! `F(x_j) = Σ_i s_ij`. Because polynomial addition is linear, `F` is
//! itself a (k, n) sharing of `Σ_i a_i`, and any `k` published points
//! reconstruct the total **without any individual `a_i` ever leaving
//! its owner in the clear**.
//!
//! This module provides the dealer side ([`SecretPolynomial`]), the
//! evaluation points ([`SharePoints`]) and Lagrange reconstruction
//! ([`reconstruct`], [`reconstruct_at`]).

use crate::CryptoError;
use dla_bigint::F61;
use rand::Rng;

/// A share: the evaluation of a secret polynomial at a public point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Share {
    /// The public evaluation point `x_j` (never zero).
    pub x: F61,
    /// The polynomial value `f(x_j)`.
    pub y: F61,
}

/// The public, distinct, nonzero evaluation points `x_0 … x_{n-1}`
/// "predetermined by P₀ … P_{n−1}" (§3.5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharePoints {
    points: Vec<F61>,
}

impl SharePoints {
    /// The canonical choice `x_j = j + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn canonical(n: usize) -> Self {
        assert!(n > 0, "need at least one share point");
        SharePoints {
            points: (1..=n as u64).map(F61::new).collect(),
        }
    }

    /// Custom points; must be distinct and nonzero.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] on zero or duplicate
    /// points.
    pub fn new(points: Vec<F61>) -> Result<Self, CryptoError> {
        if points.is_empty() {
            return Err(CryptoError::InvalidParameter("no share points"));
        }
        let mut seen = std::collections::HashSet::new();
        for p in &points {
            if p.is_zero() {
                return Err(CryptoError::InvalidParameter("share point is zero"));
            }
            if !seen.insert(p.value()) {
                return Err(CryptoError::InvalidParameter("duplicate share point"));
            }
        }
        Ok(SharePoints { points })
    }

    /// Number of points (the `n` of the (k, n) scheme).
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if there are no points (never true for valid sets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `j`-th point.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn point(&self, j: usize) -> F61 {
        self.points[j]
    }

    /// Iterates over the points.
    pub fn iter(&self) -> impl Iterator<Item = F61> + '_ {
        self.points.iter().copied()
    }
}

/// A dealer-side random polynomial `f(z) = a + f₁z + … + f_{k−1}z^{k−1}`
/// whose free coefficient is the secret.
#[derive(Clone, Debug)]
pub struct SecretPolynomial {
    coeffs: Vec<F61>, // coeffs[0] = secret
}

impl SecretPolynomial {
    /// Samples a degree-`(k−1)` polynomial hiding `secret`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn random<R: Rng + ?Sized>(secret: F61, k: usize, rng: &mut R) -> Self {
        assert!(k >= 1, "threshold k must be at least 1");
        let mut coeffs = Vec::with_capacity(k);
        coeffs.push(secret);
        for _ in 1..k {
            coeffs.push(F61::random(rng));
        }
        SecretPolynomial { coeffs }
    }

    /// The hidden secret `f(0)`.
    #[must_use]
    pub fn secret(&self) -> F61 {
        self.coeffs[0]
    }

    /// The threshold `k` (number of coefficients).
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates `f(x)` by Horner's rule.
    #[must_use]
    pub fn eval(&self, x: F61) -> F61 {
        dla_telemetry::record(dla_telemetry::CostKind::ShamirEval, 1);
        self.coeffs
            .iter()
            .rev()
            .fold(F61::ZERO, |acc, &c| acc * x + c)
    }

    /// Produces the share for point `x`.
    #[must_use]
    pub fn share_at(&self, x: F61) -> Share {
        Share { x, y: self.eval(x) }
    }

    /// Produces all `n` shares for the given points.
    #[must_use]
    pub fn shares(&self, points: &SharePoints) -> Vec<Share> {
        points.iter().map(|x| self.share_at(x)).collect()
    }
}

/// Convenience: deal a (k, n) sharing of `secret` at canonical points.
///
/// # Examples
///
/// ```
/// use dla_bigint::F61;
/// use dla_crypto::shamir;
///
/// let mut rng = rand::thread_rng();
/// let shares = shamir::share(F61::new(42), 3, 5, &mut rng);
/// let secret = shamir::reconstruct(&shares[1..4])?; // any 3 of 5
/// assert_eq!(secret, F61::new(42));
/// # Ok::<(), dla_crypto::CryptoError>(())
/// ```
///
/// # Panics
///
/// Panics if `k == 0`, `n == 0` or `k > n`.
pub fn share<R: Rng + ?Sized>(secret: F61, k: usize, n: usize, rng: &mut R) -> Vec<Share> {
    assert!(k >= 1 && n >= 1 && k <= n, "invalid (k, n) = ({k}, {n})");
    let poly = SecretPolynomial::random(secret, k, rng);
    poly.shares(&SharePoints::canonical(n))
}

/// Lagrange-interpolates the polynomial defined by `shares` at point
/// `at`. Passing exactly `k` shares of a degree-(k−1) polynomial
/// recovers `f(at)` exactly; extra consistent shares are harmless.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] if fewer than one share is
/// given or two shares repeat an `x` coordinate.
pub fn reconstruct_at(shares: &[Share], at: F61) -> Result<F61, CryptoError> {
    if shares.is_empty() {
        return Err(CryptoError::InvalidParameter("no shares"));
    }
    let mut seen = std::collections::HashSet::new();
    for s in shares {
        if !seen.insert(s.x.value()) {
            return Err(CryptoError::InvalidParameter("duplicate share x"));
        }
    }
    let mut acc = F61::ZERO;
    for (i, si) in shares.iter().enumerate() {
        let mut num = F61::ONE;
        let mut den = F61::ONE;
        for (j, sj) in shares.iter().enumerate() {
            if i == j {
                continue;
            }
            num *= at - sj.x;
            den *= si.x - sj.x;
        }
        acc += si.y
            * num
            * den
                .inverse()
                .expect("distinct points => nonzero denominator");
    }
    Ok(acc)
}

/// Recovers the secret `f(0)` from at least `k` shares.
///
/// # Errors
///
/// Propagates [`reconstruct_at`] errors.
pub fn reconstruct(shares: &[Share]) -> Result<F61, CryptoError> {
    reconstruct_at(shares, F61::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(55)
    }

    #[test]
    fn any_k_of_n_reconstruct() {
        let mut rng = rng();
        let secret = F61::new(123_456_789);
        let shares = share(secret, 3, 6, &mut rng);
        // A few k-subsets, including non-contiguous ones.
        for subset in [[0usize, 1, 2], [3, 4, 5], [0, 2, 4], [1, 3, 5]] {
            let picked: Vec<Share> = subset.iter().map(|&i| shares[i]).collect();
            assert_eq!(reconstruct(&picked).unwrap(), secret, "{subset:?}");
        }
    }

    #[test]
    fn more_than_k_consistent_shares_ok() {
        let mut rng = rng();
        let secret = F61::new(7);
        let shares = share(secret, 2, 5, &mut rng);
        assert_eq!(reconstruct(&shares).unwrap(), secret);
    }

    #[test]
    fn k_minus_1_shares_are_uniform() {
        // Information-theoretic hiding: with k-1 shares, every candidate
        // secret is consistent. Check that reconstructing from k-1 shares
        // plus a forged k-th share can hit any target secret.
        let mut rng = rng();
        let secret = F61::new(999);
        let shares = share(secret, 3, 3, &mut rng);
        let partial = &shares[..2];
        for target in [0u64, 1, 424242] {
            // Find the y the adversary would need at x=3 to force `target`:
            // interpolate through (x1,y1),(x2,y2),(0,target) and evaluate at 3.
            let forged_poly = [
                Share {
                    x: F61::ZERO,
                    y: F61::new(target),
                },
                partial[0],
                partial[1],
            ];
            let y3 = reconstruct_at(&forged_poly, F61::new(3)).unwrap();
            let forged = [
                partial[0],
                partial[1],
                Share {
                    x: F61::new(3),
                    y: y3,
                },
            ];
            assert_eq!(reconstruct(&forged).unwrap(), F61::new(target));
        }
    }

    #[test]
    fn linearity_of_sharing() {
        // The crux of the secure-sum protocol: sharewise sums share the sum.
        let mut rng = rng();
        let points = SharePoints::canonical(5);
        let pa = SecretPolynomial::random(F61::new(100), 3, &mut rng);
        let pb = SecretPolynomial::random(F61::new(23), 3, &mut rng);
        let summed: Vec<Share> = points
            .iter()
            .map(|x| Share {
                x,
                y: pa.eval(x) + pb.eval(x),
            })
            .collect();
        assert_eq!(reconstruct(&summed[..3]).unwrap(), F61::new(123));
    }

    #[test]
    fn weighted_linearity() {
        // §3.5 extension: publicly weighted sums α₀a₀ + α₁a₁.
        let mut rng = rng();
        let points = SharePoints::canonical(4);
        let pa = SecretPolynomial::random(F61::new(10), 2, &mut rng);
        let pb = SecretPolynomial::random(F61::new(5), 2, &mut rng);
        let (alpha, beta) = (F61::new(3), F61::new(7));
        let weighted: Vec<Share> = points
            .iter()
            .map(|x| Share {
                x,
                y: alpha * pa.eval(x) + beta * pb.eval(x),
            })
            .collect();
        assert_eq!(reconstruct(&weighted[..2]).unwrap(), F61::new(65));
    }

    #[test]
    fn share_points_validation() {
        assert!(SharePoints::new(vec![]).is_err());
        assert!(SharePoints::new(vec![F61::ZERO]).is_err());
        assert!(SharePoints::new(vec![F61::new(1), F61::new(1)]).is_err());
        let ok = SharePoints::new(vec![F61::new(5), F61::new(9)]).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.point(1), F61::new(9));
    }

    #[test]
    fn reconstruct_rejects_duplicates_and_empty() {
        let s = Share {
            x: F61::new(1),
            y: F61::new(2),
        };
        assert!(reconstruct(&[]).is_err());
        assert!(reconstruct(&[s, s]).is_err());
    }

    #[test]
    fn threshold_one_is_plain_replication() {
        let mut rng = rng();
        let shares = share(F61::new(77), 1, 4, &mut rng);
        for s in &shares {
            assert_eq!(s.y, F61::new(77), "degree-0 polynomial is constant");
        }
    }

    #[test]
    #[should_panic(expected = "invalid (k, n)")]
    fn k_greater_than_n_panics() {
        let mut rng = rng();
        let _ = share(F61::ONE, 5, 3, &mut rng);
    }

    #[test]
    fn polynomial_eval_matches_naive() {
        let mut rng = rng();
        let poly = SecretPolynomial::random(F61::new(3), 4, &mut rng);
        let x = F61::new(17);
        let naive = (0..4).fold(F61::ZERO, |acc, i| acc + poly.coeffs[i] * x.pow(i as u64));
        assert_eq!(poly.eval(x), naive);
    }
}
