//! E-coin style tokens with double-use identity exposure — the
//! cryptographic core of the paper's evidence chain (§4.2, Figs. 6–7).
//!
//! The paper extends "the notion of e-coin to create undeniable
//! evidences even when nodes remain anonymous": a credential authority
//! grants each node a one-time **logging/auditing token**; the node can
//! *spend* the token once (to invite a new DLA member and create an
//! evidence piece) while staying pseudonymous. Spending the same token
//! twice — e.g. `P_y` inviting two different nodes after passing on its
//! invite authority — algebraically reveals the cheater's true identity,
//! which is exactly the deterrent the paper wants ("Doing so will
//! subject P_y to exposure of its true identity and its misconduct").
//!
//! Construction (Okamoto-style double-spend detection):
//! token issuance fixes `C = g^id · h^ρ` (identity commitment) and
//! `W = g^{w₁} · h^{w₂}` (nonce commitment), both CA-signed. A spend on
//! context `ctx` answers the Fiat–Shamir challenge `c = H(ctx ‖ token)`
//! with `s₁ = w₁ + id·c`, `s₂ = w₂ + ρ·c (mod q)`; anyone verifies
//! `g^{s₁} h^{s₂} = W · C^c`. Two spends with distinct challenges solve
//! for `id = (s₁ − s₁′)/(c − c′)`.

use crate::commitment::{Commitment, PedersenParams};
use crate::schnorr::{self, SchnorrGroup, SchnorrKeyPair, SchnorrPublicKey, Signature};
use crate::CryptoError;
use dla_bigint::modular::{modexp, modinv, modmul, modsub};
use dla_bigint::Ubig;
use rand::Rng;
use std::fmt;

/// The credential authority of §4.2: issues one-time tokens binding a
/// node's (secret) identity, and certifies them.
pub struct CredentialAuthority {
    params: PedersenParams,
    key: SchnorrKeyPair,
    next_serial: u64,
}

impl fmt::Debug for CredentialAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CredentialAuthority(next_serial: {})", self.next_serial)
    }
}

/// The public face of a token: serial, commitments, pseudonym key and
/// the CA's certifying signature.
#[derive(Clone, Debug)]
pub struct Token {
    /// Unique serial number assigned by the CA.
    pub serial: u64,
    /// Identity commitment `C = g^id · h^ρ`.
    pub id_commitment: Commitment,
    /// Nonce commitment `W = g^{w₁} · h^{w₂}`.
    pub nonce_commitment: Commitment,
    /// The holder's pseudonymous signing key.
    pub pseudonym: SchnorrPublicKey,
    /// CA signature over (serial ‖ C ‖ W ‖ pseudonym).
    pub ca_signature: Signature,
}

impl Token {
    /// Canonical bytes of the certified content.
    #[must_use]
    pub fn signed_content(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.serial.to_be_bytes());
        out.extend_from_slice(&self.id_commitment.to_bytes());
        out.extend_from_slice(&self.nonce_commitment.to_bytes());
        out.extend_from_slice(&self.pseudonym.to_bytes());
        out
    }

    /// Checks the CA certification ("g(t) =? 1" in Fig. 7).
    #[must_use]
    pub fn verify_certification(&self, group: &SchnorrGroup, ca: &SchnorrPublicKey) -> bool {
        schnorr::verify(group, ca, &self.signed_content(), &self.ca_signature)
    }
}

/// The holder's secret half of a token. One-time use.
pub struct TokenSecret {
    /// Matching public token.
    pub token: Token,
    identity: Ubig,
    rho: Ubig,
    w1: Ubig,
    w2: Ubig,
    /// Pseudonymous signing key pair.
    pub pseudonym_key: SchnorrKeyPair,
}

impl fmt::Debug for TokenSecret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TokenSecret(serial: {})", self.token.serial)
    }
}

/// A token spend: the challenge/response pair proving token ownership,
/// bound to a context (the evidence piece being created).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpendProof {
    /// Serial of the token spent.
    pub serial: u64,
    /// Fiat–Shamir challenge `c = H(ctx ‖ token)`.
    pub challenge: Ubig,
    /// Response `s₁ = w₁ + id·c mod q`.
    pub s1: Ubig,
    /// Response `s₂ = w₂ + ρ·c mod q`.
    pub s2: Ubig,
}

impl CredentialAuthority {
    /// Creates an authority with a fresh signing key.
    pub fn new<R: Rng + ?Sized>(params: &PedersenParams, rng: &mut R) -> Self {
        CredentialAuthority {
            params: params.clone(),
            key: SchnorrKeyPair::generate(params.group(), rng),
            next_serial: 1,
        }
    }

    /// The CA's verification key.
    #[must_use]
    pub fn public(&self) -> &SchnorrPublicKey {
        self.key.public()
    }

    /// The commitment parameters all tokens use.
    #[must_use]
    pub fn params(&self) -> &PedersenParams {
        &self.params
    }

    /// Issues a one-time token to a node whose true identity is the
    /// scalar `identity` (e.g. a hash of its legal name / certificate).
    ///
    /// The CA sees the identity at issuance (it is the registrar) but
    /// the token itself only carries the hiding commitment, so DLA
    /// peers learn nothing — anonymity with accountability.
    pub fn issue<R: Rng + ?Sized>(&mut self, identity: &Ubig, rng: &mut R) -> TokenSecret {
        let group = self.params.group();
        let q = group.order();
        let identity = identity % q;
        let rho = group.random_exponent(rng);
        let w1 = group.random_exponent(rng);
        let w2 = group.random_exponent(rng);
        let id_commitment = self.params.commit_with(&identity, &rho);
        let nonce_commitment = self.params.commit_with(&w1, &w2);
        let pseudonym_key = SchnorrKeyPair::generate(group, rng);
        let serial = self.next_serial;
        self.next_serial += 1;

        let mut token = Token {
            serial,
            id_commitment,
            nonce_commitment,
            pseudonym: pseudonym_key.public().clone(),
            ca_signature: Signature {
                e: Ubig::zero(),
                s: Ubig::zero(),
            },
        };
        token.ca_signature = self.key.sign(&token.signed_content(), rng);

        TokenSecret {
            token,
            identity,
            rho,
            w1,
            w2,
            pseudonym_key,
        }
    }
}

impl TokenSecret {
    /// Spends the token on `context`, producing the proof to embed in an
    /// evidence piece.
    ///
    /// Spending twice (on different contexts) is possible — nothing
    /// *prevents* it — but [`recover_identity`] then exposes the holder.
    #[must_use]
    pub fn spend(&self, params: &PedersenParams, context: &[u8]) -> SpendProof {
        let q = params.group().order();
        let challenge = spend_challenge(params, &self.token, context);
        let s1 = (&self.w1 + &modmul(&self.identity, &challenge, q)) % q;
        let s2 = (&self.rho_term(&challenge, q)) % q;
        SpendProof {
            serial: self.token.serial,
            challenge,
            s1,
            s2,
        }
    }

    fn rho_term(&self, c: &Ubig, q: &Ubig) -> Ubig {
        (&self.w2 + &modmul(&self.rho, c, q)) % q
    }

    /// The identity scalar (test/demonstration accessor).
    #[must_use]
    pub fn identity(&self) -> &Ubig {
        &self.identity
    }
}

/// Derives the Fiat–Shamir spend challenge for a token on a context.
#[must_use]
pub fn spend_challenge(params: &PedersenParams, token: &Token, context: &[u8]) -> Ubig {
    params.group().challenge(&[
        b"dla-token-spend",
        &token.serial.to_be_bytes(),
        &token.signed_content(),
        context,
    ])
}

/// Verifies a spend proof against its token and context:
/// `g^{s₁} · h^{s₂} =? W · C^c`.
#[must_use]
pub fn verify_spend(
    params: &PedersenParams,
    token: &Token,
    context: &[u8],
    proof: &SpendProof,
) -> bool {
    if proof.serial != token.serial {
        return false;
    }
    let expected_c = spend_challenge(params, token, context);
    if proof.challenge != expected_c {
        return false;
    }
    let group = params.group();
    let p = group.modulus();
    let lhs = modmul(
        &group.pow_g(&proof.s1),
        &modexp(params.h(), &proof.s2, p),
        p,
    );
    let rhs = modmul(
        token.nonce_commitment.element(),
        &modexp(token.id_commitment.element(), &proof.challenge, p),
        p,
    );
    lhs == rhs
}

/// Recovers the true identity from two spends of the *same* token on
/// different contexts: `id = (s₁ − s₁′) / (c − c′) mod q`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] if the proofs are not two
/// distinct spends of one token.
pub fn recover_identity(
    params: &PedersenParams,
    a: &SpendProof,
    b: &SpendProof,
) -> Result<Ubig, CryptoError> {
    if a.serial != b.serial {
        return Err(CryptoError::InvalidParameter(
            "proofs spend different tokens",
        ));
    }
    if a.challenge == b.challenge {
        return Err(CryptoError::InvalidParameter(
            "identical challenges: same spend presented twice",
        ));
    }
    let q = params.group().order();
    let ds = modsub(&(&a.s1 % q), &(&b.s1 % q), q);
    let dc = modsub(&(&a.challenge % q), &(&b.challenge % q), q);
    let inv = modinv(&dc, q).ok_or(CryptoError::InvalidParameter(
        "challenge difference not invertible",
    ))?;
    Ok(modmul(&ds, &inv, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (PedersenParams, CredentialAuthority, rand::rngs::StdRng) {
        let params = PedersenParams::derive(&SchnorrGroup::fixed_256());
        let mut rng = rand::rngs::StdRng::seed_from_u64(111);
        let ca = CredentialAuthority::new(&params, &mut rng);
        (params, ca, rng)
    }

    #[test]
    fn issued_token_is_certified() {
        let (params, mut ca, mut rng) = setup();
        let secret = ca.issue(&Ubig::from_u64(9001), &mut rng);
        assert!(secret
            .token
            .verify_certification(params.group(), ca.public()));
    }

    #[test]
    fn forged_token_fails_certification() {
        let (params, mut ca, mut rng) = setup();
        let secret = ca.issue(&Ubig::from_u64(9001), &mut rng);
        let mut forged = secret.token.clone();
        forged.serial += 1;
        assert!(!forged.verify_certification(params.group(), ca.public()));
    }

    #[test]
    fn spend_verifies_on_its_context() {
        let (params, mut ca, mut rng) = setup();
        let secret = ca.issue(&Ubig::from_u64(42), &mut rng);
        let proof = secret.spend(&params, b"invite node P_x into cluster 7");
        assert!(verify_spend(
            &params,
            &secret.token,
            b"invite node P_x into cluster 7",
            &proof
        ));
    }

    #[test]
    fn spend_bound_to_context() {
        let (params, mut ca, mut rng) = setup();
        let secret = ca.issue(&Ubig::from_u64(42), &mut rng);
        let proof = secret.spend(&params, b"context A");
        assert!(!verify_spend(&params, &secret.token, b"context B", &proof));
    }

    #[test]
    fn spend_bound_to_token() {
        let (params, mut ca, mut rng) = setup();
        let s1 = ca.issue(&Ubig::from_u64(1), &mut rng);
        let s2 = ca.issue(&Ubig::from_u64(2), &mut rng);
        let proof = s1.spend(&params, b"ctx");
        assert!(!verify_spend(&params, &s2.token, b"ctx", &proof));
    }

    #[test]
    fn tampered_response_rejected() {
        let (params, mut ca, mut rng) = setup();
        let secret = ca.issue(&Ubig::from_u64(42), &mut rng);
        let mut proof = secret.spend(&params, b"ctx");
        proof.s1 = (&proof.s1 + &Ubig::one()) % params.group().order();
        assert!(!verify_spend(&params, &secret.token, b"ctx", &proof));
    }

    #[test]
    fn double_spend_reveals_identity() {
        let (params, mut ca, mut rng) = setup();
        let identity = Ubig::from_u64(0xDEAD_BEEF);
        let secret = ca.issue(&identity, &mut rng);
        let p1 = secret.spend(&params, b"invite alpha");
        let p2 = secret.spend(&params, b"invite beta");
        let recovered = recover_identity(&params, &p1, &p2).unwrap();
        assert_eq!(recovered, identity);
    }

    #[test]
    fn single_spend_does_not_reveal_identity() {
        // The verification equation alone (one spend) is satisfied by the
        // committed values without exposing id: check the proof verifies
        // but recovery demands two distinct spends.
        let (params, mut ca, mut rng) = setup();
        let secret = ca.issue(&Ubig::from_u64(77), &mut rng);
        let p1 = secret.spend(&params, b"only once");
        assert!(recover_identity(&params, &p1, &p1).is_err());
    }

    #[test]
    fn recovery_rejects_mismatched_serials() {
        let (params, mut ca, mut rng) = setup();
        let sa = ca.issue(&Ubig::from_u64(1), &mut rng);
        let sb = ca.issue(&Ubig::from_u64(2), &mut rng);
        let pa = sa.spend(&params, b"x");
        let pb = sb.spend(&params, b"y");
        assert!(recover_identity(&params, &pa, &pb).is_err());
    }

    #[test]
    fn serials_are_unique_and_increasing() {
        let (_, mut ca, mut rng) = setup();
        let t1 = ca.issue(&Ubig::from_u64(1), &mut rng);
        let t2 = ca.issue(&Ubig::from_u64(1), &mut rng);
        assert!(t2.token.serial > t1.token.serial);
    }

    #[test]
    fn tokens_of_same_identity_are_unlinkable() {
        // Fresh rho per token: the identity commitments differ.
        let (_, mut ca, mut rng) = setup();
        let id = Ubig::from_u64(5);
        let t1 = ca.issue(&id, &mut rng);
        let t2 = ca.issue(&id, &mut rng);
        assert_ne!(t1.token.id_commitment, t2.token.id_commitment);
    }
}
