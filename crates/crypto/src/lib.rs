#![deny(rust_2018_idioms)]

//! Cryptographic primitives for confidential distributed auditing.
//!
//! Everything the paper's DLA protocols need, built from scratch on
//! [`dla_bigint`]:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`sha256`] | collision-resistant fingerprints (substrate) |
//! | [`pohlig_hellman`] | commutative encryption, §3 Eq. 6–7 |
//! | [`accumulator`] | Benaloh–de Mare one-way accumulator, §4.1 Eq. 8–9 |
//! | [`shamir`] | (k, n) secret sharing for secure sum, §3.5 |
//! | [`affine`] | randomized mappings for `=_s` / `Max_s` / `Min_s` / `Rank_s`, §3.2–3.3 |
//! | [`schnorr`] | tickets & certificates, §4 |
//! | [`threshold`] | threshold signatures, §2 |
//! | [`commitment`] | Pedersen commitments (evidence substrate) |
//! | [`evidence`] | e-coin tokens with double-use exposure, §4.2 |
//!
//! # Examples
//!
//! ```
//! use dla_crypto::pohlig_hellman::{CommutativeDomain, CommutativeKey, PhKey};
//!
//! // Three parties triple-encrypt an element; any encryption order
//! // yields the same ciphertext (the heart of secure set intersection).
//! let domain = CommutativeDomain::fixed_256();
//! let mut rng = rand::thread_rng();
//! let keys: Vec<PhKey> = (0..3).map(|_| PhKey::generate(&domain, &mut rng)).collect();
//! let m = domain.fingerprint(b"e");
//! let forward = keys.iter().fold(m.clone(), |c, k| k.encrypt(&c));
//! let backward = keys.iter().rev().fold(m, |c, k| k.encrypt(&c));
//! assert_eq!(forward, backward);
//! ```

use std::fmt;

pub mod accumulator;
pub mod affine;
pub mod commitment;
pub mod evidence;
pub mod pohlig_hellman;
pub mod schnorr;
pub mod sha256;
pub mod shamir;
pub mod shamir_big;
pub mod threshold;

/// Errors produced by the cryptographic layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A parameter failed validation (wrong range, not prime, not
    /// coprime, duplicate, …).
    InvalidParameter(&'static str),
    /// A signature or proof failed verification.
    VerificationFailed(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            CryptoError::VerificationFailed(what) => write!(f, "verification failed: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_lowercase_and_informative() {
        let e = CryptoError::InvalidParameter("p is not prime");
        assert_eq!(e.to_string(), "invalid parameter: p is not prime");
        let v = CryptoError::VerificationFailed("bad signature");
        assert_eq!(v.to_string(), "verification failed: bad signature");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
