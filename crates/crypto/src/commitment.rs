//! Pedersen commitments over the Schnorr group.
//!
//! `C = g^m · h^r mod p` with independent generators `g, h` of the
//! order-`q` subgroup. Perfectly hiding (uniform for random `r`) and
//! computationally binding (opening two ways yields `log_g h`).
//!
//! Used by the evidence chain (§4.2): a node's true identity is bound
//! into its logging/auditing token as a commitment that only opens —
//! involuntarily — if the node misuses the token (see
//! [`crate::evidence`]).

use crate::schnorr::SchnorrGroup;
use crate::sha256;
use dla_bigint::modular::{modexp, modmul};
use dla_bigint::Ubig;
use rand::Rng;
use std::fmt;

/// Commitment parameters: the group plus a second generator `h` with
/// unknown discrete log relative to `g` (derived by hashing into the
/// quadratic-residue subgroup — "nothing up my sleeve").
#[derive(Clone, PartialEq, Eq)]
pub struct PedersenParams {
    group: SchnorrGroup,
    h: Ubig,
}

impl fmt::Debug for PedersenParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PedersenParams({:?})", self.group)
    }
}

impl PedersenParams {
    /// Derives parameters deterministically from a group.
    #[must_use]
    pub fn derive(group: &SchnorrGroup) -> Self {
        let p = group.modulus();
        let mut counter = 0u64;
        let h = loop {
            let d = sha256::digest_parts(&[
                b"dla-pedersen-h",
                &p.to_bytes_be(),
                &counter.to_be_bytes(),
            ]);
            let x = &Ubig::from_bytes_be(&d) % p;
            let candidate = modmul(&x, &x, p); // square into the QR subgroup
            if !candidate.is_zero() && !candidate.is_one() && candidate != *group.generator() {
                break candidate;
            }
            counter += 1;
        };
        PedersenParams {
            group: group.clone(),
            h,
        }
    }

    /// The underlying group.
    #[must_use]
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// The second generator `h`.
    #[must_use]
    pub fn h(&self) -> &Ubig {
        &self.h
    }

    /// Commits to `m` with explicit randomness `r` (both mod `q`).
    #[must_use]
    pub fn commit_with(&self, m: &Ubig, r: &Ubig) -> Commitment {
        let p = self.group.modulus();
        let c = modmul(&self.group.pow_g(m), &modexp(&self.h, r, p), p);
        Commitment { c }
    }

    /// Commits to `m` with fresh randomness; returns the commitment and
    /// the opening randomness.
    pub fn commit<R: Rng + ?Sized>(&self, m: &Ubig, rng: &mut R) -> (Commitment, Ubig) {
        let r = self.group.random_exponent(rng);
        (self.commit_with(m, &r), r)
    }

    /// Verifies an opening `(m, r)` of `commitment`.
    #[must_use]
    pub fn verify(&self, commitment: &Commitment, m: &Ubig, r: &Ubig) -> bool {
        self.commit_with(m, r) == *commitment
    }
}

/// A Pedersen commitment value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Commitment {
    c: Ubig,
}

impl fmt::Debug for Commitment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.c.to_hex();
        write!(f, "Commitment({}…)", &hex[..hex.len().min(12)])
    }
}

impl Commitment {
    /// The committed group element.
    #[must_use]
    pub fn element(&self) -> &Ubig {
        &self.c
    }

    /// Canonical byte encoding.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.c.to_bytes_be()
    }

    /// Reconstructs a commitment from a group element.
    #[must_use]
    pub fn from_element(c: Ubig) -> Self {
        Commitment { c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (PedersenParams, rand::rngs::StdRng) {
        (
            PedersenParams::derive(&SchnorrGroup::fixed_256()),
            rand::rngs::StdRng::seed_from_u64(99),
        )
    }

    #[test]
    fn commit_verify_round_trip() {
        let (params, mut rng) = setup();
        let m = Ubig::from_u64(123456);
        let (c, r) = params.commit(&m, &mut rng);
        assert!(params.verify(&c, &m, &r));
    }

    #[test]
    fn wrong_opening_rejected() {
        let (params, mut rng) = setup();
        let m = Ubig::from_u64(123456);
        let (c, r) = params.commit(&m, &mut rng);
        assert!(!params.verify(&c, &Ubig::from_u64(123457), &r));
        assert!(!params.verify(&c, &m, &(&r + &Ubig::one())));
    }

    #[test]
    fn hiding_same_message_different_commitments() {
        let (params, mut rng) = setup();
        let m = Ubig::from_u64(7);
        let (c1, _) = params.commit(&m, &mut rng);
        let (c2, _) = params.commit(&m, &mut rng);
        assert_ne!(c1, c2, "fresh randomness must hide the message");
    }

    #[test]
    fn homomorphic_addition() {
        // C(m1, r1) * C(m2, r2) = C(m1 + m2, r1 + r2)
        let (params, mut rng) = setup();
        let q = params.group().order().clone();
        let p = params.group().modulus().clone();
        let (m1, m2) = (Ubig::from_u64(10), Ubig::from_u64(32));
        let (c1, r1) = params.commit(&m1, &mut rng);
        let (c2, r2) = params.commit(&m2, &mut rng);
        let prod = Commitment::from_element(modmul(c1.element(), c2.element(), &p));
        assert!(params.verify(&prod, &((&m1 + &m2) % &q), &((&r1 + &r2) % &q)));
    }

    #[test]
    fn h_is_in_subgroup_and_independent() {
        let (params, _) = setup();
        let g = params.group();
        assert_eq!(
            modexp(params.h(), g.order(), g.modulus()),
            Ubig::one(),
            "h must lie in the order-q subgroup"
        );
        assert_ne!(params.h(), g.generator());
        assert!(!params.h().is_one());
    }

    #[test]
    fn derive_is_deterministic() {
        let g = SchnorrGroup::fixed_256();
        assert_eq!(PedersenParams::derive(&g), PedersenParams::derive(&g));
    }
}
