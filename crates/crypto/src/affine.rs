//! Randomized transformations for blind-TTP comparison protocols
//! (paper §3.2 "randomized mapping" and §3.3 secure sorting).
//!
//! Two parties (or all n) secretly agree on a transformation; each
//! applies it to its private value and sends only the transformed value
//! to a TTP. The TTP can then compare **equality** (§3.2) or **order**
//! (§3.3) of the transformed values without learning the plaintexts,
//! and reports only the comparison outcome.
//!
//! * [`AffineMasker`] — `W = (aY + b) mod p` with secret `a ≠ 0, b`:
//!   preserves equality, destroys order and magnitude. Used for `=_s`.
//! * [`MonotoneMasker`] — `W = a·Y + b` over plain integers with secret
//!   `a ≥ 1` plus a per-protocol random *jitter* smaller than `a`:
//!   strictly order-preserving, hides magnitudes and gaps. Used for
//!   `Max_s`, `Min_s`, `Rank_s`.

use crate::CryptoError;
use dla_bigint::F61;
use rand::Rng;

/// Equality-preserving random mask `Y ↦ (aY + b) mod p` (§3.2).
///
/// Both parties must construct it from the same shared randomness.
///
/// # Examples
///
/// ```
/// use dla_crypto::affine::AffineMasker;
/// use dla_bigint::F61;
///
/// let mut rng = rand::thread_rng();
/// let mask = AffineMasker::random(&mut rng);
/// let (x, y) = (F61::new(5000), F61::new(5000));
/// assert_eq!(mask.apply(x), mask.apply(y)); // equal stays equal
/// assert_ne!(mask.apply(x), mask.apply(F61::new(5001)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AffineMasker {
    a: F61,
    b: F61,
}

impl std::fmt::Debug for AffineMasker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AffineMasker(secret a, b)")
    }
}

impl AffineMasker {
    /// Samples a random mask (`a ≠ 0 mod p`, as the paper requires).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        AffineMasker {
            a: F61::random_nonzero(rng),
            b: F61::random(rng),
        }
    }

    /// Builds a mask from agreed constants.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] if `a = 0` (the map
    /// would collapse all inputs onto `b`).
    pub fn new(a: F61, b: F61) -> Result<Self, CryptoError> {
        if a.is_zero() {
            return Err(CryptoError::InvalidParameter(
                "affine coefficient a is zero",
            ));
        }
        Ok(AffineMasker { a, b })
    }

    /// Applies the mask: `W = aY + b` in `F61`.
    #[must_use]
    pub fn apply(&self, y: F61) -> F61 {
        self.a * y + self.b
    }

    /// Inverts the mask (the agreeing parties can; the TTP cannot).
    #[must_use]
    pub fn invert(&self, w: F61) -> F61 {
        (w - self.b) * self.a.inverse().expect("a is nonzero by construction")
    }
}

/// Maximum plaintext magnitude accepted by [`MonotoneMasker`] — inputs
/// are audit statistics (counts, volumes), well below this.
pub const MONOTONE_MAX_INPUT: u64 = 1 << 40;

/// Order-preserving random mask `Y ↦ a·Y + b + jitter(Y)` over `u128`
/// (§3.3): the blind TTP ranks masked values; the ranking equals the
/// plaintext ranking.
///
/// The slope `a` is drawn from `[2^20, 2^60)` and the per-value jitter
/// from `[0, a/2)`, keyed by a secret, so equal gaps in the input do
/// not produce equal gaps in the output (the TTP cannot infer
/// differences) while strict monotonicity is preserved
/// (`jitter < a/2 ≤ a` means distinct inputs stay strictly ordered —
/// but equal inputs may map to *different* masked values, which is fine
/// for max/min/rank and is why equality checks use [`AffineMasker`]).
#[derive(Clone)]
pub struct MonotoneMasker {
    a: u128,
    b: u128,
    jitter_key: [u8; 16],
}

impl std::fmt::Debug for MonotoneMasker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MonotoneMasker(secret a, b, jitter)")
    }
}

impl MonotoneMasker {
    /// Samples a random order-preserving mask.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let a = u128::from(rng.gen_range(1u64 << 20..1u64 << 60));
        let b = u128::from(rng.gen::<u64>());
        let mut jitter_key = [0u8; 16];
        rng.fill(&mut jitter_key);
        MonotoneMasker { a, b, jitter_key }
    }

    /// Applies the mask.
    ///
    /// # Panics
    ///
    /// Panics if `y > MONOTONE_MAX_INPUT` (masked values could overflow
    /// the ordering guarantee).
    #[must_use]
    pub fn apply(&self, y: u64) -> u128 {
        assert!(
            y <= MONOTONE_MAX_INPUT,
            "MonotoneMasker input {y} exceeds {MONOTONE_MAX_INPUT}"
        );
        let jitter = self.jitter_for(y);
        self.a * u128::from(y) + self.b + jitter
    }

    /// Serializes the mask for the (authenticated, TTP-invisible)
    /// agreement channel between parties.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(&self.a.to_be_bytes());
        out.extend_from_slice(&self.b.to_be_bytes());
        out.extend_from_slice(&self.jitter_key);
        out
    }

    /// Deserializes a mask previously produced by
    /// [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] on a malformed buffer
    /// or a zero slope.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != 48 {
            return Err(CryptoError::InvalidParameter(
                "monotone mask encoding must be 48 bytes",
            ));
        }
        let a = u128::from_be_bytes(bytes[0..16].try_into().expect("16 bytes"));
        let b = u128::from_be_bytes(bytes[16..32].try_into().expect("16 bytes"));
        if a == 0 {
            return Err(CryptoError::InvalidParameter("monotone slope is zero"));
        }
        let mut jitter_key = [0u8; 16];
        jitter_key.copy_from_slice(&bytes[32..48]);
        Ok(MonotoneMasker { a, b, jitter_key })
    }

    fn jitter_for(&self, y: u64) -> u128 {
        let d = crate::sha256::digest_parts(&[&self.jitter_key, &y.to_be_bytes()]);
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&d[..8]);
        u128::from(u64::from_be_bytes(raw)) % (self.a / 2).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(66)
    }

    #[test]
    fn affine_preserves_equality_exactly() {
        let mut rng = rng();
        let mask = AffineMasker::random(&mut rng);
        for _ in 0..100 {
            let x = F61::random(&mut rng);
            let y = F61::random(&mut rng);
            assert_eq!(mask.apply(x) == mask.apply(y), x == y);
        }
    }

    #[test]
    fn affine_invert_round_trips() {
        let mut rng = rng();
        let mask = AffineMasker::random(&mut rng);
        for _ in 0..100 {
            let x = F61::random(&mut rng);
            assert_eq!(mask.invert(mask.apply(x)), x);
        }
    }

    #[test]
    fn affine_hides_plaintext() {
        // With random (a, b) the masked value is uniform: two different
        // masks of the same plaintext differ (w.h.p.).
        let mut rng = rng();
        let m1 = AffineMasker::random(&mut rng);
        let m2 = AffineMasker::random(&mut rng);
        let x = F61::new(42);
        assert_ne!(m1.apply(x), m2.apply(x));
        assert_ne!(m1.apply(x), x);
    }

    #[test]
    fn affine_rejects_zero_slope() {
        assert!(AffineMasker::new(F61::ZERO, F61::ONE).is_err());
        assert!(AffineMasker::new(F61::ONE, F61::ZERO).is_ok());
    }

    #[test]
    fn monotone_preserves_strict_order() {
        let mut rng = rng();
        for _ in 0..10 {
            let mask = MonotoneMasker::random(&mut rng);
            let mut values: Vec<u64> = (0..50).map(|_| rng.gen_range(0..1u64 << 32)).collect();
            values.sort_unstable();
            values.dedup();
            let masked: Vec<u128> = values.iter().map(|&v| mask.apply(v)).collect();
            for w in masked.windows(2) {
                assert!(w[0] < w[1], "order must be preserved");
            }
        }
    }

    #[test]
    fn monotone_hides_gaps() {
        // Equal input gaps must not produce equal output gaps.
        let mut rng = rng();
        let mask = MonotoneMasker::random(&mut rng);
        let g1 = mask.apply(200) - mask.apply(100);
        let g2 = mask.apply(300) - mask.apply(200);
        assert_ne!(g1, g2, "jitter must break gap equality");
    }

    #[test]
    fn monotone_adjacent_integers_stay_ordered() {
        let mut rng = rng();
        let mask = MonotoneMasker::random(&mut rng);
        for v in 0..1000u64 {
            assert!(mask.apply(v) < mask.apply(v + 1));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn monotone_rejects_oversized_input() {
        let mut rng = rng();
        let mask = MonotoneMasker::random(&mut rng);
        let _ = mask.apply(MONOTONE_MAX_INPUT + 1);
    }

    #[test]
    fn monotone_is_deterministic() {
        let mut rng = rng();
        let mask = MonotoneMasker::random(&mut rng);
        assert_eq!(mask.apply(12345), mask.apply(12345));
    }

    #[test]
    fn monotone_serialization_round_trips() {
        let mut rng = rng();
        let mask = MonotoneMasker::random(&mut rng);
        let restored = MonotoneMasker::from_bytes(&mask.to_bytes()).unwrap();
        for v in [0u64, 1, 99, 1 << 30] {
            assert_eq!(mask.apply(v), restored.apply(v));
        }
        assert!(MonotoneMasker::from_bytes(&[0u8; 10]).is_err());
        assert!(
            MonotoneMasker::from_bytes(&[0u8; 48]).is_err(),
            "zero slope rejected"
        );
    }

    #[test]
    fn debug_output_hides_secrets() {
        let mut rng = rng();
        let a = AffineMasker::random(&mut rng);
        let m = MonotoneMasker::random(&mut rng);
        assert_eq!(format!("{a:?}"), "AffineMasker(secret a, b)");
        assert_eq!(format!("{m:?}"), "MonotoneMasker(secret a, b, jitter)");
    }
}
