//! Commutative encryption (paper §3, Eq. 6–7).
//!
//! A cipher is *commutative* when layered encryptions under different
//! keys can be removed in any order:
//! `E_a(E_b(M)) = E_b(E_a(M))`. The paper builds its secure set
//! intersection/union and equality protocols on exactly this property:
//! each DLA node wraps every travelling set element in its own key, and
//! after a full ring pass, equal plaintexts — and only equal plaintexts —
//! have equal n-fold ciphertexts regardless of encryption order.
//!
//! Two commutative ciphers are provided behind the [`CommutativeKey`]
//! trait:
//!
//! * [`PhKey`] — the Pohlig–Hellman exponentiation cipher the paper
//!   recommends (`C = M^e mod p`, `M = C^d mod p`, `e·d ≡ 1 mod p−1`)
//!   over a safe prime `p = 2q + 1`. Messages are first mapped into the
//!   order-`q` subgroup of quadratic residues (see
//!   [`CommutativeDomain::fingerprint`]) so ciphertexts do not even leak
//!   residuosity.
//! * [`XorKey`] — the XOR one-time-pad style cipher the paper mentions
//!   as the simplest commutative example. It is **not** secure for
//!   repeated use and exists as a baseline and for protocol tests.

use crate::sha256;
use crate::CryptoError;
use dla_bigint::jacobi::jacobi;
use dla_bigint::modular::modinv;
use dla_bigint::montgomery::MontgomeryContext;
use dla_bigint::{prime, Ubig};
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// Which exponentiation algorithm [`CommutativeDomain::pow`] routes
/// through. The default is the fastest path; the others exist so the
/// `exp_crypto_hotpath` ablation can measure each rung of the ladder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExpAlgo {
    /// Division-based schoolbook square-and-multiply (slowest rung).
    Schoolbook,
    /// Montgomery bit-at-a-time square-and-multiply (the pre-windowed
    /// baseline).
    Binary,
    /// Montgomery sliding-window with an odd-powers table on the
    /// generic slice kernel — the previous default, retained as an
    /// ablation rung and differential oracle.
    Windowed,
    /// Sliding-window exponentiation on the fixed-width Montgomery
    /// kernel (fully unrolled 4/8-limb CIOS), with exponents reduced by
    /// the known group order `p − 1 = 2q` first (default).
    #[default]
    Accel,
}

/// Which quadratic-residue test [`CommutativeDomain::encode`] probes
/// pad bytes with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QrTest {
    /// Euler criterion `x^q ≟ 1 (mod p)` — one full exponent-`q`
    /// modexp per probe (ablation baseline).
    Euler,
    /// Binary Jacobi symbol `(x/p) ≟ 1` — O(bits²) word operations,
    /// the same answer at a fraction of the cost (default).
    #[default]
    Jacobi,
}

/// How [`PhKey::encrypt_batch`]/[`PhKey::decrypt_batch`] distribute
/// work over a travelling set.
///
/// Both modes produce **bit-identical** ciphertext vectors (same
/// order, same values) and identical telemetry op totals; `Pooled`
/// only divides the wall-clock across scoped worker threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchMode {
    /// One thread, one shared Montgomery scratch (default;
    /// allocation-free per element).
    #[default]
    Serial,
    /// Scoped worker threads, each with its own scratch; the caller's
    /// telemetry recorder is propagated into every worker
    /// ([`dla_telemetry::Recorder::install`] pattern). Worker-side
    /// costs merge into the same recorder but are not attributed to
    /// the calling thread's innermost scope. Batches smaller than
    /// [`POOLED_MIN_BATCH`] run serially — spawning threads for a
    /// handful of exponentiations costs more than it saves.
    Pooled {
        /// Upper bound on worker threads (clamped to the element
        /// count; `0` and `1` degenerate to serial).
        threads: usize,
    },
}

/// Smallest travelling-set size [`BatchMode::Pooled`] actually fans
/// out for. Below this, thread spawn/join overhead exceeds the whole
/// batch's exponentiation work, so pooled requests degrade to the
/// serial shared-plan path (bit-identical results either way).
pub const POOLED_MIN_BATCH: usize = 32;

/// A precomputed 256-bit safe prime (p = 2q + 1, q prime), verified by
/// the test suite. Used for fast deterministic tests and benches.
pub const SAFE_PRIME_256_HEX: &str =
    "a9eeab19c760f86c872f1c471c52157db42be1aefe645387366720155ee9a6d3";

/// A precomputed 512-bit safe prime, verified by the test suite.
pub const SAFE_PRIME_512_HEX: &str =
    "d44ee432e3b498a302a56b9c3ac65bd13be10b6f1eb58a5990f86654a378253954208985ab6f45682d604624d5da8e9f5257e87a12fe06c053605f7c872d24ab";

/// The shared group parameters of a Pohlig–Hellman commutative cipher:
/// a safe prime `p = 2q + 1` agreed upon by every participant.
///
/// All parties in one protocol run must share the same domain — the
/// commutativity equation `E_{K_a}(E_{K_b}(M)) = E_{K_b}(E_{K_a}(M))`
/// only holds inside one group.
#[derive(Clone)]
pub struct CommutativeDomain {
    p: Arc<Ubig>,
    q: Arc<Ubig>,
    /// Cached Montgomery state for `p` (odd by construction), shared by
    /// every key over this domain.
    ctx: Arc<MontgomeryContext>,
    exp_algo: ExpAlgo,
    qr_test: QrTest,
}

impl PartialEq for CommutativeDomain {
    fn eq(&self, other: &Self) -> bool {
        self.p == other.p
    }
}

impl Eq for CommutativeDomain {}

impl fmt::Debug for CommutativeDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CommutativeDomain({} bits)", self.p.bit_len())
    }
}

impl CommutativeDomain {
    /// Generates a fresh domain from a random safe prime of `bits` bits.
    ///
    /// This is expensive (safe primes are sparse); prefer
    /// [`CommutativeDomain::fixed_256`]/[`fixed_512`](Self::fixed_512)
    /// in tests.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        let (p, q) = prime::gen_safe_prime(bits, rng);
        Self::from_parts(p, q)
    }

    fn from_parts(p: Ubig, q: Ubig) -> Self {
        let ctx = MontgomeryContext::new(&p).expect("safe primes are odd");
        CommutativeDomain {
            p: Arc::new(p),
            q: Arc::new(q),
            ctx: Arc::new(ctx),
            exp_algo: ExpAlgo::default(),
            qr_test: QrTest::default(),
        }
    }

    /// Selects the exponentiation algorithm (ablation knob; defaults to
    /// [`ExpAlgo::Accel`]). All choices compute identical values.
    #[must_use]
    pub fn with_exp_algo(mut self, algo: ExpAlgo) -> Self {
        self.exp_algo = algo;
        self
    }

    /// Selects the quadratic-residue test used by
    /// [`encode`](Self::encode) (ablation knob; defaults to
    /// [`QrTest::Jacobi`]). Both choices accept exactly the same pad
    /// bytes, so encodings are bit-identical either way.
    #[must_use]
    pub fn with_qr_test(mut self, qr: QrTest) -> Self {
        self.qr_test = qr;
        self
    }

    /// The active exponentiation algorithm.
    #[must_use]
    pub fn exp_algo(&self) -> ExpAlgo {
        self.exp_algo
    }

    /// The active quadratic-residue test.
    #[must_use]
    pub fn qr_test(&self) -> QrTest {
        self.qr_test
    }

    /// Builds a domain from a known safe prime.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] if `p` is not a safe
    /// prime (checked probabilistically).
    pub fn from_safe_prime<R: Rng + ?Sized>(p: Ubig, rng: &mut R) -> Result<Self, CryptoError> {
        if !prime::is_prime(&p, rng) {
            return Err(CryptoError::InvalidParameter("p is not prime"));
        }
        let q = (&p - &Ubig::one()) >> 1;
        if !prime::is_prime(&q, rng) {
            return Err(CryptoError::InvalidParameter("(p-1)/2 is not prime"));
        }
        Ok(Self::from_parts(p, q))
    }

    /// The standard 256-bit test domain (see [`SAFE_PRIME_256_HEX`]).
    #[must_use]
    pub fn fixed_256() -> Self {
        let p = Ubig::from_hex(SAFE_PRIME_256_HEX).expect("valid constant");
        let q = (&p - &Ubig::one()) >> 1;
        Self::from_parts(p, q)
    }

    /// The standard 512-bit domain (see [`SAFE_PRIME_512_HEX`]).
    #[must_use]
    pub fn fixed_512() -> Self {
        let p = Ubig::from_hex(SAFE_PRIME_512_HEX).expect("valid constant");
        let q = (&p - &Ubig::one()) >> 1;
        Self::from_parts(p, q)
    }

    /// The prime modulus `p`.
    #[must_use]
    pub fn modulus(&self) -> &Ubig {
        &self.p
    }

    /// The subgroup order `q = (p − 1) / 2`.
    #[must_use]
    pub fn subgroup_order(&self) -> &Ubig {
        &self.q
    }

    /// `base^exp mod p` — the hot operation of every commutative-cipher
    /// protocol. Routed per [`with_exp_algo`](Self::with_exp_algo);
    /// the default goes through the cached Montgomery context's
    /// sliding-window exponentiation.
    #[must_use]
    pub fn pow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        match self.exp_algo {
            ExpAlgo::Schoolbook => dla_bigint::modular::modexp_schoolbook(base, exp, &self.p),
            ExpAlgo::Binary => self.ctx.modexp_binary(base, exp),
            ExpAlgo::Windowed => self.ctx.modexp_generic(base, exp),
            ExpAlgo::Accel => match self.reduce_exp(exp) {
                Some(r) => self.ctx.modexp(base, &r),
                None => self.ctx.modexp(base, exp),
            },
        }
    }

    /// Reduces an exponent by the known group order `p − 1 = 2q`
    /// (`Z_p^*` is cyclic of order `2q`, so `base^e = base^{e mod 2q}`
    /// for every unit). Returns `None` when the exponent is already
    /// below the order — the common case, detected by one comparison.
    /// A non-zero exponent that reduces to zero lands on `2q` instead,
    /// which keeps the non-unit edge case `0^e = 0` intact (reducing it
    /// to an actual zero exponent would flip the answer to `1`).
    fn reduce_exp(&self, exp: &Ubig) -> Option<Ubig> {
        let order = self.p.as_ref() - &Ubig::one();
        if *exp < order {
            return None;
        }
        let r = exp % &order;
        Some(if r.is_zero() { order } else { r })
    }

    /// `base^exp mod p` for every base in `bases`, in order.
    ///
    /// The serial windowed path shares one exponent plan and one
    /// Montgomery scratch across the whole slice
    /// ([`MontgomeryContext::modexp_batch`]); `Pooled` splits the slice
    /// into contiguous chunks across scoped worker threads, each
    /// carrying the caller's telemetry recorder. Results and telemetry
    /// op totals are identical across all modes.
    #[must_use]
    pub fn pow_batch(&self, bases: &[Ubig], exp: &Ubig, mode: BatchMode) -> Vec<Ubig> {
        match mode {
            BatchMode::Serial => self.pow_batch_serial(bases, exp),
            BatchMode::Pooled { threads } => {
                let threads = threads.min(bases.len());
                if threads <= 1 || bases.len() < POOLED_MIN_BATCH {
                    return self.pow_batch_serial(bases, exp);
                }
                let recorder = dla_telemetry::current();
                let chunk = bases.len().div_ceil(threads);
                std::thread::scope(|s| {
                    let handles: Vec<_> = bases
                        .chunks(chunk)
                        .map(|part| {
                            let recorder = recorder.clone();
                            s.spawn(move || {
                                let _guard = recorder.as_ref().map(|r| r.install());
                                self.pow_batch_serial(part, exp)
                            })
                        })
                        .collect();
                    let mut out = Vec::with_capacity(bases.len());
                    for h in handles {
                        out.extend(h.join().expect("pow_batch worker panicked"));
                    }
                    out
                })
            }
        }
    }

    fn pow_batch_serial(&self, bases: &[Ubig], exp: &Ubig) -> Vec<Ubig> {
        match self.exp_algo {
            ExpAlgo::Windowed => self.ctx.modexp_batch_generic(bases, exp),
            ExpAlgo::Accel => {
                let reduced = self.reduce_exp(exp);
                self.ctx
                    .modexp_batch(bases, reduced.as_ref().unwrap_or(exp))
            }
            _ => bases.iter().map(|b| self.pow(b, exp)).collect(),
        }
    }

    /// Whether `x` is a quadratic residue mod `p`, by the configured
    /// [`QrTest`]. For the safe-prime moduli used here the two tests
    /// agree on every input in `1..p`.
    #[must_use]
    pub fn is_quadratic_residue(&self, x: &Ubig) -> bool {
        match self.qr_test {
            QrTest::Euler => self.pow(x, &self.q).is_one(),
            QrTest::Jacobi => jacobi(x, &self.p) == 1,
        }
    }

    /// Maximum byte length [`CommutativeDomain::encode`] accepts for
    /// this domain: the modulus width minus 16 bits of headroom (8 for
    /// the QR-search pad byte, 8 to stay below `p`).
    #[must_use]
    pub fn max_encode_len(&self) -> usize {
        (self.p.bit_len().saturating_sub(16)) / 8
    }

    /// *Invertibly* encodes a short message as a quadratic residue:
    /// `candidate = (m ‖ pad)` for the first pad byte making the value a
    /// QR (probability ½ per try). Unlike [`fingerprint`](Self::fingerprint),
    /// the plaintext is recoverable with [`decode`](Self::decode) after
    /// all encryption layers are removed — which is how Figure 4's
    /// parties "decode the plaintext e by the use of their matched
    /// decoding keys", and how secure set union returns actual items.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] if the message exceeds
    /// [`max_encode_len`](Self::max_encode_len).
    pub fn encode(&self, message: &[u8]) -> Result<Ubig, CryptoError> {
        if message.len() > self.max_encode_len() {
            return Err(CryptoError::InvalidParameter(
                "message too long for group encoding",
            ));
        }
        let base = Ubig::from_bytes_be(message) << 8;
        for pad in 0..=255u64 {
            let candidate = &base + &Ubig::from_u64(pad);
            if candidate.is_zero() || candidate.is_one() {
                continue;
            }
            // QR test: Jacobi symbol by default; the Euler criterion
            // x^q ≟ 1 (mod p) under the ablation knob. Same accepted
            // pad bytes either way, so the encoding is stable.
            if self.is_quadratic_residue(&candidate) {
                return Ok(candidate);
            }
        }
        // 256 consecutive non-residues has probability ~2^-256.
        Err(CryptoError::InvalidParameter(
            "no quadratic-residue padding found",
        ))
    }

    /// Inverts [`encode`](Self::encode): strips the pad byte and
    /// returns the message bytes.
    #[must_use]
    pub fn decode(&self, element: &Ubig) -> Vec<u8> {
        (element >> 8).to_bytes_be()
    }

    /// Maps arbitrary bytes to a group element in the order-`q`
    /// quadratic-residue subgroup: `fingerprint(m) = H(m)² mod p`.
    ///
    /// Distinct inputs map to distinct elements except with negligible
    /// probability (a SHA-256 collision or a `±` pair collision in the
    /// squaring, both ≪ 2^-100 for 256-bit-plus moduli) — this realizes
    /// the paper's Eq. 7 requirement.
    #[must_use]
    pub fn fingerprint(&self, message: &[u8]) -> Ubig {
        let mut counter = 0u64;
        loop {
            let h = sha256::digest_parts(&[message, &counter.to_be_bytes()]);
            let x = &Ubig::from_bytes_be(&h) % self.p.as_ref();
            let fp = self.ctx.modmul(&x, &x);
            // The subgroup's identity (1) and 0 would break bijectivity
            // guarantees; astronomically unlikely, but cheap to exclude.
            if !fp.is_zero() && !fp.is_one() {
                return fp;
            }
            counter += 1;
        }
    }
}

/// A commutative encryption key: layered encryptions under different
/// keys of the same scheme commute, and each layer is removable by its
/// own matching decryption.
pub trait CommutativeKey {
    /// Encrypts one group element.
    fn encrypt(&self, m: &Ubig) -> Ubig;
    /// Removes this key's encryption layer.
    fn decrypt(&self, c: &Ubig) -> Ubig;
}

/// A Pohlig–Hellman key pair `(e, d)` with `e·d ≡ 1 (mod p−1)`.
///
/// # Examples
///
/// ```
/// use dla_crypto::pohlig_hellman::{CommutativeDomain, CommutativeKey, PhKey};
///
/// let domain = CommutativeDomain::fixed_256();
/// let mut rng = rand::thread_rng();
/// let ka = PhKey::generate(&domain, &mut rng);
/// let kb = PhKey::generate(&domain, &mut rng);
/// let m = domain.fingerprint(b"transaction T1100265");
///
/// // Commutativity (paper Eq. 6): order of layers is irrelevant.
/// assert_eq!(ka.encrypt(&kb.encrypt(&m)), kb.encrypt(&ka.encrypt(&m)));
/// // Round trip.
/// assert_eq!(ka.decrypt(&ka.encrypt(&m)), m);
/// ```
#[derive(Clone)]
pub struct PhKey {
    domain: CommutativeDomain,
    e: Ubig,
    d: Ubig,
}

impl fmt::Debug for PhKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the exponents: they are the secret.
        write!(f, "PhKey({:?})", self.domain)
    }
}

impl PhKey {
    /// Generates a random key pair over `domain`.
    pub fn generate<R: Rng + ?Sized>(domain: &CommutativeDomain, rng: &mut R) -> Self {
        let p_minus_1 = domain.modulus() - &Ubig::one();
        loop {
            let e = Ubig::random_range(rng, &Ubig::from_u64(3), &p_minus_1);
            if let Some(d) = modinv(&e, &p_minus_1) {
                return PhKey {
                    domain: domain.clone(),
                    e,
                    d,
                };
            }
        }
    }

    /// Builds a key pair from a chosen encryption exponent.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] if `e` is not coprime
    /// to `p − 1` (no decryption exponent exists).
    pub fn from_exponent(domain: &CommutativeDomain, e: Ubig) -> Result<Self, CryptoError> {
        let p_minus_1 = domain.modulus() - &Ubig::one();
        let d = modinv(&e, &p_minus_1)
            .ok_or(CryptoError::InvalidParameter("exponent not coprime to p-1"))?;
        Ok(PhKey {
            domain: domain.clone(),
            e,
            d,
        })
    }

    /// The shared domain this key operates in.
    #[must_use]
    pub fn domain(&self) -> &CommutativeDomain {
        &self.domain
    }

    /// Encrypts a whole travelling set in order, sharing one exponent
    /// plan and Montgomery scratch across the slice (and optionally a
    /// worker pool). Element `i` of the result equals
    /// `self.encrypt(&ms[i])` bit for bit in every [`BatchMode`].
    #[must_use]
    pub fn encrypt_batch(&self, ms: &[Ubig], mode: BatchMode) -> Vec<Ubig> {
        self.domain.pow_batch(ms, &self.e, mode)
    }

    /// Removes this key's layer from a whole travelling set in order;
    /// the batched counterpart of [`CommutativeKey::decrypt`].
    #[must_use]
    pub fn decrypt_batch(&self, cs: &[Ubig], mode: BatchMode) -> Vec<Ubig> {
        self.domain.pow_batch(cs, &self.d, mode)
    }
}

impl CommutativeKey for PhKey {
    fn encrypt(&self, m: &Ubig) -> Ubig {
        self.domain.pow(m, &self.e)
    }

    fn decrypt(&self, c: &Ubig) -> Ubig {
        self.domain.pow(c, &self.d)
    }
}

/// Width of the [`XorKey`] message block in bytes.
pub const XOR_BLOCK_LEN: usize = 32;

/// The XOR commutative cipher the paper cites as the simplest example.
///
/// Operates on 256-bit blocks. Deterministic and linear — **insecure**
/// for any real workload; retained as the paper's pedagogical baseline
/// and for fast protocol plumbing tests.
#[derive(Clone)]
pub struct XorKey {
    mask: [u8; XOR_BLOCK_LEN],
}

impl fmt::Debug for XorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XorKey(256-bit mask)")
    }
}

impl XorKey {
    /// Generates a random 256-bit mask.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut mask = [0u8; XOR_BLOCK_LEN];
        rng.fill(&mut mask);
        XorKey { mask }
    }

    fn apply(&self, v: &Ubig) -> Ubig {
        let bytes = v.to_bytes_be();
        assert!(
            bytes.len() <= XOR_BLOCK_LEN,
            "XorKey message wider than {XOR_BLOCK_LEN} bytes"
        );
        let mut block = [0u8; XOR_BLOCK_LEN];
        block[XOR_BLOCK_LEN - bytes.len()..].copy_from_slice(&bytes);
        for (b, m) in block.iter_mut().zip(self.mask.iter()) {
            *b ^= m;
        }
        Ubig::from_bytes_be(&block)
    }
}

impl CommutativeKey for XorKey {
    /// # Panics
    ///
    /// Panics if the message exceeds 256 bits.
    fn encrypt(&self, m: &Ubig) -> Ubig {
        self.apply(m)
    }

    fn decrypt(&self, c: &Ubig) -> Ubig {
        self.apply(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_bigint::modular::modexp;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(100)
    }

    #[test]
    fn fixed_domains_are_safe_primes() {
        let mut rng = rng();
        for domain in [
            CommutativeDomain::fixed_256(),
            CommutativeDomain::fixed_512(),
        ] {
            assert!(prime::is_prime(domain.modulus(), &mut rng));
            assert!(prime::is_prime(domain.subgroup_order(), &mut rng));
            assert_eq!(
                domain.modulus(),
                &((domain.subgroup_order() << 1) + Ubig::one())
            );
        }
        assert_eq!(CommutativeDomain::fixed_256().modulus().bit_len(), 256);
        assert_eq!(CommutativeDomain::fixed_512().modulus().bit_len(), 512);
    }

    #[test]
    fn ph_round_trip() {
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        for _ in 0..10 {
            let key = PhKey::generate(&domain, &mut rng);
            let m = domain.fingerprint(format!("msg {:?}", rng.gen::<u64>()).as_bytes());
            assert_eq!(key.decrypt(&key.encrypt(&m)), m);
        }
    }

    #[test]
    fn ph_commutes_pairwise() {
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        let ka = PhKey::generate(&domain, &mut rng);
        let kb = PhKey::generate(&domain, &mut rng);
        let m = domain.fingerprint(b"element e");
        assert_eq!(ka.encrypt(&kb.encrypt(&m)), kb.encrypt(&ka.encrypt(&m)));
    }

    #[test]
    fn ph_commutes_under_all_three_party_permutations() {
        // The Figure 4 property: E132(e) = E321(e) = E213(e).
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        let keys: Vec<PhKey> = (0..3).map(|_| PhKey::generate(&domain, &mut rng)).collect();
        let m = domain.fingerprint(b"e");
        let perms = [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let reference = keys[2].encrypt(&keys[1].encrypt(&keys[0].encrypt(&m)));
        for perm in perms {
            let mut c = m.clone();
            for &i in &perm {
                c = keys[i].encrypt(&c);
            }
            assert_eq!(c, reference, "permutation {perm:?}");
        }
    }

    #[test]
    fn ph_layers_removable_in_any_order() {
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        let ka = PhKey::generate(&domain, &mut rng);
        let kb = PhKey::generate(&domain, &mut rng);
        let m = domain.fingerprint(b"payload");
        let c = ka.encrypt(&kb.encrypt(&m));
        // Remove outer-first and inner-first.
        assert_eq!(kb.decrypt(&ka.decrypt(&c)), m);
        assert_eq!(ka.decrypt(&kb.decrypt(&c)), m);
    }

    #[test]
    fn distinct_plaintexts_never_collide() {
        // Eq. 7: Pr[E(M1) = E(M2)] must be negligible; exponentiation by
        // an invertible e is a bijection, so it is exactly zero here.
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        let key = PhKey::generate(&domain, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200u32 {
            let m = domain.fingerprint(&i.to_be_bytes());
            let c = key.encrypt(&m);
            assert!(seen.insert(c.to_hex()), "ciphertext collision at {i}");
        }
    }

    #[test]
    fn fingerprint_lands_in_subgroup() {
        let domain = CommutativeDomain::fixed_256();
        for i in 0..20u32 {
            let fp = domain.fingerprint(&i.to_be_bytes());
            assert_eq!(
                modexp(&fp, domain.subgroup_order(), domain.modulus()),
                Ubig::one(),
                "fingerprint must have order dividing q"
            );
        }
    }

    #[test]
    fn fingerprint_is_deterministic_and_distinct() {
        let domain = CommutativeDomain::fixed_256();
        assert_eq!(domain.fingerprint(b"x"), domain.fingerprint(b"x"));
        assert_ne!(domain.fingerprint(b"x"), domain.fingerprint(b"y"));
    }

    #[test]
    fn from_exponent_rejects_non_coprime() {
        let domain = CommutativeDomain::fixed_256();
        // p - 1 = 2q, so e = 2 shares a factor with p - 1.
        assert!(PhKey::from_exponent(&domain, Ubig::two()).is_err());
        // e = q also shares a factor.
        assert!(PhKey::from_exponent(&domain, domain.subgroup_order().clone()).is_err());
        // Small odd e != q is coprime.
        let key = PhKey::from_exponent(&domain, Ubig::from_u64(65537)).unwrap();
        let m = domain.fingerprint(b"ok");
        assert_eq!(key.decrypt(&key.encrypt(&m)), m);
    }

    #[test]
    fn from_safe_prime_validates() {
        let mut rng = rng();
        // 23 = 2*11 + 1 is a safe prime.
        assert!(CommutativeDomain::from_safe_prime(Ubig::from_u64(23), &mut rng).is_ok());
        // 13 is prime but (13-1)/2 = 6 is not.
        assert!(CommutativeDomain::from_safe_prime(Ubig::from_u64(13), &mut rng).is_err());
        // 15 is not prime.
        assert!(CommutativeDomain::from_safe_prime(Ubig::from_u64(15), &mut rng).is_err());
    }

    #[test]
    fn xor_round_trip_and_commutativity() {
        let mut rng = rng();
        let ka = XorKey::generate(&mut rng);
        let kb = XorKey::generate(&mut rng);
        let m = Ubig::from_bytes_be(&sha256::digest(b"block"));
        assert_eq!(ka.decrypt(&ka.encrypt(&m)), m);
        assert_eq!(ka.encrypt(&kb.encrypt(&m)), kb.encrypt(&ka.encrypt(&m)));
    }

    #[test]
    #[should_panic(expected = "wider")]
    fn xor_rejects_oversized_messages() {
        let mut rng = rng();
        let k = XorKey::generate(&mut rng);
        let _ = k.encrypt(&(Ubig::one() << 300));
    }

    #[test]
    fn encode_decode_round_trip() {
        let domain = CommutativeDomain::fixed_256();
        for msg in [
            b"e".as_slice(),
            b"glsn=139aef78",
            b"",
            b"a slightly longer element xx",
        ] {
            let elem = domain.encode(msg).unwrap();
            let expect: Vec<u8> = msg.iter().copied().skip_while(|&b| b == 0).collect();
            assert_eq!(domain.decode(&elem), expect);
            // Element must be a quadratic residue (order divides q).
            assert!(modexp(&elem, domain.subgroup_order(), domain.modulus()).is_one());
        }
    }

    #[test]
    fn encode_then_encrypt_then_decrypt_recovers_message() {
        // The Figure 4 end-game: triple-encrypt an encoded element, peel
        // all three layers in a different order, decode the plaintext.
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        let keys: Vec<PhKey> = (0..3).map(|_| PhKey::generate(&domain, &mut rng)).collect();
        let elem = domain.encode(b"e").unwrap();
        let c = keys[2].encrypt(&keys[0].encrypt(&keys[1].encrypt(&elem)));
        let back = keys[1].decrypt(&keys[2].decrypt(&keys[0].decrypt(&c)));
        assert_eq!(domain.decode(&back), b"e");
    }

    #[test]
    fn encode_rejects_oversized_message() {
        let domain = CommutativeDomain::fixed_256();
        assert_eq!(domain.max_encode_len(), 30);
        let big = vec![0xABu8; 31];
        assert!(domain.encode(&big).is_err());
        let ok = vec![0xABu8; 30];
        assert!(domain.encode(&ok).is_ok());
    }

    #[test]
    fn encode_is_injective_on_distinct_messages() {
        let domain = CommutativeDomain::fixed_256();
        let a = domain.encode(b"glsn-1").unwrap();
        let b = domain.encode(b"glsn-2").unwrap();
        assert_ne!(a, b);
        assert_ne!(domain.decode(&a), domain.decode(&b));
    }

    #[test]
    fn qr_tests_agree_and_encode_identically() {
        let jacobi_domain = CommutativeDomain::fixed_256();
        let euler_domain = CommutativeDomain::fixed_256().with_qr_test(QrTest::Euler);
        let mut rng = rng();
        for _ in 0..30 {
            let x = Ubig::random_below(&mut rng, jacobi_domain.modulus());
            if x.is_zero() {
                continue;
            }
            assert_eq!(
                jacobi_domain.is_quadratic_residue(&x),
                euler_domain.is_quadratic_residue(&x),
                "x={}",
                x.to_hex()
            );
        }
        for msg in [b"e".as_slice(), b"glsn=139aef78", b"", b"set element 19"] {
            assert_eq!(
                jacobi_domain.encode(msg).unwrap(),
                euler_domain.encode(msg).unwrap(),
                "pad search must accept the same byte under both tests"
            );
        }
    }

    #[test]
    fn exp_algos_agree_on_ciphertexts() {
        let mut rng = rng();
        let base = CommutativeDomain::fixed_256();
        let key = PhKey::generate(&base, &mut rng);
        let m = base.fingerprint(b"ablation element");
        let reference = key.encrypt(&m);
        for algo in [
            ExpAlgo::Schoolbook,
            ExpAlgo::Binary,
            ExpAlgo::Windowed,
            ExpAlgo::Accel,
        ] {
            let domain = CommutativeDomain::fixed_256().with_exp_algo(algo);
            let alt = PhKey::from_exponent(&domain, key.e.clone()).unwrap();
            assert_eq!(alt.encrypt(&m), reference, "{algo:?}");
            assert_eq!(alt.decrypt(&reference), m, "{algo:?}");
        }
    }

    #[test]
    fn batch_matches_element_at_a_time() {
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        let key = PhKey::generate(&domain, &mut rng);
        let ms: Vec<Ubig> = (0..9u32)
            .map(|i| domain.fingerprint(&i.to_be_bytes()))
            .collect();
        let expected: Vec<Ubig> = ms.iter().map(|m| key.encrypt(m)).collect();
        for mode in [
            BatchMode::Serial,
            BatchMode::Pooled { threads: 3 },
            BatchMode::Pooled { threads: 16 },
            BatchMode::Pooled { threads: 0 },
        ] {
            assert_eq!(key.encrypt_batch(&ms, mode), expected, "{mode:?}");
        }
        let back = key.decrypt_batch(&expected, BatchMode::Pooled { threads: 4 });
        assert_eq!(back, ms);
        assert!(key
            .encrypt_batch(&[], BatchMode::Pooled { threads: 4 })
            .is_empty());
    }

    #[test]
    fn pooled_batch_telemetry_totals_match_serial() {
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        let key = PhKey::generate(&domain, &mut rng);
        let ms: Vec<Ubig> = (0..7u32)
            .map(|i| domain.fingerprint(&i.to_be_bytes()))
            .collect();

        let count = |mode: BatchMode| {
            let recorder = dla_telemetry::Recorder::new();
            let out = {
                let _guard = recorder.install();
                key.encrypt_batch(&ms, mode)
            };
            let cost = recorder.take().total_cost();
            (out, cost.modexp, cost.mont_mul_steps)
        };
        let (serial_out, serial_exp, serial_steps) = count(BatchMode::Serial);
        let (pooled_out, pooled_exp, pooled_steps) = count(BatchMode::Pooled { threads: 3 });
        assert_eq!(serial_out, pooled_out);
        assert_eq!(serial_exp, pooled_exp);
        assert_eq!(serial_steps, pooled_steps);
        assert_eq!(serial_exp, ms.len() as u64);
        assert!(serial_steps > 0);
    }

    #[test]
    fn accel_reduces_exponents_by_group_order() {
        // base^e = base^(e mod 2q) for units; the Accel rung reduces,
        // the Windowed oracle never does — answers must still match.
        let accel = CommutativeDomain::fixed_256();
        let oracle = CommutativeDomain::fixed_256().with_exp_algo(ExpAlgo::Windowed);
        let order = accel.modulus() - &Ubig::one();
        let mut rng = rng();
        let base = accel.fingerprint(b"reduction probe");
        for exp in [
            Ubig::zero(),
            Ubig::one(),
            order.clone(),
            &order - &Ubig::one(),
            &order + &Ubig::one(),
            &order << 1,
            &(&order * &Ubig::from_u64(7)) + &Ubig::from_u64(12345),
            Ubig::random_bits(&mut rng, 1000),
        ] {
            assert_eq!(
                accel.pow(&base, &exp),
                oracle.pow(&base, &exp),
                "exp={}",
                exp.to_hex()
            );
        }
        // The zero guard: 0^e must stay 0 even when e ≡ 0 (mod 2q).
        assert_eq!(accel.pow(&Ubig::zero(), &order), Ubig::zero());
        assert_eq!(accel.pow(&Ubig::zero(), &(&order << 1)), Ubig::zero());
        assert_eq!(accel.pow(&Ubig::zero(), &Ubig::zero()), Ubig::one());
    }

    #[test]
    fn pooled_below_threshold_degrades_to_serial() {
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        let key = PhKey::generate(&domain, &mut rng);
        const { assert!(POOLED_MIN_BATCH > 2) };
        let ms: Vec<Ubig> = (0..POOLED_MIN_BATCH as u32 - 1)
            .map(|i| domain.fingerprint(&i.to_be_bytes()))
            .collect();
        // Identical values and identical telemetry *scope attribution*:
        // a sub-threshold pooled batch never leaves the calling thread.
        let run = |mode: BatchMode| {
            let recorder = dla_telemetry::Recorder::new();
            let out = {
                let _guard = recorder.install();
                key.encrypt_batch(&ms, mode)
            };
            (out, recorder.take().total_cost())
        };
        let (serial_out, serial_cost) = run(BatchMode::Serial);
        let (pooled_out, pooled_cost) = run(BatchMode::Pooled { threads: 3 });
        assert_eq!(serial_out, pooled_out);
        assert_eq!(serial_cost, pooled_cost);
    }

    #[test]
    fn debug_never_leaks_secrets() {
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        let key = PhKey::generate(&domain, &mut rng);
        let dbg = format!("{key:?}");
        assert!(!dbg.contains(&key.e.to_hex()));
        assert!(!dbg.contains(&key.d.to_hex()));
    }
}
