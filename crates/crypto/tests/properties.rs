//! Property tests for the cryptographic primitives: the paper's Eq. 6
//! (commutativity under arbitrary permutations), Eq. 7 (distinctness),
//! Eq. 9 (accumulator order independence), Shamir reconstruction and
//! signature soundness on randomized inputs.

use dla_bigint::{Ubig, F61};
use dla_crypto::accumulator::AccumulatorParams;
use dla_crypto::pohlig_hellman::{CommutativeDomain, CommutativeKey, PhKey, XorKey};
use dla_crypto::schnorr::{self, SchnorrGroup, SchnorrKeyPair};
use dla_crypto::{shamir, shamir_big};
use proptest::prelude::*;
use rand::SeedableRng;

fn rng_from(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn eq6_commutativity_under_any_permutation(
        seed in 0u64..10_000,
        perm_seed in 0u64..10_000,
        message in prop::collection::vec(any::<u8>(), 1..24),
        n_keys in 2usize..5,
    ) {
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng_from(seed);
        let keys: Vec<PhKey> = (0..n_keys).map(|_| PhKey::generate(&domain, &mut rng)).collect();
        let m = domain.encode(&message).unwrap();

        // Apply in index order vs. a shuffled order.
        let mut order: Vec<usize> = (0..n_keys).collect();
        let mut prng = rng_from(perm_seed);
        for i in (1..order.len()).rev() {
            let j = rand::Rng::gen_range(&mut prng, 0..=i);
            order.swap(i, j);
        }
        let forward = keys.iter().fold(m.clone(), |c, k| k.encrypt(&c));
        let shuffled = order.iter().fold(m.clone(), |c, &i| keys[i].encrypt(&c));
        prop_assert_eq!(forward, shuffled);

        // And every layer is removable in the shuffled order too.
        let back = order.iter().rev().fold(
            keys.iter().fold(m.clone(), |c, k| k.encrypt(&c)),
            |c, &i| keys[i].decrypt(&c),
        );
        prop_assert_eq!(back, m);
    }

    #[test]
    fn eq7_distinct_plaintexts_distinct_ciphertexts(
        seed in 0u64..10_000,
        a in prop::collection::vec(any::<u8>(), 1..20),
        b in prop::collection::vec(any::<u8>(), 1..20),
    ) {
        prop_assume!(a != b);
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng_from(seed);
        let key = PhKey::generate(&domain, &mut rng);
        let ca = key.encrypt(&domain.encode(&a).unwrap());
        let cb = key.encrypt(&domain.encode(&b).unwrap());
        prop_assert_ne!(ca, cb);
    }

    #[test]
    fn eq9_accumulator_order_independence(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 1..6),
        perm_seed in 0u64..10_000,
    ) {
        let params = AccumulatorParams::fixed_512();
        let mut order: Vec<usize> = (0..items.len()).collect();
        let mut prng = rng_from(perm_seed);
        for i in (1..order.len()).rev() {
            let j = rand::Rng::gen_range(&mut prng, 0..=i);
            order.swap(i, j);
        }
        let a = params.accumulate(items.iter().map(Vec::as_slice));
        let b = params.accumulate(order.iter().map(|&i| items[i].as_slice()));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn shamir_reconstructs_from_any_quorum(
        secret in any::<u64>(),
        k in 1usize..5,
        extra in 0usize..3,
        seed in 0u64..10_000,
        pick_seed in 0u64..10_000,
    ) {
        let n = k + extra;
        let mut rng = rng_from(seed);
        let shares = shamir::share(F61::new(secret), k, n, &mut rng);
        // Pick k distinct shares pseudo-randomly.
        let mut idx: Vec<usize> = (0..n).collect();
        let mut prng = rng_from(pick_seed);
        for i in (1..idx.len()).rev() {
            let j = rand::Rng::gen_range(&mut prng, 0..=i);
            idx.swap(i, j);
        }
        let picked: Vec<_> = idx[..k].iter().map(|&i| shares[i]).collect();
        prop_assert_eq!(shamir::reconstruct(&picked).unwrap(), F61::new(secret));
    }

    #[test]
    fn shamir_big_linear_combinations(
        a in any::<u32>(),
        b in any::<u32>(),
        seed in 0u64..10_000,
    ) {
        let q = SchnorrGroup::fixed_256().order().clone();
        let mut rng = rng_from(seed);
        let pa = shamir_big::BigPolynomial::random(&Ubig::from_u64(u64::from(a)), 2, &q, &mut rng);
        let pb = shamir_big::BigPolynomial::random(&Ubig::from_u64(u64::from(b)), 2, &q, &mut rng);
        let summed: Vec<shamir_big::BigShare> = (1..=2u64)
            .map(|i| {
                let x = Ubig::from_u64(i);
                shamir_big::BigShare {
                    y: (&pa.eval(&x) + &pb.eval(&x)) % &q,
                    x,
                }
            })
            .collect();
        prop_assert_eq!(
            shamir_big::reconstruct(&summed, &q).unwrap(),
            Ubig::from_u64(u64::from(a) + u64::from(b))
        );
    }

    #[test]
    fn signatures_never_cross_verify(
        seed in 0u64..10_000,
        m1 in prop::collection::vec(any::<u8>(), 0..64),
        m2 in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(m1 != m2);
        let group = SchnorrGroup::fixed_256();
        let mut rng = rng_from(seed);
        let key = SchnorrKeyPair::generate(&group, &mut rng);
        let sig = key.sign(&m1, &mut rng);
        prop_assert!(schnorr::verify(&group, key.public(), &m1, &sig));
        prop_assert!(!schnorr::verify(&group, key.public(), &m2, &sig));
    }

    #[test]
    fn xor_cipher_commutes_and_round_trips(
        seed in 0u64..10_000,
        message in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut rng = rng_from(seed);
        let ka = XorKey::generate(&mut rng);
        let kb = XorKey::generate(&mut rng);
        let m = Ubig::from_bytes_be(&message);
        prop_assert_eq!(ka.encrypt(&kb.encrypt(&m)), kb.encrypt(&ka.encrypt(&m)));
        prop_assert_eq!(ka.decrypt(&ka.encrypt(&m)), m);
    }

    #[test]
    fn group_encode_round_trips(message in prop::collection::vec(1u8..=255, 1..24)) {
        // Leading nonzero byte so the byte round-trip is exact.
        let domain = CommutativeDomain::fixed_256();
        let element = domain.encode(&message).unwrap();
        prop_assert_eq!(domain.decode(&element), message);
    }

    /// Known-order exponent reduction is invisible: the accelerated
    /// path (reduce mod p−1, fixed-width kernel) and the PR 4 windowed
    /// oracle agree on every base, including exponents far beyond the
    /// group order and exact multiples of it.
    #[test]
    fn exponent_reduction_matches_unreduced(
        base in prop::collection::vec(any::<u64>(), 0..8),
        exp in prop::collection::vec(any::<u64>(), 0..12),
        order_multiple in 0u64..4,
    ) {
        use dla_crypto::pohlig_hellman::ExpAlgo;
        let accel = CommutativeDomain::fixed_256().with_exp_algo(ExpAlgo::Accel);
        let oracle = CommutativeDomain::fixed_256().with_exp_algo(ExpAlgo::Windowed);
        let b = Ubig::from_limbs(base);
        let order = accel.modulus() - &Ubig::one();
        let e = &Ubig::from_limbs(exp) + &(&order * &Ubig::from_u64(order_multiple));
        prop_assert_eq!(accel.pow(&b, &e), oracle.pow(&b, &e));
    }
}
