//! Traffic accounting — the raw material of every cost experiment.
//!
//! The paper's central efficiency claim is that *relaxed* secure
//! multiparty computation needs far less communication than classical
//! zero-disclosure protocols. [`TrafficStats`] counts messages and
//! bytes (total and per directed link) so the benchmark harness can
//! print exactly that comparison.

use std::collections::BTreeMap;
use std::fmt;

/// Cumulative traffic counters for one network.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages handed to the network (including later-dropped ones).
    pub messages_sent: u64,
    /// Messages actually delivered (duplicates count individually).
    pub messages_delivered: u64,
    /// Messages dropped by fault injection.
    pub messages_dropped: u64,
    /// Duplicate deliveries created by fault injection.
    pub messages_duplicated: u64,
    /// Payloads corrupted by fault injection.
    pub messages_corrupted: u64,
    /// Payload bytes handed to the network.
    pub bytes_sent: u64,
    per_link: BTreeMap<(usize, usize), LinkStats>,
}

/// Counters for one directed link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages sent on this link.
    pub messages: u64,
    /// Payload bytes sent on this link.
    pub bytes: u64,
}

impl TrafficStats {
    /// Fresh, zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records a send of `bytes` payload bytes on `from → to`.
    pub fn record_send(&mut self, from: usize, to: usize, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        let link = self.per_link.entry((from, to)).or_default();
        link.messages += 1;
        link.bytes += bytes as u64;
    }

    /// Per-link counters for `from → to`.
    #[must_use]
    pub fn link(&self, from: usize, to: usize) -> LinkStats {
        self.per_link.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Iterates over all active links.
    pub fn links(&self) -> impl Iterator<Item = ((usize, usize), LinkStats)> + '_ {
        self.per_link.iter().map(|(&k, &v)| (k, v))
    }

    /// Resets every counter (e.g. between benchmark phases).
    pub fn reset(&mut self) {
        *self = TrafficStats::default();
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} msgs ({} delivered, {} dropped, {} dup, {} corrupt), {} bytes",
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.messages_duplicated,
            self.messages_corrupted,
            self.bytes_sent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_accumulates() {
        let mut s = TrafficStats::new();
        s.record_send(0, 1, 100);
        s.record_send(0, 1, 50);
        s.record_send(1, 2, 10);
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.bytes_sent, 160);
        assert_eq!(s.link(0, 1).messages, 2);
        assert_eq!(s.link(0, 1).bytes, 150);
        assert_eq!(s.link(1, 2).bytes, 10);
        assert_eq!(s.link(2, 1), LinkStats::default(), "direction matters");
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = TrafficStats::new();
        s.record_send(0, 1, 5);
        s.messages_delivered = 1;
        s.reset();
        assert_eq!(s, TrafficStats::new());
        assert_eq!(s.links().count(), 0);
    }

    #[test]
    fn display_is_informative() {
        let mut s = TrafficStats::new();
        s.record_send(0, 1, 42);
        s.messages_delivered = 1;
        let text = s.to_string();
        assert!(text.contains("1 msgs"));
        assert!(text.contains("42 bytes"));
    }
}
