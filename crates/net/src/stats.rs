//! Traffic accounting — the raw material of every cost experiment.
//!
//! The paper's central efficiency claim is that *relaxed* secure
//! multiparty computation needs far less communication than classical
//! zero-disclosure protocols. [`TrafficStats`] counts messages and
//! bytes (total, per directed link, and per protocol session) so the
//! benchmark harness can print exactly that comparison — and so a
//! concurrency experiment can *prove* that two sessions were in flight
//! at the same time (see [`TrafficStats::max_concurrent_sessions`]).

use crate::time::SimTime;
use crate::SessionId;
use std::collections::BTreeMap;
use std::fmt;

/// Cumulative traffic counters for one network.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages handed to the network (including later-dropped ones).
    pub messages_sent: u64,
    /// Messages actually delivered (duplicates count individually).
    pub messages_delivered: u64,
    /// Messages dropped by fault injection.
    pub messages_dropped: u64,
    /// Duplicate deliveries created by fault injection.
    pub messages_duplicated: u64,
    /// Payloads corrupted by fault injection.
    pub messages_corrupted: u64,
    /// Payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Payload bytes actually delivered (duplicates count individually).
    pub bytes_delivered: u64,
    per_link: BTreeMap<(usize, usize), LinkStats>,
    per_session: BTreeMap<SessionId, SessionStats>,
    /// Global send-event counter (orders sends across sessions).
    events: u64,
}

/// Counters for one directed link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages sent on this link.
    pub messages: u64,
    /// Payload bytes sent on this link.
    pub bytes: u64,
}

/// Counters for one protocol session, including its activity interval
/// both in global send-event order and in virtual send time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Messages sent in this session.
    pub messages: u64,
    /// Payload bytes sent in this session.
    pub bytes: u64,
    /// Messages delivered in this session (duplicates count
    /// individually, mirroring the global `messages_delivered`).
    pub messages_delivered: u64,
    /// Payload bytes delivered in this session (duplicates included).
    pub bytes_delivered: u64,
    /// Global event index of the session's first send.
    pub first_event: u64,
    /// Global event index of the session's last send.
    pub last_event: u64,
    /// Virtual time of the session's first send.
    pub first_send_at: SimTime,
    /// Virtual time of the session's last send.
    pub last_send_at: SimTime,
}

impl TrafficStats {
    /// Fresh, zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records a send of `bytes` payload bytes on `from → to` within
    /// `session`, stamped with the sender's virtual clock `sent_at`
    /// (pass [`SimTime::ZERO`] on transports without virtual time).
    pub fn record_send(
        &mut self,
        session: SessionId,
        from: usize,
        to: usize,
        bytes: usize,
        sent_at: SimTime,
    ) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        let link = self.per_link.entry((from, to)).or_default();
        link.messages += 1;
        link.bytes += bytes as u64;
        let event = self.events;
        self.events += 1;
        let s = self.per_session.entry(session).or_insert(SessionStats {
            first_event: event,
            first_send_at: sent_at,
            ..SessionStats::default()
        });
        s.messages += 1;
        s.bytes += bytes as u64;
        s.last_event = event;
        s.last_send_at = s.last_send_at.max(sent_at);
    }

    /// Records a delivery of `bytes` payload bytes within `session`.
    ///
    /// Every transport delivery path (including the second leg of a
    /// fault-injected duplicate) must come through here, so the global
    /// `messages_delivered`/`bytes_delivered` counters and the
    /// per-session ones move in lockstep: for any trace,
    /// `Σ_session messages_delivered == messages_delivered`.
    pub fn record_delivery(&mut self, session: SessionId, bytes: usize) {
        self.messages_delivered += 1;
        self.bytes_delivered += bytes as u64;
        let s = self.per_session.entry(session).or_default();
        s.messages_delivered += 1;
        s.bytes_delivered += bytes as u64;
    }

    /// Per-link counters for `from → to`.
    #[must_use]
    pub fn link(&self, from: usize, to: usize) -> LinkStats {
        self.per_link.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Iterates over all active links.
    pub fn links(&self) -> impl Iterator<Item = ((usize, usize), LinkStats)> + '_ {
        self.per_link.iter().map(|(&k, &v)| (k, v))
    }

    /// Per-session counters (zeroed if the session never sent).
    #[must_use]
    pub fn session(&self, session: SessionId) -> SessionStats {
        self.per_session.get(&session).copied().unwrap_or_default()
    }

    /// Iterates over all sessions that sent at least one message.
    pub fn sessions(&self) -> impl Iterator<Item = (SessionId, SessionStats)> + '_ {
        self.per_session.iter().map(|(&k, &v)| (k, v))
    }

    /// Maximum number of sessions whose *virtual-time* activity
    /// intervals `[first_send_at, last_send_at]` overlap: ≥ 2 proves
    /// that protocol sessions were in flight simultaneously on the
    /// simulated network; a serial schedule reports 1.
    #[must_use]
    pub fn max_concurrent_sessions(&self) -> usize {
        max_overlap(
            self.per_session
                .values()
                .map(|s| (s.first_send_at, s.last_send_at)),
        )
    }

    /// Maximum number of sessions whose *send-event* intervals
    /// `[first_event, last_event]` overlap — the analogue of
    /// [`TrafficStats::max_concurrent_sessions`] for transports without
    /// virtual time (real threads over channels).
    #[must_use]
    pub fn max_interleaved_sessions(&self) -> usize {
        max_overlap(
            self.per_session
                .values()
                .map(|s| (s.first_event, s.last_event)),
        )
    }

    /// Resets every counter (e.g. between benchmark phases).
    pub fn reset(&mut self) {
        *self = TrafficStats::default();
    }
}

/// Maximum number of closed intervals covering a single point.
fn max_overlap<T: Ord + Copy>(intervals: impl Iterator<Item = (T, T)>) -> usize {
    let mut starts = Vec::new();
    let mut ends = Vec::new();
    for (a, b) in intervals {
        starts.push(a);
        ends.push(b);
    }
    starts.sort_unstable();
    ends.sort_unstable();
    let (mut i, mut j, mut open, mut best) = (0, 0, 0usize, 0usize);
    while i < starts.len() {
        // Closed intervals: a start tied with an end still overlaps it.
        if starts[i] <= ends[j] {
            open += 1;
            best = best.max(open);
            i += 1;
        } else {
            open -= 1;
            j += 1;
        }
    }
    best
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} msgs ({} delivered, {} dropped, {} dup, {} corrupt), {} bytes, {} sessions",
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.messages_duplicated,
            self.messages_corrupted,
            self.bytes_sent,
            self.per_session.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROOT: SessionId = SessionId::ROOT;

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn record_send_accumulates() {
        let mut s = TrafficStats::new();
        s.record_send(ROOT, 0, 1, 100, SimTime::ZERO);
        s.record_send(ROOT, 0, 1, 50, SimTime::ZERO);
        s.record_send(ROOT, 1, 2, 10, SimTime::ZERO);
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.bytes_sent, 160);
        assert_eq!(s.link(0, 1).messages, 2);
        assert_eq!(s.link(0, 1).bytes, 150);
        assert_eq!(s.link(1, 2).bytes, 10);
        assert_eq!(s.link(2, 1), LinkStats::default(), "direction matters");
    }

    #[test]
    fn per_session_counters_are_partitioned() {
        let mut s = TrafficStats::new();
        s.record_send(SessionId(1), 0, 1, 100, at(5));
        s.record_send(SessionId(2), 1, 0, 7, at(6));
        s.record_send(SessionId(1), 0, 1, 3, at(9));
        assert_eq!(s.session(SessionId(1)).messages, 2);
        assert_eq!(s.session(SessionId(1)).bytes, 103);
        assert_eq!(s.session(SessionId(2)).messages, 1);
        assert_eq!(s.session(SessionId(3)), SessionStats::default());
        assert_eq!(s.sessions().count(), 2);
        // Global totals still aggregate across sessions.
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.bytes_sent, 110);
    }

    #[test]
    fn session_intervals_track_first_and_last_send() {
        let mut s = TrafficStats::new();
        s.record_send(SessionId(1), 0, 1, 1, at(10));
        s.record_send(SessionId(2), 0, 1, 1, at(11));
        s.record_send(SessionId(1), 1, 0, 1, at(30));
        let one = s.session(SessionId(1));
        assert_eq!(one.first_event, 0);
        assert_eq!(one.last_event, 2);
        assert_eq!(one.first_send_at, at(10));
        assert_eq!(one.last_send_at, at(30));
    }

    #[test]
    fn overlapping_sessions_are_detected() {
        let mut s = TrafficStats::new();
        // Session 1 active [10, 30], session 2 active [20, 40]: overlap.
        s.record_send(SessionId(1), 0, 1, 1, at(10));
        s.record_send(SessionId(2), 0, 1, 1, at(20));
        s.record_send(SessionId(1), 1, 0, 1, at(30));
        s.record_send(SessionId(2), 1, 0, 1, at(40));
        assert_eq!(s.max_concurrent_sessions(), 2);
        assert_eq!(s.max_interleaved_sessions(), 2);
    }

    #[test]
    fn serial_sessions_do_not_overlap() {
        let mut s = TrafficStats::new();
        // Session 1 finishes (at 20) strictly before session 2 starts (at 25).
        s.record_send(SessionId(1), 0, 1, 1, at(10));
        s.record_send(SessionId(1), 1, 0, 1, at(20));
        s.record_send(SessionId(2), 0, 1, 1, at(25));
        s.record_send(SessionId(2), 1, 0, 1, at(35));
        assert_eq!(s.max_concurrent_sessions(), 1);
        assert_eq!(s.max_interleaved_sessions(), 1);
    }

    #[test]
    fn delivery_accounting_agrees_per_session_and_globally() {
        let mut s = TrafficStats::new();
        s.record_send(SessionId(1), 0, 1, 100, at(1));
        s.record_send(SessionId(2), 0, 1, 40, at(2));
        s.record_delivery(SessionId(1), 100);
        // Fault-injected duplicate: the same payload delivered twice.
        s.record_delivery(SessionId(1), 100);
        s.record_delivery(SessionId(2), 40);
        assert_eq!(s.messages_delivered, 3);
        assert_eq!(s.bytes_delivered, 240);
        assert_eq!(s.session(SessionId(1)).messages_delivered, 2);
        assert_eq!(s.session(SessionId(1)).bytes_delivered, 200);
        assert_eq!(s.session(SessionId(2)).messages_delivered, 1);
        let (msgs, bytes) = s.sessions().fold((0, 0), |(m, b), (_, st)| {
            (m + st.messages_delivered, b + st.bytes_delivered)
        });
        assert_eq!(msgs, s.messages_delivered);
        assert_eq!(bytes, s.bytes_delivered);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = TrafficStats::new();
        s.record_send(ROOT, 0, 1, 5, SimTime::ZERO);
        s.messages_delivered = 1;
        s.reset();
        assert_eq!(s, TrafficStats::new());
        assert_eq!(s.links().count(), 0);
        assert_eq!(s.sessions().count(), 0);
    }

    #[test]
    fn display_is_informative() {
        let mut s = TrafficStats::new();
        s.record_send(ROOT, 0, 1, 42, SimTime::ZERO);
        s.messages_delivered = 1;
        let text = s.to_string();
        assert!(text.contains("1 msgs"));
        assert!(text.contains("42 bytes"));
        assert!(text.contains("1 sessions"));
    }
}
