//! Time for the network layer: the [`SimTime`] instant/span type and
//! the pluggable [`Clock`] driver that decides whether time is
//! *virtual* (advanced explicitly, the simulator's default) or *wall*
//! (a monotonic reading of the host clock, for real socket transports).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A point (or span) of simulated time, in nanoseconds.
///
/// The simulator uses virtual clocks so experiments measure *protocol*
/// latency (rounds × link latency + serialization) deterministically,
/// independent of host speed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanosecond count.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Subtraction clamped at zero (timers compute "time left" with
    /// this so a deadline already in the past never panics).
    #[must_use]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// This span as a [`Duration`] (for handing virtual spans to
    /// blocking OS primitives that want real durations).
    #[must_use]
    pub fn to_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }
}

/// A time driver: the single abstraction behind every timer in the
/// stack (ARQ retransmission backoff, recv deadlines, heartbeat
/// suspicion, telemetry span timestamps).
///
/// Two families implement it:
///
/// * [`VirtualClock`] — time advances only when a component charges it
///   ([`Clock::advance`] bumps a counter, waiting is free). This is the
///   simulator's semantics: experiments measure protocol time, not
///   host speed.
/// * [`WallClock`] — a monotonic reading of the host clock anchored at
///   construction; [`Clock::advance`] genuinely sleeps. This is what
///   socket transports and the process-per-node deployment run on.
///
/// All methods take `&self` so one clock can be shared by the threads
/// of a transport (the same interior-mutability contract as
/// [`crate::Transport`]).
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current reading, as time since this clock's origin.
    fn now(&self) -> SimTime;

    /// Lets `d` pass: a virtual clock bumps its counter, a wall clock
    /// sleeps the calling thread.
    fn advance(&self, d: SimTime);

    /// Whether this clock only moves when advanced. Components that
    /// wait on OS primitives use this to decide who is responsible for
    /// making a deadline eventually fire.
    fn is_virtual(&self) -> bool;
}

impl dla_telemetry::ClockSource for &dyn Clock {
    fn now_ns(&self) -> u64 {
        self.now().as_nanos()
    }
}

/// A [`Clock`] that moves only when advanced — the driver form of the
/// simulator's virtual time.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ns: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// A virtual clock starting at `at`.
    #[must_use]
    pub fn starting_at(at: SimTime) -> Self {
        VirtualClock {
            ns: AtomicU64::new(at.as_nanos()),
        }
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime(self.ns.load(Ordering::Acquire))
    }

    fn advance(&self, d: SimTime) {
        self.ns.fetch_add(d.as_nanos(), Ordering::AcqRel);
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

impl dla_telemetry::ClockSource for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now().as_nanos()
    }
}

/// A [`Clock`] reading the host's monotonic clock, anchored at
/// construction time. [`Clock::advance`] sleeps for real.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock anchored now.
    #[must_use]
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime(u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn advance(&self, d: SimTime) {
        std::thread::sleep(d.to_duration());
    }

    fn is_virtual(&self) -> bool {
        false
    }
}

impl dla_telemetry::ClockSource for WallClock {
    fn now_ns(&self) -> u64 {
        self.now().as_nanos()
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on underflow (subtracting a later time from an earlier one).
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1.0e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1.0e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1.0e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(3);
        assert_eq!((a + b).as_nanos(), 8_000);
        assert_eq!((a - b).as_nanos(), 2_000);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 8_000);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(
            SimTime::from_nanos(1).max(SimTime::from_nanos(2)),
            SimTime::from_nanos(2)
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimTime::from_millis(2_500).to_string(), "2.500s");
    }

    #[test]
    fn millis_f64() {
        assert!((SimTime::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            SimTime::from_nanos(1).saturating_sub(SimTime::from_nanos(5)),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::from_nanos(5).saturating_sub(SimTime::from_nanos(1)),
            SimTime::from_nanos(4)
        );
    }

    #[test]
    fn virtual_clock_moves_only_when_advanced() {
        let clock = VirtualClock::new();
        assert!(clock.is_virtual());
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance(SimTime::from_micros(5));
        clock.advance(SimTime::from_micros(3));
        assert_eq!(clock.now(), SimTime::from_micros(8));
        let seeded = VirtualClock::starting_at(SimTime::from_millis(1));
        assert_eq!(seeded.now(), SimTime::from_millis(1));
    }

    #[test]
    fn wall_clock_monotonically_advances() {
        let clock = WallClock::new();
        assert!(!clock.is_virtual());
        let a = clock.now();
        clock.advance(SimTime::from_micros(200));
        let b = clock.now();
        assert!(b > a, "wall time must pass while sleeping");
    }

    #[test]
    fn clocks_are_object_safe_and_shareable() {
        fn take(clock: &dyn Clock) -> SimTime {
            clock.now()
        }
        assert_eq!(take(&VirtualClock::new()), SimTime::ZERO);
        let wall: std::sync::Arc<dyn Clock> = std::sync::Arc::new(WallClock::new());
        std::thread::scope(|s| {
            let wall = &wall;
            s.spawn(move || wall.advance(SimTime::from_micros(50)));
        });
        assert!(wall.now() > SimTime::ZERO);
    }

    #[test]
    fn clocks_serve_as_telemetry_sources() {
        use dla_telemetry::ClockSource;
        let clock = VirtualClock::new();
        clock.advance(SimTime::from_nanos(42));
        assert_eq!(ClockSource::now_ns(&clock), 42);
    }
}
