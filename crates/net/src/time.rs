//! Virtual time for the simulated network.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of simulated time, in nanoseconds.
///
/// The simulator uses virtual clocks so experiments measure *protocol*
/// latency (rounds × link latency + serialization) deterministically,
/// independent of host speed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanosecond count.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on underflow (subtracting a later time from an earlier one).
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1.0e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1.0e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1.0e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(3);
        assert_eq!((a + b).as_nanos(), 8_000);
        assert_eq!((a - b).as_nanos(), 2_000);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 8_000);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(
            SimTime::from_nanos(1).max(SimTime::from_nanos(2)),
            SimTime::from_nanos(2)
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimTime::from_millis(2_500).to_string(), "2.500s");
    }

    #[test]
    fn millis_f64() {
        assert!((SimTime::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-9);
    }
}
