//! Byzantine interposition at the transport layer.
//!
//! The fault layer ([`crate::fault::FaultPlan`]) models a *benign*
//! network: drops, duplicates and bit rot, all of which leave a stale
//! checksum behind and are therefore visible to any receiver. A
//! Byzantine node is different — it **re-stamps its own lie**. An
//! [`Adversary`] sits between protocol code and a [`Transport`] and can
//! rewrite outgoing payloads *before* the envelope checksum is
//! computed, so the forgery is perfectly well-formed on the wire and
//! only the cryptographic machinery above (accumulator circulation,
//! checkpoint chains, origin tags) can catch it.
//!
//! Two interposition points share one policy trait:
//!
//! * [`AdversaryNet`] wraps any [`Transport`] — [`crate::ChannelNet`],
//!   [`crate::tcp::TcpNet`] — for threaded and cross-process runs.
//! * [`crate::sim::SimNet::set_adversary`] hooks the same trait into
//!   the simulator's send path, which is what the in-process DLA
//!   cluster drives.
//!
//! [`ScriptedAdversary`] is the standard implementation: a compromised
//! set plus an ordered list of [`TamperRule`]s, with every
//! nondeterministic choice (victims, flip masks, target offsets) drawn
//! from [`scenario_rng`] so a whole attack schedule replays
//! deterministically from `(cluster seed, scenario id)` on any
//! transport. Honest-but-curious coalitions use the same object: nodes
//! in the *curious* set never tamper, but every wire message they send
//! or receive is captured for post-hoc leak analysis.

use crate::sim::Envelope;
use crate::time::SimTime;
use crate::wire::crc32;
use crate::{NetError, NodeId, SessionId, Transport};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Derives the RNG stream for one adversary scenario from the cluster
/// seed — the same idiom as [`crate::fault::fault_rng`], with its own
/// stream constant so attack schedules are reproducible and independent
/// of the fault and latency streams: replaying scenario 3 draws the
/// same victims and masks no matter what else the network rolled.
#[must_use]
pub fn scenario_rng(cluster_seed: u64, scenario_id: u64) -> StdRng {
    let mut x = scenario_id.wrapping_add(0x41D7_E751_0C2B_9A6D);
    let stream = rand::splitmix64(&mut x);
    StdRng::seed_from_u64(cluster_seed ^ stream)
}

/// What a Byzantine sender does to one outgoing payload.
///
/// Every variant except [`Tamper::Drop`] produces a payload that is
/// re-stamped with a fresh checksum — the lie is wire-consistent and
/// must be caught by protocol-level verification, not by the envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tamper {
    /// Send the payload unchanged.
    Pass,
    /// Byzantine omission: silently swallow the message.
    Drop,
    /// Substitute a wholly forged payload (checkpoint equivocation,
    /// replayed blobs, …).
    Replace(Bytes),
    /// XOR `mask` into the byte `offset_from_end` positions before the
    /// end — "flip a ring ciphertext" without knowing the exact frame
    /// length. Out-of-range offsets leave the payload unchanged.
    Flip {
        /// Distance from the last byte (0 = last byte).
        offset_from_end: usize,
        /// XOR mask (0 is a no-op).
        mask: u8,
    },
    /// Keep only the first `len` bytes — a malformed blob that fails
    /// structural decoding at the receiver.
    Truncate(usize),
    /// Adversarial scheduling: hold the message back, byte-for-byte
    /// intact, and release it onto the wire only after this many
    /// subsequent sends have gone out — reordering without forging
    /// anything. A transport that does not implement scheduling treats
    /// it as [`Tamper::Pass`] ([`Tamper::apply`] leaves the payload
    /// unchanged).
    Delay(u64),
}

impl Tamper {
    /// Applies this tamper to `payload`. `None` means the message is
    /// swallowed entirely.
    #[must_use]
    pub fn apply(&self, payload: &Bytes) -> Option<Bytes> {
        match self {
            Tamper::Pass => Some(payload.clone()),
            Tamper::Drop => None,
            Tamper::Replace(forged) => Some(forged.clone()),
            Tamper::Flip {
                offset_from_end,
                mask,
            } => {
                let mut bytes = payload.to_vec();
                if let Some(slot) = bytes
                    .len()
                    .checked_sub(1 + offset_from_end)
                    .and_then(|i| bytes.get_mut(i))
                {
                    *slot ^= mask;
                }
                Some(Bytes::from(bytes))
            }
            Tamper::Truncate(len) => Some(Bytes::copy_from_slice(
                &payload[..(*len).min(payload.len())],
            )),
            // The payload itself is untouched; the *transport* holds it
            // back (see `AdversaryNet::send` / `SimNet::send_on`).
            Tamper::Delay(_) => Some(payload.clone()),
        }
    }
}

/// One entry in a scripted attack schedule: which messages it matches
/// and what happens to them. Rules are consulted in order; the first
/// live match fires.
#[derive(Clone, Debug)]
pub struct TamperRule {
    /// Match only messages sent by this node (`None` = any sender).
    pub from: Option<usize>,
    /// Match only messages to this node (`None` = any receiver).
    pub to: Option<usize>,
    /// Match only payloads whose first byte is this protocol tag.
    pub tag: Option<u8>,
    /// Skip this many matching messages before firing.
    pub skip: u64,
    /// Fire at most this many times (`u64::MAX` = every match).
    pub fires: u64,
    /// What to do with a matched message.
    pub action: Tamper,
}

impl TamperRule {
    /// A rule that fires once on the first message matching
    /// `(from, tag)`.
    #[must_use]
    pub fn once_from(from: usize, tag: u8, action: Tamper) -> Self {
        TamperRule {
            from: Some(from),
            to: None,
            tag: Some(tag),
            skip: 0,
            fires: 1,
            action,
        }
    }

    fn matches(&self, from: NodeId, to: NodeId, payload: &[u8]) -> bool {
        self.from.is_none_or(|f| from.0 == f)
            && self.to.is_none_or(|t| to.0 == t)
            && self.tag.is_none_or(|tag| payload.first() == Some(&tag))
    }
}

#[derive(Debug)]
struct RuleState {
    rule: TamperRule,
    matched: u64,
    fired: u64,
}

/// One wire message seen by a curious coalition member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapturedMessage {
    /// Session the message travelled on.
    pub session: SessionId,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// The payload as it crossed the wire (post-tamper).
    pub payload: Bytes,
}

/// One forgery the adversary committed, recorded for replay checks: the
/// same scenario seed must produce the identical event list on every
/// transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TamperEvent {
    /// Session of the tampered message.
    pub session: SessionId,
    /// Byzantine sender.
    pub from: NodeId,
    /// Receiver the lie was addressed to.
    pub to: NodeId,
    /// Index of the rule that fired.
    pub rule: usize,
    /// CRC-32 of the payload the protocol handed over.
    pub original_crc: u32,
    /// CRC-32 of what actually went out (`None` = swallowed).
    pub forged_crc: Option<u32>,
}

/// Aggregate view of what a [`ScriptedAdversary`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdversaryReport {
    /// Messages rewritten (including truncations and flips).
    pub forged: usize,
    /// Messages swallowed.
    pub dropped: usize,
    /// Messages held back for late, reordered release.
    pub delayed: usize,
    /// Messages captured by the curious coalition.
    pub observed: usize,
    /// Every forgery, in wire order.
    pub events: Vec<TamperEvent>,
}

/// A network-interposed adversary policy.
///
/// Implementations must be `Send + Sync` (transports are shared across
/// threads) and `Debug` (they ride inside transport structs that derive
/// it).
pub trait Adversary: Send + Sync + std::fmt::Debug {
    /// Decides what happens to one outgoing message. Called for every
    /// send on the interposed transport.
    fn tamper(&self, session: SessionId, from: NodeId, to: NodeId, payload: &[u8]) -> Tamper;

    /// Observes one message as it crosses the wire (post-tamper).
    /// Curious-coalition implementations record what their members can
    /// see; the default ignores everything.
    fn observe(&self, session: SessionId, from: NodeId, to: NodeId, payload: &[u8]) {
        let _ = (session, from, to, payload);
    }

    /// Whether `node` is under Byzantine control (used by scenario
    /// runners for reporting; transports never need it).
    fn compromised(&self, node: NodeId) -> bool {
        let _ = node;
        false
    }
}

/// The standard scripted adversary: a compromised set, a curious
/// coalition, and an ordered rule schedule. Interior mutability keeps
/// it usable behind `Arc` from any transport.
#[derive(Debug, Default)]
pub struct ScriptedAdversary {
    compromised: BTreeSet<usize>,
    curious: BTreeSet<usize>,
    rules: Mutex<Vec<RuleState>>,
    captures: Mutex<Vec<CapturedMessage>>,
    report: Mutex<AdversaryReport>,
}

impl ScriptedAdversary {
    /// An adversary controlling nothing and watching nobody.
    #[must_use]
    pub fn new() -> Self {
        ScriptedAdversary::default()
    }

    /// Puts `node` under Byzantine control: its outgoing messages are
    /// run through the rule schedule.
    #[must_use]
    pub fn compromise(mut self, node: usize) -> Self {
        self.compromised.insert(node);
        self
    }

    /// Adds `node` to the honest-but-curious coalition: every message
    /// it sends or receives is captured.
    #[must_use]
    pub fn curious(mut self, node: usize) -> Self {
        self.curious.insert(node);
        self
    }

    /// Appends `rule` to the schedule.
    #[must_use]
    pub fn rule(self, rule: TamperRule) -> Self {
        self.rules.lock().push(RuleState {
            rule,
            matched: 0,
            fired: 0,
        });
        self
    }

    /// The curious coalition's captured transcript, in wire order.
    #[must_use]
    pub fn captured(&self) -> Vec<CapturedMessage> {
        self.captures.lock().clone()
    }

    /// A snapshot of everything the adversary did.
    #[must_use]
    pub fn report(&self) -> AdversaryReport {
        self.report.lock().clone()
    }
}

impl Adversary for ScriptedAdversary {
    fn tamper(&self, session: SessionId, from: NodeId, to: NodeId, payload: &[u8]) -> Tamper {
        if !self.compromised.contains(&from.0) {
            return Tamper::Pass;
        }
        let mut rules = self.rules.lock();
        for (index, state) in rules.iter_mut().enumerate() {
            if !state.rule.matches(from, to, payload) {
                continue;
            }
            state.matched += 1;
            if state.matched <= state.rule.skip || state.fired >= state.rule.fires {
                continue;
            }
            state.fired += 1;
            let action = state.rule.action.clone();
            let forged_crc = action
                .apply(&Bytes::copy_from_slice(payload))
                .map(|p| crc32(&p));
            let mut report = self.report.lock();
            match &action {
                Tamper::Delay(_) => report.delayed += 1,
                _ => match forged_crc {
                    Some(_) => report.forged += 1,
                    None => report.dropped += 1,
                },
            }
            report.events.push(TamperEvent {
                session,
                from,
                to,
                rule: index,
                original_crc: crc32(payload),
                forged_crc,
            });
            return action;
        }
        Tamper::Pass
    }

    fn observe(&self, session: SessionId, from: NodeId, to: NodeId, payload: &[u8]) {
        if self.curious.contains(&from.0) || self.curious.contains(&to.0) {
            self.report.lock().observed += 1;
            self.captures.lock().push(CapturedMessage {
                session,
                from,
                to,
                payload: Bytes::copy_from_slice(payload),
            });
        }
    }

    fn compromised(&self, node: NodeId) -> bool {
        self.compromised.contains(&node.0)
    }
}

/// A [`Transport`] wrapper that routes every send through an
/// [`Adversary`] — the interposition point for the threaded and socket
/// backends (the simulator hooks the policy natively, see
/// [`crate::sim::SimNet::set_adversary`]).
///
/// Tampered payloads reach the inner transport *before* it stamps the
/// envelope checksum, so forgeries arrive intact-looking; only
/// [`Tamper::Drop`] is visible at this layer (as a silent loss).
#[derive(Debug)]
pub struct AdversaryNet<T> {
    inner: T,
    adversary: Arc<dyn Adversary>,
    delayed: Mutex<Vec<DelayedSend>>,
}

/// A message held back by [`Tamper::Delay`], waiting out its rounds in
/// the transport's stash (shared with the simulator's native hook).
#[derive(Debug)]
pub(crate) struct DelayedSend {
    pub(crate) rounds_left: u64,
    pub(crate) session: SessionId,
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) payload: Bytes,
}

/// Ages a delay stash by one send event: every held message's counter
/// drops by one and the expired ones are drained, in stash order.
pub(crate) fn age_delayed(stash: &mut Vec<DelayedSend>) -> Vec<DelayedSend> {
    if stash.is_empty() {
        return Vec::new();
    }
    let mut due = Vec::new();
    stash.retain_mut(|m| {
        if m.rounds_left <= 1 {
            due.push(DelayedSend {
                rounds_left: 0,
                session: m.session,
                from: m.from,
                to: m.to,
                payload: m.payload.clone(),
            });
            false
        } else {
            m.rounds_left -= 1;
            true
        }
    });
    due
}

impl<T: Transport> AdversaryNet<T> {
    /// Interposes `adversary` in front of `inner`.
    pub fn new(inner: T, adversary: Arc<dyn Adversary>) -> Self {
        AdversaryNet {
            inner,
            adversary,
            delayed: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for AdversaryNet<T> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn send(&self, session: SessionId, from: NodeId, to: NodeId, payload: Bytes) {
        // Every send ages the delay stash by one round; expired
        // messages re-enter the wire *after* the current one, which is
        // exactly the reordering the delay was scripted to cause.
        let due = age_delayed(&mut self.delayed.lock());
        let action = self.adversary.tamper(session, from, to, &payload);
        match action {
            Tamper::Delay(rounds) => {
                self.delayed.lock().push(DelayedSend {
                    rounds_left: rounds,
                    session,
                    from,
                    to,
                    payload,
                });
            }
            action => match action.apply(&payload) {
                Some(outgoing) => {
                    self.adversary.observe(session, from, to, &outgoing);
                    self.inner.send(session, from, to, outgoing);
                }
                None => {
                    // Byzantine omission: the wire never sees the
                    // message, so neither do curious observers.
                }
            },
        }
        for m in due {
            self.adversary.observe(m.session, m.from, m.to, &m.payload);
            self.inner.send(m.session, m.from, m.to, m.payload);
        }
    }

    fn recv(&self, session: SessionId, node: NodeId) -> Result<Envelope, NetError> {
        self.inner.recv(session, node)
    }

    fn recv_from(
        &self,
        session: SessionId,
        node: NodeId,
        from: NodeId,
    ) -> Result<Envelope, NetError> {
        self.inner.recv_from(session, node, from)
    }

    fn charge(&self, session: SessionId, node: NodeId, cost: SimTime) {
        self.inner.charge(session, node, cost);
    }

    fn counters(&self, session: SessionId) -> (u64, u64) {
        self.inner.counters(session)
    }

    fn elapsed(&self, session: SessionId) -> SimTime {
        self.inner.elapsed(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChannelNet, Session};
    use rand::Rng;

    #[test]
    fn scenario_rng_is_deterministic_and_scenario_independent() {
        let draw = |seed, scenario| scenario_rng(seed, scenario).gen::<u64>();
        assert_eq!(draw(7, 3), draw(7, 3));
        assert_ne!(draw(7, 3), draw(7, 4));
        assert_ne!(draw(7, 3), draw(8, 3));
        // Independent of the fault stream for the same ids.
        let fault = crate::fault::fault_rng(7, SessionId(3)).gen::<u64>();
        assert_ne!(draw(7, 3), fault);
    }

    #[test]
    fn tamper_variants_rewrite_as_specified() {
        let payload = Bytes::from_static(b"\x40hello");
        assert_eq!(Tamper::Pass.apply(&payload), Some(payload.clone()));
        assert_eq!(Tamper::Drop.apply(&payload), None);
        assert_eq!(
            Tamper::Replace(Bytes::from_static(b"xx")).apply(&payload),
            Some(Bytes::from_static(b"xx"))
        );
        assert_eq!(
            Tamper::Flip {
                offset_from_end: 0,
                mask: 0x01
            }
            .apply(&payload),
            Some(Bytes::from_static(b"\x40helln"))
        );
        assert_eq!(
            Tamper::Truncate(3).apply(&payload),
            Some(Bytes::from_static(b"\x40he"))
        );
        // Out-of-range flips and truncations are harmless.
        assert_eq!(
            Tamper::Flip {
                offset_from_end: 99,
                mask: 0xFF
            }
            .apply(&payload),
            Some(payload.clone())
        );
        assert_eq!(Tamper::Truncate(99).apply(&payload), Some(payload));
    }

    #[test]
    fn scripted_rules_fire_in_order_with_skip_and_budget() {
        let adversary = ScriptedAdversary::new().compromise(1).rule(TamperRule {
            from: Some(1),
            to: None,
            tag: Some(0x40),
            skip: 1,
            fires: 1,
            action: Tamper::Drop,
        });
        let send =
            |payload: &[u8]| adversary.tamper(SessionId::ROOT, NodeId(1), NodeId(2), payload);
        // Wrong tag, wrong sender, skipped first match, then fire once.
        assert_eq!(send(b"\x41x"), Tamper::Pass);
        assert_eq!(
            adversary.tamper(SessionId::ROOT, NodeId(0), NodeId(2), b"\x40x"),
            Tamper::Pass
        );
        assert_eq!(send(b"\x40x"), Tamper::Pass); // skip: 1
        assert_eq!(send(b"\x40x"), Tamper::Drop); // fires
        assert_eq!(send(b"\x40x"), Tamper::Pass); // budget spent
        let report = adversary.report();
        assert_eq!((report.forged, report.dropped), (0, 1));
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].forged_crc, None);
    }

    #[test]
    fn forged_payloads_cross_channel_net_with_valid_checksums() {
        let adversary = Arc::new(ScriptedAdversary::new().compromise(0).rule(
            TamperRule::once_from(
                0,
                0x40,
                Tamper::Flip {
                    offset_from_end: 0,
                    mask: 0xFF,
                },
            ),
        ));
        let net = AdversaryNet::new(ChannelNet::new(2), Arc::clone(&adversary) as _);
        let session = Session::root(&net);
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"\x40\x00"));
        // The lie is re-stamped: Session::recv's checksum gate passes
        // and the receiver gets the forged bytes as if genuine.
        let envelope = session.recv(NodeId(1)).expect("forgery is wire-intact");
        assert_eq!(&envelope.payload[..], b"\x40\xFF");
        assert!(envelope.is_intact());
        assert_eq!(adversary.report().forged, 1);
    }

    #[test]
    fn byzantine_omission_swallows_the_message() {
        let adversary = Arc::new(
            ScriptedAdversary::new()
                .compromise(0)
                .rule(TamperRule::once_from(0, 0x40, Tamper::Drop)),
        );
        let net = AdversaryNet::new(
            ChannelNet::with_timeout(2, std::time::Duration::from_millis(20)),
            Arc::clone(&adversary) as _,
        );
        let session = Session::root(&net);
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"\x40gone"));
        assert_eq!(
            session.recv(NodeId(1)).unwrap_err(),
            NetError::Timeout(NodeId(1))
        );
        assert_eq!(adversary.report().dropped, 1);
    }

    #[test]
    fn curious_coalition_captures_only_its_own_traffic() {
        let adversary = Arc::new(ScriptedAdversary::new().curious(1));
        let net = AdversaryNet::new(ChannelNet::new(3), Arc::clone(&adversary) as _);
        let session = Session::root(&net);
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"to-coalition"));
        session.send(NodeId(0), NodeId(2), Bytes::from_static(b"foreign"));
        session.send(NodeId(1), NodeId(2), Bytes::from_static(b"from-coalition"));
        let captured = adversary.captured();
        let payloads: Vec<&[u8]> = captured.iter().map(|c| &c.payload[..]).collect();
        assert_eq!(payloads, vec![&b"to-coalition"[..], b"from-coalition"]);
        assert_eq!(adversary.report().observed, 2);
    }

    #[test]
    fn delay_reorders_without_forging_a_byte() {
        let adversary = Arc::new(
            ScriptedAdversary::new()
                .compromise(0)
                .rule(TamperRule::once_from(0, 0x40, Tamper::Delay(1))),
        );
        let net = AdversaryNet::new(ChannelNet::new(2), Arc::clone(&adversary) as _);
        let session = Session::root(&net);
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"\x40first"));
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"\x41second"));
        // The delayed message re-enters the wire after the next send:
        // the receiver sees them swapped, both byte-identical and
        // checksum-intact.
        let a = session.recv(NodeId(1)).unwrap();
        let b = session.recv(NodeId(1)).unwrap();
        assert_eq!(&a.payload[..], b"\x41second");
        assert_eq!(&b.payload[..], b"\x40first");
        assert!(a.is_intact() && b.is_intact());
        let report = adversary.report();
        assert_eq!(
            (report.delayed, report.forged, report.dropped),
            (1, 0, 0),
            "a delay is scheduling, not forgery"
        );
    }

    #[test]
    fn delay_on_the_simulator_releases_after_the_scripted_rounds() {
        use crate::sim::{NetConfig, SimNet};
        let adversary = Arc::new(
            ScriptedAdversary::new()
                .compromise(0)
                .rule(TamperRule::once_from(0, 0x40, Tamper::Delay(2))),
        );
        let mut net = SimNet::new(2, NetConfig::ideal());
        net.set_adversary(Arc::clone(&adversary) as _);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"\x40held"));
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"\x41one"));
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"\x42two"));
        let order: Vec<Bytes> = (0..3)
            .map(|_| net.recv(NodeId(1)).unwrap().payload)
            .collect();
        assert_eq!(
            order,
            vec![
                Bytes::from_static(b"\x41one"),
                Bytes::from_static(b"\x42two"),
                Bytes::from_static(b"\x40held"),
            ]
        );
        // All three eventually crossed the wire.
        assert_eq!(net.stats().messages_sent, 3);
    }

    #[test]
    fn same_schedule_replays_identically() {
        let run = || {
            let mut rng = scenario_rng(42, 7);
            let mask = rng.gen_range(1..=255u8);
            let adversary = Arc::new(ScriptedAdversary::new().compromise(0).rule(
                TamperRule::once_from(
                    0,
                    0x40,
                    Tamper::Flip {
                        offset_from_end: 0,
                        mask,
                    },
                ),
            ));
            let net = AdversaryNet::new(ChannelNet::new(2), Arc::clone(&adversary) as _);
            let session = Session::root(&net);
            for _ in 0..3 {
                session.send(NodeId(0), NodeId(1), Bytes::from_static(b"\x40abc"));
            }
            adversary.report()
        };
        assert_eq!(run(), run());
    }
}
