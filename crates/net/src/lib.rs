#![deny(rust_2018_idioms)]

//! Simulated cluster networking for the DLA system.
//!
//! The paper assumes "message routing is handled by the lower network
//! layer" (§3.1); this crate *is* that layer, as a simulator:
//!
//! * [`sim::SimNet`] — deterministic virtual-time network with latency
//!   models ([`latency::LatencyModel`]), fault injection
//!   ([`fault::FaultPlan`]) and complete traffic accounting
//!   ([`stats::TrafficStats`]). All protocol experiments run on it.
//! * [`transport`] — a crossbeam-channel transport for running nodes as
//!   real OS threads.
//! * [`tcp::TcpNet`] — a socket transport for running nodes as separate
//!   OS *processes* over loopback (or a real network), driven by the
//!   pluggable [`time::Clock`] runtime.
//! * [`topology::Ring`] — the relay route of the commutative-encryption
//!   protocols.
//! * [`wire`] — the length-prefixed binary message format.
//!
//! # Examples
//!
//! ```
//! use dla_net::sim::{NetConfig, SimNet};
//! use dla_net::topology::Ring;
//! use dla_net::NodeId;
//! use bytes::Bytes;
//!
//! // Pass a token once around a 4-node ring and measure traffic.
//! let mut net = SimNet::new(4, NetConfig::ideal());
//! let ring = Ring::canonical(4);
//! let mut holder = NodeId(0);
//! net.send(holder, ring.next(holder), Bytes::from_static(b"token"));
//! for _ in 0..4 {
//!     let next = ring.next(holder);
//!     let msg = net.recv(next)?;
//!     holder = next;
//!     net.send(holder, ring.next(holder), msg.payload);
//! }
//! assert_eq!(net.stats().messages_sent, 5);
//! # Ok::<(), dla_net::NetError>(())
//! ```

use std::fmt;

pub mod adversary;
pub mod fault;
pub mod latency;
pub mod reliable;
pub mod session;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod transport;
pub mod wire;

pub use adversary::{Adversary, AdversaryNet, ScriptedAdversary, Tamper, TamperRule};
pub use reliable::{Reliable, ReliableConfig, ReliableStats};
pub use session::{ChannelNet, Session, SharedNet, SimLink, Transport};
pub use sim::{Envelope, NetConfig, SimNet};
pub use tcp::{NodeConfig, NodeReport, TcpConfig, TcpNet};
pub use time::{Clock, SimTime, VirtualClock, WallClock};

/// Identifies one protocol session multiplexed over a network.
///
/// Every message carries a session id (it is part of the wire format —
/// see [`Envelope::encode`]) so several protocol instances can be in
/// flight over one transport at the same time: inboxes, virtual clocks
/// and traffic accounting are all partitioned by session. Session
/// [`SessionId::ROOT`] is the default used by the legacy
/// single-protocol API.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The default session of the single-protocol compatibility API.
    pub const ROOT: SessionId = SessionId(0);

    /// Bits of the session word reserved for the federation ring id.
    /// Session ids are allocated densely from 0 within one cluster, so
    /// the top 16 bits are free to carry *which ring* a session belongs
    /// to when many rings share observability (telemetry, traces).
    const RING_SHIFT: u32 = 48;

    /// This session id re-homed into federation ring `ring`'s session
    /// namespace: the ring id rides in the top 16 bits, the local
    /// session id in the rest. Ring 0 is the identity, so single-ring
    /// clusters keep their historical session numbering.
    ///
    /// # Panics
    ///
    /// Panics if `ring` exceeds 16 bits or the local id already carries
    /// ring bits.
    #[must_use]
    pub fn for_ring(self, ring: u64) -> SessionId {
        assert!(ring < (1 << 16), "ring id {ring} exceeds 16 bits");
        assert!(
            self.0 < (1 << Self::RING_SHIFT),
            "session {self} already carries ring bits"
        );
        SessionId(ring << Self::RING_SHIFT | self.0)
    }

    /// The federation ring this session belongs to (0 for plain
    /// single-ring sessions).
    #[must_use]
    pub fn ring(self) -> u64 {
        self.0 >> Self::RING_SHIFT
    }

    /// The ring-local session id with the ring bits stripped.
    #[must_use]
    pub fn local(self) -> SessionId {
        SessionId(self.0 & ((1 << Self::RING_SHIFT) - 1))
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifies a node in a network (index into the node table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Errors surfaced by the network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// `recv` found no pending message (in deterministic protocols this
    /// means a message was dropped by fault injection).
    EmptyInbox(NodeId),
    /// `recv_from` found a message from an unexpected peer.
    UnexpectedSender {
        /// The receiving node.
        node: NodeId,
        /// Who the protocol expected.
        expected: NodeId,
        /// Who actually sent the earliest pending message.
        actual: NodeId,
    },
    /// A blocking `recv` on a threaded transport gave up waiting.
    Timeout(NodeId),
    /// A received message failed its payload checksum — corrupted in
    /// flight. The garbage is consumed (dropped), never delivered.
    Corrupt(NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::EmptyInbox(node) => write!(f, "no pending message at {node}"),
            NetError::UnexpectedSender {
                node,
                expected,
                actual,
            } => write!(
                f,
                "{node} expected a message from {expected} but found one from {actual}"
            ),
            NetError::Timeout(node) => write!(f, "recv timed out at {node}"),
            NetError::Corrupt(node) => {
                write!(f, "{node} received a message that failed its checksum")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_conversions() {
        let n = NodeId::from(3);
        assert_eq!(n.to_string(), "P3");
        assert_eq!(n.index(), 3);
    }

    #[test]
    fn net_error_display() {
        assert_eq!(
            NetError::EmptyInbox(NodeId(2)).to_string(),
            "no pending message at P2"
        );
        let e = NetError::UnexpectedSender {
            node: NodeId(0),
            expected: NodeId(1),
            actual: NodeId(2),
        };
        assert!(e.to_string().contains("expected a message from P1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }

    #[test]
    fn session_ring_bits_round_trip() {
        let local = SessionId(42);
        let homed = local.for_ring(7);
        assert_eq!(homed.ring(), 7);
        assert_eq!(homed.local(), local);
        assert_ne!(homed, local.for_ring(6));
        // Ring 0 is the identity: single-ring numbering is unchanged.
        assert_eq!(local.for_ring(0), local);
        assert_eq!(SessionId::ROOT.ring(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 16 bits")]
    fn session_ring_id_is_bounded() {
        let _ = SessionId(1).for_ring(1 << 16);
    }
}
