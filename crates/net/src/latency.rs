//! Link latency and serialization-cost models.

use crate::time::SimTime;
use rand::Rng;

/// How long a message of a given size takes from send to delivery.
///
/// The model is `propagation + len / bandwidth`, with propagation drawn
/// per message.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum LatencyModel {
    /// Instant delivery (pure message/byte counting).
    #[default]
    Zero,
    /// Constant propagation delay, infinite bandwidth.
    Fixed(SimTime),
    /// Uniform propagation in `[min, max]`, with a bandwidth in
    /// bytes/µs (0 = infinite).
    Uniform {
        /// Minimum propagation delay.
        min: SimTime,
        /// Maximum propagation delay.
        max: SimTime,
        /// Bandwidth in bytes per microsecond (0 disables the term).
        bytes_per_us: u64,
    },
}

impl LatencyModel {
    /// A typical switched-LAN profile: 50–200 µs propagation,
    /// ~1 GbE bandwidth (125 bytes/µs ≈ 1 Gbit/s).
    #[must_use]
    pub fn lan() -> Self {
        LatencyModel::Uniform {
            min: SimTime::from_micros(50),
            max: SimTime::from_micros(200),
            bytes_per_us: 125,
        }
    }

    /// A wide-area profile: 10–40 ms propagation, ~12 bytes/µs
    /// (≈ 100 Mbit/s) — the cross-organization setting the paper's
    /// "independent systems collaborate in network-wide auditing"
    /// scenario implies.
    #[must_use]
    pub fn wan() -> Self {
        LatencyModel::Uniform {
            min: SimTime::from_millis(10),
            max: SimTime::from_millis(40),
            bytes_per_us: 12,
        }
    }

    /// Samples the delivery delay for a message of `len` bytes.
    pub fn sample<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> SimTime {
        match self {
            LatencyModel::Zero => SimTime::ZERO,
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform {
                min,
                max,
                bytes_per_us,
            } => {
                let prop = if max > min {
                    SimTime::from_nanos(rng.gen_range(min.as_nanos()..=max.as_nanos()))
                } else {
                    *min
                };
                let ser = if *bytes_per_us == 0 {
                    SimTime::ZERO
                } else {
                    SimTime::from_nanos((len as u64 * 1_000) / bytes_per_us)
                };
                prop + ser
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn zero_model_is_instant() {
        let mut rng = rng();
        assert_eq!(
            LatencyModel::Zero.sample(1_000_000, &mut rng),
            SimTime::ZERO
        );
    }

    #[test]
    fn fixed_model_ignores_size() {
        let mut rng = rng();
        let m = LatencyModel::Fixed(SimTime::from_micros(10));
        assert_eq!(m.sample(0, &mut rng), SimTime::from_micros(10));
        assert_eq!(m.sample(1 << 20, &mut rng), SimTime::from_micros(10));
    }

    #[test]
    fn uniform_model_within_bounds() {
        let mut rng = rng();
        let m = LatencyModel::Uniform {
            min: SimTime::from_micros(10),
            max: SimTime::from_micros(20),
            bytes_per_us: 0,
        };
        for _ in 0..100 {
            let d = m.sample(100, &mut rng);
            assert!(d >= SimTime::from_micros(10) && d <= SimTime::from_micros(20));
        }
    }

    #[test]
    fn bandwidth_term_scales_with_size() {
        let mut rng = rng();
        let m = LatencyModel::Uniform {
            min: SimTime::ZERO,
            max: SimTime::ZERO,
            bytes_per_us: 100,
        };
        assert_eq!(m.sample(100, &mut rng), SimTime::from_micros(1));
        assert_eq!(m.sample(1000, &mut rng), SimTime::from_micros(10));
    }

    #[test]
    fn lan_is_faster_than_wan() {
        let mut rng = rng();
        let lan: u64 = (0..50)
            .map(|_| LatencyModel::lan().sample(1000, &mut rng).as_nanos())
            .sum();
        let wan: u64 = (0..50)
            .map(|_| LatencyModel::wan().sample(1000, &mut rng).as_nanos())
            .sum();
        assert!(lan < wan);
    }
}
