//! Reliable delivery over any [`Transport`] ([`Reliable`]).
//!
//! The simulator's fault plan can drop, duplicate or corrupt messages;
//! unprotected protocol code then either consumes garbage or starves on
//! an empty inbox forever. `Reliable` wraps a transport with the
//! classic ARQ toolkit so every protocol written against [`Session`]
//! gets fault tolerance without changing a line:
//!
//! * **Checksums** — corrupted envelopes (stale [`Envelope::checksum`])
//!   and corrupted data frames (inner CRC) are discarded at receive and
//!   recovered by retransmission.
//! * **Sequence numbers** — per `(session, from, to)` link; duplicates
//!   are suppressed, gaps are reassembled in order from an early-frame
//!   stash (per-link FIFO delivery makes gaps short-lived).
//! * **Ack/retransmit** — cumulative acks; when a receiver starves, the
//!   senders' unacked frames for it are retransmitted after an
//!   exponential backoff with deterministic jitter, charged to the
//!   sender's virtual clock like a real retransmission timer.
//! * **Bounded waiting** — after `max_retries` fruitless rounds `recv`
//!   returns [`NetError::Timeout`] instead of hanging, giving the layers
//!   above a failure signal they can act on (retry, re-plan, declare a
//!   node dead).
//!
//! Because `Reliable` itself implements [`Transport`], it composes with
//! all three backends (SimLink, SharedNet, ChannelNet) and with
//! [`Session`] unchanged.
//!
//! [`Session`]: crate::Session

use crate::sim::Envelope;
use crate::time::{Clock, SimTime};
use crate::wire::{crc32, Reader, Writer};
use crate::{NetError, NodeId, SessionId, Transport};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

const FRAME_DATA: u8 = 0x01;
const FRAME_ACK: u8 = 0x02;

/// Tuning for a [`Reliable`] wrapper.
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// Initial retransmission timeout (doubles per fruitless round).
    pub base_timeout: SimTime,
    /// Fruitless receive rounds before `recv` gives up with
    /// [`NetError::Timeout`].
    pub max_retries: u32,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            base_timeout: SimTime::from_millis(5),
            max_retries: 10,
            seed: 0,
        }
    }
}

impl ReliableConfig {
    /// Sets the base retransmission timeout.
    #[must_use]
    pub fn with_base_timeout(mut self, t: SimTime) -> Self {
        self.base_timeout = t;
        self
    }

    /// Sets the retry budget.
    #[must_use]
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff charged before retransmission round `attempt`
    /// (1-based): `base · 2^(attempt−1)` plus a deterministic jitter in
    /// `[0, base/2)` derived from the seed, session, node and attempt —
    /// reproducible, yet decorrelated across links.
    #[must_use]
    pub fn backoff(&self, session: SessionId, node: NodeId, attempt: u32) -> SimTime {
        let shift = (attempt.saturating_sub(1)).min(10);
        let base = self.base_timeout.as_nanos() << shift;
        let mut x = self
            .seed
            .wrapping_add(session.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((node.0 as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(u64::from(attempt));
        let jitter_span = (self.base_timeout.as_nanos() / 2).max(1);
        let jitter = rand::splitmix64(&mut x) % jitter_span;
        SimTime::from_nanos(base + jitter)
    }
}

/// Sender side of one `(session, from, to)` link.
#[derive(Debug, Default)]
struct SendLink {
    next_seq: u64,
    /// Frames sent but not yet cumulatively acked, by sequence number.
    unacked: BTreeMap<u64, Bytes>,
}

/// Receiver side of one `(session, from, to)` link.
#[derive(Debug, Default)]
struct RecvLink {
    /// Next in-order sequence number expected.
    expected: u64,
    /// Frames that arrived ahead of a gap, waiting for it to fill.
    early: BTreeMap<u64, Bytes>,
}

#[derive(Debug, Default)]
struct ReliableState {
    send_links: BTreeMap<(SessionId, usize, usize), SendLink>,
    recv_links: BTreeMap<(SessionId, usize, usize), RecvLink>,
    /// In-order payloads ready for delivery, per (session, receiver).
    ready: BTreeMap<(SessionId, usize), VecDeque<Envelope>>,
    stats: ReliableStats,
}

/// Recovery-activity counters for one [`Reliable`] wrapper — the ARQ
/// analogue of [`crate::TrafficStats`]. Always maintained (the
/// increments are branch-free field bumps under the state lock already
/// held); also mirrored into the telemetry cost sink when one is
/// installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Data frames retransmitted after a receiver starved.
    pub retransmits: u64,
    /// Backoff rounds in which at least one frame was retransmitted.
    pub retransmit_rounds: u64,
    /// Receives that gave up with [`NetError::Timeout`] after
    /// exhausting the retry budget.
    pub timeouts: u64,
    /// Duplicate data frames suppressed (already-delivered sequence
    /// numbers re-acked instead of re-surfaced).
    pub duplicates_suppressed: u64,
}

/// A reliability layer over any [`Transport`]; itself a [`Transport`].
///
/// Generic over the inner transport (defaulting to a trait object) so
/// `Sync` propagates: a `Reliable<'_, ChannelNet>` can be shared
/// between threads exactly like the `ChannelNet` it wraps.
pub struct Reliable<'a, T: Transport + ?Sized = dyn Transport + 'a> {
    inner: &'a T,
    config: ReliableConfig,
    /// Optional time driver for the retransmission timer. Without one
    /// (the default, and the simulator's semantics) the backoff is
    /// only charged to the sender's virtual clock; with a
    /// [`crate::time::WallClock`] the layer genuinely waits out each
    /// backoff before retransmitting — real ARQ pacing for socket
    /// transports.
    clock: Option<Arc<dyn Clock>>,
    state: Mutex<ReliableState>,
}

impl<T: Transport + ?Sized> std::fmt::Debug for Reliable<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Reliable({:?})", self.config)
    }
}

impl<'a, T: Transport + ?Sized> Reliable<'a, T> {
    /// Wraps `inner` with default tuning.
    #[must_use]
    pub fn new(inner: &'a T) -> Self {
        Reliable::with_config(inner, ReliableConfig::default())
    }

    /// Wraps `inner` with explicit tuning.
    #[must_use]
    pub fn with_config(inner: &'a T, config: ReliableConfig) -> Self {
        Reliable {
            inner,
            config,
            clock: None,
            state: Mutex::new(ReliableState::default()),
        }
    }

    /// Drives the retransmission timer from `clock`: every backoff is
    /// waited out on it (a wall clock sleeps, a virtual clock jumps)
    /// in addition to being charged to the sender's session clock.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// The wrapper's tuning.
    #[must_use]
    pub fn config(&self) -> ReliableConfig {
        self.config
    }

    /// Snapshot of the recovery-activity counters.
    #[must_use]
    pub fn stats(&self) -> ReliableStats {
        self.state.lock().stats
    }

    fn data_frame(seq: u64, payload: &[u8]) -> Bytes {
        let mut w = Writer::new();
        w.put_u8(FRAME_DATA)
            .put_u64(seq)
            .put_u64(u64::from(crc32(payload)))
            .put_bytes(payload);
        w.finish()
    }

    fn ack_frame(seq: u64) -> Bytes {
        let mut w = Writer::new();
        w.put_u8(FRAME_ACK).put_u64(seq);
        w.finish()
    }

    /// Digests one raw envelope from the inner transport: acks shrink
    /// the unacked window, in-order data is moved (with everything it
    /// unblocks from the early stash) to the ready queue and acked,
    /// duplicates are re-acked, corrupt frames are dropped. Returns
    /// `true` if the envelope carried anything new.
    fn process(&self, env: &Envelope, node: NodeId) -> bool {
        if !env.is_intact() {
            return false;
        }
        let mut r = Reader::new(&env.payload);
        let Ok(kind) = r.get_u8() else { return false };
        match kind {
            FRAME_ACK => {
                let Ok(seq) = r.get_u64() else { return false };
                let mut state = self.state.lock();
                if let Some(link) = state.send_links.get_mut(&(env.session, node.0, env.from.0)) {
                    // Cumulative: everything up to `seq` has arrived.
                    link.unacked = link.unacked.split_off(&(seq + 1));
                }
                false
            }
            FRAME_DATA => {
                let (Ok(seq), Ok(check), Ok(payload)) = (r.get_u64(), r.get_u64(), r.get_bytes())
                else {
                    return false;
                };
                if u64::from(crc32(payload)) != check {
                    return false;
                }
                let key = (env.session, env.from.0, node.0);
                let mut state = self.state.lock();
                let link = state.recv_links.entry(key).or_default();
                if seq < link.expected {
                    // Duplicate (or a retransmission of something we
                    // already have): refresh the ack in case ours died.
                    let ack = link.expected - 1;
                    state.stats.duplicates_suppressed += 1;
                    drop(state);
                    self.inner
                        .send(env.session, node, env.from, Self::ack_frame(ack));
                    return false;
                }
                if seq > link.expected {
                    link.early.insert(seq, Bytes::copy_from_slice(payload));
                    return true;
                }
                // In order: deliver it plus everything it unblocks.
                let mut batch = vec![Bytes::copy_from_slice(payload)];
                link.expected += 1;
                while let Some(next) = link.early.remove(&link.expected) {
                    batch.push(next);
                    link.expected += 1;
                }
                let ack = link.expected - 1;
                let queue = state.ready.entry((env.session, node.0)).or_default();
                for data in batch {
                    queue.push_back(Envelope::new(
                        env.session,
                        env.from,
                        node,
                        data,
                        env.sent_at,
                        env.deliver_at,
                    ));
                }
                drop(state);
                self.inner
                    .send(env.session, node, env.from, Self::ack_frame(ack));
                true
            }
            _ => false,
        }
    }

    /// Retransmits every unacked frame destined for `node` in
    /// `session`, charging each sender the backoff for this `attempt`
    /// (its retransmission timer just expired).
    fn retransmit_to(&self, session: SessionId, node: NodeId, attempt: u32) {
        let resend: Vec<(usize, Vec<Bytes>)> = {
            let state = self.state.lock();
            state
                .send_links
                .range((session, 0, 0)..=(session, usize::MAX, usize::MAX))
                .filter(|(&(_, _, to), link)| to == node.0 && !link.unacked.is_empty())
                .map(|(&(_, from, _), link)| (from, link.unacked.values().cloned().collect()))
                .collect()
        };
        if !resend.is_empty() {
            let frames: u64 = resend.iter().map(|(_, f)| f.len() as u64).sum();
            let mut state = self.state.lock();
            state.stats.retransmit_rounds += 1;
            state.stats.retransmits += frames;
            drop(state);
            dla_telemetry::record(dla_telemetry::CostKind::Retransmit, frames);
        }
        for (from, frames) in resend {
            let backoff = self.config.backoff(session, node, attempt);
            if let Some(clock) = &self.clock {
                clock.advance(backoff);
            }
            self.inner.charge(session, NodeId(from), backoff);
            for frame in frames {
                self.inner.send(session, NodeId(from), node, frame);
            }
        }
    }

    fn pop_ready(
        &self,
        session: SessionId,
        node: NodeId,
        want: Option<NodeId>,
    ) -> Option<Envelope> {
        let mut state = self.state.lock();
        let queue = state.ready.get_mut(&(session, node.0))?;
        match want {
            None => queue.pop_front(),
            Some(from) => {
                let pos = queue.iter().position(|e| e.from == from)?;
                queue.remove(pos)
            }
        }
    }

    fn recv_filtered(
        &self,
        session: SessionId,
        node: NodeId,
        want: Option<NodeId>,
    ) -> Result<Envelope, NetError> {
        let mut attempts = 0u32;
        loop {
            if let Some(env) = self.pop_ready(session, node, want) {
                return Ok(env);
            }
            match self.inner.recv(session, node) {
                Ok(env) => {
                    if self.process(&env, node) {
                        attempts = 0;
                    }
                }
                Err(NetError::EmptyInbox(_) | NetError::Timeout(_)) => {
                    attempts += 1;
                    if attempts > self.config.max_retries {
                        self.state.lock().stats.timeouts += 1;
                        dla_telemetry::record(dla_telemetry::CostKind::Timeout, 1);
                        return Err(NetError::Timeout(node));
                    }
                    self.retransmit_to(session, node, attempts);
                }
                Err(other) => return Err(other),
            }
        }
    }
}

impl<T: Transport + ?Sized> Transport for Reliable<'_, T> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn send(&self, session: SessionId, from: NodeId, to: NodeId, payload: Bytes) {
        let frame = {
            let mut state = self.state.lock();
            let link = state.send_links.entry((session, from.0, to.0)).or_default();
            let seq = link.next_seq;
            link.next_seq += 1;
            let frame = Self::data_frame(seq, &payload);
            link.unacked.insert(seq, frame.clone());
            frame
        };
        self.inner.send(session, from, to, frame);
    }

    fn recv(&self, session: SessionId, node: NodeId) -> Result<Envelope, NetError> {
        self.recv_filtered(session, node, None)
    }

    fn recv_from(
        &self,
        session: SessionId,
        node: NodeId,
        from: NodeId,
    ) -> Result<Envelope, NetError> {
        self.recv_filtered(session, node, Some(from))
    }

    fn charge(&self, session: SessionId, node: NodeId, cost: SimTime) {
        self.inner.charge(session, node, cost);
    }

    fn counters(&self, session: SessionId) -> (u64, u64) {
        self.inner.counters(session)
    }

    fn elapsed(&self, session: SessionId) -> SimTime {
        self.inner.elapsed(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultOutcome, FaultPlan};
    use crate::sim::{NetConfig, SimNet};
    use crate::{ChannelNet, Session, SharedNet, SimLink};
    use std::time::Duration;

    fn lossy_net(drop: f64, dup: f64, corrupt: f64, seed: u64) -> SimNet {
        let mut faults = FaultPlan::none();
        faults.drop_probability = drop;
        faults.duplicate_probability = dup;
        faults.corrupt_probability = corrupt;
        SimNet::new(
            3,
            NetConfig::ideal()
                .with_faults(faults)
                .with_seed(seed)
                .with_latency(crate::latency::LatencyModel::lan()),
        )
    }

    /// Ships `count` numbered messages 0→1 and checks exactly-once,
    /// in-order delivery.
    fn ship(session: &Session<'_>, count: u8) {
        for i in 0..count {
            session.send(NodeId(0), NodeId(1), Bytes::copy_from_slice(&[i]));
        }
        for i in 0..count {
            let m = session.recv(NodeId(1)).expect("reliable recv");
            assert_eq!(m.payload[0], i, "exactly-once, in-order");
            assert_eq!(m.from, NodeId(0));
        }
    }

    #[test]
    fn clean_link_round_trips() {
        let mut net = lossy_net(0.0, 0.0, 0.0, 1);
        let link = SimLink::new(&mut net);
        let reliable = Reliable::new(&link);
        ship(&Session::root(&reliable), 20);
    }

    #[test]
    fn survives_drops_duplicates_and_corruption() {
        for seed in 0..5 {
            let mut net = lossy_net(0.15, 0.1, 0.1, seed);
            let link = SimLink::new(&mut net);
            let reliable = Reliable::new(&link);
            ship(&Session::root(&reliable), 30);
        }
    }

    #[test]
    fn suppresses_targeted_duplicate() {
        let mut net = lossy_net(0.0, 0.0, 0.0, 1);
        net.faults_mut().inject_once(0, 1, FaultOutcome::Duplicate);
        let link = SimLink::new(&mut net);
        let reliable = Reliable::new(&link);
        let session = Session::root(&reliable);
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"once"));
        assert_eq!(&session.recv(NodeId(1)).unwrap().payload[..], b"once");
        // The duplicate must not surface as a second delivery.
        assert_eq!(
            session.recv(NodeId(1)).unwrap_err(),
            NetError::Timeout(NodeId(1))
        );
    }

    #[test]
    fn recovers_targeted_corruption_by_retransmit() {
        let mut net = lossy_net(0.0, 0.0, 0.0, 1);
        net.faults_mut().inject_once(0, 1, FaultOutcome::Corrupt);
        let link = SimLink::new(&mut net);
        let reliable = Reliable::new(&link);
        let session = Session::root(&reliable);
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"precious"));
        let m = session.recv(NodeId(1)).unwrap();
        assert_eq!(&m.payload[..], b"precious", "garbage never surfaces");
    }

    #[test]
    fn recv_times_out_instead_of_hanging() {
        let mut net = lossy_net(0.0, 0.0, 0.0, 1);
        let link = SimLink::new(&mut net);
        let reliable = Reliable::with_config(&link, ReliableConfig::default().with_max_retries(3));
        let session = Session::root(&reliable);
        // Nothing was ever sent: bounded retries, then Timeout.
        assert_eq!(
            session.recv(NodeId(1)).unwrap_err(),
            NetError::Timeout(NodeId(1))
        );
    }

    #[test]
    fn timeout_when_peer_is_dead() {
        let mut net = lossy_net(0.0, 0.0, 0.0, 1);
        net.faults_mut().kill_node(0);
        let link = SimLink::new(&mut net);
        let reliable = Reliable::new(&link);
        let session = Session::root(&reliable);
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"lost cause"));
        assert_eq!(
            session.recv(NodeId(1)).unwrap_err(),
            NetError::Timeout(NodeId(1))
        );
    }

    #[test]
    fn backoff_grows_and_jitter_is_deterministic() {
        let cfg = ReliableConfig::default().with_seed(7);
        let b1 = cfg.backoff(SessionId(1), NodeId(0), 1);
        let b2 = cfg.backoff(SessionId(1), NodeId(0), 2);
        let b3 = cfg.backoff(SessionId(1), NodeId(0), 3);
        assert!(b2 > b1 && b3 > b2, "exponential growth");
        assert_eq!(b1, cfg.backoff(SessionId(1), NodeId(0), 1), "deterministic");
        assert_ne!(
            cfg.backoff(SessionId(1), NodeId(0), 1),
            cfg.backoff(SessionId(2), NodeId(0), 1),
            "jitter decorrelated across sessions"
        );
    }

    #[test]
    fn retransmission_charges_virtual_time() {
        let mut net = lossy_net(0.0, 0.0, 0.0, 1);
        net.faults_mut().inject_once(0, 1, FaultOutcome::Drop);
        let link = SimLink::new(&mut net);
        let reliable = Reliable::new(&link);
        let session = Session::root(&reliable);
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"x"));
        let _ = session.recv(NodeId(1)).unwrap();
        assert!(
            session.elapsed() >= ReliableConfig::default().base_timeout,
            "the retransmission timer shows up in virtual time"
        );
    }

    #[test]
    fn selective_receive_keeps_other_senders_queued() {
        let mut net = lossy_net(0.0, 0.0, 0.0, 1);
        let link = SimLink::new(&mut net);
        let reliable = Reliable::new(&link);
        let session = Session::root(&reliable);
        session.send(NodeId(2), NodeId(1), Bytes::from_static(b"from-2"));
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"from-0"));
        let m = session.recv_from(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(&m.payload[..], b"from-0");
        let m = session.recv_from(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(&m.payload[..], b"from-2");
    }

    #[test]
    fn works_over_shared_net_sessions() {
        let shared = SharedNet::new(lossy_net(0.1, 0.1, 0.05, 3));
        let s1 = shared.open_session();
        let s2 = shared.open_session();
        std::thread::scope(|scope| {
            for sid in [s1, s2] {
                let shared = &shared;
                scope.spawn(move || {
                    let reliable = Reliable::new(shared);
                    ship(&Session::new(&reliable, sid), 25);
                });
            }
        });
    }

    #[test]
    fn works_over_channel_net() {
        let net = ChannelNet::with_timeout(2, Duration::from_millis(20));
        let reliable = Reliable::new(&net);
        std::thread::scope(|scope| {
            let reliable = &reliable;
            scope.spawn(move || {
                let session = Session::new(reliable, SessionId(4));
                let m = session.recv(NodeId(1)).unwrap();
                assert_eq!(&m.payload[..], b"ping");
                session.send(NodeId(1), NodeId(0), Bytes::from_static(b"pong"));
            });
            let session = Session::new(reliable, SessionId(4));
            session.send(NodeId(0), NodeId(1), Bytes::from_static(b"ping"));
            let reply = session.recv_from(NodeId(0), NodeId(1)).unwrap();
            assert_eq!(&reply.payload[..], b"pong");
        });
    }

    #[test]
    fn retransmission_backoff_drives_the_injected_clock() {
        use crate::time::{Clock, VirtualClock};
        let clock = Arc::new(VirtualClock::new());
        let mut net = lossy_net(0.0, 0.0, 0.0, 1);
        net.faults_mut().inject_once(0, 1, FaultOutcome::Drop);
        let link = SimLink::new(&mut net);
        let reliable = Reliable::new(&link).with_clock(Arc::clone(&clock) as _);
        let session = Session::root(&reliable);
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"x"));
        let _ = session.recv(NodeId(1)).unwrap();
        assert!(
            clock.now() >= ReliableConfig::default().base_timeout,
            "the retransmission timer must pass on the time driver too"
        );
    }

    #[test]
    fn reliable_is_object_safe() {
        fn take(_: &dyn Transport) {}
        let mut net = lossy_net(0.0, 0.0, 0.0, 1);
        let link = SimLink::new(&mut net);
        take(&Reliable::new(&link));
    }
}
