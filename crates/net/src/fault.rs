//! Fault injection for protocol robustness tests.

use rand::Rng;

/// What the network decided to do with one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Delivered normally.
    Deliver,
    /// Silently dropped.
    Drop,
    /// Delivered twice (duplicate in flight).
    Duplicate,
    /// Delivered with a corrupted payload (one byte flipped).
    Corrupt,
}

/// Probabilistic fault plan applied to every message, plus targeted
/// one-shot faults for deterministic failure tests.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability a message is dropped.
    pub drop_probability: f64,
    /// Probability a message is duplicated.
    pub duplicate_probability: f64,
    /// Probability a message payload is corrupted.
    pub corrupt_probability: f64,
    targeted: Vec<TargetedFault>,
}

#[derive(Clone, Debug, PartialEq)]
struct TargetedFault {
    from: usize,
    to: usize,
    outcome: FaultOutcome,
}

impl FaultPlan {
    /// A fault-free network.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A lossy network dropping each message with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[must_use]
    pub fn lossy(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        FaultPlan {
            drop_probability: p,
            ..FaultPlan::default()
        }
    }

    /// Queues a one-shot fault for the next message `from → to`.
    /// Targeted faults fire before probabilistic ones and in FIFO order.
    pub fn inject_once(&mut self, from: usize, to: usize, outcome: FaultOutcome) {
        self.targeted.push(TargetedFault { from, to, outcome });
    }

    /// Decides the fate of one message.
    pub fn decide<R: Rng + ?Sized>(&mut self, from: usize, to: usize, rng: &mut R) -> FaultOutcome {
        if let Some(pos) = self
            .targeted
            .iter()
            .position(|t| t.from == from && t.to == to)
        {
            return self.targeted.remove(pos).outcome;
        }
        let roll: f64 = rng.gen();
        if roll < self.drop_probability {
            FaultOutcome::Drop
        } else if roll < self.drop_probability + self.duplicate_probability {
            FaultOutcome::Duplicate
        } else if roll
            < self.drop_probability + self.duplicate_probability + self.corrupt_probability
        {
            FaultOutcome::Corrupt
        } else {
            FaultOutcome::Deliver
        }
    }

    /// Number of pending targeted faults.
    #[must_use]
    pub fn pending_targeted(&self) -> usize {
        self.targeted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(9)
    }

    #[test]
    fn no_faults_always_delivers() {
        let mut plan = FaultPlan::none();
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Deliver);
        }
    }

    #[test]
    fn full_loss_always_drops() {
        let mut plan = FaultPlan::lossy(1.0);
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Drop);
        }
    }

    #[test]
    fn partial_loss_is_roughly_calibrated() {
        let mut plan = FaultPlan::lossy(0.3);
        let mut rng = rng();
        let drops = (0..10_000)
            .filter(|_| plan.decide(0, 1, &mut rng) == FaultOutcome::Drop)
            .count();
        assert!((2_500..3_500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn targeted_fault_fires_once_for_matching_link() {
        let mut plan = FaultPlan::none();
        let mut rng = rng();
        plan.inject_once(2, 3, FaultOutcome::Corrupt);
        // Non-matching link unaffected.
        assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Deliver);
        assert_eq!(plan.pending_targeted(), 1);
        // Matching link gets the fault exactly once.
        assert_eq!(plan.decide(2, 3, &mut rng), FaultOutcome::Corrupt);
        assert_eq!(plan.decide(2, 3, &mut rng), FaultOutcome::Deliver);
        assert_eq!(plan.pending_targeted(), 0);
    }

    #[test]
    fn targeted_faults_fifo_per_link() {
        let mut plan = FaultPlan::none();
        let mut rng = rng();
        plan.inject_once(0, 1, FaultOutcome::Drop);
        plan.inject_once(0, 1, FaultOutcome::Duplicate);
        assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Drop);
        assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Duplicate);
        assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Deliver);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn lossy_rejects_bad_probability() {
        let _ = FaultPlan::lossy(1.5);
    }
}
