//! Fault injection for protocol robustness tests.

use crate::SessionId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Derives the fault-roll RNG for one session from the cluster seed.
///
/// The stream constant differs from the latency stream's, so fault
/// decisions and latency samples are statistically independent *and*
/// individually reproducible: chaos tests are deterministic per
/// (seed, session) without coupling the two processes.
#[must_use]
pub fn fault_rng(cluster_seed: u64, session: SessionId) -> StdRng {
    let mut x = session.0.wrapping_add(0xD1B5_4A32_D192_ED03);
    let stream = rand::splitmix64(&mut x);
    StdRng::seed_from_u64(cluster_seed ^ stream)
}

/// What the network decided to do with one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Delivered normally.
    Deliver,
    /// Silently dropped.
    Drop,
    /// Delivered twice (duplicate in flight).
    Duplicate,
    /// Delivered with a corrupted payload (one byte flipped).
    Corrupt,
}

/// Probabilistic fault plan applied to every message, plus targeted
/// one-shot faults for deterministic failure tests.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability a message is dropped.
    pub drop_probability: f64,
    /// Probability a message is duplicated.
    pub duplicate_probability: f64,
    /// Probability a message payload is corrupted.
    pub corrupt_probability: f64,
    targeted: Vec<TargetedFault>,
    /// Nodes declared dead: every message to or from them is dropped.
    dead: BTreeSet<usize>,
}

#[derive(Clone, Debug, PartialEq)]
struct TargetedFault {
    from: usize,
    to: usize,
    outcome: FaultOutcome,
}

impl FaultPlan {
    /// A fault-free network.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A lossy network dropping each message with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[must_use]
    pub fn lossy(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        FaultPlan {
            drop_probability: p,
            ..FaultPlan::default()
        }
    }

    /// Queues a one-shot fault for the next message `from → to`.
    /// Targeted faults fire before probabilistic ones and in FIFO order.
    pub fn inject_once(&mut self, from: usize, to: usize, outcome: FaultOutcome) {
        self.targeted.push(TargetedFault { from, to, outcome });
    }

    /// Declares `node` dead: from now on every message to or from it is
    /// dropped, modelling a crashed DLA node.
    pub fn kill_node(&mut self, node: usize) {
        self.dead.insert(node);
    }

    /// Brings a dead node back (messages flow again; no state is
    /// restored — that's the recovery subsystem's job).
    pub fn revive_node(&mut self, node: usize) {
        self.dead.remove(&node);
    }

    /// Nodes currently declared dead.
    #[must_use]
    pub fn dead_nodes(&self) -> &BTreeSet<usize> {
        &self.dead
    }

    /// Decides the fate of one message.
    pub fn decide<R: Rng + ?Sized>(&mut self, from: usize, to: usize, rng: &mut R) -> FaultOutcome {
        if self.dead.contains(&from) || self.dead.contains(&to) {
            return FaultOutcome::Drop;
        }
        if let Some(pos) = self
            .targeted
            .iter()
            .position(|t| t.from == from && t.to == to)
        {
            return self.targeted.remove(pos).outcome;
        }
        let roll: f64 = rng.gen();
        if roll < self.drop_probability {
            FaultOutcome::Drop
        } else if roll < self.drop_probability + self.duplicate_probability {
            FaultOutcome::Duplicate
        } else if roll
            < self.drop_probability + self.duplicate_probability + self.corrupt_probability
        {
            FaultOutcome::Corrupt
        } else {
            FaultOutcome::Deliver
        }
    }

    /// Number of pending targeted faults.
    #[must_use]
    pub fn pending_targeted(&self) -> usize {
        self.targeted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        // Derived the same way SimNet derives per-session fault
        // streams: cluster seed + session id, not a magic constant.
        fault_rng(9, SessionId::ROOT)
    }

    #[test]
    fn fault_rng_is_deterministic_and_session_independent() {
        let draw = |seed, session| fault_rng(seed, session).gen::<u64>();
        assert_eq!(draw(7, SessionId(3)), draw(7, SessionId(3)));
        assert_ne!(draw(7, SessionId(3)), draw(7, SessionId(4)));
        assert_ne!(draw(7, SessionId(3)), draw(8, SessionId(3)));
    }

    #[test]
    fn no_faults_always_delivers() {
        let mut plan = FaultPlan::none();
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Deliver);
        }
    }

    #[test]
    fn full_loss_always_drops() {
        let mut plan = FaultPlan::lossy(1.0);
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Drop);
        }
    }

    #[test]
    fn partial_loss_is_roughly_calibrated() {
        let mut plan = FaultPlan::lossy(0.3);
        let mut rng = rng();
        let drops = (0..10_000)
            .filter(|_| plan.decide(0, 1, &mut rng) == FaultOutcome::Drop)
            .count();
        assert!((2_500..3_500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn targeted_fault_fires_once_for_matching_link() {
        let mut plan = FaultPlan::none();
        let mut rng = rng();
        plan.inject_once(2, 3, FaultOutcome::Corrupt);
        // Non-matching link unaffected.
        assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Deliver);
        assert_eq!(plan.pending_targeted(), 1);
        // Matching link gets the fault exactly once.
        assert_eq!(plan.decide(2, 3, &mut rng), FaultOutcome::Corrupt);
        assert_eq!(plan.decide(2, 3, &mut rng), FaultOutcome::Deliver);
        assert_eq!(plan.pending_targeted(), 0);
    }

    #[test]
    fn targeted_faults_fifo_per_link() {
        let mut plan = FaultPlan::none();
        let mut rng = rng();
        plan.inject_once(0, 1, FaultOutcome::Drop);
        plan.inject_once(0, 1, FaultOutcome::Duplicate);
        assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Drop);
        assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Duplicate);
        assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Deliver);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn lossy_rejects_bad_probability() {
        let _ = FaultPlan::lossy(1.5);
    }

    #[test]
    fn dead_node_drops_all_traffic_until_revived() {
        let mut plan = FaultPlan::none();
        let mut rng = rng();
        plan.kill_node(2);
        assert_eq!(plan.decide(2, 0, &mut rng), FaultOutcome::Drop);
        assert_eq!(plan.decide(0, 2, &mut rng), FaultOutcome::Drop);
        assert_eq!(plan.decide(0, 1, &mut rng), FaultOutcome::Deliver);
        assert_eq!(plan.dead_nodes().iter().copied().collect::<Vec<_>>(), [2]);
        plan.revive_node(2);
        assert_eq!(plan.decide(0, 2, &mut rng), FaultOutcome::Deliver);
    }
}
