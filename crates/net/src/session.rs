//! Session-scoped transport abstraction.
//!
//! Protocol engines (`dla-mpc`) are written against a [`Session`]: a
//! [`SessionId`] bound to a [`Transport`]. The transport decides *how*
//! messages move; the session decides *which protocol instance* they
//! belong to. Three transports are provided:
//!
//! * [`SimLink`] — borrows a `&mut SimNet` for the classic
//!   single-threaded case (the legacy free-function protocol API wraps
//!   protocols in a `SimLink` on the root session).
//! * [`SharedNet`] — a mutex-guarded [`SimNet`] that many threads can
//!   drive at once, one session per thread. This is what the concurrent
//!   subquery scheduler in `dla-audit` uses: virtual time stays
//!   deterministic per session while real threads interleave freely.
//! * [`ChannelNet`] — a crossbeam-channel transport where every message
//!   crosses the wire as an [`Envelope::encode`] frame, session id
//!   first. Receivers demultiplex by session, so independent protocol
//!   instances can share one physical network of OS threads.

use crate::sim::{Envelope, SimNet};
use crate::stats::TrafficStats;
use crate::time::{Clock, SimTime, WallClock};
use crate::{NetError, NodeId, SessionId};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, MutexGuard};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// A network that can carry several protocol sessions at once.
///
/// All methods take `&self`: implementations use interior mutability so
/// one transport can be shared by concurrent protocol sessions.
pub trait Transport {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Sends `payload` from `from` to `to` within `session`.
    fn send(&self, session: SessionId, from: NodeId, to: NodeId, payload: Bytes);

    /// Receives the earliest pending message for `node` in `session`.
    ///
    /// # Errors
    ///
    /// Transport-specific: [`NetError::EmptyInbox`] on the simulator,
    /// [`NetError::Timeout`] on threaded transports.
    fn recv(&self, session: SessionId, node: NodeId) -> Result<Envelope, NetError>;

    /// Selective receive: the earliest pending message for `node` in
    /// `session` sent by `from`.
    ///
    /// # Errors
    ///
    /// As [`Transport::recv`], plus [`NetError::UnexpectedSender`] on
    /// the simulator when another sender's message is at the head.
    fn recv_from(
        &self,
        session: SessionId,
        node: NodeId,
        from: NodeId,
    ) -> Result<Envelope, NetError>;

    /// Charges local computation time to `node`'s clock in `session`
    /// (no-op on transports without virtual time).
    fn charge(&self, session: SessionId, node: NodeId, cost: SimTime);

    /// `(messages, bytes)` sent so far within `session`.
    fn counters(&self, session: SessionId) -> (u64, u64);

    /// Virtual makespan of `session` (zero on transports without
    /// virtual time).
    fn elapsed(&self, session: SessionId) -> SimTime;
}

/// One protocol instance's handle onto a [`Transport`].
///
/// Copyable and cheap: protocol code passes `&Session` down its call
/// tree exactly like it used to pass `&mut SimNet`.
#[derive(Clone, Copy)]
pub struct Session<'a> {
    transport: &'a dyn Transport,
    id: SessionId,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Session({})", self.id)
    }
}

impl<'a> Session<'a> {
    /// Binds `id` on `transport`.
    #[must_use]
    pub fn new(transport: &'a dyn Transport, id: SessionId) -> Self {
        Session { transport, id }
    }

    /// The root session — what the legacy single-protocol API runs on.
    #[must_use]
    pub fn root(transport: &'a dyn Transport) -> Self {
        Session::new(transport, SessionId::ROOT)
    }

    /// This session's id.
    #[must_use]
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Number of nodes on the underlying transport.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.transport.num_nodes()
    }

    /// Sends within this session.
    pub fn send(&self, from: NodeId, to: NodeId, payload: Bytes) {
        self.transport.send(self.id, from, to, payload);
    }

    /// Receives within this session. Messages corrupted in flight are
    /// consumed but surfaced as [`NetError::Corrupt`] — protocol code
    /// never sees garbage bytes.
    ///
    /// # Errors
    ///
    /// See [`Transport::recv`], plus [`NetError::Corrupt`] on a
    /// checksum failure.
    pub fn recv(&self, node: NodeId) -> Result<Envelope, NetError> {
        Self::intact(self.transport.recv(self.id, node)?, node)
    }

    /// Selective receive within this session; rejects corrupted
    /// messages like [`Session::recv`].
    ///
    /// # Errors
    ///
    /// See [`Transport::recv_from`], plus [`NetError::Corrupt`] on a
    /// checksum failure.
    pub fn recv_from(&self, node: NodeId, from: NodeId) -> Result<Envelope, NetError> {
        Self::intact(self.transport.recv_from(self.id, node, from)?, node)
    }

    fn intact(envelope: Envelope, node: NodeId) -> Result<Envelope, NetError> {
        if envelope.is_intact() {
            Ok(envelope)
        } else {
            Err(NetError::Corrupt(node))
        }
    }

    /// Charges compute time within this session.
    pub fn charge(&self, node: NodeId, cost: SimTime) {
        self.transport.charge(self.id, node, cost);
    }

    /// `(messages, bytes)` sent so far within this session.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        self.transport.counters(self.id)
    }

    /// Virtual makespan of this session.
    #[must_use]
    pub fn elapsed(&self) -> SimTime {
        self.transport.elapsed(self.id)
    }
}

/// Adapts an exclusively borrowed [`SimNet`] to the [`Transport`]
/// trait for single-threaded protocol runs.
pub struct SimLink<'n> {
    net: RefCell<&'n mut SimNet>,
}

impl<'n> SimLink<'n> {
    /// Wraps `net`.
    #[must_use]
    pub fn new(net: &'n mut SimNet) -> Self {
        SimLink {
            net: RefCell::new(net),
        }
    }

    /// Runs `f` with mutable access to the wrapped net — e.g. to
    /// inject targeted faults between protocol operations in tests.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from inside a transport
    /// operation on this link.
    pub fn with_net<R>(&self, f: impl FnOnce(&mut SimNet) -> R) -> R {
        let mut guard = self.net.borrow_mut();
        f(&mut guard)
    }
}

impl Transport for SimLink<'_> {
    fn num_nodes(&self) -> usize {
        self.net.borrow().num_nodes()
    }

    fn send(&self, session: SessionId, from: NodeId, to: NodeId, payload: Bytes) {
        self.net.borrow_mut().send_on(session, from, to, payload);
    }

    fn recv(&self, session: SessionId, node: NodeId) -> Result<Envelope, NetError> {
        self.net.borrow_mut().recv_on(session, node)
    }

    fn recv_from(
        &self,
        session: SessionId,
        node: NodeId,
        from: NodeId,
    ) -> Result<Envelope, NetError> {
        self.net.borrow_mut().recv_from_on(session, node, from)
    }

    fn charge(&self, session: SessionId, node: NodeId, cost: SimTime) {
        self.net.borrow_mut().charge_on(session, node, cost);
    }

    fn counters(&self, session: SessionId) -> (u64, u64) {
        let net = self.net.borrow();
        let s = net.stats().session(session);
        (s.messages, s.bytes)
    }

    fn elapsed(&self, session: SessionId) -> SimTime {
        self.net.borrow().session_elapsed(session)
    }
}

/// A [`SimNet`] shared by concurrent protocol sessions.
///
/// Each operation takes the lock briefly, so real OS threads can each
/// drive their own session over one simulated network. Virtual time and
/// delivery order stay deterministic *per session* (see
/// [`SimNet`]'s session partitioning) no matter how the threads
/// interleave.
#[derive(Debug)]
pub struct SharedNet {
    net: Mutex<SimNet>,
}

impl SharedNet {
    /// Wraps `net` for shared use.
    #[must_use]
    pub fn new(net: SimNet) -> Self {
        SharedNet {
            net: Mutex::new(net),
        }
    }

    /// Runs `f` with exclusive access to the underlying simulator.
    pub fn with<R>(&self, f: impl FnOnce(&mut SimNet) -> R) -> R {
        f(&mut self.net.lock())
    }

    /// Locks the underlying simulator for direct use (the guard derefs
    /// to [`SimNet`], so legacy `&mut SimNet` call sites keep working).
    pub fn lock(&self) -> MutexGuard<'_, SimNet> {
        self.net.lock()
    }

    /// Allocates a fresh session id.
    pub fn open_session(&self) -> SessionId {
        self.net.lock().open_session()
    }

    /// Unwraps the simulator.
    #[must_use]
    pub fn into_inner(self) -> SimNet {
        self.net.into_inner()
    }
}

impl Transport for SharedNet {
    fn num_nodes(&self) -> usize {
        self.net.lock().num_nodes()
    }

    fn send(&self, session: SessionId, from: NodeId, to: NodeId, payload: Bytes) {
        self.net.lock().send_on(session, from, to, payload);
    }

    fn recv(&self, session: SessionId, node: NodeId) -> Result<Envelope, NetError> {
        self.net.lock().recv_on(session, node)
    }

    fn recv_from(
        &self,
        session: SessionId,
        node: NodeId,
        from: NodeId,
    ) -> Result<Envelope, NetError> {
        self.net.lock().recv_from_on(session, node, from)
    }

    fn charge(&self, session: SessionId, node: NodeId, cost: SimTime) {
        self.net.lock().charge_on(session, node, cost);
    }

    fn counters(&self, session: SessionId) -> (u64, u64) {
        let net = self.net.lock();
        let s = net.stats().session(session);
        (s.messages, s.bytes)
    }

    fn elapsed(&self, session: SessionId) -> SimTime {
        self.net.lock().session_elapsed(session)
    }
}

/// Per-node receive side of a [`ChannelNet`]: the channel receiver plus
/// a stash of frames that arrived for other sessions (or other senders
/// during a selective receive).
#[derive(Debug)]
struct ChannelInbox {
    rx: Receiver<Bytes>,
    stash: VecDeque<Envelope>,
}

/// A threaded transport: messages travel between nodes as
/// [`Envelope::encode`] wire frames over crossbeam channels, and the
/// receive side demultiplexes them by the session id that leads every
/// frame.
///
/// Unlike the simulator there is no virtual time — `recv` genuinely
/// blocks (up to the configured timeout) waiting for another OS thread
/// to produce the message.
#[derive(Debug)]
pub struct ChannelNet {
    senders: Vec<Sender<Bytes>>,
    inboxes: Vec<Mutex<ChannelInbox>>,
    stats: Mutex<TrafficStats>,
    timeout: SimTime,
    clock: Arc<dyn Clock>,
}

impl ChannelNet {
    /// Builds a fully connected `n`-node channel network with a 5 s
    /// receive timeout.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_timeout(n, Duration::from_secs(5))
    }

    /// As [`ChannelNet::new`] with an explicit receive timeout, driven
    /// by a [`WallClock`] (receives block in real time).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_timeout(n: usize, timeout: Duration) -> Self {
        let timeout = SimTime::from_nanos(u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX));
        Self::with_clock(n, timeout, Arc::new(WallClock::new()))
    }

    /// As [`ChannelNet::with_timeout`] with an explicit [`Clock`]
    /// driver for the receive deadlines. Under a wall clock each
    /// fruitless wait slice counts against the real deadline; under a
    /// virtual clock the transport itself advances the clock by the
    /// waited span when a slice expires, so the deadline still fires.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_clock(n: usize, timeout: SimTime, clock: Arc<dyn Clock>) -> Self {
        assert!(n > 0, "network needs at least one node");
        let (senders, inboxes): (Vec<_>, Vec<_>) = (0..n)
            .map(|_| {
                let (tx, rx) = unbounded();
                (
                    tx,
                    Mutex::new(ChannelInbox {
                        rx,
                        stash: VecDeque::new(),
                    }),
                )
            })
            .unzip();
        ChannelNet {
            senders,
            inboxes,
            stats: Mutex::new(TrafficStats::new()),
            timeout,
            clock,
        }
    }

    /// The clock driving this transport's receive deadlines.
    #[must_use]
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// A snapshot of the traffic counters.
    #[must_use]
    pub fn stats(&self) -> TrafficStats {
        self.stats.lock().clone()
    }

    /// Blocking receive with session (and optional sender) filtering.
    fn recv_filtered(
        &self,
        session: SessionId,
        node: NodeId,
        from: Option<NodeId>,
    ) -> Result<Envelope, NetError> {
        assert!(node.0 < self.senders.len(), "node {node} out of range");
        let mut inbox = self.inboxes[node.0].lock();
        let matches = |e: &Envelope| e.session == session && from.is_none_or(|f| e.from == f);
        // Earlier arrivals first: check the stash before the channel.
        if let Some(pos) = inbox.stash.iter().position(&matches) {
            let envelope = inbox.stash.remove(pos).expect("position just found");
            self.stats
                .lock()
                .record_delivery(envelope.session, envelope.payload.len());
            dla_telemetry::record(dla_telemetry::CostKind::MsgDelivered, 1);
            return Ok(envelope);
        }
        let deadline = self.clock.now() + self.timeout;
        loop {
            let now = self.clock.now();
            if now >= deadline {
                return Err(NetError::Timeout(node));
            }
            let left = deadline - now;
            let frame = match inbox.rx.recv_timeout(left.to_duration()) {
                Ok(frame) => frame,
                Err(_) => {
                    // A virtual clock does not move on its own: the
                    // transport advances it by the span it just waited
                    // out so the deadline check above fires.
                    if self.clock.is_virtual() {
                        self.clock.advance(left);
                    }
                    continue;
                }
            };
            // A frame that fails to decode (truncation or checksum
            // mismatch) is discarded: a reliable layer above recovers
            // it by retransmission, and an unreliable caller would
            // rather time out than consume garbage.
            let Ok(envelope) = Envelope::decode(&frame) else {
                continue;
            };
            if matches(&envelope) {
                self.stats
                    .lock()
                    .record_delivery(envelope.session, envelope.payload.len());
                dla_telemetry::record(dla_telemetry::CostKind::MsgDelivered, 1);
                return Ok(envelope);
            }
            // A frame for another session (or sender): keep it for the
            // receive that wants it.
            inbox.stash.push_back(envelope);
        }
    }
}

impl Transport for ChannelNet {
    fn num_nodes(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, session: SessionId, from: NodeId, to: NodeId, payload: Bytes) {
        assert!(to.0 < self.senders.len(), "node {to} out of range");
        self.stats
            .lock()
            .record_send(session, from.0, to.0, payload.len(), SimTime::ZERO);
        dla_telemetry::record(dla_telemetry::CostKind::MsgSent, 1);
        dla_telemetry::record(dla_telemetry::CostKind::BytesSent, payload.len() as u64);
        let envelope = Envelope::new(session, from, to, payload, SimTime::ZERO, SimTime::ZERO);
        if self.senders[to.0].send(envelope.encode()).is_err() {
            self.stats.lock().messages_dropped += 1;
        }
    }

    fn recv(&self, session: SessionId, node: NodeId) -> Result<Envelope, NetError> {
        self.recv_filtered(session, node, None)
    }

    fn recv_from(
        &self,
        session: SessionId,
        node: NodeId,
        from: NodeId,
    ) -> Result<Envelope, NetError> {
        self.recv_filtered(session, node, Some(from))
    }

    fn charge(&self, _session: SessionId, _node: NodeId, _cost: SimTime) {
        // Real threads: compute time is real time, nothing to model.
    }

    fn counters(&self, session: SessionId) -> (u64, u64) {
        let stats = self.stats.lock();
        let s = stats.session(session);
        (s.messages, s.bytes)
    }

    fn elapsed(&self, _session: SessionId) -> SimTime {
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NetConfig;
    use std::thread;

    #[test]
    fn session_over_simlink_round_trips() {
        let mut net = SimNet::new(2, NetConfig::ideal());
        {
            let link = SimLink::new(&mut net);
            let session = Session::root(&link);
            session.send(NodeId(0), NodeId(1), Bytes::from_static(b"hi"));
            let m = session.recv(NodeId(1)).unwrap();
            assert_eq!(&m.payload[..], b"hi");
            assert_eq!(session.counters(), (1, 2));
        }
        // Traffic went through the underlying SimNet's ledger.
        assert_eq!(net.stats().messages_sent, 1);
    }

    #[test]
    fn two_sessions_multiplex_over_one_simlink() {
        let mut net = SimNet::new(2, NetConfig::ideal());
        let link = SimLink::new(&mut net);
        let a = Session::new(&link, SessionId(1));
        let b = Session::new(&link, SessionId(2));
        a.send(NodeId(0), NodeId(1), Bytes::from_static(b"aa"));
        b.send(NodeId(0), NodeId(1), Bytes::from_static(b"bb"));
        // Each session only sees its own traffic.
        assert_eq!(&b.recv(NodeId(1)).unwrap().payload[..], b"bb");
        assert_eq!(&a.recv(NodeId(1)).unwrap().payload[..], b"aa");
        assert!(a.recv(NodeId(1)).is_err());
        assert_eq!(a.counters(), (1, 2));
        assert_eq!(b.counters(), (1, 2));
    }

    #[test]
    fn shared_net_supports_threaded_sessions() {
        let shared = SharedNet::new(SimNet::new(2, NetConfig::ideal()));
        let s1 = shared.open_session();
        let s2 = shared.open_session();
        thread::scope(|scope| {
            for sid in [s1, s2] {
                let shared = &shared;
                scope.spawn(move || {
                    let session = Session::new(shared, sid);
                    for i in 0..20u8 {
                        session.send(NodeId(0), NodeId(1), Bytes::copy_from_slice(&[i]));
                        let m = session.recv(NodeId(1)).unwrap();
                        assert_eq!(m.payload[0], i);
                        assert_eq!(m.session, sid);
                    }
                });
            }
        });
        let net = shared.into_inner();
        assert_eq!(net.stats().messages_sent, 40);
        assert_eq!(net.stats().session(s1).messages, 20);
        assert_eq!(net.stats().session(s2).messages, 20);
    }

    #[test]
    fn channel_net_ships_envelopes_across_threads() {
        let net = ChannelNet::new(2);
        thread::scope(|scope| {
            let net = &net;
            scope.spawn(move || {
                let session = Session::new(net, SessionId(9));
                let m = session.recv(NodeId(1)).unwrap();
                assert_eq!(&m.payload[..], b"ping");
                assert_eq!(m.session, SessionId(9));
                session.send(NodeId(1), NodeId(0), Bytes::from_static(b"pong"));
            });
            let session = Session::new(net, SessionId(9));
            session.send(NodeId(0), NodeId(1), Bytes::from_static(b"ping"));
            let reply = session.recv_from(NodeId(0), NodeId(1)).unwrap();
            assert_eq!(&reply.payload[..], b"pong");
        });
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 2);
        assert_eq!(stats.session(SessionId(9)).messages, 2);
    }

    #[test]
    fn channel_net_demultiplexes_sessions() {
        // A frame for session 2 arrives first; a recv on session 1 must
        // skip past it (stashing it) and session 2's recv still gets it.
        let net = ChannelNet::new(2);
        let s1 = Session::new(&net, SessionId(1));
        let s2 = Session::new(&net, SessionId(2));
        s2.send(NodeId(0), NodeId(1), Bytes::from_static(b"for-2"));
        s1.send(NodeId(0), NodeId(1), Bytes::from_static(b"for-1"));
        assert_eq!(&s1.recv(NodeId(1)).unwrap().payload[..], b"for-1");
        assert_eq!(&s2.recv(NodeId(1)).unwrap().payload[..], b"for-2");
    }

    #[test]
    fn channel_net_recv_times_out() {
        let net = ChannelNet::with_timeout(2, Duration::from_millis(10));
        let session = Session::root(&net);
        assert_eq!(
            session.recv(NodeId(0)).unwrap_err(),
            NetError::Timeout(NodeId(0))
        );
    }

    #[test]
    fn channel_net_deadline_runs_on_the_injected_clock() {
        use crate::time::{Clock, VirtualClock};
        let clock = Arc::new(VirtualClock::new());
        let net = ChannelNet::with_clock(2, SimTime::from_millis(2), Arc::clone(&clock) as _);
        let session = Session::root(&net);
        // The wait charges the virtual clock instead of real time.
        assert_eq!(
            session.recv(NodeId(0)).unwrap_err(),
            NetError::Timeout(NodeId(0))
        );
        assert!(clock.now() >= SimTime::from_millis(2));
        // Delivery still works after a timeout, and a pre-advanced
        // clock shifts (not shrinks) the deadline window.
        clock.advance(SimTime::from_millis(10));
        session.send(NodeId(1), NodeId(0), Bytes::from_static(b"late"));
        assert_eq!(&session.recv(NodeId(0)).unwrap().payload[..], b"late");
    }

    #[test]
    fn transports_are_object_safe() {
        fn take(_: &dyn Transport) {}
        let mut net = SimNet::new(1, NetConfig::ideal());
        take(&SimLink::new(&mut net));
        take(&ChannelNet::new(1));
        let shared = SharedNet::new(SimNet::new(1, NetConfig::ideal()));
        take(&shared);
    }
}
