//! A socket transport that crosses process boundaries ([`TcpNet`]).
//!
//! Every other backend ([`crate::SimLink`], [`crate::SharedNet`],
//! [`crate::ChannelNet`]) lives in one OS process. `TcpNet` is the
//! fourth [`Transport`]: messages travel as length-prefixed
//! [`Envelope::encode`] frames over `std::net` TCP connections between
//! genuinely separate processes, one per DLA or application node.
//!
//! # Deployment model
//!
//! The protocol engines in `dla-mpc` are *centrally driven*: one
//! coordinator (the auditor's process) performs every node's sends and
//! receives over a [`Session`]. `TcpNet` keeps that driver intact while
//! making every hop cross real sockets:
//!
//! * `send(from, to)` where `from` is a remote node ships a **route**
//!   frame to the process serving `from`, which forwards the envelope
//!   to the process serving `to`, which hands it back to the
//!   coordinator as a **deliver** frame — three TCP legs, with the
//!   message genuinely transiting both owning processes.
//! * `recv(node)` pops the coordinator-side inbox that the reader /
//!   demux thread fills from incoming deliver frames, demultiplexed by
//!   session exactly like [`crate::ChannelNet`].
//! * Node processes run [`serve`] (the `dla-node` binary is a thin
//!   wrapper): an accept loop plus per-peer writer threads, a
//!   connect/accept handshake that exchanges node ids, dial-on-demand
//!   between peers with reconnect-and-backoff, and a deposit store for
//!   fragments shipped via [`TcpNet::deposit`].
//!
//! Timers run on the pluggable [`Clock`] driver ([`crate::WallClock`]
//! by default): receive deadlines, and — through
//! [`crate::Reliable::with_clock`] — real retransmission backoff.
//!
//! [`Session`]: crate::Session

use crate::sim::Envelope;
use crate::stats::TrafficStats;
use crate::time::{Clock, SimTime, WallClock};
use crate::wire::{crc32, Reader, Writer};
use crate::{NetError, NodeId, SessionId, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{self, Read, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Protocol magic exchanged in the handshake ("DLA1TCP1").
const MAGIC: u64 = 0x444C_4131_5443_5031;
/// The coordinator's id in the handshake (never a valid node index).
const COORD: u64 = u64::MAX;
/// Largest frame body accepted. A length prefix beyond this is
/// rejected *before* any allocation, so a hostile peer cannot make a
/// reader allocate unbounded memory.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

const FRAME_HELLO: u8 = 0x01;
const FRAME_ROUTE: u8 = 0x02;
const FRAME_FWD: u8 = 0x03;
const FRAME_DELIVER: u8 = 0x04;
const FRAME_STORE: u8 = 0x05;
const FRAME_STORED: u8 = 0x06;
const FRAME_SHUTDOWN: u8 = 0x07;
const FRAME_BYE: u8 = 0x08;

/// Writes one length-prefixed frame (`u32` big-endian length, then the
/// body).
///
/// # Errors
///
/// Propagates I/O failures; rejects bodies above [`MAX_FRAME`].
pub fn write_frame(w: &mut impl IoWrite, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    let len = body.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures (including clean EOF as
/// [`io::ErrorKind::UnexpectedEof`]); a length prefix above
/// [`MAX_FRAME`] yields [`io::ErrorKind::InvalidData`] **without
/// allocating**.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized frame length prefix",
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Decodes the envelope carried by a route/forward/deliver frame body
/// (everything after the tag byte). Truncated bytes, trailing bytes
/// and checksum mismatches all surface as [`NetError::Corrupt`] at
/// `node` — never a panic, and never silent garbage.
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on any malformed input.
pub fn decode_envelope(frame: &[u8], node: NodeId) -> Result<Envelope, NetError> {
    Envelope::decode(frame).map_err(|_| NetError::Corrupt(node))
}

fn envelope_frame(tag: u8, envelope: &Envelope) -> Vec<u8> {
    let encoded = envelope.encode();
    let mut body = Vec::with_capacity(1 + encoded.len());
    body.push(tag);
    body.extend_from_slice(&encoded);
    body
}

fn hello_frame(sender: u64, n: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(FRAME_HELLO)
        .put_u64(MAGIC)
        .put_u64(sender)
        .put_u64(n);
    w.finish().to_vec()
}

fn parse_hello(body: &[u8]) -> io::Result<(u64, u64)> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut r = Reader::new(body);
    match (r.get_u8(), r.get_u64(), r.get_u64(), r.get_u64()) {
        (Ok(FRAME_HELLO), Ok(magic), Ok(sender), Ok(n)) if magic == MAGIC => Ok((sender, n)),
        _ => Err(bad("malformed handshake")),
    }
}

/// Dials `addr`, retrying with exponential backoff until `deadline`
/// real time has passed — the reconnect discipline both the
/// coordinator and the peer-to-peer dial-on-demand path use (a peer
/// that is still starting up, or that dropped a connection, is retried
/// rather than declared gone).
fn dial_with_backoff(addr: SocketAddr, deadline: Duration) -> io::Result<TcpStream> {
    let started = std::time::Instant::now();
    let mut pause = Duration::from_millis(25);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                // Frames are small request/response units; Nagle plus
                // delayed ACK would add ~40ms stalls per hop.
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(e) if started.elapsed() >= deadline => return Err(e),
            Err(_) => {
                thread::sleep(pause);
                pause = (pause * 2).min(Duration::from_millis(800));
            }
        }
    }
}

/// Performs the connect-side handshake: announce ourselves, read the
/// peer's announcement back.
fn handshake(stream: &mut TcpStream, us: u64, n: u64) -> io::Result<(u64, u64)> {
    write_frame(stream, &hello_frame(us, n))?;
    let body = read_frame(stream)?;
    parse_hello(&body)
}

// ---------------------------------------------------------------------
// Node-process side: the serve loop behind the `dla-node` binary.
// ---------------------------------------------------------------------

/// Static configuration of one node process: its id, the peer table
/// (`None` entries are node ids the coordinator hosts in-process), a
/// role label and an identity key folded into the teardown digest.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's id (index into the peer table).
    pub id: usize,
    /// Listen/dial addresses per node id; `peers[id]` is this node's
    /// own address, `None` marks coordinator-hosted ids.
    pub peers: Vec<Option<SocketAddr>>,
    /// Role label ("ttp", "app", …) echoed in the report.
    pub role: String,
    /// Identity key: seeds the deposit digest so a report can be tied
    /// to the keyed node that produced it.
    pub key: u64,
}

/// What one node process did, reported in its farewell frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeReport {
    /// Node id.
    pub id: usize,
    /// Route frames executed (envelopes this node sent on behalf of
    /// the coordinator's driver).
    pub routed: u64,
    /// Forward frames received for this node and handed up.
    pub forwarded: u64,
    /// Fragments stored via [`TcpNet::deposit`].
    pub stored: u64,
    /// Total stored payload bytes.
    pub stored_bytes: u64,
    /// Running CRC-32 chain over the stored payloads, seeded with the
    /// node's identity key.
    pub digest: u64,
}

#[derive(Debug, Default)]
struct NodeStats {
    routed: u64,
    forwarded: u64,
    stored: u64,
    stored_bytes: u64,
    digest: u64,
    fragments: Vec<(u64, Vec<u8>)>,
}

#[derive(Debug)]
struct NodeState {
    id: u64,
    n: u64,
    peers: Vec<Option<SocketAddr>>,
    writers: Mutex<HashMap<u64, Sender<Vec<u8>>>>,
    /// Peers whose current connection *we* initiated. An inbound HELLO
    /// announcing such a peer is a simultaneous connect (both sides
    /// dialed at once), not a spoof, and must be accepted — rejecting
    /// it would close the stream the peer is already writing on.
    dialed: Mutex<BTreeSet<u64>>,
    writer_handles: Mutex<Vec<thread::JoinHandle<()>>>,
    stats: Mutex<NodeStats>,
    done: AtomicBool,
    done_tx: Sender<()>,
}

impl NodeState {
    /// Registers a connection's writer thread and returns the sending
    /// half. A peer with a live writer is only re-registered on a
    /// simultaneous connect (the accept loop checks `dialed`); any
    /// other replacement requires the dead connection to deregister
    /// itself first, so an impostor can never displace a live session.
    fn register(self: &Arc<Self>, peer: u64, stream: TcpStream) -> Sender<Vec<u8>> {
        let (tx, rx): (Sender<Vec<u8>>, Receiver<Vec<u8>>) = unbounded();
        let state = Arc::clone(self);
        let mut write_half = stream.try_clone().expect("clone stream for writer");
        let handle = thread::spawn(move || {
            // recv() keeps draining queued frames after every sender
            // drops, so shutdown can flush the farewell by dropping the
            // map entry and joining this thread.
            while let Ok(frame) = rx.recv() {
                if write_frame(&mut write_half, &frame).is_err() {
                    // Connection died: deregister so the next send
                    // re-dials with backoff.
                    state.writers.lock().remove(&peer);
                    state.dialed.lock().remove(&peer);
                    break;
                }
            }
        });
        self.writer_handles.lock().push(handle);
        self.writers.lock().insert(peer, tx.clone());
        let state = Arc::clone(self);
        thread::spawn(move || state.reader_loop(peer, stream));
        tx
    }

    /// A writer for `peer`, dialing on demand (with reconnect backoff)
    /// when no live connection exists. Peer ids the coordinator hosts
    /// in-process resolve to the coordinator connection.
    fn writer_for(self: &Arc<Self>, peer: u64) -> Option<Sender<Vec<u8>>> {
        let target = if (peer as usize) < self.peers.len() && self.peers[peer as usize].is_none() {
            COORD
        } else {
            peer
        };
        if let Some(tx) = self.writers.lock().get(&target) {
            return Some(tx.clone());
        }
        if target == COORD {
            return None; // the coordinator always dials us, never vice versa
        }
        if target == self.id {
            return None; // self-traffic is dispatched locally, never dialed
        }
        let addr = self.peers.get(target as usize).copied().flatten()?;
        let mut stream = dial_with_backoff(addr, Duration::from_secs(10)).ok()?;
        let (peer_id, _) = handshake(&mut stream, self.id, self.n).ok()?;
        if peer_id != target {
            // Whatever answered at the peer's address is lying about
            // its id; don't register a writer under a name it may use
            // to impersonate the real node.
            return None;
        }
        self.dialed.lock().insert(peer_id);
        Some(self.register(peer_id, stream))
    }

    fn reader_loop(self: Arc<Self>, peer: u64, mut stream: TcpStream) {
        loop {
            if self.done.load(Ordering::Acquire) {
                return;
            }
            let Ok(body) = read_frame(&mut stream) else {
                return;
            };
            self.dispatch(peer, &body);
        }
    }

    fn dispatch(self: &Arc<Self>, peer: u64, body: &[u8]) {
        match body.first().copied() {
            Some(FRAME_ROUTE) => {
                let Ok(envelope) = decode_envelope(&body[1..], NodeId(self.id as usize)) else {
                    return;
                };
                if envelope.from.0 as u64 != self.id {
                    return; // misrouted: we only originate our own traffic
                }
                self.stats.lock().routed += 1;
                if envelope.to.0 as u64 == self.id {
                    // Self-hop: forward locally. Dialing our own
                    // listener would trip the spoof guard (the accept
                    // loop refuses a HELLO announcing our own id).
                    self.dispatch(peer, &envelope_frame(FRAME_FWD, &envelope));
                } else if let Some(tx) = self.writer_for(envelope.to.0 as u64) {
                    let _ = tx.send(envelope_frame(FRAME_FWD, &envelope));
                }
            }
            Some(FRAME_FWD) => {
                let Ok(envelope) = decode_envelope(&body[1..], NodeId(self.id as usize)) else {
                    return;
                };
                if envelope.to.0 as u64 != self.id {
                    return;
                }
                self.stats.lock().forwarded += 1;
                // Final leg: hand the envelope up to the coordinator.
                if let Some(tx) = self.writers.lock().get(&COORD) {
                    let _ = tx.send(envelope_frame(FRAME_DELIVER, &envelope));
                }
            }
            Some(FRAME_STORE) => {
                let mut r = Reader::new(&body[1..]);
                let (Ok(glsn), Ok(payload)) = (r.get_u64(), r.get_bytes()) else {
                    return;
                };
                let (count, digest) = {
                    let mut stats = self.stats.lock();
                    let mut seed = stats.digest.to_be_bytes().to_vec();
                    seed.extend_from_slice(payload);
                    stats.digest = u64::from(crc32(&seed));
                    stats.stored += 1;
                    stats.stored_bytes += payload.len() as u64;
                    stats.fragments.push((glsn, payload.to_vec()));
                    (stats.stored, stats.digest)
                };
                if let Some(tx) = self.writers.lock().get(&peer) {
                    let mut w = Writer::new();
                    w.put_u8(FRAME_STORED)
                        .put_u64(glsn)
                        .put_u64(count)
                        .put_u64(digest);
                    let _ = tx.send(w.finish().to_vec());
                }
            }
            Some(FRAME_SHUTDOWN) => {
                let report = self.report();
                if let Some(tx) = self.writers.lock().get(&peer) {
                    let mut w = Writer::new();
                    w.put_u8(FRAME_BYE)
                        .put_u64(report.id as u64)
                        .put_u64(report.routed)
                        .put_u64(report.forwarded)
                        .put_u64(report.stored)
                        .put_u64(report.stored_bytes)
                        .put_u64(report.digest);
                    let _ = tx.send(w.finish().to_vec());
                }
                self.done.store(true, Ordering::Release);
                let _ = self.done_tx.send(());
            }
            _ => {} // unknown or handshake frames mid-stream: ignored
        }
    }

    fn report(&self) -> NodeReport {
        let stats = self.stats.lock();
        NodeReport {
            id: self.id as usize,
            routed: stats.routed,
            forwarded: stats.forwarded,
            stored: stats.stored,
            stored_bytes: stats.stored_bytes,
            digest: stats.digest,
        }
    }
}

/// Serves one node on a pre-bound listener until the coordinator sends
/// a shutdown frame; returns the node's final [`NodeReport`]. This is
/// the body of the `dla-node` binary, and in-process tests drive it
/// from plain threads over loopback listeners.
///
/// # Errors
///
/// Returns an error if the listener's local address cannot be read.
/// Per-connection failures are absorbed: a broken peer link is
/// re-dialed on demand.
pub fn serve(listener: TcpListener, config: NodeConfig) -> io::Result<NodeReport> {
    let own_addr = listener.local_addr()?;
    let (done_tx, done_rx) = unbounded();
    let state = Arc::new(NodeState {
        id: config.id as u64,
        n: config.peers.len() as u64,
        peers: config.peers,
        writers: Mutex::new(HashMap::new()),
        dialed: Mutex::new(BTreeSet::new()),
        writer_handles: Mutex::new(Vec::new()),
        stats: Mutex::new(NodeStats {
            digest: config.key,
            ..NodeStats::default()
        }),
        done: AtomicBool::new(false),
        done_tx,
    });
    let acceptor = Arc::clone(&state);
    thread::spawn(move || {
        while let Ok((mut stream, _)) = listener.accept() {
            if acceptor.done.load(Ordering::Acquire) {
                return;
            }
            let _ = stream.set_nodelay(true);
            // Accept-side handshake: announce ourselves, learn the
            // dialer's id, then wire up reader + writer threads. A
            // dialer announcing our own id, or an id whose live session
            // *they* initiated, is a spoof attempt — registering it
            // would let the newcomer hijack the existing writer (and
            // with it any acks addressed to that peer), so the
            // connection is dropped instead. The one legitimate
            // conflict is a simultaneous connect: we dialed the peer
            // while it dialed us. Its inbound connection is accepted
            // (the peer is already writing on it) and takes over the
            // writer slot; the crossing credit is consumed so a second
            // conflicting HELLO is back to being a spoof.
            if let Ok((peer, _)) = handshake(&mut stream, acceptor.id, acceptor.n) {
                let crossing = acceptor.dialed.lock().remove(&peer);
                if peer == acceptor.id || (!crossing && acceptor.writers.lock().contains_key(&peer))
                {
                    continue;
                }
                acceptor.register(peer, stream);
            }
        }
    });
    let _ = done_rx.recv();
    // Unblock the accept loop so the thread exits promptly.
    let _ = TcpStream::connect(own_addr);
    // Flush in-flight frames (the BYE farewell in particular) before
    // returning: drop every sender so the writer threads drain their
    // queues and exit, then join them. Without this a node process can
    // exit before the farewell reaches the coordinator.
    state.writers.lock().clear();
    let handles: Vec<_> = state.writer_handles.lock().drain(..).collect();
    for handle in handles {
        let _ = handle.join();
    }
    Ok(state.report())
}

// ---------------------------------------------------------------------
// Coordinator side: the TcpNet transport.
// ---------------------------------------------------------------------

/// Tuning for a [`TcpNet`] coordinator.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Receive deadline (measured on `clock`).
    pub timeout: SimTime,
    /// Time driver for deadlines and envelope timestamps.
    pub clock: Arc<dyn Clock>,
    /// Real-time budget for the initial connect-with-backoff to every
    /// node process.
    pub connect_deadline: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            timeout: SimTime::from_millis(5_000),
            clock: Arc::new(WallClock::new()),
            connect_deadline: Duration::from_secs(10),
        }
    }
}

#[derive(Debug)]
struct TcpInbox {
    rx: Receiver<Envelope>,
    stash: VecDeque<Envelope>,
}

/// The coordinator's end of a process-per-node cluster: a [`Transport`]
/// whose every hop crosses the TCP mesh of node processes (see the
/// module docs for the route/forward/deliver flow).
#[derive(Debug)]
pub struct TcpNet {
    n: usize,
    local: BTreeSet<usize>,
    writers: Vec<Option<Sender<Vec<u8>>>>,
    inbox_tx: Vec<Sender<Envelope>>,
    inboxes: Vec<Mutex<TcpInbox>>,
    stored_rx: Mutex<Receiver<(u64, u64, u64)>>,
    bye_rx: Mutex<Receiver<NodeReport>>,
    stats: Mutex<TrafficStats>,
    timeout: SimTime,
    clock: Arc<dyn Clock>,
}

impl TcpNet {
    /// Connects the coordinator to every node process in `peers`
    /// (dialing with reconnect backoff, exchanging ids in the
    /// handshake). Ids in `local` — and any peer-table `None` entry —
    /// are hosted in this process: their traffic short-circuits
    /// through local inboxes, which is how the coordinator plays the
    /// auditor and blind-TTP roles itself.
    ///
    /// # Errors
    ///
    /// Returns the first connection or handshake failure after the
    /// backoff budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `peers` is empty.
    pub fn connect(
        peers: &[Option<SocketAddr>],
        local: BTreeSet<usize>,
        config: TcpConfig,
    ) -> io::Result<TcpNet> {
        assert!(!peers.is_empty(), "network needs at least one node");
        let n = peers.len();
        let (inbox_tx, inboxes): (Vec<_>, Vec<_>) = (0..n)
            .map(|_| {
                let (tx, rx) = unbounded();
                (
                    tx,
                    Mutex::new(TcpInbox {
                        rx,
                        stash: VecDeque::new(),
                    }),
                )
            })
            .unzip();
        let (stored_tx, stored_rx) = unbounded();
        let (bye_tx, bye_rx) = unbounded();
        let mut writers: Vec<Option<Sender<Vec<u8>>>> = vec![None; n];
        for (id, addr) in peers.iter().enumerate() {
            let Some(addr) = addr else { continue };
            if local.contains(&id) {
                continue;
            }
            let mut stream = dial_with_backoff(*addr, config.connect_deadline)?;
            let (peer, _) = handshake(&mut stream, COORD, n as u64)?;
            if peer != id as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("peer at {addr} announced id {peer}, expected {id}"),
                ));
            }
            let (tx, rx): (Sender<Vec<u8>>, Receiver<Vec<u8>>) = unbounded();
            let mut write_half = stream.try_clone()?;
            thread::spawn(move || {
                while let Ok(frame) = rx.recv() {
                    if write_frame(&mut write_half, &frame).is_err() {
                        break;
                    }
                }
            });
            let inbox_tx = inbox_tx.clone();
            let stored_tx = stored_tx.clone();
            let bye_tx = bye_tx.clone();
            thread::spawn(move || {
                coordinator_reader(&mut stream, n, &inbox_tx, &stored_tx, &bye_tx);
            });
            writers[id] = Some(tx);
        }
        Ok(TcpNet {
            n,
            local,
            writers,
            inbox_tx,
            inboxes,
            stored_rx: Mutex::new(stored_rx),
            bye_rx: Mutex::new(bye_rx),
            stats: Mutex::new(TrafficStats::new()),
            timeout: config.timeout,
            clock: config.clock,
        })
    }

    /// The clock driving deadlines and envelope timestamps.
    #[must_use]
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// A snapshot of the traffic counters.
    #[must_use]
    pub fn stats(&self) -> TrafficStats {
        self.stats.lock().clone()
    }

    /// Ships a deposit fragment to the process serving `node` and waits
    /// for its acknowledgement: the node's running `(count, digest)`
    /// after storing it. One deposit may be outstanding at a time.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when `node` is not a connected remote
    /// process or the acknowledgement does not arrive in time.
    pub fn deposit(&self, node: NodeId, glsn: u64, payload: &[u8]) -> Result<(u64, u64), NetError> {
        let Some(tx) = self.writers.get(node.0).and_then(|w| w.as_ref()) else {
            return Err(NetError::Timeout(node));
        };
        let mut w = Writer::new();
        w.put_u8(FRAME_STORE).put_u64(glsn).put_bytes(payload);
        if tx.send(w.finish().to_vec()).is_err() {
            return Err(NetError::Timeout(node));
        }
        let rx = self.stored_rx.lock();
        let deadline = self.timeout.to_duration();
        loop {
            match rx.recv_timeout(deadline) {
                Ok((acked, count, digest)) if acked == glsn => return Ok((count, digest)),
                Ok(_) => continue, // stale ack from an earlier deposit
                Err(_) => return Err(NetError::Timeout(node)),
            }
        }
    }

    /// Sends every node process a shutdown frame and collects their
    /// farewell reports (waiting up to the receive timeout for each).
    #[must_use]
    pub fn shutdown(&self) -> Vec<NodeReport> {
        let mut expected = 0usize;
        for tx in self.writers.iter().flatten() {
            if tx.send(vec![FRAME_SHUTDOWN]).is_ok() {
                expected += 1;
            }
        }
        let rx = self.bye_rx.lock();
        let mut reports = Vec::with_capacity(expected);
        for _ in 0..expected {
            match rx.recv_timeout(self.timeout.to_duration()) {
                Ok(report) => reports.push(report),
                Err(_) => break,
            }
        }
        reports.sort_by_key(|r| r.id);
        reports
    }

    /// Blocking receive with session (and optional sender) filtering —
    /// the same stash-and-demux discipline as
    /// [`crate::ChannelNet`], on this transport's clock.
    fn recv_filtered(
        &self,
        session: SessionId,
        node: NodeId,
        from: Option<NodeId>,
    ) -> Result<Envelope, NetError> {
        assert!(node.0 < self.n, "node {node} out of range");
        let mut inbox = self.inboxes[node.0].lock();
        let matches = |e: &Envelope| e.session == session && from.is_none_or(|f| e.from == f);
        if let Some(pos) = inbox.stash.iter().position(&matches) {
            let envelope = inbox.stash.remove(pos).expect("position just found");
            self.stats
                .lock()
                .record_delivery(envelope.session, envelope.payload.len());
            dla_telemetry::record(dla_telemetry::CostKind::MsgDelivered, 1);
            return Ok(envelope);
        }
        let deadline = self.clock.now() + self.timeout;
        loop {
            let now = self.clock.now();
            if now >= deadline {
                return Err(NetError::Timeout(node));
            }
            let left = deadline - now;
            let envelope = match inbox.rx.recv_timeout(left.to_duration()) {
                Ok(envelope) => envelope,
                Err(_) => {
                    if self.clock.is_virtual() {
                        self.clock.advance(left);
                    }
                    continue;
                }
            };
            if matches(&envelope) {
                self.stats
                    .lock()
                    .record_delivery(envelope.session, envelope.payload.len());
                dla_telemetry::record(dla_telemetry::CostKind::MsgDelivered, 1);
                return Ok(envelope);
            }
            inbox.stash.push_back(envelope);
        }
    }
}

/// The coordinator's reader/demux loop for one node connection:
/// deliver and forward frames land in the per-node inboxes (malformed
/// envelopes are dropped and counted — the reliable layer recovers
/// them by retransmission), store acks and farewells go to their
/// dedicated channels.
fn coordinator_reader(
    stream: &mut TcpStream,
    n: usize,
    inbox_tx: &[Sender<Envelope>],
    stored_tx: &Sender<(u64, u64, u64)>,
    bye_tx: &Sender<NodeReport>,
) {
    while let Ok(body) = read_frame(stream) {
        match body.first().copied() {
            Some(FRAME_DELIVER | FRAME_FWD) => {
                let Ok(envelope) = Envelope::decode(&body[1..]) else {
                    continue;
                };
                if envelope.to.0 < n {
                    let _ = inbox_tx[envelope.to.0].send(envelope);
                }
            }
            Some(FRAME_STORED) => {
                let mut r = Reader::new(&body[1..]);
                if let (Ok(glsn), Ok(count), Ok(digest)) = (r.get_u64(), r.get_u64(), r.get_u64()) {
                    let _ = stored_tx.send((glsn, count, digest));
                }
            }
            Some(FRAME_BYE) => {
                let mut r = Reader::new(&body[1..]);
                if let (
                    Ok(id),
                    Ok(routed),
                    Ok(forwarded),
                    Ok(stored),
                    Ok(stored_bytes),
                    Ok(digest),
                ) = (
                    r.get_u64(),
                    r.get_u64(),
                    r.get_u64(),
                    r.get_u64(),
                    r.get_u64(),
                    r.get_u64(),
                ) {
                    let _ = bye_tx.send(NodeReport {
                        id: id as usize,
                        routed,
                        forwarded,
                        stored,
                        stored_bytes,
                        digest,
                    });
                }
            }
            _ => {}
        }
    }
}

impl Transport for TcpNet {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn send(&self, session: SessionId, from: NodeId, to: NodeId, payload: Bytes) {
        assert!(to.0 < self.n, "node {to} out of range");
        self.stats
            .lock()
            .record_send(session, from.0, to.0, payload.len(), SimTime::ZERO);
        dla_telemetry::record(dla_telemetry::CostKind::MsgSent, 1);
        dla_telemetry::record(dla_telemetry::CostKind::BytesSent, payload.len() as u64);
        let now = self.clock.now();
        let envelope = Envelope::new(session, from, to, payload, now, now);
        let from_local = self.local.contains(&from.0) || self.writers[from.0].is_none();
        let dropped = if from_local {
            if self.local.contains(&to.0) || self.writers[to.0].is_none() {
                // Both endpoints hosted here: a loopback delivery.
                self.inbox_tx[to.0].send(envelope).is_err()
            } else {
                // We are the origin: forward straight to the owner of `to`.
                let tx = self.writers[to.0].as_ref().expect("checked above");
                tx.send(envelope_frame(FRAME_FWD, &envelope)).is_err()
            }
        } else {
            // Ask the process serving `from` to originate the send.
            let tx = self.writers[from.0].as_ref().expect("checked above");
            tx.send(envelope_frame(FRAME_ROUTE, &envelope)).is_err()
        };
        if dropped {
            self.stats.lock().messages_dropped += 1;
        }
    }

    fn recv(&self, session: SessionId, node: NodeId) -> Result<Envelope, NetError> {
        self.recv_filtered(session, node, None)
    }

    fn recv_from(
        &self,
        session: SessionId,
        node: NodeId,
        from: NodeId,
    ) -> Result<Envelope, NetError> {
        self.recv_filtered(session, node, Some(from))
    }

    fn charge(&self, _session: SessionId, _node: NodeId, _cost: SimTime) {
        // Wall-clock transport: compute time passes by itself.
    }

    fn counters(&self, session: SessionId) -> (u64, u64) {
        let stats = self.stats.lock();
        let s = stats.session(session);
        (s.messages, s.bytes)
    }

    fn elapsed(&self, session: SessionId) -> SimTime {
        // Wall transports have one timeline for every session: the
        // clock's reading since the coordinator came up. Telemetry
        // spans stamped from `Session::elapsed` therefore carry real
        // timestamps on this backend.
        let _ = session;
        self.clock.now()
    }
}
