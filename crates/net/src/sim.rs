//! The deterministic simulated network ([`SimNet`]).
//!
//! Protocol code sends byte payloads between nodes; the simulator
//! applies a latency model to per-node virtual clocks, injects faults,
//! and accounts every message and byte. Determinism (given a seed)
//! makes protocol tests reproducible and lets benches report *simulated*
//! network latency alongside measured CPU time.

use crate::fault::{FaultOutcome, FaultPlan};
use crate::latency::LatencyModel;
use crate::stats::TrafficStats;
use crate::time::SimTime;
use crate::{NetError, NodeId};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

/// A delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload (possibly corrupted by fault injection).
    pub payload: Bytes,
    /// Virtual time the sender handed it to the network.
    pub sent_at: SimTime,
    /// Virtual time it became available at the receiver.
    pub deliver_at: SimTime,
}

/// Heap entry ordered by delivery time (earliest first), tie-broken by
/// sequence number for determinism.
#[derive(Debug)]
struct Pending {
    deliver_at: SimTime,
    seq: u64,
    envelope: Envelope,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// Configuration for a [`SimNet`].
#[derive(Clone, Debug, Default)]
pub struct NetConfig {
    /// Link latency model.
    pub latency: LatencyModel,
    /// Fault injection plan.
    pub faults: FaultPlan,
    /// RNG seed (latency sampling and fault rolls).
    pub seed: u64,
    /// Keep a copy of every sent payload for post-hoc inspection
    /// (leak-detection tests). Off by default: it retains memory.
    pub capture_payloads: bool,
}

impl NetConfig {
    /// Zero-latency, fault-free, seed 0 — pure message counting.
    #[must_use]
    pub fn ideal() -> Self {
        NetConfig::default()
    }

    /// Sets the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables payload capture.
    #[must_use]
    pub fn with_payload_capture(mut self) -> Self {
        self.capture_payloads = true;
        self
    }
}

/// A simulated message network over `n` nodes.
///
/// # Examples
///
/// ```
/// use dla_net::sim::{NetConfig, SimNet};
/// use dla_net::NodeId;
/// use bytes::Bytes;
///
/// let mut net = SimNet::new(3, NetConfig::ideal());
/// net.send(NodeId(0), NodeId(2), Bytes::from_static(b"ping"));
/// let msg = net.recv(NodeId(2))?;
/// assert_eq!(&msg.payload[..], b"ping");
/// assert_eq!(msg.from, NodeId(0));
/// # Ok::<(), dla_net::NetError>(())
/// ```
#[derive(Debug)]
pub struct SimNet {
    latency: LatencyModel,
    faults: FaultPlan,
    stats: TrafficStats,
    clocks: Vec<SimTime>,
    inboxes: Vec<BinaryHeap<Pending>>,
    rng: StdRng,
    seq: u64,
    capture: Option<Vec<(NodeId, NodeId, Bytes)>>,
}

impl SimNet {
    /// Creates a network of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, config: NetConfig) -> Self {
        assert!(n > 0, "network needs at least one node");
        SimNet {
            latency: config.latency,
            faults: config.faults,
            stats: TrafficStats::new(),
            clocks: vec![SimTime::ZERO; n],
            inboxes: (0..n).map(|_| BinaryHeap::new()).collect(),
            rng: StdRng::seed_from_u64(config.seed),
            seq: 0,
            capture: config.capture_payloads.then(Vec::new),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.clocks.len()
    }

    /// Sends `payload` from `from` to `to`. Delivery is subject to the
    /// fault plan; the send is always accounted.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: Bytes) {
        self.check(from);
        self.check(to);
        if let Some(capture) = &mut self.capture {
            capture.push((from, to, payload.clone()));
        }
        self.stats.record_send(from.0, to.0, payload.len());
        let outcome = self.faults.decide(from.0, to.0, &mut self.rng);
        match outcome {
            FaultOutcome::Drop => {
                self.stats.messages_dropped += 1;
            }
            FaultOutcome::Deliver => {
                self.enqueue(from, to, payload);
            }
            FaultOutcome::Duplicate => {
                self.stats.messages_duplicated += 1;
                self.enqueue(from, to, payload.clone());
                self.enqueue(from, to, payload);
            }
            FaultOutcome::Corrupt => {
                self.stats.messages_corrupted += 1;
                let mut bytes = payload.to_vec();
                if !bytes.is_empty() {
                    let idx = self.rng.gen_range(0..bytes.len());
                    bytes[idx] ^= 0xA5;
                }
                self.enqueue(from, to, Bytes::from(bytes));
            }
        }
    }

    fn enqueue(&mut self, from: NodeId, to: NodeId, payload: Bytes) {
        let sent_at = self.clocks[from.0];
        let deliver_at = sent_at + self.latency.sample(payload.len(), &mut self.rng);
        self.seq += 1;
        self.inboxes[to.0].push(Pending {
            deliver_at,
            seq: self.seq,
            envelope: Envelope {
                from,
                to,
                payload,
                sent_at,
                deliver_at,
            },
        });
    }

    /// Receives the earliest pending message at `node`, advancing the
    /// node's virtual clock to the delivery time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyInbox`] if nothing is pending — in a
    /// deterministic protocol this means a message was dropped.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn recv(&mut self, node: NodeId) -> Result<Envelope, NetError> {
        self.check(node);
        let pending = self.inboxes[node.0]
            .pop()
            .ok_or(NetError::EmptyInbox(node))?;
        self.clocks[node.0] = self.clocks[node.0].max(pending.deliver_at);
        self.stats.messages_delivered += 1;
        Ok(pending.envelope)
    }

    /// Selective receive: delivers the earliest pending message **from
    /// `from`**, leaving messages from other senders queued (they may
    /// have arrived earlier — concurrent protocol steps interleave
    /// freely under non-zero link latency).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyInbox`] when nothing at all is pending
    /// and [`NetError::UnexpectedSender`] when messages are pending but
    /// none from `from` (nothing is consumed in either case).
    pub fn recv_from(&mut self, node: NodeId, from: NodeId) -> Result<Envelope, NetError> {
        self.check(node);
        if self.inboxes[node.0].is_empty() {
            return Err(NetError::EmptyInbox(node));
        }
        // Pop (in delivery order) until a matching sender is found,
        // stashing earlier messages from other senders for re-insertion.
        let mut stash = Vec::new();
        let mut found = None;
        while let Some(pending) = self.inboxes[node.0].pop() {
            if pending.envelope.from == from {
                found = Some(pending);
                break;
            }
            stash.push(pending);
        }
        // The first stashed entry (if any) was the earliest overall.
        let actual_head = stash.first().map(|p| p.envelope.from);
        for pending in stash {
            self.inboxes[node.0].push(pending);
        }
        match found {
            Some(pending) => {
                self.clocks[node.0] = self.clocks[node.0].max(pending.deliver_at);
                self.stats.messages_delivered += 1;
                Ok(pending.envelope)
            }
            None => Err(NetError::UnexpectedSender {
                node,
                expected: from,
                actual: actual_head.expect("inbox was nonempty"),
            }),
        }
    }

    /// Number of messages waiting at `node`.
    #[must_use]
    pub fn pending(&self, node: NodeId) -> usize {
        self.inboxes[node.0].len()
    }

    /// Charges local computation time to a node's virtual clock (e.g.
    /// to model an encryption pass).
    pub fn charge(&mut self, node: NodeId, cost: SimTime) {
        self.check(node);
        self.clocks[node.0] += cost;
    }

    /// A node's current virtual clock.
    #[must_use]
    pub fn clock(&self, node: NodeId) -> SimTime {
        self.clocks[node.0]
    }

    /// The protocol makespan so far: the latest clock over all nodes.
    #[must_use]
    pub fn elapsed(&self) -> SimTime {
        self.clocks
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets counters and clocks, keeping topology/config (for
    /// benchmark phases).
    pub fn reset_accounting(&mut self) {
        self.stats.reset();
        for c in &mut self.clocks {
            *c = SimTime::ZERO;
        }
    }

    /// Mutable access to the fault plan (to inject targeted faults
    /// mid-test).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Every payload sent so far, in send order — only populated when
    /// the network was built with
    /// [`NetConfig::with_payload_capture`]. The tool of choice for
    /// "does any protocol message contain this plaintext?" tests.
    #[must_use]
    pub fn captured_payloads(&self) -> &[(NodeId, NodeId, Bytes)] {
        self.capture.as_deref().unwrap_or(&[])
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.0 < self.clocks.len(),
            "node {node} out of range (n = {})",
            self.clocks.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> SimNet {
        SimNet::new(n, NetConfig::ideal())
    }

    #[test]
    fn send_recv_round_trip() {
        let mut net = net(2);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"hello"));
        let msg = net.recv(NodeId(1)).unwrap();
        assert_eq!(&msg.payload[..], b"hello");
        assert_eq!(msg.from, NodeId(0));
        assert_eq!(msg.to, NodeId(1));
    }

    #[test]
    fn empty_inbox_is_an_error() {
        let mut net = net(2);
        assert_eq!(net.recv(NodeId(0)), Err(NetError::EmptyInbox(NodeId(0))));
    }

    #[test]
    fn messages_delivered_in_time_order() {
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Uniform {
            min: SimTime::from_micros(1),
            max: SimTime::from_micros(100),
            bytes_per_us: 0,
        });
        let mut net = SimNet::new(3, cfg);
        for i in 0..20u8 {
            net.send(NodeId(0), NodeId(2), Bytes::copy_from_slice(&[i]));
        }
        let mut last = SimTime::ZERO;
        for _ in 0..20 {
            let m = net.recv(NodeId(2)).unwrap();
            assert!(m.deliver_at >= last);
            last = m.deliver_at;
        }
    }

    #[test]
    fn clocks_advance_on_recv() {
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Fixed(SimTime::from_millis(5)));
        let mut net = SimNet::new(2, cfg);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"x"));
        assert_eq!(net.clock(NodeId(1)), SimTime::ZERO);
        let _ = net.recv(NodeId(1)).unwrap();
        assert_eq!(net.clock(NodeId(1)), SimTime::from_millis(5));
        assert_eq!(net.elapsed(), SimTime::from_millis(5));
    }

    #[test]
    fn latency_chains_across_hops() {
        // 0 -> 1 -> 2 with 5ms fixed latency: node 2's clock ends at 10ms.
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Fixed(SimTime::from_millis(5)));
        let mut net = SimNet::new(3, cfg);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"x"));
        let m = net.recv(NodeId(1)).unwrap();
        net.send(NodeId(1), NodeId(2), m.payload);
        let _ = net.recv(NodeId(2)).unwrap();
        assert_eq!(net.clock(NodeId(2)), SimTime::from_millis(10));
    }

    #[test]
    fn charge_adds_compute_cost() {
        let mut net = net(1);
        net.charge(NodeId(0), SimTime::from_micros(250));
        assert_eq!(net.clock(NodeId(0)), SimTime::from_micros(250));
    }

    #[test]
    fn stats_account_sends_and_drops() {
        let mut net = net(2);
        net.faults_mut()
            .inject_once(0, 1, crate::fault::FaultOutcome::Drop);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"lost"));
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"kept"));
        assert_eq!(net.stats().messages_sent, 2);
        assert_eq!(net.stats().messages_dropped, 1);
        assert_eq!(net.stats().bytes_sent, 8);
        let m = net.recv(NodeId(1)).unwrap();
        assert_eq!(&m.payload[..], b"kept");
        assert!(net.recv(NodeId(1)).is_err());
    }

    #[test]
    fn duplicates_deliver_twice() {
        let mut net = net(2);
        net.faults_mut()
            .inject_once(0, 1, crate::fault::FaultOutcome::Duplicate);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"dup"));
        assert_eq!(net.pending(NodeId(1)), 2);
        assert_eq!(&net.recv(NodeId(1)).unwrap().payload[..], b"dup");
        assert_eq!(&net.recv(NodeId(1)).unwrap().payload[..], b"dup");
    }

    #[test]
    fn corruption_flips_a_byte() {
        let mut net = net(2);
        net.faults_mut()
            .inject_once(0, 1, crate::fault::FaultOutcome::Corrupt);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"payload"));
        let m = net.recv(NodeId(1)).unwrap();
        assert_ne!(&m.payload[..], b"payload");
        assert_eq!(m.payload.len(), 7);
        assert_eq!(net.stats().messages_corrupted, 1);
    }

    #[test]
    fn recv_from_enforces_sender() {
        let mut net = net(3);
        net.send(NodeId(0), NodeId(2), Bytes::from_static(b"a"));
        let err = net.recv_from(NodeId(2), NodeId(1)).unwrap_err();
        assert!(matches!(err, NetError::UnexpectedSender { .. }));
        // Message was not consumed.
        assert_eq!(net.pending(NodeId(2)), 1);
        assert!(net.recv_from(NodeId(2), NodeId(0)).is_ok());
    }

    #[test]
    fn recv_from_is_selective_across_interleaved_senders() {
        // Under nonzero latency, a message from node 1 may be delivered
        // before node 0's; selective receive must still hand back node
        // 0's message without disturbing the queue order of the rest.
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Uniform {
            min: SimTime::from_micros(1),
            max: SimTime::from_micros(500),
            bytes_per_us: 0,
        });
        let mut net = SimNet::new(3, cfg);
        for round in 0..10u8 {
            net.send(NodeId(0), NodeId(2), Bytes::copy_from_slice(&[round]));
            net.send(NodeId(1), NodeId(2), Bytes::copy_from_slice(&[100 + round]));
        }
        // Drain node 0's messages first, then node 1's: both arrive in
        // their own per-sender delivery order.
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            let m = net.recv_from(NodeId(2), NodeId(0)).unwrap();
            assert_eq!(m.from, NodeId(0));
            assert!(m.deliver_at >= last || last == SimTime::ZERO);
            last = m.deliver_at;
        }
        for _ in 0..10 {
            assert_eq!(net.recv_from(NodeId(2), NodeId(1)).unwrap().from, NodeId(1));
        }
        assert_eq!(net.pending(NodeId(2)), 0);
    }

    #[test]
    fn reset_accounting_clears_stats_and_clocks() {
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Fixed(SimTime::from_millis(1)));
        let mut net = SimNet::new(2, cfg);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"x"));
        let _ = net.recv(NodeId(1));
        net.reset_accounting();
        assert_eq!(net.stats().messages_sent, 0);
        assert_eq!(net.elapsed(), SimTime::ZERO);
    }

    #[test]
    fn determinism_under_seed() {
        let cfg = || {
            NetConfig::ideal()
                .with_latency(LatencyModel::lan())
                .with_seed(1234)
        };
        let run = |mut net: SimNet| {
            for i in 0..10u8 {
                net.send(NodeId(0), NodeId(1), Bytes::copy_from_slice(&[i]));
            }
            let mut times = Vec::new();
            while let Ok(m) = net.recv(NodeId(1)) {
                times.push(m.deliver_at);
            }
            times
        };
        assert_eq!(run(SimNet::new(2, cfg())), run(SimNet::new(2, cfg())));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_node_panics() {
        let mut net = net(2);
        net.send(NodeId(0), NodeId(5), Bytes::new());
    }
}
