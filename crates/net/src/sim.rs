//! The deterministic simulated network ([`SimNet`]).
//!
//! Protocol code sends byte payloads between nodes; the simulator
//! applies a latency model to per-node virtual clocks, injects faults,
//! and accounts every message and byte. Determinism (given a seed)
//! makes protocol tests reproducible and lets benches report *simulated*
//! network latency alongside measured CPU time.
//!
//! The network is **session-multiplexed**: every message belongs to a
//! [`SessionId`], and inboxes, virtual clocks, latency/fault RNG
//! streams and delivery ordering are all partitioned per session. That
//! means several protocol instances can interleave over one `SimNet`
//! without perturbing each other's delivery schedule — the property the
//! concurrent subquery scheduler in `dla-audit` relies on. The legacy
//! `send`/`recv` API operates on [`SessionId::ROOT`] and behaves
//! exactly like the original single-session simulator.

use crate::fault::{FaultOutcome, FaultPlan};
use crate::latency::LatencyModel;
use crate::stats::TrafficStats;
use crate::time::SimTime;
use crate::wire::{crc32, Reader, WireError, Writer};
use crate::{NetError, NodeId, SessionId};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BinaryHeap};

/// A delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Protocol session this message belongs to.
    pub session: SessionId,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload (possibly corrupted by fault injection).
    pub payload: Bytes,
    /// CRC-32 of the payload **as the sender handed it over** — in-flight
    /// corruption leaves the checksum stale, so receivers can tell.
    pub checksum: u32,
    /// Virtual time the sender handed it to the network.
    pub sent_at: SimTime,
    /// Virtual time it became available at the receiver.
    pub deliver_at: SimTime,
}

impl Envelope {
    /// Builds an envelope, stamping the payload checksum.
    #[must_use]
    pub fn new(
        session: SessionId,
        from: NodeId,
        to: NodeId,
        payload: Bytes,
        sent_at: SimTime,
        deliver_at: SimTime,
    ) -> Self {
        let checksum = crc32(&payload);
        Envelope {
            session,
            from,
            to,
            payload,
            checksum,
            sent_at,
            deliver_at,
        }
    }

    /// Whether the payload still matches the checksum stamped at send
    /// time. `false` means the message was corrupted in flight.
    #[must_use]
    pub fn is_intact(&self) -> bool {
        crc32(&self.payload) == self.checksum
    }
    /// Serializes the envelope — session id first, so a receiving
    /// endpoint can demultiplex before it even looks at the payload.
    /// This is the wire format of the threaded [`crate::ChannelNet`]
    /// transport.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_u64(self.session.0)
            .put_u64(self.from.0 as u64)
            .put_u64(self.to.0 as u64)
            .put_u64(self.sent_at.as_nanos())
            .put_u64(self.deliver_at.as_nanos())
            .put_u64(u64::from(self.checksum))
            .put_bytes(&self.payload);
        w.finish()
    }

    /// Inverse of [`Envelope::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or trailing bytes, or when the
    /// payload does not match the embedded checksum (a corrupted frame
    /// is rejected here rather than delivered as silent garbage).
    pub fn decode(data: &[u8]) -> Result<Envelope, WireError> {
        let mut r = Reader::new(data);
        let session = SessionId(r.get_u64()?);
        let from = NodeId(r.get_u64()? as usize);
        let to = NodeId(r.get_u64()? as usize);
        let sent_at = SimTime::from_nanos(r.get_u64()?);
        let deliver_at = SimTime::from_nanos(r.get_u64()?);
        let checksum = r.get_u64()? as u32;
        let payload = Bytes::copy_from_slice(r.get_bytes()?);
        r.finish()?;
        if crc32(&payload) != checksum {
            return Err(WireError::checksum_mismatch());
        }
        Ok(Envelope {
            session,
            from,
            to,
            payload,
            checksum,
            sent_at,
            deliver_at,
        })
    }
}

/// Heap entry ordered by delivery time (earliest first), tie-broken by
/// sequence number for determinism.
#[derive(Debug)]
struct Pending {
    deliver_at: SimTime,
    seq: u64,
    envelope: Envelope,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// Configuration for a [`SimNet`].
#[derive(Clone, Debug, Default)]
pub struct NetConfig {
    /// Link latency model.
    pub latency: LatencyModel,
    /// Fault injection plan.
    pub faults: FaultPlan,
    /// RNG seed (latency sampling and fault rolls).
    pub seed: u64,
    /// Keep a copy of every sent payload for post-hoc inspection
    /// (leak-detection tests). Off by default: it retains memory.
    pub capture_payloads: bool,
}

impl NetConfig {
    /// Zero-latency, fault-free, seed 0 — pure message counting.
    #[must_use]
    pub fn ideal() -> Self {
        NetConfig::default()
    }

    /// Sets the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables payload capture.
    #[must_use]
    pub fn with_payload_capture(mut self) -> Self {
        self.capture_payloads = true;
        self
    }
}

/// Per-session simulator state: inboxes, clocks, an independent RNG
/// stream, and the per-link delivery floor that makes each session's
/// link order FIFO.
#[derive(Debug)]
struct SessionState {
    clocks: Vec<SimTime>,
    inboxes: Vec<BinaryHeap<Pending>>,
    rng: StdRng,
    /// Independent stream for fault rolls, derived from the cluster
    /// seed + session id (see [`crate::fault::fault_rng`]). Keeping it
    /// separate from the latency stream means changing fault
    /// probabilities never perturbs the delivery schedule of the
    /// messages that do get through.
    fault_rng: StdRng,
    /// Latest delivery time scheduled per (from, to): later sends on
    /// the same link never overtake earlier ones.
    last_delivery: BTreeMap<(usize, usize), SimTime>,
}

impl SessionState {
    fn new(n: usize, clocks: Vec<SimTime>, seed: u64, session: SessionId) -> Self {
        // Give every session its own deterministic RNG stream so the
        // latency/fault rolls of one session are independent of how
        // many messages other sessions have sent.
        let mut x = session.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let stream = rand::splitmix64(&mut x);
        SessionState {
            clocks,
            inboxes: (0..n).map(|_| BinaryHeap::new()).collect(),
            rng: StdRng::seed_from_u64(seed ^ stream),
            fault_rng: crate::fault::fault_rng(seed, session),
            last_delivery: BTreeMap::new(),
        }
    }
}

/// A simulated message network over `n` nodes.
///
/// # Examples
///
/// ```
/// use dla_net::sim::{NetConfig, SimNet};
/// use dla_net::NodeId;
/// use bytes::Bytes;
///
/// let mut net = SimNet::new(3, NetConfig::ideal());
/// net.send(NodeId(0), NodeId(2), Bytes::from_static(b"ping"));
/// let msg = net.recv(NodeId(2))?;
/// assert_eq!(&msg.payload[..], b"ping");
/// assert_eq!(msg.from, NodeId(0));
/// # Ok::<(), dla_net::NetError>(())
/// ```
#[derive(Debug)]
pub struct SimNet {
    latency: LatencyModel,
    faults: FaultPlan,
    stats: TrafficStats,
    num_nodes: usize,
    seed: u64,
    sessions: BTreeMap<SessionId, SessionState>,
    next_session: u64,
    seq: u64,
    capture: Option<Vec<(NodeId, NodeId, Bytes)>>,
    adversary: Option<std::sync::Arc<dyn crate::adversary::Adversary>>,
    /// Messages held back by [`crate::adversary::Tamper::Delay`]; each
    /// subsequent send ages the stash and releases expired entries.
    delayed: Vec<crate::adversary::DelayedSend>,
}

impl SimNet {
    /// Creates a network of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, config: NetConfig) -> Self {
        assert!(n > 0, "network needs at least one node");
        let mut sessions = BTreeMap::new();
        sessions.insert(
            SessionId::ROOT,
            SessionState::new(n, vec![SimTime::ZERO; n], config.seed, SessionId::ROOT),
        );
        SimNet {
            latency: config.latency,
            faults: config.faults,
            stats: TrafficStats::new(),
            num_nodes: n,
            seed: config.seed,
            sessions,
            next_session: 1,
            seq: 0,
            capture: config.capture_payloads.then(Vec::new),
            adversary: None,
            delayed: Vec::new(),
        }
    }

    /// Installs a Byzantine [`crate::adversary::Adversary`] policy on
    /// the send path. Forgeries are applied before checksum stamping —
    /// see the module docs of [`crate::adversary`].
    pub fn set_adversary(&mut self, adversary: std::sync::Arc<dyn crate::adversary::Adversary>) {
        self.adversary = Some(adversary);
    }

    /// Removes any installed adversary; subsequent sends are honest.
    /// Messages the adversary was still holding back vanish with it
    /// (an endless delay is indistinguishable from a drop).
    pub fn clear_adversary(&mut self) {
        self.adversary = None;
        self.delayed.clear();
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Allocates a fresh session id. The new session's node clocks
    /// start at the root session's current values ("the new protocol
    /// instance starts now").
    pub fn open_session(&mut self) -> SessionId {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.ensure_session(id);
        id
    }

    /// Lazily materializes state for `session`, inheriting the root
    /// session's current clocks.
    fn ensure_session(&mut self, session: SessionId) {
        if !self.sessions.contains_key(&session) {
            let clocks = self.sessions[&SessionId::ROOT].clocks.clone();
            self.next_session = self.next_session.max(session.0 + 1);
            self.sessions.insert(
                session,
                SessionState::new(self.num_nodes, clocks, self.seed, session),
            );
        }
    }

    /// Sends `payload` from `from` to `to` on the root session.
    /// Delivery is subject to the fault plan; the send is always
    /// accounted.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: Bytes) {
        self.send_on(SessionId::ROOT, from, to, payload);
    }

    /// Session-scoped [`SimNet::send`].
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn send_on(&mut self, session: SessionId, from: NodeId, to: NodeId, payload: Bytes) {
        self.check(from);
        self.check(to);
        if let Some(capture) = &mut self.capture {
            capture.push((from, to, payload.clone()));
        }
        // Every send ages the adversary's delay stash by one round;
        // expired messages re-enter the wire *after* the current one
        // (stamped and clocked at release time), which is exactly the
        // reordering a scripted delay is meant to cause.
        let due = crate::adversary::age_delayed(&mut self.delayed);
        // Byzantine interposition runs before the checksum is stamped:
        // a forged payload goes out wire-consistent, so only
        // protocol-level verification can catch it — unlike the benign
        // Corrupt fault in `transmit`, whose stale checksum any
        // receiver sees.
        let mut held = false;
        let payload = match self.adversary.clone() {
            Some(adversary) => {
                let action = adversary.tamper(session, from, to, &payload);
                if let crate::adversary::Tamper::Delay(rounds) = action {
                    self.delayed.push(crate::adversary::DelayedSend {
                        rounds_left: rounds,
                        session,
                        from,
                        to,
                        payload: payload.clone(),
                    });
                    held = true;
                    payload
                } else {
                    match action.apply(&payload) {
                        Some(outgoing) => {
                            adversary.observe(session, from, to, &outgoing);
                            outgoing
                        }
                        None => {
                            // Byzantine omission: account the send,
                            // deliver nothing.
                            self.ensure_session(session);
                            let state = self.sessions.get_mut(&session).expect("session exists");
                            let sent_at = state.clocks[from.0];
                            self.stats
                                .record_send(session, from.0, to.0, payload.len(), sent_at);
                            self.stats.messages_dropped += 1;
                            dla_telemetry::record(dla_telemetry::CostKind::MsgSent, 1);
                            dla_telemetry::record(
                                dla_telemetry::CostKind::BytesSent,
                                payload.len() as u64,
                            );
                            held = true;
                            payload
                        }
                    }
                }
            }
            None => payload,
        };
        if !held {
            self.transmit(session, from, to, payload);
        }
        for m in due {
            if let Some(adversary) = self.adversary.clone() {
                adversary.observe(m.session, m.from, m.to, &m.payload);
            }
            self.transmit(m.session, m.from, m.to, m.payload);
        }
    }

    /// The honest tail of a send: accounting, checksum stamping, fault
    /// roll and delivery. Delayed messages re-enter here on release, so
    /// their envelopes are stamped and clocked at release time.
    fn transmit(&mut self, session: SessionId, from: NodeId, to: NodeId, payload: Bytes) {
        self.ensure_session(session);
        let state = self.sessions.get_mut(&session).expect("session exists");
        let sent_at = state.clocks[from.0];
        self.stats
            .record_send(session, from.0, to.0, payload.len(), sent_at);
        dla_telemetry::record(dla_telemetry::CostKind::MsgSent, 1);
        dla_telemetry::record(dla_telemetry::CostKind::BytesSent, payload.len() as u64);
        // Checksum is stamped over the payload *as sent*: corruption
        // below leaves it stale, which is how receivers detect it.
        let checksum = crc32(&payload);
        let outcome = self.faults.decide(from.0, to.0, &mut state.fault_rng);
        match outcome {
            FaultOutcome::Drop => {
                self.stats.messages_dropped += 1;
            }
            FaultOutcome::Deliver => {
                self.enqueue(session, from, to, payload, checksum);
            }
            FaultOutcome::Duplicate => {
                self.stats.messages_duplicated += 1;
                self.enqueue(session, from, to, payload.clone(), checksum);
                self.enqueue(session, from, to, payload, checksum);
            }
            FaultOutcome::Corrupt => {
                self.stats.messages_corrupted += 1;
                let mut bytes = payload.to_vec();
                if !bytes.is_empty() {
                    let state = self.sessions.get_mut(&session).expect("session exists");
                    let idx = state.fault_rng.gen_range(0..bytes.len());
                    bytes[idx] ^= 0xA5;
                }
                self.enqueue(session, from, to, Bytes::from(bytes), checksum);
            }
        }
    }

    fn enqueue(
        &mut self,
        session: SessionId,
        from: NodeId,
        to: NodeId,
        payload: Bytes,
        checksum: u32,
    ) {
        self.seq += 1;
        let seq = self.seq;
        let latency = &self.latency;
        let state = self.sessions.get_mut(&session).expect("session exists");
        let sent_at = state.clocks[from.0];
        let sampled = sent_at + latency.sample(payload.len(), &mut state.rng);
        // Per-session, per-link FIFO: a later send on the same link is
        // never delivered before an earlier one, even when the latency
        // model samples a shorter delay for it.
        let floor = state
            .last_delivery
            .get(&(from.0, to.0))
            .copied()
            .unwrap_or(SimTime::ZERO);
        let deliver_at = sampled.max(floor);
        state.last_delivery.insert((from.0, to.0), deliver_at);
        state.inboxes[to.0].push(Pending {
            deliver_at,
            seq,
            envelope: Envelope {
                session,
                from,
                to,
                payload,
                checksum,
                sent_at,
                deliver_at,
            },
        });
    }

    /// Receives the earliest pending root-session message at `node`,
    /// advancing the node's virtual clock to the delivery time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyInbox`] if nothing is pending — in a
    /// deterministic protocol this means a message was dropped.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn recv(&mut self, node: NodeId) -> Result<Envelope, NetError> {
        self.recv_on(SessionId::ROOT, node)
    }

    /// Session-scoped [`SimNet::recv`]: only messages belonging to
    /// `session` are visible, so interleaved sessions never steal each
    /// other's messages.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyInbox`] if nothing is pending in this
    /// session.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn recv_on(&mut self, session: SessionId, node: NodeId) -> Result<Envelope, NetError> {
        self.check(node);
        self.ensure_session(session);
        let state = self.sessions.get_mut(&session).expect("session exists");
        let pending = state.inboxes[node.0]
            .pop()
            .ok_or(NetError::EmptyInbox(node))?;
        state.clocks[node.0] = state.clocks[node.0].max(pending.deliver_at);
        self.stats
            .record_delivery(session, pending.envelope.payload.len());
        dla_telemetry::record(dla_telemetry::CostKind::MsgDelivered, 1);
        Ok(pending.envelope)
    }

    /// Selective receive on the root session; see
    /// [`SimNet::recv_from_on`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyInbox`] when nothing at all is pending
    /// and [`NetError::UnexpectedSender`] when messages are pending but
    /// none from `from` (nothing is consumed in either case).
    pub fn recv_from(&mut self, node: NodeId, from: NodeId) -> Result<Envelope, NetError> {
        self.recv_from_on(SessionId::ROOT, node, from)
    }

    /// Selective receive: delivers the earliest pending message **from
    /// `from`** within `session`, leaving messages from other senders
    /// queued (they may have arrived earlier — concurrent protocol
    /// steps interleave freely under non-zero link latency).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyInbox`] when nothing at all is pending
    /// and [`NetError::UnexpectedSender`] when messages are pending but
    /// none from `from` (nothing is consumed in either case).
    pub fn recv_from_on(
        &mut self,
        session: SessionId,
        node: NodeId,
        from: NodeId,
    ) -> Result<Envelope, NetError> {
        self.check(node);
        self.ensure_session(session);
        let state = self.sessions.get_mut(&session).expect("session exists");
        if state.inboxes[node.0].is_empty() {
            return Err(NetError::EmptyInbox(node));
        }
        // Pop (in delivery order) until a matching sender is found,
        // stashing earlier messages from other senders for re-insertion.
        let mut stash = Vec::new();
        let mut found = None;
        while let Some(pending) = state.inboxes[node.0].pop() {
            if pending.envelope.from == from {
                found = Some(pending);
                break;
            }
            stash.push(pending);
        }
        // The first stashed entry (if any) was the earliest overall.
        let actual_head = stash.first().map(|p| p.envelope.from);
        for pending in stash {
            state.inboxes[node.0].push(pending);
        }
        match found {
            Some(pending) => {
                state.clocks[node.0] = state.clocks[node.0].max(pending.deliver_at);
                self.stats
                    .record_delivery(session, pending.envelope.payload.len());
                dla_telemetry::record(dla_telemetry::CostKind::MsgDelivered, 1);
                Ok(pending.envelope)
            }
            None => Err(NetError::UnexpectedSender {
                node,
                expected: from,
                actual: actual_head.expect("inbox was nonempty"),
            }),
        }
    }

    /// Number of root-session messages waiting at `node`.
    #[must_use]
    pub fn pending(&self, node: NodeId) -> usize {
        self.pending_on(SessionId::ROOT, node)
    }

    /// Number of messages waiting at `node` within `session`.
    #[must_use]
    pub fn pending_on(&self, session: SessionId, node: NodeId) -> usize {
        self.sessions
            .get(&session)
            .map_or(0, |s| s.inboxes[node.0].len())
    }

    /// Charges local computation time to a node's root-session clock
    /// (e.g. to model an encryption pass).
    pub fn charge(&mut self, node: NodeId, cost: SimTime) {
        self.charge_on(SessionId::ROOT, node, cost);
    }

    /// Session-scoped [`SimNet::charge`].
    pub fn charge_on(&mut self, session: SessionId, node: NodeId, cost: SimTime) {
        self.check(node);
        self.ensure_session(session);
        let state = self.sessions.get_mut(&session).expect("session exists");
        state.clocks[node.0] += cost;
    }

    /// A node's current root-session virtual clock.
    #[must_use]
    pub fn clock(&self, node: NodeId) -> SimTime {
        self.clock_on(SessionId::ROOT, node)
    }

    /// A node's current virtual clock within `session` (zero if the
    /// session has no state yet).
    #[must_use]
    pub fn clock_on(&self, session: SessionId, node: NodeId) -> SimTime {
        self.sessions
            .get(&session)
            .map_or(SimTime::ZERO, |s| s.clocks[node.0])
    }

    /// The root-session makespan so far: the latest root clock over all
    /// nodes.
    #[must_use]
    pub fn elapsed(&self) -> SimTime {
        self.session_elapsed(SessionId::ROOT)
    }

    /// The makespan of one session: the latest clock over all nodes in
    /// that session.
    #[must_use]
    pub fn session_elapsed(&self, session: SessionId) -> SimTime {
        self.sessions.get(&session).map_or(SimTime::ZERO, |s| {
            s.clocks.iter().copied().fold(SimTime::ZERO, SimTime::max)
        })
    }

    /// The overall makespan: the latest clock over all nodes in all
    /// sessions.
    #[must_use]
    pub fn makespan(&self) -> SimTime {
        self.sessions
            .keys()
            .map(|&s| self.session_elapsed(s))
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Advances every clock of `session` to at least `at`. This is the
    /// scheduler's synchronization primitive: a session that logically
    /// starts after a join point is synced to the joined makespan, and
    /// at a join the successor session is synced to the max elapsed
    /// time of its predecessors.
    pub fn sync_session(&mut self, session: SessionId, at: SimTime) {
        self.ensure_session(session);
        let state = self.sessions.get_mut(&session).expect("session exists");
        for clock in &mut state.clocks {
            *clock = (*clock).max(at);
        }
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets counters, clocks and per-link delivery floors in every
    /// session, keeping topology/config (for benchmark phases).
    pub fn reset_accounting(&mut self) {
        self.stats.reset();
        for state in self.sessions.values_mut() {
            for c in &mut state.clocks {
                *c = SimTime::ZERO;
            }
            state.last_delivery.clear();
        }
    }

    /// Mutable access to the fault plan (to inject targeted faults
    /// mid-test).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Every payload sent so far, in send order — only populated when
    /// the network was built with
    /// [`NetConfig::with_payload_capture`]. The tool of choice for
    /// "does any protocol message contain this plaintext?" tests.
    #[must_use]
    pub fn captured_payloads(&self) -> &[(NodeId, NodeId, Bytes)] {
        self.capture.as_deref().unwrap_or(&[])
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.0 < self.num_nodes,
            "node {node} out of range (n = {})",
            self.num_nodes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> SimNet {
        SimNet::new(n, NetConfig::ideal())
    }

    #[test]
    fn send_recv_round_trip() {
        let mut net = net(2);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"hello"));
        let msg = net.recv(NodeId(1)).unwrap();
        assert_eq!(&msg.payload[..], b"hello");
        assert_eq!(msg.from, NodeId(0));
        assert_eq!(msg.to, NodeId(1));
        assert_eq!(msg.session, SessionId::ROOT);
    }

    #[test]
    fn empty_inbox_is_an_error() {
        let mut net = net(2);
        assert_eq!(net.recv(NodeId(0)), Err(NetError::EmptyInbox(NodeId(0))));
    }

    #[test]
    fn messages_delivered_in_time_order() {
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Uniform {
            min: SimTime::from_micros(1),
            max: SimTime::from_micros(100),
            bytes_per_us: 0,
        });
        let mut net = SimNet::new(3, cfg);
        for i in 0..20u8 {
            net.send(NodeId(0), NodeId(2), Bytes::copy_from_slice(&[i]));
        }
        let mut last = SimTime::ZERO;
        for _ in 0..20 {
            let m = net.recv(NodeId(2)).unwrap();
            assert!(m.deliver_at >= last);
            last = m.deliver_at;
        }
    }

    #[test]
    fn clocks_advance_on_recv() {
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Fixed(SimTime::from_millis(5)));
        let mut net = SimNet::new(2, cfg);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"x"));
        assert_eq!(net.clock(NodeId(1)), SimTime::ZERO);
        let _ = net.recv(NodeId(1)).unwrap();
        assert_eq!(net.clock(NodeId(1)), SimTime::from_millis(5));
        assert_eq!(net.elapsed(), SimTime::from_millis(5));
    }

    #[test]
    fn latency_chains_across_hops() {
        // 0 -> 1 -> 2 with 5ms fixed latency: node 2's clock ends at 10ms.
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Fixed(SimTime::from_millis(5)));
        let mut net = SimNet::new(3, cfg);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"x"));
        let m = net.recv(NodeId(1)).unwrap();
        net.send(NodeId(1), NodeId(2), m.payload);
        let _ = net.recv(NodeId(2)).unwrap();
        assert_eq!(net.clock(NodeId(2)), SimTime::from_millis(10));
    }

    #[test]
    fn charge_adds_compute_cost() {
        let mut net = net(1);
        net.charge(NodeId(0), SimTime::from_micros(250));
        assert_eq!(net.clock(NodeId(0)), SimTime::from_micros(250));
    }

    #[test]
    fn stats_account_sends_and_drops() {
        let mut net = net(2);
        net.faults_mut()
            .inject_once(0, 1, crate::fault::FaultOutcome::Drop);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"lost"));
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"kept"));
        assert_eq!(net.stats().messages_sent, 2);
        assert_eq!(net.stats().messages_dropped, 1);
        assert_eq!(net.stats().bytes_sent, 8);
        let m = net.recv(NodeId(1)).unwrap();
        assert_eq!(&m.payload[..], b"kept");
        assert!(net.recv(NodeId(1)).is_err());
    }

    #[test]
    fn duplicates_deliver_twice() {
        let mut net = net(2);
        net.faults_mut()
            .inject_once(0, 1, crate::fault::FaultOutcome::Duplicate);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"dup"));
        assert_eq!(net.pending(NodeId(1)), 2);
        assert_eq!(&net.recv(NodeId(1)).unwrap().payload[..], b"dup");
        assert_eq!(&net.recv(NodeId(1)).unwrap().payload[..], b"dup");
    }

    #[test]
    fn corruption_flips_a_byte() {
        let mut net = net(2);
        net.faults_mut()
            .inject_once(0, 1, crate::fault::FaultOutcome::Corrupt);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"payload"));
        let m = net.recv(NodeId(1)).unwrap();
        assert_ne!(&m.payload[..], b"payload");
        assert_eq!(m.payload.len(), 7);
        assert_eq!(net.stats().messages_corrupted, 1);
        // The checksum was stamped before corruption: receivers can tell.
        assert!(!m.is_intact());
    }

    #[test]
    fn intact_deliveries_pass_the_checksum() {
        let mut net = net(2);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"clean"));
        assert!(net.recv(NodeId(1)).unwrap().is_intact());
    }

    #[test]
    fn fault_rolls_do_not_perturb_the_latency_schedule() {
        // Satellite regression: delivered messages keep the exact same
        // delivery times whether or not fault rolls happen, because the
        // fault RNG is a separate per-session stream.
        let cfg = |faults: FaultPlan| {
            NetConfig::ideal()
                .with_latency(LatencyModel::lan())
                .with_seed(42)
                .with_faults(faults)
        };
        let run = |mut net: SimNet| {
            for i in 0..20u8 {
                net.send(NodeId(0), NodeId(1), Bytes::copy_from_slice(&[i]));
            }
            let mut times = Vec::new();
            while let Ok(m) = net.recv(NodeId(1)) {
                times.push((m.payload[0], m.deliver_at));
            }
            times
        };
        let clean = run(SimNet::new(2, cfg(FaultPlan::none())));
        let mut corrupting = FaultPlan::none();
        corrupting.corrupt_probability = 1.0;
        let corrupted = run(SimNet::new(2, cfg(corrupting)));
        // Same count, same schedule — only the payload bytes differ.
        let clean_times: Vec<_> = clean.iter().map(|&(_, t)| t).collect();
        let corrupted_times: Vec<_> = corrupted.iter().map(|&(_, t)| t).collect();
        assert_eq!(clean_times, corrupted_times);
    }

    #[test]
    fn recv_from_enforces_sender() {
        let mut net = net(3);
        net.send(NodeId(0), NodeId(2), Bytes::from_static(b"a"));
        let err = net.recv_from(NodeId(2), NodeId(1)).unwrap_err();
        assert!(matches!(err, NetError::UnexpectedSender { .. }));
        // Message was not consumed.
        assert_eq!(net.pending(NodeId(2)), 1);
        assert!(net.recv_from(NodeId(2), NodeId(0)).is_ok());
    }

    #[test]
    fn recv_from_is_selective_across_interleaved_senders() {
        // Under nonzero latency, a message from node 1 may be delivered
        // before node 0's; selective receive must still hand back node
        // 0's message without disturbing the queue order of the rest.
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Uniform {
            min: SimTime::from_micros(1),
            max: SimTime::from_micros(500),
            bytes_per_us: 0,
        });
        let mut net = SimNet::new(3, cfg);
        for round in 0..10u8 {
            net.send(NodeId(0), NodeId(2), Bytes::copy_from_slice(&[round]));
            net.send(NodeId(1), NodeId(2), Bytes::copy_from_slice(&[100 + round]));
        }
        // Drain node 0's messages first, then node 1's: both arrive in
        // their own per-sender delivery order.
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            let m = net.recv_from(NodeId(2), NodeId(0)).unwrap();
            assert_eq!(m.from, NodeId(0));
            assert!(m.deliver_at >= last || last == SimTime::ZERO);
            last = m.deliver_at;
        }
        for _ in 0..10 {
            assert_eq!(net.recv_from(NodeId(2), NodeId(1)).unwrap().from, NodeId(1));
        }
        assert_eq!(net.pending(NodeId(2)), 0);
    }

    #[test]
    fn reset_accounting_clears_stats_and_clocks() {
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Fixed(SimTime::from_millis(1)));
        let mut net = SimNet::new(2, cfg);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"x"));
        let _ = net.recv(NodeId(1));
        net.reset_accounting();
        assert_eq!(net.stats().messages_sent, 0);
        assert_eq!(net.elapsed(), SimTime::ZERO);
    }

    #[test]
    fn determinism_under_seed() {
        let cfg = || {
            NetConfig::ideal()
                .with_latency(LatencyModel::lan())
                .with_seed(1234)
        };
        let run = |mut net: SimNet| {
            for i in 0..10u8 {
                net.send(NodeId(0), NodeId(1), Bytes::copy_from_slice(&[i]));
            }
            let mut times = Vec::new();
            while let Ok(m) = net.recv(NodeId(1)) {
                times.push(m.deliver_at);
            }
            times
        };
        assert_eq!(run(SimNet::new(2, cfg())), run(SimNet::new(2, cfg())));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_node_panics() {
        let mut net = net(2);
        net.send(NodeId(0), NodeId(5), Bytes::new());
    }

    #[test]
    fn envelope_wire_round_trip() {
        let env = Envelope::new(
            SessionId(42),
            NodeId(1),
            NodeId(3),
            Bytes::from_static(b"fragment"),
            SimTime::from_micros(7),
            SimTime::from_micros(19),
        );
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(decoded, env);
        // Truncated frames are rejected.
        assert!(Envelope::decode(&env.encode()[..10]).is_err());
    }

    #[test]
    fn bit_flipped_frame_rejected_at_decode() {
        // Satellite regression: a corrupted payload must be caught at
        // decode by the envelope checksum, not delivered as garbage.
        let env = Envelope::new(
            SessionId(1),
            NodeId(0),
            NodeId(1),
            Bytes::from_static(b"sensitive fragment bytes"),
            SimTime::ZERO,
            SimTime::ZERO,
        );
        let mut frame = env.encode().to_vec();
        let last = frame.len() - 1; // inside the payload
        frame[last] ^= 0x01;
        let err = Envelope::decode(&frame).unwrap_err();
        assert_eq!(err, crate::wire::WireError::checksum_mismatch());
    }

    #[test]
    fn sessions_have_isolated_inboxes() {
        let mut net = net(2);
        let s1 = net.open_session();
        let s2 = net.open_session();
        net.send_on(s1, NodeId(0), NodeId(1), Bytes::from_static(b"one"));
        net.send_on(s2, NodeId(0), NodeId(1), Bytes::from_static(b"two"));
        // Session 2 only sees its own message; session 1's stays queued.
        let m = net.recv_on(s2, NodeId(1)).unwrap();
        assert_eq!(&m.payload[..], b"two");
        assert_eq!(m.session, s2);
        assert!(net.recv_on(s2, NodeId(1)).is_err());
        assert_eq!(net.pending_on(s1, NodeId(1)), 1);
        assert_eq!(&net.recv_on(s1, NodeId(1)).unwrap().payload[..], b"one");
        // The root session saw nothing.
        assert!(net.recv(NodeId(1)).is_err());
    }

    #[test]
    fn per_session_clocks_are_independent() {
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Fixed(SimTime::from_millis(5)));
        let mut net = SimNet::new(2, cfg);
        let s1 = net.open_session();
        let s2 = net.open_session();
        // Two sessions each do one 5ms hop: both end at 5ms — they ran
        // in parallel, so the overall makespan is 5ms, not 10ms.
        net.send_on(s1, NodeId(0), NodeId(1), Bytes::from_static(b"a"));
        net.send_on(s2, NodeId(0), NodeId(1), Bytes::from_static(b"b"));
        net.recv_on(s1, NodeId(1)).unwrap();
        net.recv_on(s2, NodeId(1)).unwrap();
        assert_eq!(net.session_elapsed(s1), SimTime::from_millis(5));
        assert_eq!(net.session_elapsed(s2), SimTime::from_millis(5));
        assert_eq!(net.makespan(), SimTime::from_millis(5));
        // Root clocks were never touched.
        assert_eq!(net.elapsed(), SimTime::ZERO);
    }

    #[test]
    fn new_sessions_inherit_root_clocks() {
        let cfg = NetConfig::ideal().with_latency(LatencyModel::Fixed(SimTime::from_millis(2)));
        let mut net = SimNet::new(2, cfg);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"warmup"));
        net.recv(NodeId(1)).unwrap();
        let s = net.open_session();
        assert_eq!(net.clock_on(s, NodeId(1)), SimTime::from_millis(2));
    }

    #[test]
    fn sync_session_only_advances() {
        let mut net = net(2);
        let s = net.open_session();
        net.sync_session(s, SimTime::from_millis(3));
        assert_eq!(net.session_elapsed(s), SimTime::from_millis(3));
        // Syncing backwards is a no-op.
        net.sync_session(s, SimTime::from_millis(1));
        assert_eq!(net.session_elapsed(s), SimTime::from_millis(3));
    }

    #[test]
    fn per_link_delivery_is_fifo_within_a_session() {
        // A wide-variance latency model *would* reorder messages on the
        // same link; the per-link floor forbids it.
        let cfg = NetConfig::ideal()
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(1),
                max: SimTime::from_micros(10_000),
                bytes_per_us: 0,
            })
            .with_seed(7);
        let mut net = SimNet::new(2, cfg);
        let s = net.open_session();
        for i in 0..50u8 {
            net.send_on(s, NodeId(0), NodeId(1), Bytes::copy_from_slice(&[i]));
        }
        let mut expected = 0u8;
        while let Ok(m) = net.recv_on(s, NodeId(1)) {
            assert_eq!(m.payload[0], expected, "FIFO order violated");
            expected += 1;
        }
        assert_eq!(expected, 50);
    }

    #[test]
    fn interleaved_sessions_do_not_perturb_each_others_schedule() {
        // Satellite regression: the delivery schedule a session observes
        // must be identical whether or not other sessions are running.
        let cfg = || {
            NetConfig::ideal()
                .with_latency(LatencyModel::lan())
                .with_seed(99)
        };
        let drive = |net: &mut SimNet, session: SessionId| -> Vec<SimTime> {
            for i in 0..10u8 {
                net.send_on(session, NodeId(0), NodeId(1), Bytes::copy_from_slice(&[i]));
            }
            let mut times = Vec::new();
            while let Ok(m) = net.recv_on(session, NodeId(1)) {
                times.push(m.deliver_at);
            }
            times
        };

        // Alone.
        let mut solo = SimNet::new(2, cfg());
        let s = SessionId(5);
        let alone = drive(&mut solo, s);

        // Interleaved with two other chatty sessions.
        let mut busy = SimNet::new(2, cfg());
        for i in 0..25u8 {
            busy.send_on(
                SessionId(1),
                NodeId(1),
                NodeId(0),
                Bytes::copy_from_slice(&[i]),
            );
            busy.send_on(
                SessionId(2),
                NodeId(0),
                NodeId(1),
                Bytes::copy_from_slice(&[i]),
            );
        }
        let interleaved = drive(&mut busy, s);
        assert_eq!(alone, interleaved);
    }
}
