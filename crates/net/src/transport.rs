//! A threaded channel transport for running DLA nodes as real
//! concurrent actors.
//!
//! The [`crate::sim::SimNet`] is the deterministic workhorse; this
//! transport exists to run the same protocol logic across OS threads
//! (one per DLA node), demonstrating that nothing in the protocols
//! depends on the single-threaded scheduler.

use crate::stats::TrafficStats;
use crate::time::SimTime;
use crate::{NodeId, SessionId};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A message received over the channel transport.
#[derive(Clone, Debug)]
pub struct ChannelMessage {
    /// Protocol session the message belongs to.
    pub session: SessionId,
    /// Sender.
    pub from: NodeId,
    /// Payload.
    pub payload: Bytes,
}

/// One node's endpoint in a fully connected channel network.
pub struct ChannelEndpoint {
    id: NodeId,
    peers: Vec<Sender<ChannelMessage>>,
    inbox: Receiver<ChannelMessage>,
    stats: Arc<Mutex<TrafficStats>>,
}

impl std::fmt::Debug for ChannelEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChannelEndpoint(id: {}, peers: {})",
            self.id,
            self.peers.len()
        )
    }
}

/// Builds a fully connected network of `n` endpoints sharing one stats
/// ledger. Endpoint `i` is for node `i`; move each into its thread.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn channel_network(n: usize) -> (Vec<ChannelEndpoint>, Arc<Mutex<TrafficStats>>) {
    assert!(n > 0, "network needs at least one node");
    let stats = Arc::new(Mutex::new(TrafficStats::new()));
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded()).unzip();
    let endpoints = receivers
        .into_iter()
        .enumerate()
        .map(|(i, inbox)| ChannelEndpoint {
            id: NodeId(i),
            peers: senders.clone(),
            inbox,
            stats: Arc::clone(&stats),
        })
        .collect();
    (endpoints, stats)
}

impl ChannelEndpoint {
    /// This endpoint's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the network.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.peers.len()
    }

    /// Sends `payload` to `to` on the root session. Sends to a
    /// disconnected peer are silently dropped (the peer hung up),
    /// mirroring a dead host.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn send(&self, to: NodeId, payload: Bytes) {
        self.send_on(SessionId::ROOT, to, payload);
    }

    /// Session-tagged [`ChannelEndpoint::send`].
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn send_on(&self, session: SessionId, to: NodeId, payload: Bytes) {
        assert!(to.0 < self.peers.len(), "node {to} out of range");
        let len = payload.len();
        self.stats
            .lock()
            .record_send(session, self.id.0, to.0, len, SimTime::ZERO);
        let msg = ChannelMessage {
            session,
            from: self.id,
            payload,
        };
        if self.peers[to.0].send(msg).is_ok() {
            self.stats.lock().record_delivery(session, len);
        } else {
            self.stats.lock().messages_dropped += 1;
        }
    }

    /// Blocks until a message arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`RecvTimeoutError`] on timeout or if all
    /// senders disconnected.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<ChannelMessage, RecvTimeoutError> {
        self.inbox.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn two_threads_exchange_messages() {
        let (mut endpoints, stats) = channel_network(2);
        let e1 = endpoints.pop().unwrap();
        let e0 = endpoints.pop().unwrap();

        let t1 = thread::spawn(move || {
            let msg = e1.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(&msg.payload[..], b"ping");
            e1.send(msg.from, Bytes::from_static(b"pong"));
        });

        e0.send(NodeId(1), Bytes::from_static(b"ping"));
        let reply = e0.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&reply.payload[..], b"pong");
        assert_eq!(reply.from, NodeId(1));
        t1.join().unwrap();

        let s = stats.lock();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_delivered, 2);
        assert_eq!(s.bytes_sent, 8);
    }

    #[test]
    fn ring_relay_across_four_threads() {
        let (endpoints, _stats) = channel_network(4);
        let n = endpoints.len();
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                thread::spawn(move || {
                    let id = ep.id().0;
                    if id == 0 {
                        ep.send(NodeId(1), Bytes::from_static(b"token"));
                        let back = ep.recv_timeout(Duration::from_secs(5)).unwrap();
                        assert_eq!(&back.payload[..], b"token");
                    } else {
                        let msg = ep.recv_timeout(Duration::from_secs(5)).unwrap();
                        ep.send(NodeId((id + 1) % n), msg.payload);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn send_to_hung_up_peer_counts_as_drop() {
        let (mut endpoints, stats) = channel_network(2);
        let e1 = endpoints.pop().unwrap();
        let e0 = endpoints.pop().unwrap();
        drop(e1);
        // e0 still holds a sender to endpoint 1's channel, but the
        // receiver also lives in the peers vec... drop both references.
        drop(
            e0.recv_timeout(Duration::from_millis(1)), // flush
        );
        e0.send(NodeId(1), Bytes::from_static(b"x"));
        // The message may deliver into the orphaned queue (senders still
        // alive via peers clones). Either way it was accounted as sent.
        assert_eq!(stats.lock().messages_sent, 1);
    }

    #[test]
    fn recv_times_out_when_silent() {
        let (endpoints, _stats) = channel_network(2);
        let err = endpoints[0]
            .recv_timeout(Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }
}
