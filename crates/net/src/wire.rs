//! Minimal self-describing binary wire format.
//!
//! The approved dependency list includes `serde` but no serialization
//! *format* crate, so protocol messages are encoded with this small
//! length-prefixed writer/reader pair. Every field is explicitly
//! appended/consumed, which keeps message layouts reviewable — a virtue
//! in an auditing system.

use bytes::{Bytes, BytesMut};
use std::fmt;

/// Error produced when decoding a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    what: &'static str,
}

impl WireError {
    fn new(what: &'static str) -> Self {
        WireError { what }
    }

    /// The error raised when a payload checksum does not match — the
    /// receiver-side face of in-flight corruption.
    #[must_use]
    pub fn checksum_mismatch() -> Self {
        WireError::new("payload checksum mismatch")
    }
}

/// CRC-32 (IEEE 802.3) over `data`. Used as the per-envelope payload
/// checksum so corruption injected in flight is rejected at decode
/// instead of feeding garbage into protocol state machines.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire message: {}", self.what)
    }
}

impl std::error::Error for WireError {}

/// Append-only message builder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.extend_from_slice(&[v]);
        self
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u128`.
    pub fn put_u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Appends a count-prefixed list using `f` per element.
    pub fn put_list<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.put_u64(items.len() as u64);
        for item in items {
            f(self, item);
        }
        self
    }

    /// Finishes the message.
    #[must_use]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Sequential message consumer.
#[derive(Debug)]
pub struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a received payload.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Reader { rest: data }
    }

    /// Consumes a `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let (&first, rest) = self
            .rest
            .split_first()
            .ok_or_else(|| WireError::new("truncated u8"))?;
        self.rest = rest;
        Ok(first)
    }

    /// Consumes a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        if self.rest.len() < 8 {
            return Err(WireError::new("truncated u64"));
        }
        let (head, rest) = self.rest.split_at(8);
        self.rest = rest;
        Ok(u64::from_be_bytes(head.try_into().expect("8 bytes")))
    }

    /// Consumes a big-endian `u128`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation.
    pub fn get_u128(&mut self) -> Result<u128, WireError> {
        if self.rest.len() < 16 {
            return Err(WireError::new("truncated u128"));
        }
        let (head, rest) = self.rest.split_at(16);
        self.rest = rest;
        Ok(u128::from_be_bytes(head.try_into().expect("16 bytes")))
    }

    /// Consumes a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or an absurd length prefix.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u64()? as usize;
        if self.rest.len() < len {
            return Err(WireError::new("truncated byte string"));
        }
        let (head, rest) = self.rest.split_at(len);
        self.rest = rest;
        Ok(head)
    }

    /// Consumes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::new("invalid utf-8"))
    }

    /// Consumes a count-prefixed list using `f` per element.
    ///
    /// # Errors
    ///
    /// Propagates element decoding errors.
    pub fn get_list<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let count = self.get_u64()? as usize;
        // Guard against hostile length prefixes: each element consumes at
        // least one byte in every encoding this crate produces.
        if count > self.rest.len() {
            return Err(WireError::new("list count exceeds payload"));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Asserts the message is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(WireError::new("trailing bytes"))
        }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_types() {
        let mut w = Writer::new();
        w.put_u8(7)
            .put_u64(1 << 40)
            .put_u128(1 << 100)
            .put_bytes(b"payload")
            .put_str("glsn=139aef78")
            .put_list(&[1u64, 2, 3], |w, &v| {
                w.put_u64(v);
            });
        let msg = w.finish();

        let mut r = Reader::new(&msg);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_u128().unwrap(), 1 << 100);
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        assert_eq!(r.get_str().unwrap(), "glsn=139aef78");
        assert_eq!(r.get_list(|r| r.get_u64()).unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected_everywhere() {
        let mut w = Writer::new();
        w.put_u64(5);
        let msg = w.finish();
        let mut r = Reader::new(&msg[..4]);
        assert!(r.get_u64().is_err());

        let mut r2 = Reader::new(&msg);
        assert!(r2.get_bytes().is_err(), "length prefix 5 but no payload");
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1).put_u8(2);
        let msg = w.finish();
        let mut r = Reader::new(&msg);
        let _ = r.get_u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn hostile_list_count_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims 2^64-1 elements
        let msg = w.finish();
        let mut r = Reader::new(&msg);
        assert!(r.get_list(|r| r.get_u8()).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let msg = w.finish();
        let mut r = Reader::new(&msg);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn empty_collections_round_trip() {
        let mut w = Writer::new();
        w.put_bytes(b"").put_list::<u64>(&[], |_, _| {});
        let msg = w.finish();
        let mut r = Reader::new(&msg);
        assert_eq!(r.get_bytes().unwrap(), b"");
        assert!(r.get_list(|r| r.get_u64()).unwrap().is_empty());
        r.finish().unwrap();
    }

    #[test]
    fn error_display() {
        let e = WireError::new("truncated u64");
        assert_eq!(e.to_string(), "malformed wire message: truncated u64");
        assert_eq!(
            WireError::checksum_mismatch().to_string(),
            "malformed wire message: payload checksum mismatch"
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // Single-bit flips change the checksum.
        assert_ne!(crc32(b"payload"), crc32(b"pa\x78load"));
    }
}
