//! Cluster topologies: the ring used by relay protocols and helpers for
//! full-mesh baselines.

use crate::NodeId;

/// A ring ordering of nodes — the route commutatively-encrypted sets
/// travel in the paper's §3.1/§3.4 protocols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ring {
    order: Vec<NodeId>,
}

impl Ring {
    /// The canonical ring `0 → 1 → … → n−1 → 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn canonical(n: usize) -> Self {
        assert!(n > 0, "ring needs at least one node");
        Ring {
            order: (0..n).map(NodeId).collect(),
        }
    }

    /// A ring over an explicit ordering.
    ///
    /// # Panics
    ///
    /// Panics if `order` is empty or contains duplicates.
    #[must_use]
    pub fn new(order: Vec<NodeId>) -> Self {
        assert!(!order.is_empty(), "ring needs at least one node");
        let mut seen = std::collections::HashSet::new();
        for node in &order {
            assert!(seen.insert(node.0), "duplicate node {node} in ring");
        }
        Ring { order }
    }

    /// Number of nodes on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the ring is empty (never, for constructed rings).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The node at ring position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn at(&self, i: usize) -> NodeId {
        self.order[i]
    }

    /// Ring position of `node`, if present.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Option<usize> {
        self.order.iter().position(|&n| n == node)
    }

    /// The successor of `node` on the ring.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on the ring.
    #[must_use]
    pub fn next(&self, node: NodeId) -> NodeId {
        let pos = self.position(node).expect("node not on ring");
        self.order[(pos + 1) % self.order.len()]
    }

    /// The predecessor of `node` on the ring.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on the ring.
    #[must_use]
    pub fn prev(&self, node: NodeId) -> NodeId {
        let pos = self.position(node).expect("node not on ring");
        self.order[(pos + self.order.len() - 1) % self.order.len()]
    }

    /// Iterates one full revolution starting at `start` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not on the ring.
    pub fn walk_from(&self, start: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let pos = self.position(start).expect("node not on ring");
        let n = self.order.len();
        (0..n).map(move |i| self.order[(pos + i) % n])
    }

    /// Iterates the nodes in ring order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied()
    }
}

/// All ordered pairs `(i, j)`, `i ≠ j`, over `n` nodes — the message
/// pattern of full-mesh (classical MPC) baselines.
pub fn all_ordered_pairs(n: usize) -> impl Iterator<Item = (NodeId, NodeId)> {
    (0..n).flat_map(move |i| {
        (0..n)
            .filter(move |&j| j != i)
            .map(move |j| (NodeId(i), NodeId(j)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_ring_wraps() {
        let ring = Ring::canonical(4);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.next(NodeId(0)), NodeId(1));
        assert_eq!(ring.next(NodeId(3)), NodeId(0));
        assert_eq!(ring.prev(NodeId(0)), NodeId(3));
        assert_eq!(ring.prev(NodeId(2)), NodeId(1));
    }

    #[test]
    fn custom_order_respected() {
        let ring = Ring::new(vec![NodeId(2), NodeId(0), NodeId(1)]);
        assert_eq!(ring.next(NodeId(2)), NodeId(0));
        assert_eq!(ring.next(NodeId(1)), NodeId(2));
        assert_eq!(ring.position(NodeId(0)), Some(1));
        assert_eq!(ring.position(NodeId(9)), None);
    }

    #[test]
    fn walk_from_visits_everyone_once() {
        let ring = Ring::canonical(5);
        let walk: Vec<NodeId> = ring.walk_from(NodeId(3)).collect();
        assert_eq!(
            walk,
            vec![NodeId(3), NodeId(4), NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn singleton_ring_self_loops() {
        let ring = Ring::canonical(1);
        assert_eq!(ring.next(NodeId(0)), NodeId(0));
        assert_eq!(ring.prev(NodeId(0)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_nodes_rejected() {
        let _ = Ring::new(vec![NodeId(0), NodeId(0)]);
    }

    #[test]
    fn ordered_pairs_count() {
        let pairs: Vec<_> = all_ordered_pairs(4).collect();
        assert_eq!(pairs.len(), 12); // n(n-1)
        assert!(pairs.contains(&(NodeId(0), NodeId(3))));
        assert!(pairs.contains(&(NodeId(3), NodeId(0))));
        assert!(!pairs.contains(&(NodeId(2), NodeId(2))));
    }
}
