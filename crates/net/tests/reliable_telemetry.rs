//! Retransmission telemetry: the [`ReliableStats`] counters (and their
//! mirror in the telemetry cost sink) must match the injected fault
//! plan exactly under a seeded drop schedule.

use bytes::Bytes;
use dla_net::fault::{FaultOutcome, FaultPlan};
use dla_net::latency::LatencyModel;
use dla_net::{
    NetConfig, NetError, NodeId, Reliable, ReliableConfig, ReliableStats, Session, SimLink, SimNet,
};
use dla_telemetry::Recorder;

fn clean_net(seed: u64) -> SimNet {
    SimNet::new(
        3,
        NetConfig::ideal()
            .with_seed(seed)
            .with_latency(LatencyModel::lan()),
    )
}

/// One targeted drop per request/response round: every drop costs
/// exactly one retransmission (the cumulative ack carried back by the
/// response keeps the unacked window at a single frame), and nothing
/// times out.
#[test]
fn retransmit_count_matches_targeted_drop_schedule() {
    for drops in [1usize, 3, 7] {
        let mut net = clean_net(11);
        let link = SimLink::new(&mut net);
        let reliable = Reliable::new(&link);
        let session = Session::root(&reliable);
        for i in 0..drops {
            // Schedule the drop *before* the send so the data frame
            // (not the returning ack) is the casualty.
            link.with_net(|n| n.faults_mut().inject_once(0, 1, FaultOutcome::Drop));
            session.send(NodeId(0), NodeId(1), Bytes::copy_from_slice(&[i as u8]));
            let m = session.recv(NodeId(1)).expect("recovered by retransmit");
            assert_eq!(m.payload[0], i as u8);
            // Response leg: receiving it makes node 0 digest the ack,
            // emptying its unacked window before the next round.
            session.send(NodeId(1), NodeId(0), Bytes::copy_from_slice(&[i as u8]));
            let _ = session.recv(NodeId(0)).expect("clean response leg");
        }
        let stats = reliable.stats();
        assert_eq!(
            stats,
            ReliableStats {
                retransmits: drops as u64,
                retransmit_rounds: drops as u64,
                timeouts: 0,
                duplicates_suppressed: 0,
            },
            "drop schedule of {drops} targeted drops"
        );
    }
}

/// A dead receiver link: the sender's frame is retransmitted once per
/// backoff round until the retry budget runs out, then exactly one
/// timeout is reported.
#[test]
fn timeout_counters_match_retry_budget_when_peer_is_dead() {
    let max_retries = 4u32;
    let mut faults = FaultPlan::none();
    faults.kill_node(0);
    let mut net = SimNet::new(
        3,
        NetConfig::ideal()
            .with_faults(faults)
            .with_seed(5)
            .with_latency(LatencyModel::lan()),
    );
    let link = SimLink::new(&mut net);
    let reliable = Reliable::with_config(
        &link,
        ReliableConfig::default().with_max_retries(max_retries),
    );
    let session = Session::root(&reliable);
    session.send(NodeId(0), NodeId(1), Bytes::from_static(b"void"));
    assert_eq!(
        session.recv(NodeId(1)).unwrap_err(),
        NetError::Timeout(NodeId(1))
    );
    let stats = reliable.stats();
    assert_eq!(stats.retransmits, u64::from(max_retries));
    assert_eq!(stats.retransmit_rounds, u64::from(max_retries));
    assert_eq!(stats.timeouts, 1);
}

/// A fault-injected duplicate is suppressed and counted — and costs no
/// retransmissions once the sender has digested the ack.
#[test]
fn duplicate_suppression_is_counted() {
    let mut net = clean_net(7);
    net.faults_mut().inject_once(0, 1, FaultOutcome::Duplicate);
    let link = SimLink::new(&mut net);
    let reliable = Reliable::with_config(&link, ReliableConfig::default().with_max_retries(2));
    let session = Session::root(&reliable);
    session.send(NodeId(0), NodeId(1), Bytes::from_static(b"once"));
    assert_eq!(&session.recv(NodeId(1)).unwrap().payload[..], b"once");
    // Response leg clears node 0's unacked window so the duplicate's
    // suppression below cannot be confused with retransmissions.
    session.send(NodeId(1), NodeId(0), Bytes::from_static(b"ok"));
    let _ = session.recv(NodeId(0)).expect("clean response leg");
    // The second copy must not surface; digesting it counts once.
    assert_eq!(
        session.recv(NodeId(1)).unwrap_err(),
        NetError::Timeout(NodeId(1))
    );
    let stats = reliable.stats();
    assert_eq!(stats.duplicates_suppressed, 1);
    assert_eq!(stats.retransmits, 0);
    assert_eq!(stats.timeouts, 1);
}

/// The telemetry cost sink sees the same retransmit/timeout counts as
/// the wrapper's own counters.
#[test]
fn telemetry_sink_mirrors_reliable_stats() {
    let recorder = Recorder::new();
    let stats: ReliableStats;
    {
        let _install = recorder.install();
        let mut faults = FaultPlan::none();
        faults.kill_node(0);
        let mut net = SimNet::new(
            2,
            NetConfig::ideal()
                .with_faults(faults)
                .with_seed(9)
                .with_latency(LatencyModel::lan()),
        );
        let link = SimLink::new(&mut net);
        let reliable = Reliable::with_config(&link, ReliableConfig::default().with_max_retries(3));
        let session = Session::root(&reliable);
        session.send(NodeId(0), NodeId(1), Bytes::from_static(b"x"));
        let _ = session.recv(NodeId(1)).unwrap_err();
        stats = reliable.stats();
    }
    let total = recorder.take().total_cost();
    assert_eq!(total.retransmits, stats.retransmits);
    assert_eq!(total.timeouts, stats.timeouts);
    assert!(total.retransmits > 0, "schedule actually exercised ARQ");
}
