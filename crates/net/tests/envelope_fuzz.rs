//! Frame-decoding hardening for the socket transport (satellite of the
//! process-per-node deployment): `Envelope::encode`/`decode` round-trip
//! under proptest, and every malformed input — truncation, trailing
//! bytes, checksum mismatch, hostile length prefixes — surfaces as a
//! clean error (`NetError::Corrupt` at the transport boundary), never a
//! panic and never an attacker-controlled allocation.

use bytes::Bytes;
use dla_net::tcp::{decode_envelope, read_frame, write_frame, MAX_FRAME};
use dla_net::time::SimTime;
use dla_net::{Envelope, NetError, NodeId, SessionId};
use proptest::prelude::*;

fn envelope(session: u64, from: usize, to: usize, payload: &[u8], at: u64) -> Envelope {
    Envelope::new(
        SessionId(session),
        NodeId(from),
        NodeId(to),
        Bytes::copy_from_slice(payload),
        SimTime::from_nanos(at),
        SimTime::from_nanos(at),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn envelope_round_trips(
        session in any::<u64>(),
        from in 0usize..64,
        to in 0usize..64,
        payload in prop::collection::vec(any::<u8>(), 0..512),
        at in any::<u64>(),
    ) {
        let original = envelope(session, from, to, &payload, at);
        let decoded = Envelope::decode(&original.encode()).expect("round trip");
        prop_assert_eq!(decoded, original);
    }

    #[test]
    fn truncated_frames_are_corrupt_not_panics(
        payload in prop::collection::vec(any::<u8>(), 0..128),
        cut in any::<prop::sample::Index>(),
    ) {
        let encoded = envelope(7, 1, 2, &payload, 9).encode();
        let len = cut.index(encoded.len()); // strictly shorter than full
        let verdict = decode_envelope(&encoded[..len], NodeId(2));
        prop_assert_eq!(verdict.unwrap_err(), NetError::Corrupt(NodeId(2)));
    }

    #[test]
    fn bit_flips_never_yield_a_wrong_payload(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let original = envelope(3, 0, 1, &payload, 4);
        let mut bytes = original.encode().to_vec();
        let idx = flip_byte.index(bytes.len());
        bytes[idx] ^= 1 << flip_bit;
        // A flipped frame either fails decode (the common case — the
        // payload checksum or framing catches it) or decodes to an
        // envelope whose payload still matches its own checksum; it
        // must never panic.
        if let Ok(decoded) = Envelope::decode(&bytes) {
            prop_assert!(decoded.is_intact());
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        junk in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut bytes = envelope(1, 0, 1, &payload, 0).encode().to_vec();
        bytes.extend_from_slice(&junk);
        prop_assert_eq!(
            decode_envelope(&bytes, NodeId(0)).unwrap_err(),
            NetError::Corrupt(NodeId(0))
        );
    }
}

#[test]
fn checksum_mismatch_is_corrupt() {
    let original = envelope(5, 2, 3, b"fragment", 11);
    let mut bytes = original.encode().to_vec();
    // Flip one payload byte (the payload is the frame's tail) so the
    // embedded CRC no longer matches.
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    assert_eq!(
        decode_envelope(&bytes, NodeId(3)),
        Err(NetError::Corrupt(NodeId(3)))
    );
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocating() {
    // A hostile peer claims a body of u32::MAX (~4 GiB) and of exactly
    // MAX_FRAME + 1. read_frame must reject both from the 4-byte header
    // alone — before any buffer is allocated — rather than trying to
    // reserve attacker-controlled memory.
    for claimed in [u32::MAX, (MAX_FRAME as u32) + 1] {
        let mut wire = claimed.to_be_bytes().to_vec();
        wire.extend_from_slice(b"tiny");
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}

#[test]
fn truncated_length_prefix_and_short_body_error_cleanly() {
    // Fewer than 4 header bytes.
    let err = read_frame(&mut [0u8, 0].as_slice()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    // Header promises 8 bytes, stream carries 3.
    let mut wire = 8u32.to_be_bytes().to_vec();
    wire.extend_from_slice(b"abc");
    let err = read_frame(&mut wire.as_slice()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn frames_round_trip_and_cap_is_enforced_on_write() {
    let mut wire = Vec::new();
    write_frame(&mut wire, b"hello frame").expect("write");
    write_frame(&mut wire, b"").expect("empty frame is legal");
    let mut cursor = wire.as_slice();
    assert_eq!(read_frame(&mut cursor).expect("frame 1"), b"hello frame");
    assert_eq!(read_frame(&mut cursor).expect("frame 2"), b"");
    // The writer refuses oversized bodies symmetrically.
    let huge = vec![0u8; MAX_FRAME + 1];
    let err = write_frame(&mut Vec::new(), &huge).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
