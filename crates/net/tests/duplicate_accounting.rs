//! Regression: duplicate deliveries must show up identically in the
//! global counters and the per-session ones. Before `record_delivery`,
//! the second leg of a fault-injected duplicate bumped the global
//! `messages_delivered` but left every per-session total untouched, so
//! the two views disagreed under duplication.

use bytes::Bytes;
use dla_net::fault::FaultPlan;
use dla_net::latency::LatencyModel;
use dla_net::{NetConfig, NodeId, SessionId, SimNet};

const DUPLICATE_PROBABILITY: f64 = 0.05;

fn duplicating_net(seed: u64) -> SimNet {
    let mut faults = FaultPlan::none();
    faults.duplicate_probability = DUPLICATE_PROBABILITY;
    SimNet::new(
        4,
        NetConfig::ideal()
            .with_faults(faults)
            .with_seed(seed)
            .with_latency(LatencyModel::lan()),
    )
}

#[test]
fn per_session_and_global_delivery_accounting_agree_under_duplication() {
    let mut saw_duplicate = false;
    for seed in 0..8u64 {
        let mut net = duplicating_net(seed);
        let sessions = [SessionId(1), SessionId(2), SessionId(3)];
        let payload = |s: u64, i: u64| Bytes::from(vec![s as u8; 16 + (i as usize % 7)]);
        for (si, &session) in sessions.iter().enumerate() {
            for i in 0..40u64 {
                let from = NodeId(i as usize % 3);
                let to = NodeId((i as usize + 1 + si) % 4);
                net.send_on(session, from, to, payload(session.0, i));
            }
        }
        // Drain every inbox completely so duplicates are received too.
        for &session in &sessions {
            for node in 0..4 {
                while net.recv_on(session, NodeId(node)).is_ok() {}
            }
        }
        let stats = net.stats();
        saw_duplicate |= stats.messages_duplicated > 0;

        // Nothing is dropped here, so every send plus every duplicate
        // is eventually delivered.
        assert_eq!(
            stats.messages_delivered,
            stats.messages_sent + stats.messages_duplicated,
            "seed {seed}"
        );

        // The fixed invariant: per-session delivered totals sum to the
        // global ones, duplicates included.
        let (session_msgs, session_bytes) =
            stats.sessions().fold((0u64, 0u64), |(m, b), (_, s)| {
                (m + s.messages_delivered, b + s.bytes_delivered)
            });
        assert_eq!(session_msgs, stats.messages_delivered, "seed {seed}");
        assert_eq!(session_bytes, stats.bytes_delivered, "seed {seed}");

        // A duplicated session's delivered side exceeds its sent side
        // by exactly its duplicates; bytes scale the same way.
        for (_, s) in stats.sessions() {
            assert!(s.messages_delivered >= s.messages);
            assert!(s.bytes_delivered >= s.bytes);
        }
        assert!(
            stats.bytes_delivered >= stats.bytes_sent,
            "duplicates can only add delivered bytes (seed {seed})"
        );
    }
    assert!(
        saw_duplicate,
        "5% duplication over 8 seeds must produce at least one duplicate"
    );
}
